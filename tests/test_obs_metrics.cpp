// Counter/gauge/histogram semantics, quantile math, snapshot determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/csv.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace p2p::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValueAndHighWater) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(ObsHistogram, LinearBucketing) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::linear(0, 10, 4, Unit::kHops));
  // Buckets: underflow, [0,10), [10,20), [20,30), [30,40), overflow.
  h.record(-5);  // clamped to 0
  h.record(0);
  h.record(9);
  h.record(10);
  h.record(39);
  h.record(1000);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.bucket_value(i);
  EXPECT_EQ(total, h.count());
}

TEST(ObsHistogram, ExponentialBucketsCoverWideRange) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential(Unit::kBytes));
  for (std::int64_t v : {0LL, 1LL, 3LL, 4LL, 7LL, 100LL, 65'536LL,
                         1'000'000'000LL, (1LL << 50)}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 9u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    total += h.bucket_value(i);
    // Every value must land in a bucket that covers it.
    EXPECT_LT(h.bucket_lower(i), h.bucket_upper(i));
  }
  EXPECT_EQ(total, h.count());
}

TEST(ObsHistogram, ExponentialRelativeError) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  // HDR-style: 4 sub-buckets per octave gives <= 1/8 relative bucket width,
  // so a quantile estimate can't be off by more than ~12.5% of the value.
  Histogram h(HistogramSpec::exponential());
  for (std::int64_t v = 1; v <= 100'000; v += 7) h.record(v);
  double p50 = h.quantile(0.5);
  EXPECT_NEAR(p50, 50'000.0, 50'000.0 * 0.13);
  double p99 = h.quantile(0.99);
  EXPECT_NEAR(p99, 99'000.0, 99'000.0 * 0.13);
}

TEST(ObsHistogram, QuantileClampedToObservedRange) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential());
  h.record(100);
  h.record(100);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_GE(h.quantile(0.5), 100.0 * 0.875);
  EXPECT_LE(h.quantile(0.5), 100.0);
  Histogram empty(HistogramSpec::exponential());
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogram, SimDurationRecordsMillis) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential(Unit::kMillisSim));
  h.record(util::SimDuration::seconds(2));
  EXPECT_EQ(h.sum(), 2000);
}

TEST(ObsRegistry, SameNameSameMetric) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  Counter& a = r.counter("x.a");
  Counter& b = r.counter("x.a");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = r.histogram("x.h", HistogramSpec::linear(0, 1, 4));
  Histogram& h2 = r.histogram("x.h", HistogramSpec::exponential());
  EXPECT_EQ(&h1, &h2);  // first spec wins
  EXPECT_EQ(h2.spec().scale, HistogramSpec::Scale::kLinear);
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndReferences) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  Counter& c = r.counter("x.c");
  Gauge& g = r.gauge("x.g");
  c.add(7);
  g.set(9);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  c.add(1);  // reference still live after reset
  EXPECT_EQ(r.counter("x.c").value(), 1u);
}

TEST(ObsRegistry, SnapshotSortedAndDeterministic) {
  MetricsRegistry r;
  r.counter("b.two").add(2);
  r.counter("a.one").add(1);
  r.gauge("z.depth").set(5);
  r.histogram("m.lat", HistogramSpec::exponential(Unit::kMillisSim)).record(30);

  MetricsSnapshot s1 = r.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].name, "a.one");
  EXPECT_EQ(s1.counters[1].name, "b.two");

  // Identical sequence of operations → byte-identical JSON export.
  std::ostringstream j1, j2;
  write_json(j1, s1);
  write_json(j2, r.snapshot());
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_FALSE(j1.str().empty());
}

TEST(ObsExport, WallClockExcludedByDefault) {
  MetricsRegistry r;
  r.histogram("w.wall", HistogramSpec::exponential(Unit::kNanosWall, true))
      .record(123);
  r.histogram("s.sim", HistogramSpec::exponential(Unit::kMillisSim)).record(5);
  std::ostringstream deterministic, with_wall;
  write_json(deterministic, r.snapshot());
  ExportOptions opts;
  opts.include_wall_clock = true;
  write_json(with_wall, r.snapshot(), opts);
  EXPECT_EQ(deterministic.str().find("w.wall"), std::string::npos);
  EXPECT_NE(deterministic.str().find("s.sim"), std::string::npos);
  EXPECT_NE(with_wall.str().find("w.wall"), std::string::npos);
}

TEST(ObsExport, TableAndCsvRenderEveryMetric) {
  MetricsRegistry r;
  r.counter("net.messages_sent").add(10);
  r.gauge("net.nodes_alive").set(4);
  r.histogram("net.message_bytes", HistogramSpec::exponential(Unit::kBytes))
      .record(512);
  MetricsSnapshot snap = r.snapshot();

  std::string table = render_table(snap);
  EXPECT_NE(table.find("net.messages_sent"), std::string::npos);
  EXPECT_NE(table.find("net.nodes_alive"), std::string::npos);
  EXPECT_NE(table.find("net.message_bytes"), std::string::npos);

  std::ostringstream csv;
  analysis::write_metrics_csv(csv, snap);
  std::string text = csv.str();
  EXPECT_NE(text.find("counter,net.messages_sent"), std::string::npos);
  EXPECT_NE(text.find("gauge,net.nodes_alive"), std::string::npos);
  EXPECT_NE(text.find("histogram,net.message_bytes,bytes"), std::string::npos);
}

TEST(ObsTimer, ScopedWallTimerRecordsOneSample) {
  Histogram h(HistogramSpec::exponential(Unit::kNanosWall, true));
  { ScopedWallTimer t(h); }
#ifndef P2P_OBS_DISABLED
  EXPECT_EQ(h.count(), 1u);
#endif
}

// Undo a json_escape by hand: every escape the emitter produces must map
// back to the byte it came from.
std::string json_unescape(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        out += static_cast<char>(std::stoi(std::string(s.substr(i + 1, 4)),
                                           nullptr, 16));
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST(ObsJson, EscapeRoundTripsEveryByteBelow0x80) {
  std::string original;
  for (int c = 0; c < 0x80; ++c) original += static_cast<char>(c);
  std::string escaped = json_escape(original);
  // No raw control characters or unescaped quotes/backslashes survive.
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(escaped[i]), 0x20u) << "at " << i;
    if (escaped[i] == '"') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
  EXPECT_EQ(json_unescape(escaped), original);
}

TEST(ObsJson, EscapePassesUtf8Through) {
  std::string original = "caf\xc3\xa9 \xe2\x98\x83";  // café ☃
  EXPECT_EQ(json_escape(original), original);
}

TEST(ObsJson, NumberRoundTripsExactly) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                   123456789.123456789, -0.007}) {
    std::string text = json_number(v);
    EXPECT_EQ(std::stod(text), v) << text;
    // A valid JSON number: no nan/inf, no leading '+'.
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_NE(text[0], '+');
  }
}

TEST(ObsJson, DoubleIsAlwaysParseable) {
  for (double v : {0.0, -0.0, 1e-7, 6.02e23, -273.15, 100.0 / 7.0}) {
    std::string text = json_double(v);
    // %.6g loses precision by design, but must stay a parseable number
    // close to the input.
    double parsed = std::stod(text);
    EXPECT_NEAR(parsed, v, std::abs(v) * 1e-5 + 1e-12) << text;
  }
}

TEST(ObsHistogram, LinearBucketEdgesAreHalfOpen) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  // Buckets: underflow(<10), [10,20), [20,30), overflow(>=30).
  Histogram h(HistogramSpec::linear(10, 10, 2));
  h.record(9);   // underflow
  h.record(10);  // first bucket, inclusive lower edge
  h.record(19);  // still first bucket
  h.record(20);  // second bucket, exactly on the boundary
  h.record(29);
  h.record(30);  // overflow, exclusive upper edge
  EXPECT_EQ(h.count(), 6u);

  std::vector<std::uint64_t> counts;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    counts.push_back(h.bucket_value(i));
    if (h.bucket_value(i) > 0 && i + 1 < h.bucket_count()) {
      EXPECT_LT(h.bucket_lower(i), h.bucket_upper(i));
    }
  }
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);  // 9
  EXPECT_EQ(counts[1], 2u);  // 10, 19
  EXPECT_EQ(counts[2], 2u);  // 20, 29
  EXPECT_EQ(counts[3], 1u);  // 30
}

TEST(ObsHistogram, ExponentialEdgesCoverExtremes) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential());
  h.record(0);
  h.record(1);
  h.record(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  // Every recorded value lands in a bucket whose [lower, upper) contains it.
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucketed += h.bucket_value(i);
  EXPECT_EQ(bucketed, 3u);
}

}  // namespace
}  // namespace p2p::obs
