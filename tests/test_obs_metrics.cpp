// Counter/gauge/histogram semantics, quantile math, snapshot determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/csv.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace p2p::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValueAndHighWater) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(ObsHistogram, LinearBucketing) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::linear(0, 10, 4, Unit::kHops));
  // Buckets: underflow, [0,10), [10,20), [20,30), [30,40), overflow.
  h.record(-5);  // clamped to 0
  h.record(0);
  h.record(9);
  h.record(10);
  h.record(39);
  h.record(1000);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.bucket_value(i);
  EXPECT_EQ(total, h.count());
}

TEST(ObsHistogram, ExponentialBucketsCoverWideRange) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential(Unit::kBytes));
  for (std::int64_t v : {0LL, 1LL, 3LL, 4LL, 7LL, 100LL, 65'536LL,
                         1'000'000'000LL, (1LL << 50)}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 9u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    total += h.bucket_value(i);
    // Every value must land in a bucket that covers it.
    EXPECT_LT(h.bucket_lower(i), h.bucket_upper(i));
  }
  EXPECT_EQ(total, h.count());
}

TEST(ObsHistogram, ExponentialRelativeError) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  // HDR-style: 4 sub-buckets per octave gives <= 1/8 relative bucket width,
  // so a quantile estimate can't be off by more than ~12.5% of the value.
  Histogram h(HistogramSpec::exponential());
  for (std::int64_t v = 1; v <= 100'000; v += 7) h.record(v);
  double p50 = h.quantile(0.5);
  EXPECT_NEAR(p50, 50'000.0, 50'000.0 * 0.13);
  double p99 = h.quantile(0.99);
  EXPECT_NEAR(p99, 99'000.0, 99'000.0 * 0.13);
}

TEST(ObsHistogram, QuantileClampedToObservedRange) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential());
  h.record(100);
  h.record(100);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_GE(h.quantile(0.5), 100.0 * 0.875);
  EXPECT_LE(h.quantile(0.5), 100.0);
  Histogram empty(HistogramSpec::exponential());
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogram, SimDurationRecordsMillis) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  Histogram h(HistogramSpec::exponential(Unit::kMillisSim));
  h.record(util::SimDuration::seconds(2));
  EXPECT_EQ(h.sum(), 2000);
}

TEST(ObsRegistry, SameNameSameMetric) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  Counter& a = r.counter("x.a");
  Counter& b = r.counter("x.a");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = r.histogram("x.h", HistogramSpec::linear(0, 1, 4));
  Histogram& h2 = r.histogram("x.h", HistogramSpec::exponential());
  EXPECT_EQ(&h1, &h2);  // first spec wins
  EXPECT_EQ(h2.spec().scale, HistogramSpec::Scale::kLinear);
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndReferences) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  Counter& c = r.counter("x.c");
  Gauge& g = r.gauge("x.g");
  c.add(7);
  g.set(9);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  c.add(1);  // reference still live after reset
  EXPECT_EQ(r.counter("x.c").value(), 1u);
}

TEST(ObsRegistry, SnapshotSortedAndDeterministic) {
  MetricsRegistry r;
  r.counter("b.two").add(2);
  r.counter("a.one").add(1);
  r.gauge("z.depth").set(5);
  r.histogram("m.lat", HistogramSpec::exponential(Unit::kMillisSim)).record(30);

  MetricsSnapshot s1 = r.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].name, "a.one");
  EXPECT_EQ(s1.counters[1].name, "b.two");

  // Identical sequence of operations → byte-identical JSON export.
  std::ostringstream j1, j2;
  write_json(j1, s1);
  write_json(j2, r.snapshot());
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_FALSE(j1.str().empty());
}

TEST(ObsExport, WallClockExcludedByDefault) {
  MetricsRegistry r;
  r.histogram("w.wall", HistogramSpec::exponential(Unit::kNanosWall, true))
      .record(123);
  r.histogram("s.sim", HistogramSpec::exponential(Unit::kMillisSim)).record(5);
  std::ostringstream deterministic, with_wall;
  write_json(deterministic, r.snapshot());
  ExportOptions opts;
  opts.include_wall_clock = true;
  write_json(with_wall, r.snapshot(), opts);
  EXPECT_EQ(deterministic.str().find("w.wall"), std::string::npos);
  EXPECT_NE(deterministic.str().find("s.sim"), std::string::npos);
  EXPECT_NE(with_wall.str().find("w.wall"), std::string::npos);
}

TEST(ObsExport, TableAndCsvRenderEveryMetric) {
  MetricsRegistry r;
  r.counter("net.messages_sent").add(10);
  r.gauge("net.nodes_alive").set(4);
  r.histogram("net.message_bytes", HistogramSpec::exponential(Unit::kBytes))
      .record(512);
  MetricsSnapshot snap = r.snapshot();

  std::string table = render_table(snap);
  EXPECT_NE(table.find("net.messages_sent"), std::string::npos);
  EXPECT_NE(table.find("net.nodes_alive"), std::string::npos);
  EXPECT_NE(table.find("net.message_bytes"), std::string::npos);

  std::ostringstream csv;
  analysis::write_metrics_csv(csv, snap);
  std::string text = csv.str();
  EXPECT_NE(text.find("counter,net.messages_sent"), std::string::npos);
  EXPECT_NE(text.find("gauge,net.nodes_alive"), std::string::npos);
  EXPECT_NE(text.find("histogram,net.message_bytes,bytes"), std::string::npos);
}

TEST(ObsTimer, ScopedWallTimerRecordsOneSample) {
  Histogram h(HistogramSpec::exponential(Unit::kNanosWall, true));
  { ScopedWallTimer t(h); }
#ifndef P2P_OBS_DISABLED
  EXPECT_EQ(h.count(), 1u);
#endif
}

}  // namespace
}  // namespace p2p::obs
