// The parallel sweep runner: determinism across job counts, seed
// derivation, aggregation math, and per-task failure isolation.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/stats.h"
#include "sweep/sweep.h"

namespace p2p {
namespace {

// Tiny tasks so the multi-job determinism check stays fast: the quick
// preset cut to a 2-minute crawl still produces responses.
std::vector<sweep::StudyTask> tiny_tasks(std::size_t n) {
  sweep::PlanConfig plan;
  plan.network = sweep::NetworkKind::kOpenFt;
  plan.quick = true;
  plan.replications = n;
  plan.duration = util::SimDuration::minutes(2);
  return sweep::plan(plan);
}

TEST(SweepSeeds, DerivationIsPureAndCollisionFree) {
  EXPECT_EQ(sweep::derive_seed(2006, 0), sweep::derive_seed(2006, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 2006ULL, 2007ULL}) {
    for (std::size_t i = 0; i < 256; ++i) {
      seen.insert(sweep::derive_seed(base, i));
    }
  }
  // Nearby bases and indices must not collide.
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(SweepPlan, ExplicitSeedsWinAndPresetsApply) {
  sweep::PlanConfig plan;
  plan.network = sweep::NetworkKind::kLimewire;
  plan.seeds = {11, 22, 33};
  plan.duration = util::SimDuration::hours(5);
  auto tasks = sweep::plan(plan);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].seed, 11u);
  EXPECT_EQ(tasks[2].seed, 33u);
  EXPECT_EQ(tasks[1].limewire.seed, 22u);
  EXPECT_EQ(tasks[1].limewire.crawl.duration, util::SimDuration::hours(5));
  // Distinct seeds yield distinct config hashes; same plan, same hash.
  EXPECT_NE(tasks[0].config_hash(), tasks[1].config_hash());
  EXPECT_EQ(tasks[0].config_hash(), sweep::plan(plan)[0].config_hash());
}

TEST(SweepRun, JsonIsByteIdenticalAcrossJobCounts) {
  auto tasks = tiny_tasks(4);
  sweep::SweepOptions serial;
  serial.jobs = 1;
  auto r1 = sweep::run(tasks, serial);
  sweep::SweepOptions parallel_opts;
  parallel_opts.jobs = 4;
  auto r4 = sweep::run(tasks, parallel_opts);

  ASSERT_TRUE(r1.all_ok());
  ASSERT_TRUE(r4.all_ok());
  std::ostringstream j1, j4;
  sweep::write_json(j1, r1);
  sweep::write_json(j4, r4);
  EXPECT_EQ(j1.str(), j4.str());
  // And the runs produced real data, not empty shells.
  const auto* responses = r1.summary("prevalence.total_responses");
  ASSERT_NE(responses, nullptr);
  EXPECT_GT(responses->moments.mean, 0.0);
}

TEST(SweepRun, TaskMetricsAreIsolatedPerTask) {
  auto tasks = tiny_tasks(2);
  auto result = sweep::run(tasks, {});
  ASSERT_TRUE(result.all_ok());
  // Had two tasks shared one registry, the second task's counters would
  // include the first task's traffic; identical configs differing only by
  // seed must stay the same order of magnitude instead of doubling.
  double a = result.tasks[0].values.at("obs.sim.events_executed");
  double b = result.tasks[1].values.at("obs.sim.events_executed");
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(std::max(a, b), 1.5 * std::min(a, b));
}

TEST(SweepRun, RecordsThroughputMetricsInCallerRegistry) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  auto tasks = tiny_tasks(2);
  auto result = sweep::run(tasks, {});
  ASSERT_TRUE(result.all_ok());
  auto snap = registry.snapshot();
  std::uint64_t completed = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "sweep.tasks_completed") completed = c.value;
  }
  EXPECT_EQ(completed, 2u);
}

TEST(SweepRun, FailedTaskDoesNotAbortSweep) {
  auto tasks = tiny_tasks(3);
  sweep::SweepOptions options;
  options.runner = [](const sweep::StudyTask& task) -> core::StudyResult {
    if (task.index == 1) throw std::runtime_error("injected failure");
    return core::run_openft_study(task.openft);
  };
  auto result = sweep::run(tasks, options);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.all_ok());
  EXPECT_FALSE(result.tasks[1].ok);
  EXPECT_EQ(result.tasks[1].error, "injected failure");
  EXPECT_TRUE(result.tasks[0].ok);
  EXPECT_TRUE(result.tasks[2].ok);
  // Summaries aggregate over the 2 successes only.
  const auto* s = result.summary("run.records");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->moments.n, 2u);
  // The failure shows up in the JSON, flagged.
  std::ostringstream json;
  sweep::write_json(json, result);
  EXPECT_NE(json.str().find("injected failure"), std::string::npos);
}

TEST(SweepAggregation, MomentsMatchHandComputedFixture) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  auto m = analysis::moments(xs);
  EXPECT_EQ(m.n, 8u);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  // Sample stddev: sum of squared deviations = 32, 32/7 ≈ 4.5714.
  EXPECT_NEAR(m.stddev, 2.13809, 1e-5);
  EXPECT_DOUBLE_EQ(m.min, 2.0);
  EXPECT_DOUBLE_EQ(m.max, 9.0);

  auto one = analysis::moments(std::vector<double>{3.5});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(SweepAggregation, PercentileUsesLinearInterpolation) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  // R-7: rank = q * (n - 1); p50 of 4 values sits halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 0.25), 17.5);
  // Unsorted input is handled (percentile sorts a copy).
  std::vector<double> shuffled = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(analysis::percentile(shuffled, 0.5), 25.0);
}

TEST(SweepAggregation, BootstrapCiBracketsMeanAndIsSeeded) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  auto ci = analysis::bootstrap_mean_ci(xs, 500, 99);
  EXPECT_DOUBLE_EQ(ci.point, 4.5);
  EXPECT_LE(ci.lo, 4.5);
  EXPECT_GE(ci.hi, 4.5);
  EXPECT_LT(ci.lo, ci.hi);
  // Same seed, same draws; different seed, (almost surely) different band.
  auto again = analysis::bootstrap_mean_ci(xs, 500, 99);
  EXPECT_DOUBLE_EQ(ci.lo, again.lo);
  EXPECT_DOUBLE_EQ(ci.hi, again.hi);

  // Degenerate inputs collapse to the point estimate.
  auto single = analysis::bootstrap_mean_ci(std::vector<double>{2.5}, 100, 1);
  EXPECT_DOUBLE_EQ(single.lo, 2.5);
  EXPECT_DOUBLE_EQ(single.hi, 2.5);
}

}  // namespace
}  // namespace p2p
