#include "files/zip.h"

#include <gtest/gtest.h>

#include "files/file_types.h"

namespace p2p::files {
namespace {

util::Bytes bytes_of(std::string_view s) { return util::Bytes(s.begin(), s.end()); }

TEST(Zip, EmptyArchiveRoundTrips) {
  util::Bytes archive = zip_pack({});
  EXPECT_EQ(archive.size(), 22u);  // bare EOCD
  auto members = zip_unpack(archive);
  ASSERT_TRUE(members.has_value());
  EXPECT_TRUE(members->empty());
}

TEST(Zip, SingleMemberRoundTrips) {
  util::Bytes archive = zip_pack({{"hello.txt", bytes_of("hello world")}});
  auto members = zip_unpack(archive);
  ASSERT_TRUE(members.has_value());
  ASSERT_EQ(members->size(), 1u);
  EXPECT_EQ((*members)[0].name, "hello.txt");
  EXPECT_EQ((*members)[0].data, bytes_of("hello world"));
}

TEST(Zip, HasRealMagic) {
  util::Bytes archive = zip_pack({{"a", bytes_of("x")}});
  EXPECT_EQ(classify_magic(archive), FileType::kArchive);
}

class ZipMemberCount : public ::testing::TestWithParam<int> {};

TEST_P(ZipMemberCount, RoundTrips) {
  std::vector<ZipMember> in;
  for (int i = 0; i < GetParam(); ++i) {
    util::Bytes data(static_cast<std::size_t>(i * 97 + 1));
    for (std::size_t j = 0; j < data.size(); ++j) {
      data[j] = static_cast<std::uint8_t>(i + j);
    }
    in.push_back({"member" + std::to_string(i) + ".dat", std::move(data)});
  }
  auto out = zip_unpack(zip_pack(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ((*out)[i].name, in[i].name);
    EXPECT_EQ((*out)[i].data, in[i].data);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ZipMemberCount, ::testing::Values(1, 2, 3, 7, 20));

TEST(Zip, DetectsCorruptedData) {
  util::Bytes archive = zip_pack({{"f", bytes_of("important payload")}});
  // Flip a byte inside the member data: CRC must catch it.
  archive[40] ^= 0xFF;
  EXPECT_FALSE(zip_unpack(archive).has_value());
}

TEST(Zip, RejectsGarbage) {
  EXPECT_FALSE(zip_unpack(bytes_of("this is not a zip file at all")).has_value());
}

TEST(Zip, RejectsTruncatedMidMember) {
  util::Bytes archive = zip_pack({{"f", bytes_of("data here")}});
  // Cut inside the first member's data (local header is 30 bytes + 1-byte
  // name): the claimed 9 data bytes cannot be read.
  archive.resize(35);
  EXPECT_FALSE(zip_unpack(archive).has_value());
}

TEST(Zip, TruncatedAfterMemberRecoversCompleteMembers) {
  util::Bytes payload = bytes_of("data here");
  util::Bytes archive = zip_pack({{"f", payload}});
  // Drop the central directory + EOCD: the complete member is still
  // recoverable (streaming parse semantics).
  archive.resize(30 + 1 + payload.size());
  auto out = zip_unpack(archive);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].data, payload);
}

TEST(Zip, LooksValidProbe) {
  util::Bytes good = zip_pack({{"f", bytes_of("x")}});
  EXPECT_TRUE(zip_looks_valid(good));
  EXPECT_FALSE(zip_looks_valid(bytes_of("short")));
  EXPECT_FALSE(zip_looks_valid(bytes_of("long enough but not a zip archive at all....")));
}

TEST(Zip, EmptyMemberData) {
  auto out = zip_unpack(zip_pack({{"empty", {}}}));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE((*out)[0].data.empty());
}

TEST(Zip, BinaryMemberData) {
  util::Bytes data(512);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i & 0xFF);
  }
  auto out = zip_unpack(zip_pack({{"bin", data}}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ((*out)[0].data, data);
}

TEST(Zip, DeterministicOutput) {
  auto a = zip_pack({{"f", bytes_of("same content")}});
  auto b = zip_pack({{"f", bytes_of("same content")}});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace p2p::files
