// ProgressReporter: throttle mechanics under a fake clock, final-tick
// bypass, JSONL output, human formatting, and the ambient Scope.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/progress.h"
#include "util/sim_time.h"

namespace p2p::obs {
namespace {

using TimePoint = ProgressReporter::TimePoint;

struct FakeClock {
  TimePoint now{};
  ProgressReporter::ClockFn fn() {
    return [this] { return now; };
  }
  void advance(std::chrono::milliseconds d) { now += d; }
};

StudyProgress study_at(std::int64_t sim_ms, bool final = false) {
  StudyProgress p;
  p.network = "limewire";
  p.sim_now = util::SimTime::zero() + util::SimDuration::millis(sim_ms);
  p.sim_end = util::SimTime::zero() + util::SimDuration::days(30);
  p.events_executed = static_cast<std::uint64_t>(sim_ms);
  p.final = final;
  return p;
}

TEST(ObsProgress, DisabledConfigReportsNothing) {
  ProgressConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.human = true;
  EXPECT_TRUE(cfg.enabled());
}

TEST(ObsProgress, FirstTickEmitsThenThrottleSuppresses) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "progress compiled out (P2P_OBS_DISABLED)";
#endif

  FakeClock clock;
  ProgressConfig cfg;
  cfg.human = true;
  cfg.throttle = std::chrono::milliseconds(1000);
  std::ostringstream out;
  ProgressReporter reporter(cfg, &out, clock.fn());

  reporter.study_tick(study_at(1000));
  EXPECT_EQ(reporter.emitted(), 1u);

  clock.advance(std::chrono::milliseconds(100));
  reporter.study_tick(study_at(2000));
  EXPECT_EQ(reporter.emitted(), 1u);
  EXPECT_EQ(reporter.suppressed(), 1u);

  clock.advance(std::chrono::milliseconds(1000));
  reporter.study_tick(study_at(3000));
  EXPECT_EQ(reporter.emitted(), 2u);
  EXPECT_EQ(reporter.suppressed(), 1u);
}

TEST(ObsProgress, FinalTickBypassesThrottle) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "progress compiled out (P2P_OBS_DISABLED)";
#endif

  FakeClock clock;
  ProgressConfig cfg;
  cfg.human = true;
  cfg.throttle = std::chrono::milliseconds(1000);
  std::ostringstream out;
  ProgressReporter reporter(cfg, &out, clock.fn());

  reporter.study_tick(study_at(1000));
  clock.advance(std::chrono::milliseconds(1));
  reporter.study_tick(study_at(2000, /*final=*/true));
  EXPECT_EQ(reporter.emitted(), 2u);
  EXPECT_NE(out.str().find("done"), std::string::npos);
}

TEST(ObsProgress, HumanLineCarriesDayAndCounts) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "progress compiled out (P2P_OBS_DISABLED)";
#endif

  FakeClock clock;
  ProgressConfig cfg;
  cfg.human = true;
  std::ostringstream out;
  ProgressReporter reporter(cfg, &out, clock.fn());

  auto p = study_at(86'400'000);  // day 1 of 30
  p.responses = 123;
  p.degraded = 4;
  reporter.study_tick(p);
  std::string line = out.str();
  EXPECT_NE(line.find("[limewire]"), std::string::npos);
  EXPECT_NE(line.find("day 1.00/30.00"), std::string::npos);
  EXPECT_NE(line.find("responses 123"), std::string::npos);
  EXPECT_NE(line.find("degraded 4"), std::string::npos);
}

TEST(ObsProgress, JsonlFileGetsOneObjectPerUpdate) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "progress compiled out (P2P_OBS_DISABLED)";
#endif

  std::string path = ::testing::TempDir() + "obs_progress_test.jsonl";
  {
    FakeClock clock;
    ProgressConfig cfg;
    cfg.jsonl_path = path;
    cfg.throttle = std::chrono::milliseconds(0);
    ProgressReporter reporter(cfg, nullptr, clock.fn());
    reporter.study_tick(study_at(1000));
    SweepProgress sp;
    sp.done = 2;
    sp.total = 8;
    sp.seed = 42;
    reporter.sweep_tick(sp);
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::remove(path.c_str());

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"type\":\"study\",\"network\":\"limewire\"", 0), 0u);
  EXPECT_EQ(lines[0].back(), '}');
  EXPECT_EQ(lines[1].rfind("{\"type\":\"sweep\",\"done\":2,\"total\":8", 0), 0u);
  EXPECT_NE(lines[1].find("\"seed\":42"), std::string::npos);
}

TEST(ObsProgress, ScopeInstallsAmbientReporterAndNests) {
  EXPECT_EQ(ProgressReporter::current(), nullptr);
  ProgressConfig cfg;
  cfg.human = true;
  std::ostringstream out;
  ProgressReporter outer(cfg, &out);
  {
    ProgressReporter::Scope outer_scope(outer);
    EXPECT_EQ(ProgressReporter::current(), &outer);
    ProgressReporter inner(cfg, &out);
    {
      ProgressReporter::Scope inner_scope(inner);
      EXPECT_EQ(ProgressReporter::current(), &inner);
    }
    EXPECT_EQ(ProgressReporter::current(), &outer);
  }
  EXPECT_EQ(ProgressReporter::current(), nullptr);
}

TEST(ObsProgress, EtaIsNeverNegative) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "progress compiled out (P2P_OBS_DISABLED)";
#endif

  FakeClock clock;
  ProgressConfig cfg;
  std::string path = ::testing::TempDir() + "obs_progress_eta.jsonl";
  cfg.jsonl_path = path;
  cfg.throttle = std::chrono::milliseconds(0);
  {
    ProgressReporter reporter(cfg, nullptr, clock.fn());
    // Zero wall time elapsed: the naive extrapolation is 0/0-ish; the
    // reporter must clamp rather than emit a negative ETA.
    reporter.study_tick(study_at(1000));
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::remove(path.c_str());
  EXPECT_EQ(line.find("\"eta_s\":-"), std::string::npos);
}

}  // namespace
}  // namespace p2p::obs
