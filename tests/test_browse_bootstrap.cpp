// OpenFT browse (host profiling) and the bootstrap confidence interval.
#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "openft/node.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

TEST(Browse, PacketRoundTrips) {
  openft::BrowseResponse resp;
  resp.browse_id = 777;
  resp.md5[3] = 9;
  resp.size = 81'920;
  resp.path = "/shared/gobbler lure.exe";
  auto parsed = openft::parse(openft::serialize(openft::make_packet(resp)));
  ASSERT_TRUE(parsed.has_value());
  const auto& out = std::get<openft::BrowseResponse>(parsed->payload);
  EXPECT_EQ(out.browse_id, 777u);
  EXPECT_EQ(out.md5, resp.md5);
  EXPECT_EQ(out.path, resp.path);

  auto end = openft::parse(openft::serialize(openft::make_packet(
      openft::BrowseEnd{777, 42})));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(std::get<openft::BrowseEnd>(end->payload).total, 42u);
}

TEST(Browse, EnumeratesTargetShares) {
  sim::Network net(808);
  auto cache = std::make_shared<openft::FtHostCache>();

  // Superspreader-style target: one content under many paths.
  auto artifact = std::make_shared<const files::FileContent>("worm.exe",
                                                             util::Bytes(500, 3));
  std::vector<openft::FtShare> shares;
  for (int i = 0; i < 5; ++i) {
    shares.push_back({artifact, "/shared/lure" + std::to_string(i) + ".exe"});
  }
  openft::FtConfig cfg;
  auto target = std::make_unique<openft::FtNode>(cfg, shares, cache, 1);
  sim::HostProfile tp;
  tp.ip = util::Ipv4(60, 0, 0, 1);
  tp.port = 5000;
  net.add_node(std::move(target), tp);

  openft::FtConfig profiler_cfg;
  auto profiler = std::make_unique<openft::FtNode>(
      profiler_cfg, std::vector<openft::FtShare>{}, cache, 2);
  openft::FtNode* profiler_raw = profiler.get();
  sim::HostProfile pp;
  pp.ip = util::Ipv4(60, 0, 0, 2);
  pp.port = 5001;
  net.add_node(std::move(profiler), pp);
  net.events().run_until(SimTime::zero() + SimDuration::seconds(10));

  std::vector<openft::BrowseResponse> results;
  std::vector<std::tuple<std::uint64_t, std::uint32_t, bool>> ends;
  profiler_raw->set_browse_result_callback(
      [&](const openft::BrowseResponse& r) { results.push_back(r); });
  profiler_raw->set_browse_end_callback(
      [&](std::uint64_t id, std::uint32_t total, bool ok) {
        ends.emplace_back(id, total, ok);
      });
  std::uint64_t browse_id = profiler_raw->browse({tp.ip, tp.port});
  net.events().run_until(net.now() + SimDuration::minutes(1));

  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(std::get<0>(ends[0]), browse_id);
  EXPECT_EQ(std::get<1>(ends[0]), 5u);
  EXPECT_TRUE(std::get<2>(ends[0]));
  ASSERT_EQ(results.size(), 5u);
  // All five paths advertise the same content — the single-host,
  // single-content pattern browsing is meant to expose.
  for (const auto& r : results) {
    EXPECT_EQ(r.md5, artifact->md5());
    EXPECT_EQ(r.size, 500u);
  }
}

TEST(Browse, UnreachableTargetFails) {
  sim::Network net(809);
  auto cache = std::make_shared<openft::FtHostCache>();
  openft::FtConfig cfg;
  auto profiler = std::make_unique<openft::FtNode>(
      cfg, std::vector<openft::FtShare>{}, cache, 1);
  openft::FtNode* raw = profiler.get();
  sim::HostProfile pp;
  pp.ip = util::Ipv4(61, 0, 0, 1);
  pp.port = 5001;
  net.add_node(std::move(profiler), pp);
  net.events().run_until(SimTime::zero() + SimDuration::seconds(5));

  std::vector<bool> oks;
  raw->set_browse_end_callback(
      [&](std::uint64_t, std::uint32_t, bool ok) { oks.push_back(ok); });
  raw->browse({util::Ipv4(99, 99, 99, 99), 1234});
  net.events().run_until(net.now() + SimDuration::minutes(1));
  ASSERT_EQ(oks.size(), 1u);
  EXPECT_FALSE(oks[0]);
}

crawler::ResponseRecord day_record(int day, bool infected) {
  crawler::ResponseRecord r;
  r.filename = "x.exe";
  r.type_by_name = files::FileType::kExecutable;
  r.downloaded = true;
  r.infected = infected;
  r.at = util::SimTime::zero() + util::SimDuration::days(day) +
         util::SimDuration::hours(1);
  return r;
}

TEST(Bootstrap, CiBracketsPointEstimate) {
  std::vector<crawler::ResponseRecord> records;
  util::Rng rng(5);
  for (int day = 0; day < 20; ++day) {
    for (int i = 0; i < 100; ++i) {
      records.push_back(day_record(day, rng.chance(0.68)));
    }
  }
  auto ci = analysis::bootstrap_malicious_fraction(records, 500, 3);
  EXPECT_NEAR(ci.point, 0.68, 0.03);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.hi - ci.lo, 0.10);  // 2000 labeled responses: a tight CI
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST(Bootstrap, DeterministicForSeed) {
  std::vector<crawler::ResponseRecord> records;
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < 20; ++i) records.push_back(day_record(day, i % 3 == 0));
  }
  auto a = analysis::bootstrap_malicious_fraction(records, 200, 9);
  auto b = analysis::bootstrap_malicious_fraction(records, 200, 9);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, EmptyInputYieldsZeros) {
  std::vector<crawler::ResponseRecord> none;
  auto ci = analysis::bootstrap_malicious_fraction(none);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

TEST(Bootstrap, WiderWithFewerDays) {
  // Day-to-day variance dominates: two days of data give a wider interval
  // than twenty days with the same per-day volume.
  util::Rng rng(7);
  auto build = [&](int days) {
    std::vector<crawler::ResponseRecord> records;
    for (int day = 0; day < days; ++day) {
      double p = day % 2 ? 0.55 : 0.75;  // alternating daily rates
      for (int i = 0; i < 50; ++i) records.push_back(day_record(day, rng.chance(p)));
    }
    return records;
  };
  auto few = analysis::bootstrap_malicious_fraction(build(2), 500, 11);
  auto many = analysis::bootstrap_malicious_fraction(build(20), 500, 11);
  EXPECT_GT(few.hi - few.lo, many.hi - many.lo);
}

}  // namespace
}  // namespace p2p
