#include "sim/network.h"

#include <gtest/gtest.h>

namespace p2p::sim {
namespace {

/// Records everything that happens to it; optionally refuses connections.
class ProbeNode : public Node {
 public:
  struct Event {
    std::string kind;
    ConnId conn = kInvalidConn;
    NodeId peer = kInvalidNode;
    util::Bytes payload;
  };

  bool accept = true;
  std::vector<Event> events;

  bool accept_connection(NodeId from) override {
    events.push_back({"accept?", kInvalidConn, from, {}});
    return accept;
  }
  void on_connection_open(ConnId conn, NodeId peer, bool initiated) override {
    events.push_back({initiated ? "open-out" : "open-in", conn, peer, {}});
  }
  void on_connection_failed(ConnId conn, NodeId target) override {
    events.push_back({"failed", conn, target, {}});
  }
  void on_message(ConnId conn, const util::Payload& payload) override {
    events.push_back({"msg", conn, kInvalidNode, payload.to_bytes()});
  }
  void on_connection_closed(ConnId conn) override {
    events.push_back({"closed", conn, kInvalidNode, {}});
  }

  [[nodiscard]] int count(const std::string& kind) const {
    int n = 0;
    for (const auto& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
};

struct Fixture {
  Network net{1234};
  ProbeNode* a = nullptr;
  ProbeNode* b = nullptr;
  NodeId a_id = kInvalidNode;
  NodeId b_id = kInvalidNode;

  explicit Fixture(bool b_nat = false) {
    auto na = std::make_unique<ProbeNode>();
    auto nb = std::make_unique<ProbeNode>();
    a = na.get();
    b = nb.get();
    HostProfile pa;
    pa.ip = util::Ipv4(1, 1, 1, 1);
    pa.port = 1000;
    HostProfile pb;
    pb.ip = util::Ipv4(2, 2, 2, 2);
    pb.port = 2000;
    pb.behind_nat = b_nat;
    a_id = net.add_node(std::move(na), pa);
    b_id = net.add_node(std::move(nb), pb);
  }
};

TEST(Network, ConnectDeliversOpenOnBothSides) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  EXPECT_EQ(f.b->count("open-in"), 1);
  EXPECT_EQ(f.a->count("open-out"), 1);
  EXPECT_TRUE(f.net.connection_open(c));
  EXPECT_EQ(f.net.peer_of(c, f.a_id), f.b_id);
  EXPECT_EQ(f.net.peer_of(c, f.b_id), f.a_id);
}

TEST(Network, ConnectToNatTargetFails) {
  Fixture f(/*b_nat=*/true);
  f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  EXPECT_EQ(f.a->count("failed"), 1);
  EXPECT_EQ(f.b->count("open-in"), 0);
}

TEST(Network, NatNodeCanInitiate) {
  Fixture f(/*b_nat=*/true);
  f.net.connect(f.b_id, f.a_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  EXPECT_EQ(f.b->count("open-out"), 1);
  EXPECT_EQ(f.a->count("open-in"), 1);
}

TEST(Network, RefusedConnectionFails) {
  Fixture f;
  f.b->accept = false;
  f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  EXPECT_EQ(f.a->count("failed"), 1);
  EXPECT_EQ(f.b->count("open-in"), 0);
}

TEST(Network, MessagesArriveInOrder) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  f.net.send(c, f.a_id, {1});
  f.net.send(c, f.a_id, {2});
  f.net.send(c, f.a_id, {3});
  f.net.events().run_until(SimTime::at_millis(60'000));
  ASSERT_EQ(f.b->count("msg"), 3);
  std::vector<std::uint8_t> seen;
  for (const auto& e : f.b->events) {
    if (e.kind == "msg") seen.push_back(e.payload[0]);
  }
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Network, LargerMessagesTakeLonger) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  SimTime start = f.net.now();

  util::Bytes big(48'000);  // one second at the default 48 kB/s uplink
  f.net.send(c, f.a_id, std::move(big));
  f.net.events().run_until(start + SimDuration::millis(500));
  EXPECT_EQ(f.b->count("msg"), 0);  // still in transfer
  f.net.events().run_until(start + SimDuration::seconds(5));
  EXPECT_EQ(f.b->count("msg"), 1);
}

TEST(Network, SendsSerializePerDirection) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  SimTime start = f.net.now();
  // Two 1-second transfers back to back: second arrives ~2s after start.
  f.net.send(c, f.a_id, util::Bytes(48'000));
  f.net.send(c, f.a_id, util::Bytes(48'000));
  f.net.events().run_until(start + SimDuration::millis(1'600));
  EXPECT_EQ(f.b->count("msg"), 1);
  f.net.events().run_until(start + SimDuration::seconds(6));
  EXPECT_EQ(f.b->count("msg"), 2);
}

TEST(Network, CloseNotifiesPeerAndStopsNewSends) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  f.net.close(c, f.a_id);
  EXPECT_FALSE(f.net.connection_open(c));
  f.net.send(c, f.a_id, {1});  // dropped silently
  f.net.events().run_until(SimTime::at_millis(60'000));
  EXPECT_EQ(f.b->count("closed"), 1);
  EXPECT_EQ(f.b->count("msg"), 0);
}

TEST(Network, InFlightMessageSurvivesClose) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  f.net.send(c, f.a_id, {42});
  f.net.close(c, f.a_id);  // close races the in-flight byte
  f.net.events().run_until(SimTime::at_millis(60'000));
  EXPECT_EQ(f.b->count("msg"), 1);
}

TEST(Network, RemoveNodeClosesConnectionsAndDropsDeliveries) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  f.net.send(c, f.b_id, {7});
  f.net.remove_node(f.a_id);
  EXPECT_FALSE(f.net.alive(f.a_id));
  EXPECT_EQ(f.net.node_count(), 1u);
  f.net.events().run_until(SimTime::at_millis(60'000));
  // a is gone (its node object was destroyed); b is notified of the close.
  EXPECT_EQ(f.b->count("closed"), 1);
}

TEST(Network, LookupFindsPublicListeners) {
  Fixture f(/*b_nat=*/true);
  auto found = f.net.lookup(util::Endpoint{util::Ipv4(1, 1, 1, 1), 1000});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f.a_id);
  // NATed nodes are not reachable by endpoint.
  EXPECT_FALSE(f.net.lookup(util::Endpoint{util::Ipv4(2, 2, 2, 2), 2000}).has_value());
  // Unknown endpoint.
  EXPECT_FALSE(f.net.lookup(util::Endpoint{util::Ipv4(9, 9, 9, 9), 1}).has_value());
}

TEST(Network, LookupForgetsRemovedNodes) {
  Fixture f;
  f.net.remove_node(f.a_id);
  EXPECT_FALSE(f.net.lookup(util::Endpoint{util::Ipv4(1, 1, 1, 1), 1000}).has_value());
}

TEST(Network, ScheduleNodeSkipsRemoved) {
  Fixture f;
  int fired = 0;
  f.net.schedule_node(f.a_id, SimDuration::seconds(1), [&] { ++fired; });
  f.net.remove_node(f.a_id);
  f.net.events().run_until(SimTime::at_millis(60'000));
  EXPECT_EQ(fired, 0);
}

TEST(Network, ScheduleNodeFiresForLiveNode) {
  Fixture f;
  int fired = 0;
  f.net.schedule_node(f.a_id, SimDuration::seconds(1), [&] { ++fired; });
  f.net.events().run_until(SimTime::at_millis(60'000));
  EXPECT_EQ(fired, 1);
}

TEST(Network, StatsCountDeliveries) {
  Fixture f;
  ConnId c = f.net.connect(f.a_id, f.b_id);
  f.net.events().run_until(SimTime::at_millis(10'000));
  f.net.send(c, f.a_id, {1, 2, 3});
  f.net.events().run_until(SimTime::at_millis(60'000));
  EXPECT_EQ(f.net.messages_delivered(), 1u);
  EXPECT_EQ(f.net.bytes_delivered(), 3u);
}

}  // namespace
}  // namespace p2p::sim
