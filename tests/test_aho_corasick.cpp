#include "malware/aho_corasick.h"

#include <gtest/gtest.h>

namespace p2p::malware {
namespace {

util::Bytes bytes_of(std::string_view s) { return util::Bytes(s.begin(), s.end()); }

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("needle"));
  ac.build();
  auto text = bytes_of("hay needle stack");
  auto matches = ac.find_all(text);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern, 0u);
  EXPECT_EQ(matches[0].end, 10u);  // "hay needle" = 10 chars
}

TEST(AhoCorasick, FindsMultiplePatterns) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("he"));
  ac.add_pattern(bytes_of("she"));
  ac.add_pattern(bytes_of("his"));
  ac.add_pattern(bytes_of("hers"));
  ac.build();
  auto matches = ac.find_all(bytes_of("ushers"));
  // "ushers" contains "she" (end 4), "he" (end 4), "hers" (end 6).
  ASSERT_EQ(matches.size(), 3u);
  std::set<std::size_t> found;
  for (const auto& m : matches) found.insert(m.pattern);
  EXPECT_TRUE(found.contains(0));  // he
  EXPECT_TRUE(found.contains(1));  // she
  EXPECT_TRUE(found.contains(3));  // hers
  EXPECT_FALSE(found.contains(2));  // his
}

TEST(AhoCorasick, OverlappingOccurrences) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("aa"));
  ac.build();
  auto matches = ac.find_all(bytes_of("aaaa"));
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasick, DuplicatePatternReportsBoth) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("x"));
  ac.add_pattern(bytes_of("x"));
  ac.build();
  auto matches = ac.find_all(bytes_of("x"));
  EXPECT_EQ(matches.size(), 2u);
}

TEST(AhoCorasick, ContainsAnyShortCircuits) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("virus"));
  ac.build();
  EXPECT_TRUE(ac.contains_any(bytes_of("this file has a virus inside")));
  EXPECT_FALSE(ac.contains_any(bytes_of("perfectly clean content")));
  EXPECT_FALSE(ac.contains_any({}));
}

TEST(AhoCorasick, FindDistinctDeduplicates) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("ab"));
  ac.add_pattern(bytes_of("cd"));
  ac.build();
  auto distinct = ac.find_distinct(bytes_of("ab ab cd ab"));
  ASSERT_EQ(distinct.size(), 2u);
  EXPECT_EQ(distinct[0], 0u);  // discovery order
  EXPECT_EQ(distinct[1], 1u);
}

TEST(AhoCorasick, BinaryPatterns) {
  AhoCorasick ac;
  util::Bytes sig = {0xEB, 0xFE, 0x00, 0xFF, 0x13};
  ac.add_pattern(sig);
  ac.build();
  util::Bytes text(100, 0x41);
  EXPECT_FALSE(ac.contains_any(text));
  text.insert(text.begin() + 50, sig.begin(), sig.end());
  EXPECT_TRUE(ac.contains_any(text));
}

TEST(AhoCorasick, PatternAtStartAndEnd) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("start"));
  ac.add_pattern(bytes_of("end"));
  ac.build();
  auto matches = ac.find_all(bytes_of("start middle end"));
  EXPECT_EQ(matches.size(), 2u);
}

TEST(AhoCorasick, PatternLongerThanText) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("very long pattern"));
  ac.build();
  EXPECT_FALSE(ac.contains_any(bytes_of("short")));
}

TEST(AhoCorasick, PrefixPatterns) {
  AhoCorasick ac;
  ac.add_pattern(bytes_of("abc"));
  ac.add_pattern(bytes_of("abcdef"));
  ac.build();
  auto distinct = ac.find_distinct(bytes_of("abcdef"));
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(AhoCorasick, UsageErrors) {
  AhoCorasick ac;
  EXPECT_THROW(ac.add_pattern({}), std::invalid_argument);
  EXPECT_THROW((void)ac.find_all(bytes_of("x")), std::logic_error);  // not built
  ac.add_pattern(bytes_of("p"));
  ac.build();
  EXPECT_THROW(ac.build(), std::logic_error);                      // double build
  EXPECT_THROW(ac.add_pattern(bytes_of("q")), std::logic_error);   // add after build
}

// Property: every pattern planted at a random offset is found.
class PlantedPattern : public ::testing::TestWithParam<int> {};

TEST_P(PlantedPattern, Found) {
  int n_patterns = GetParam();
  AhoCorasick ac;
  std::vector<util::Bytes> patterns;
  for (int p = 0; p < n_patterns; ++p) {
    util::Bytes pat(8);
    for (int i = 0; i < 8; ++i) {
      pat[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(0x80 + p * 13 + i * 7);
    }
    ac.add_pattern(pat);
    patterns.push_back(std::move(pat));
  }
  ac.build();
  util::Bytes text(2000, 0x20);
  for (int p = 0; p < n_patterns; ++p) {
    std::size_t offset = static_cast<std::size_t>(100 + p * 150);
    std::copy(patterns[static_cast<std::size_t>(p)].begin(),
              patterns[static_cast<std::size_t>(p)].end(),
              text.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  auto distinct = ac.find_distinct(text);
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(n_patterns));
}

INSTANTIATE_TEST_SUITE_P(PatternCounts, PlantedPattern, ::testing::Values(1, 2, 5, 12));

}  // namespace
}  // namespace p2p::malware
