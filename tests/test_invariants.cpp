// Cross-cutting invariants: random operation sequences against the
// executors and the simulator must never crash or corrupt state, and a
// full study's response log must be internally consistent. The executor
// op-fuzz and the study consistency suite run parametrically against both
// engines (serial EventQueue and ShardedEngine) through the shared
// sim::Engine contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/stats.h"
#include "core/study.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/sharded_engine.h"
#include "util/rng.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Executor op-fuzz (parametric over engines)
// ---------------------------------------------------------------------------

enum class EngineKind { kSerial, kSharded1, kSharded4 };

std::unique_ptr<sim::Engine> make_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSerial:
      return std::make_unique<sim::EventQueue>();
    case EngineKind::kSharded1:
      return std::make_unique<sim::ShardedEngine>(sim::ShardedEngine::Config{1});
    case EngineKind::kSharded4:
      return std::make_unique<sim::ShardedEngine>(sim::ShardedEngine::Config{4});
  }
  return nullptr;
}

class EngineOpFuzz
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::uint64_t>> {};

TEST_P(EngineOpFuzz, RandomScheduleRunSequencesKeepAccountingConsistent) {
  auto [kind, seed] = GetParam();
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  auto engine = make_engine(kind);
  std::uint64_t scheduled = 0;
  std::uint64_t handler_fired = 0;

  for (int op = 0; op < 300; ++op) {
    switch (rng.index(4)) {
      case 0: {  // burst of schedules, some re-entrant
        std::uint64_t n = rng.bounded(12);
        for (std::uint64_t i = 0; i < n; ++i) {
          SimTime at = engine->now() +
                       SimDuration::millis(static_cast<std::int64_t>(rng.bounded(500)));
          bool chain = rng.chance(0.25);
          auto* eng = engine.get();
          ++scheduled;
          engine->schedule_at(at, [&handler_fired, &scheduled, eng, chain] {
            ++handler_fired;
            if (chain) {
              ++scheduled;
              eng->schedule_in(SimDuration::millis(7),
                               [&handler_fired] { ++handler_fired; });
            }
          });
        }
        break;
      }
      case 1:  // partial drain
        engine->run_until(engine->now() + SimDuration::millis(
                                              static_cast<std::int64_t>(rng.bounded(300))));
        break;
      case 2:  // zero-width window (clock stays put, nothing lost)
        engine->run_until(engine->now());
        break;
      default: {  // clock-driven invariants hold mid-stream
        EXPECT_EQ(engine->executed() + engine->pending(), scheduled);
        EXPECT_EQ(engine->empty(), engine->pending() == 0);
        break;
      }
    }
    // now() never runs backwards and executed() is monotone by construction;
    // the accounting identity is re-checked after every op.
    ASSERT_LE(engine->executed(), scheduled);
  }

  engine->run_all();
  EXPECT_TRUE(engine->empty());
  EXPECT_EQ(engine->pending(), 0u);
  EXPECT_EQ(engine->executed(), scheduled);
  EXPECT_EQ(handler_fired, scheduled);
}

std::string engine_case_name(
    const ::testing::TestParamInfo<std::tuple<EngineKind, std::uint64_t>>&
        info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case EngineKind::kSerial: name = "EventQueue"; break;
    case EngineKind::kSharded1: name = "Sharded1"; break;
    case EngineKind::kSharded4: name = "Sharded4"; break;
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Executors, EngineOpFuzz,
    ::testing::Combine(::testing::Values(EngineKind::kSerial,
                                         EngineKind::kSharded1,
                                         EngineKind::kSharded4),
                       ::testing::Range<std::uint64_t>(1, 5)),
    engine_case_name);

/// Minimal node that talks back occasionally.
class ChattyNode : public sim::Node {
 public:
  explicit ChattyNode(std::uint64_t seed) : rng_(seed) {}
  void on_message(sim::ConnId conn, const util::Payload& payload) override {
    ++received_;
    if (rng_.chance(0.3) && !payload.empty()) {
      network().send(conn, id(), {payload[0]});
    }
  }
  std::uint64_t received_ = 0;

 private:
  util::Rng rng_;
};

class SimulatorOpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorOpFuzz, RandomOperationSequencesAreSafe) {
  util::Rng rng(GetParam());
  sim::Network net(GetParam() ^ 0x51u);

  std::vector<sim::NodeId> nodes;
  std::vector<sim::ConnId> conns;
  for (int i = 0; i < 10; ++i) {
    sim::HostProfile profile;
    profile.ip = util::Ipv4(70, 0, 0, static_cast<std::uint8_t>(i + 1));
    profile.port = 1000;
    profile.behind_nat = rng.chance(0.3);
    nodes.push_back(net.add_node(std::make_unique<ChattyNode>(rng.next()), profile));
  }

  for (int op = 0; op < 400; ++op) {
    switch (rng.index(5)) {
      case 0: {  // connect two random nodes
        sim::NodeId a = nodes[rng.index(nodes.size())];
        sim::NodeId b = nodes[rng.index(nodes.size())];
        if (a != b && net.alive(a)) conns.push_back(net.connect(a, b));
        break;
      }
      case 1: {  // send on a random connection from a random side
        if (conns.empty()) break;
        sim::ConnId c = conns[rng.index(conns.size())];
        sim::NodeId sender = nodes[rng.index(nodes.size())];
        if (net.peer_of(c, sender) != sim::kInvalidNode && net.connection_open(c)) {
          util::Bytes payload(rng.index(100) + 1);
          rng.fill(payload);
          net.send(c, sender, std::move(payload));
        }
        break;
      }
      case 2: {  // close a random connection
        if (conns.empty()) break;
        sim::ConnId c = conns[rng.index(conns.size())];
        sim::NodeId closer = nodes[rng.index(nodes.size())];
        if (net.peer_of(c, closer) != sim::kInvalidNode) net.close(c, closer);
        break;
      }
      case 3: {  // remove a node (rarely), keeping at least half alive
        if (net.node_count() > 5 && rng.chance(0.2)) {
          net.remove_node(nodes[rng.index(nodes.size())]);
        }
        break;
      }
      default:  // let time pass
        net.events().run_until(net.now() + SimDuration::seconds(
                                               static_cast<std::int64_t>(rng.index(30))));
        break;
    }
  }
  net.events().run_until(net.now() + SimDuration::minutes(10));

  // Structural invariants after the storm.
  std::size_t alive = 0;
  for (sim::NodeId id : nodes) {
    if (net.alive(id)) ++alive;
  }
  EXPECT_EQ(alive, net.node_count());
  EXPECT_GE(net.node_count(), 5u);
  for (sim::ConnId c : conns) {
    if (net.connection_open(c)) {
      // Open connections connect two currently-alive nodes.
      bool found_owner = false;
      for (sim::NodeId id : nodes) {
        if (net.peer_of(c, id) != sim::kInvalidNode && net.alive(id)) {
          found_owner = true;
          break;
        }
      }
      EXPECT_TRUE(found_owner);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOpFuzz, ::testing::Range<std::uint64_t>(1, 9));

// Parametric over the executor: shards=0 is the legacy serial study,
// shards=1 the sharded model's serial baseline, shards=4 the parallel
// engine — all under the same consistency checks.
class StudyInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StudyInvariants, ResponseLogIsInternallyConsistent) {
  auto cfg = core::limewire_quick();
  cfg.shards = GetParam();
  cfg.population.ultrapeers = 6;
  cfg.population.leaves = 80;
  cfg.population.corpus.num_titles = 300;
  cfg.crawl.duration = SimDuration::hours(3);
  cfg.crawl.query_interval = SimDuration::seconds(120);
  auto result = core::run_limewire_study(cfg);
  ASSERT_GT(result.records.size(), 100u);

  std::map<std::string, bool> label_by_content;
  std::map<std::string, std::string> strain_by_content;
  for (const auto& r : result.records) {
    // Ids are unique and dense from 1.
    // Times lie within the crawl window.
    EXPECT_GE(r.at.millis(), 0);
    EXPECT_LE(r.at, SimTime::zero() + cfg.crawl.warmup + cfg.crawl.duration +
                        SimDuration::minutes(10));
    // Network tag is uniform.
    EXPECT_EQ(r.network, "limewire");
    // Downloaded implies attempted; infected implies downloaded + named strain.
    if (r.downloaded) {
      EXPECT_TRUE(r.download_attempted);
    }
    if (r.infected) {
      EXPECT_TRUE(r.downloaded);
      EXPECT_FALSE(r.strain_name.empty());
    }
    // The same content hash always carries the same verdict and strain.
    if (r.downloaded) {
      auto [it, inserted] = label_by_content.emplace(r.content_key, r.infected);
      if (!inserted) {
        EXPECT_EQ(it->second, r.infected) << r.content_key;
      }
      auto [it2, inserted2] = strain_by_content.emplace(r.content_key, r.strain_name);
      if (!inserted2) {
        EXPECT_EQ(it2->second, r.strain_name) << r.content_key;
      }
    }
    // Non-study types are never labeled.
    if (!r.is_study_type()) {
      EXPECT_FALSE(r.download_attempted);
      EXPECT_FALSE(r.infected);
    }
  }

  // Prevalence identities.
  auto s = analysis::prevalence(result.records);
  EXPECT_EQ(s.exe_labeled + s.archive_labeled, s.labeled);
  EXPECT_EQ(s.exe_infected + s.archive_infected, s.infected);
  EXPECT_LE(s.infected, s.labeled);
  EXPECT_LE(s.labeled, s.study_responses);
  EXPECT_LE(s.study_responses, s.total_responses);

  // Strain shares sum to 1 over malicious responses.
  auto ranking = analysis::strain_ranking(result.records);
  double share_sum = 0;
  std::uint64_t response_sum = 0;
  for (const auto& r : ranking) {
    share_sum += r.share;
    response_sum += r.responses;
  }
  if (!ranking.empty()) {
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    EXPECT_EQ(response_sum, s.infected);
  }

  // Source classes partition malicious responses.
  auto src = analysis::sources(result.records);
  std::uint64_t class_sum = 0;
  for (const auto& [klass, count] : src.by_class) class_sum += count;
  EXPECT_EQ(class_sum, src.malicious_responses);
  EXPECT_EQ(src.malicious_responses, s.infected);

  // Daily bins partition the log.
  auto days = analysis::daily_series(result.records);
  std::uint64_t day_total = 0, day_infected = 0;
  for (const auto& d : days) {
    day_total += d.responses;
    day_infected += d.infected;
  }
  EXPECT_EQ(day_total, s.total_responses);
  EXPECT_EQ(day_infected, s.infected);
}

INSTANTIATE_TEST_SUITE_P(Shards, StudyInvariants,
                         ::testing::Values(0u, 1u, 4u),
                         [](const auto& info) {
                           return info.param == 0
                                      ? std::string("Legacy")
                                      : "Shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace p2p
