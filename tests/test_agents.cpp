// Behaviour, population-builder, and churn tests.
#include <gtest/gtest.h>

#include "agents/behavior.h"
#include "agents/churn.h"
#include "agents/population.h"
#include "malware/scanner.h"

namespace p2p::agents {
namespace {

using sim::SimDuration;

TEST(EchoFilename, EchoesQueryKeywords) {
  EXPECT_EQ(echo_filename("Blue Horizon!", "worm.exe"), "blue horizon.exe");
  EXPECT_EQ(echo_filename("photomax keygen", "pack.zip"), "photomax keygen.zip");
  EXPECT_EQ(echo_filename("", "worm.exe"), "download.exe");
  EXPECT_EQ(echo_filename("x", "noext"), "download.exe");
}

malware::CalibratedCatalog small_catalog() { return malware::limewire_catalog(); }

TEST(InfectedAnswerer, AnswersEveryQueryWithEcho) {
  auto cat = small_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  InfectedAnswerer answerer(store, {0}, gnutella::SharedFileIndex{}, 9);

  auto r1 = answerer.answer("some random query");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].filename, "some random query.exe");
  auto r2 = answerer.answer("another thing entirely");
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].filename, "another thing entirely.exe");
  // Different indices, same (or variant) payloads of the strain.
  EXPECT_NE(r1[0].index, r2[0].index);
}

TEST(InfectedAnswerer, ResolvedBytesScanAsStrain) {
  auto cat = small_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  malware::Scanner scanner(cat.strains);
  InfectedAnswerer answerer(store, {1}, gnutella::SharedFileIndex{}, 9);

  auto results = answerer.answer("bait query");
  ASSERT_EQ(results.size(), 1u);
  auto content = answerer.resolve(results[0].index);
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(content->size(), results[0].size);
  EXPECT_EQ(content->sha1(), results[0].sha1);
  auto scan = scanner.scan(content->bytes());
  ASSERT_TRUE(scan.infected());
  EXPECT_EQ(scan.primary(), 1u);
}

TEST(InfectedAnswerer, IncludesHonestShares) {
  auto cat = small_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  gnutella::SharedFileIndex index;
  index.add(std::make_shared<const files::FileContent>("legit song.mp3",
                                                       util::Bytes(100, 1)));
  InfectedAnswerer answerer(store, {0}, std::move(index), 9);
  auto results = answerer.answer("legit song");
  // Honest match + worm echo.
  EXPECT_EQ(results.size(), 2u);
}

TEST(InfectedAnswerer, QrtIsAllOnes) {
  auto cat = small_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  InfectedAnswerer answerer(store, {0}, gnutella::SharedFileIndex{}, 9);
  gnutella::QueryRouteTable qrt(13);
  answerer.populate_qrt(qrt);
  EXPECT_DOUBLE_EQ(qrt.fill_ratio(), 1.0);
}

TEST(InfectedAnswerer, UnknownIndexResolvesNull) {
  auto cat = small_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  InfectedAnswerer answerer(store, {0}, gnutella::SharedFileIndex{}, 9);
  EXPECT_EQ(answerer.resolve(123'456'789), nullptr);
}

TEST(IpAllocator, PublicAddressesUniqueAndPublic) {
  IpAllocator alloc(3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    util::Ipv4 ip = alloc.next_public();
    EXPECT_TRUE(ip.is_publicly_routable());
    EXPECT_TRUE(seen.insert(ip.value()).second);
  }
}

TEST(IpAllocator, PrivateAddressesAreRfc1918) {
  IpAllocator alloc(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(alloc.random_private().is_private());
  }
}

TEST(LureQueries, DerivedFromCatalogLures) {
  auto queries = lure_queries_for(malware::limewire_catalog());
  EXPECT_FALSE(queries.empty());
  // "screensaver_pack.exe" -> "screensaver pack exe".
  bool found = false;
  for (const auto& q : queries) {
    if (q.find("screensaver") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

GnutellaPopulationConfig small_gnutella_config() {
  GnutellaPopulationConfig cfg;
  cfg.seed = 77;
  cfg.ultrapeers = 4;
  cfg.leaves = 60;
  cfg.infected_fraction = 0.25;
  cfg.corpus.num_titles = 200;
  return cfg;
}

TEST(GnutellaPopulation, BuildsExpectedStructure) {
  sim::Network net(1);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  EXPECT_EQ(pop.ultrapeer_ids.size(), 4u);
  EXPECT_EQ(pop.leaf_specs.size(), 60u);
  EXPECT_EQ(pop.host_cache->size(), 4u);
  EXPECT_FALSE(pop.lure_queries.empty());
  EXPECT_EQ(net.node_count(), 4u);  // only ultrapeers added eagerly
}

TEST(GnutellaPopulation, InfectedFractionApproximate) {
  sim::Network net(1);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  int infected = 0;
  for (const auto& spec : pop.leaf_specs) {
    if (spec.infected) ++infected;
  }
  EXPECT_NEAR(static_cast<double>(infected) / 60.0, 0.25, 0.15);
}

TEST(GnutellaPopulation, SpecsProduceWorkingNodes) {
  sim::Network net(1);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  // Instantiate a few leaves twice (churn behaviour) — must not throw and
  // must produce distinct node objects.
  auto n1 = pop.leaf_specs[0].make();
  auto n2 = pop.leaf_specs[0].make();
  EXPECT_NE(n1.get(), n2.get());
}

TEST(GnutellaPopulation, InfectedSpecsCarryStrain) {
  sim::Network net(1);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  for (const auto& spec : pop.leaf_specs) {
    if (spec.infected) {
      EXPECT_NE(spec.strain, malware::kCleanStrain);
    } else {
      EXPECT_EQ(spec.strain, malware::kCleanStrain);
    }
  }
}

OpenFtPopulationConfig small_openft_config() {
  OpenFtPopulationConfig cfg;
  cfg.seed = 78;
  cfg.search_nodes = 3;
  cfg.users = 40;
  cfg.infected_fraction = 0.2;
  cfg.corpus.num_titles = 200;
  return cfg;
}

TEST(OpenFtPopulation, BuildsExpectedStructure) {
  sim::Network net(1);
  auto pop = build_openft_population(net, small_openft_config());
  EXPECT_EQ(pop.search_node_ids.size(), 3u);
  EXPECT_EQ(pop.user_specs.size(), 40u);
  EXPECT_LT(pop.superspreader_index, pop.user_specs.size());
}

TEST(OpenFtPopulation, SuperspreaderHasHeadStrainAndIsPublic) {
  sim::Network net(1);
  auto pop = build_openft_population(net, small_openft_config());
  const auto& ss = pop.user_specs[pop.superspreader_index];
  EXPECT_TRUE(ss.infected);
  EXPECT_EQ(ss.strain, pop.strain_catalog.strains.front().id);
  EXPECT_FALSE(ss.profile.behind_nat);
}

TEST(OpenFtPopulation, DisabledSuperspreader) {
  sim::Network net(1);
  auto cfg = small_openft_config();
  cfg.enable_superspreader = false;
  auto pop = build_openft_population(net, cfg);
  EXPECT_EQ(pop.superspreader_index, static_cast<std::size_t>(-1));
}

TEST(ChurnDriver, PeersJoinAndLeave) {
  sim::Network net(5);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  ChurnConfig churn_cfg;
  churn_cfg.mean_session = SimDuration::minutes(30);
  churn_cfg.mean_offline = SimDuration::minutes(30);
  churn_cfg.seed = 11;
  ChurnDriver churn(net, pop.leaf_specs, churn_cfg);
  churn.start();
  net.events().run_until(sim::SimTime::zero() + SimDuration::hours(6));
  EXPECT_GT(churn.joins(), pop.leaf_specs.size());  // rejoin cycles happened
  EXPECT_GT(churn.leaves(), 0u);
  // Stationary occupancy about half.
  EXPECT_NEAR(static_cast<double>(churn.online_count()) / 60.0, 0.5, 0.3);
}

TEST(ChurnDriver, NodeOfTracksLiveness) {
  sim::Network net(5);
  auto pop = build_gnutella_population(net, small_gnutella_config());
  ChurnConfig churn_cfg;
  churn_cfg.initial_online_override = 1.0;
  churn_cfg.seed = 12;
  ChurnDriver churn(net, pop.leaf_specs, churn_cfg);
  churn.start();
  net.events().run_until(sim::SimTime::zero() + SimDuration::minutes(2));
  std::size_t online = 0;
  for (std::size_t i = 0; i < pop.leaf_specs.size(); ++i) {
    sim::NodeId id = churn.node_of(i);
    if (id != sim::kInvalidNode) {
      EXPECT_TRUE(net.alive(id));
      ++online;
    }
  }
  EXPECT_EQ(online, churn.online_count());
  EXPECT_EQ(online, pop.leaf_specs.size());  // everyone started online
}

}  // namespace
}  // namespace p2p::agents
