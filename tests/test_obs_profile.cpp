// Span profiler: nesting depths, per-thread bounded buffers with drop
// accounting, thread isolation, and the Chrome trace-event export shape.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "obs/profile.h"

namespace p2p::obs {
namespace {

// The profiler is a process-global; each test claims it fresh and leaves
// it disabled.
class ObsProfile : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef P2P_OBS_DISABLED
    GTEST_SKIP() << "spans compiled out (P2P_OBS_DISABLED)";
#endif
    SpanProfiler::global().reset();
  }
  void TearDown() override { SpanProfiler::global().disable(); }
};

std::string chrome_json() {
  std::ostringstream out;
  SpanProfiler::global().write_chrome_trace(out);
  return out.str();
}

TEST_F(ObsProfile, DisabledProfilerRecordsNothing) {
  SpanProfiler::global().disable();
  {
    OBS_SPAN("ignored");
  }
  EXPECT_EQ(SpanProfiler::global().total_spans(), 0u);
}

TEST_F(ObsProfile, NestedSpansRecordDepths) {
  SpanProfiler::global().enable();
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("middle");
      { OBS_SPAN("inner"); }
    }
  }
  EXPECT_EQ(SpanProfiler::global().total_spans(), 3u);

  std::string json = chrome_json();
  // Spans close innermost-first; args carry the nesting depth.
  auto inner = json.find("\"inner\"");
  auto middle = json.find("\"middle\"");
  auto outer = json.find("\"outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(middle, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(inner, middle);
  EXPECT_LT(middle, outer);
  EXPECT_NE(json.find("\"depth\":2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
}

TEST_F(ObsProfile, OverflowDropsBeyondPerThreadBound) {
  SpanProfiler::global().enable(/*max_spans_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("tight");
  }
  EXPECT_EQ(SpanProfiler::global().total_spans(), 4u);
  EXPECT_EQ(SpanProfiler::global().total_dropped(), 6u);
}

TEST_F(ObsProfile, ThreadsGetIsolatedBuffers) {
  SpanProfiler::global().enable(/*max_spans_per_thread=*/2);
  auto worker = [] {
    // Each thread stays under its own bound; nothing is dropped even
    // though the combined count exceeds one buffer.
    OBS_SPAN("thread_a");
    OBS_SPAN("thread_b");
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(SpanProfiler::global().total_spans(), 4u);
  EXPECT_EQ(SpanProfiler::global().total_dropped(), 0u);

  // Two distinct tids in the export.
  std::string json = chrome_json();
  auto first_tid = json.find("\"tid\":");
  ASSERT_NE(first_tid, std::string::npos);
  std::string tid_token = json.substr(first_tid, json.find(',', first_tid) - first_tid);
  bool two_tids = false;
  for (auto pos = json.find("\"tid\":"); pos != std::string::npos;
       pos = json.find("\"tid\":", pos + 1)) {
    if (json.compare(pos, tid_token.size(), tid_token) != 0) two_tids = true;
  }
  EXPECT_TRUE(two_tids);
}

TEST_F(ObsProfile, ChromeTraceShape) {
  SpanProfiler::global().enable();
  { OBS_SPAN("shape_check"); }
  std::string json = chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"p2p\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(ObsProfile, ResetClearsSpansAndCounts) {
  SpanProfiler::global().enable();
  { OBS_SPAN("gone"); }
  EXPECT_EQ(SpanProfiler::global().total_spans(), 1u);
  SpanProfiler::global().reset();
  EXPECT_EQ(SpanProfiler::global().total_spans(), 0u);
  EXPECT_EQ(SpanProfiler::global().total_dropped(), 0u);
  EXPECT_EQ(chrome_json().find("\"gone\""), std::string::npos);
}

}  // namespace
}  // namespace p2p::obs
