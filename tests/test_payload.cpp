#include "util/payload.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace p2p::util {
namespace {

Bytes some_bytes() { return Bytes{0x01, 0x02, 0x03, 0x04, 0x05}; }

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.use_count(), 0u);
}

TEST(Payload, AdoptsVectorWithoutChangingBytes) {
  Bytes src = some_bytes();
  const std::uint8_t* data = src.data();
  Payload p{std::move(src)};
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.data(), data);  // adopted, not copied
  EXPECT_EQ(p[0], 0x01);
  EXPECT_EQ(p[4], 0x05);
  EXPECT_EQ(p.use_count(), 1u);
}

TEST(Payload, EmptyVectorMakesNoRep) {
  Payload p{Bytes{}};
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.use_count(), 0u);
}

TEST(Payload, CopiesAliasTheSameBuffer) {
  Payload a{some_bytes()};
  Payload b = a;
  Payload c = b;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.data(), c.data());
  EXPECT_EQ(a.use_count(), 3u);
  c = Payload{};
  EXPECT_EQ(a.use_count(), 2u);
}

TEST(Payload, MoveStealsWithoutRefcountTraffic) {
  Payload a{some_bytes()};
  const std::uint8_t* data = a.data();
  Payload b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.use_count(), 1u);
}

TEST(Payload, SelfAssignmentIsSafe) {
  Payload a{some_bytes()};
  Payload& alias = a;
  a = alias;
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(a.size(), 5u);
}

TEST(Payload, CopyAssignBetweenAliasesKeepsBufferAlive) {
  Payload a{some_bytes()};
  Payload b = a;
  b = a;  // same rep on both sides
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.data(), b.data());
}

TEST(Payload, MutateUniqueWritesInPlace) {
  Payload a{some_bytes()};
  const std::uint8_t* before = a.data();
  auto view = a.mutate();
  view[0] = 0xff;
  EXPECT_EQ(a.data(), before);  // sole owner: no clone
  EXPECT_EQ(a[0], 0xff);
}

TEST(Payload, MutateSharedClonesAndLeavesSiblingsUntouched) {
  Payload a{some_bytes()};
  Payload b = a;
  Payload dup = a;  // the fault-duplicate shares too
  auto view = a.mutate();
  view[0] = 0xee;
  EXPECT_EQ(a[0], 0xee);
  EXPECT_EQ(b[0], 0x01);    // broadcast sibling unchanged
  EXPECT_EQ(dup[0], 0x01);  // duplicate delivery unchanged
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(b.use_count(), 2u);
}

TEST(Payload, SpanAndIterationSeeTheBytes) {
  Payload p{some_bytes()};
  std::span<const std::uint8_t> s = p;  // implicit, as parsers receive it
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[2], 0x03);
  Bytes round(p.begin(), p.end());
  EXPECT_EQ(round, some_bytes());
  EXPECT_EQ(p.to_bytes(), some_bytes());
}

TEST(Payload, EqualityComparesBytesAcrossDistinctBuffers) {
  Payload a{some_bytes()};
  Payload b{some_bytes()};
  Payload c{Bytes{9, 9}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  Payload alias = a;
  EXPECT_TRUE(a == alias);  // rep shortcut
}

TEST(Payload, CopyFactoryDuplicatesForeignSpans) {
  Bytes src = some_bytes();
  Payload p = Payload::copy({src.data(), src.size()});
  EXPECT_NE(p.data(), src.data());
  src[0] = 0x77;
  EXPECT_EQ(p[0], 0x01);
}

// The sweep runner destroys whole studies (and every captured payload) on
// pool threads; the refcount must survive concurrent copy/destroy traffic.
// Run under the TSan tier to prove the atomics are sufficient.
TEST(Payload, RefcountSurvivesConcurrentCopyDestroy) {
  Payload shared{some_bytes()};
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared] {
      for (int i = 0; i < kIters; ++i) {
        Payload local = shared;
        Payload moved = std::move(local);
        EXPECT_EQ(moved.size(), 5u);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(shared.use_count(), 1u);
  EXPECT_EQ(shared[0], 0x01);
}

}  // namespace
}  // namespace p2p::util
