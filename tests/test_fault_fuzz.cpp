// Fault-layer corruption fuzz: FaultPlan::corrupt_payload is exactly the
// mutation a faulted sim::Network applies to frames in flight, so both
// protocol parsers must survive its output — parse to nullopt or to valid
// data, never crash. Runs in the fuzz binary (ctest label: fuzz) so the
// sanitizer tier scales the loops up via P2P_FUZZ_ROUNDS.
#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/fault.h"
#include "gnutella/message.h"
#include "openft/packet.h"
#include "util/rng.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

// A plan that corrupts every message it sees: the worst case of the
// injector's in-flight mutation.
fault::FaultPlan always_corrupt(std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.payload_corrupt = 1.0;
  return fault::FaultPlan(spec, seed);
}

class FaultCorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultCorruptionFuzz, GnutellaParserSurvivesInjectedCorruption) {
  util::Rng rng(GetParam() ^ 0xc0de);
  auto plan = always_corrupt(GetParam());
  gnutella::QueryHit hit;
  hit.servent_guid = gnutella::Guid::random(rng);
  gnutella::QueryHitResult r;
  r.filename = "payload sample.exe";
  rng.fill(r.sha1);
  hit.results.push_back(r);
  auto wire = gnutella::serialize(
      gnutella::make_query_hit(gnutella::Guid::random(rng), 4, hit));

  const int rounds = fuzz_rounds(300);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes mutated = wire;
    ASSERT_TRUE(plan.corrupt_payload(mutated));
    EXPECT_NO_THROW({ auto parsed = gnutella::parse(mutated); (void)parsed; });
  }
}

TEST_P(FaultCorruptionFuzz, OpenFtParserSurvivesInjectedCorruption) {
  util::Rng rng(GetParam() ^ 0x0f7);
  auto plan = always_corrupt(GetParam() ^ 0x9e3779b9);
  openft::SearchResponse resp;
  resp.search_id = rng.next();
  resp.owner = {util::Ipv4(10, 1, 2, 3), 1216};
  resp.path = "/shared/payload sample.exe";
  rng.fill(resp.md5);
  auto wire = openft::serialize(openft::make_packet(resp));

  const int rounds = fuzz_rounds(300);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes mutated = wire;
    ASSERT_TRUE(plan.corrupt_payload(mutated));
    EXPECT_NO_THROW({ auto parsed = openft::parse(mutated); (void)parsed; });
  }
}

TEST_P(FaultCorruptionFuzz, CorruptionAlwaysChangesBytesAndKeepsSize) {
  auto plan = always_corrupt(GetParam() ^ 0x5eed);
  const int rounds = fuzz_rounds(300);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes original(1 + (round % 64), static_cast<std::uint8_t>(round));
    util::Bytes mutated = original;
    ASSERT_TRUE(plan.corrupt_payload(mutated));
    EXPECT_EQ(mutated.size(), original.size());
    EXPECT_NE(mutated, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCorruptionFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace p2p
