// Failure injection: protocol nodes must survive garbage traffic, abrupt
// peer death, and adversarial message shapes without crashing or leaking
// protocol state.
#include <gtest/gtest.h>

#include "gnutella/servent.h"
#include "openft/node.h"
#include "util/rng.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

/// A hostile node that connects and sprays arbitrary bytes.
class GarbageNode : public sim::Node {
 public:
  explicit GarbageNode(sim::NodeId target, std::uint64_t seed)
      : target_(target), rng_(seed) {}

  void start() override {
    conn_ = network().connect(id(), target_);
  }
  void on_connection_open(sim::ConnId conn, sim::NodeId, bool initiated) override {
    if (!initiated) return;
    for (int i = 0; i < 20; ++i) {
      util::Bytes junk(static_cast<std::size_t>(rng_.range(1, 200)));
      rng_.fill(junk);
      network().send(conn, id(), junk);
    }
    // Also send half-valid prefixes of each protocol's framing.
    for (const char* prefix : {"GNUTELLA", "GET ", "GIV ", "PUSH ", "HTTP/1.1 ",
                               "GNUTELLA CONNECT/0.6\r\n"}) {
      std::string s(prefix);
      network().send(conn, id(), util::Bytes(s.begin(), s.end()));
    }
  }
  void on_message(sim::ConnId, const util::Payload&) override {}

 private:
  sim::NodeId target_;
  sim::ConnId conn_ = sim::kInvalidConn;
  util::Rng rng_;
};

TEST(FailureInjection, ServentSurvivesGarbageTraffic) {
  sim::Network net(1001);
  auto cache = std::make_shared<gnutella::HostCache>();
  gnutella::ServentConfig cfg;
  cfg.ultrapeer = true;
  auto answerer =
      std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
  auto servent = std::make_unique<gnutella::Servent>(cfg, answerer, cache, 1);
  gnutella::Servent* raw = servent.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(12, 0, 0, 1);
  sp.port = 6346;
  sim::NodeId target = net.add_node(std::move(servent), sp);
  cache->add({sp.ip, sp.port});

  for (int i = 0; i < 3; ++i) {
    sim::HostProfile gp;
    gp.ip = util::Ipv4(12, 0, 1, static_cast<std::uint8_t>(i + 1));
    gp.port = 9000;
    net.add_node(std::make_unique<GarbageNode>(target, 100 + static_cast<std::uint64_t>(i)), gp);
  }
  net.events().run_until(SimTime::zero() + SimDuration::minutes(5));
  EXPECT_GT(raw->stats().dropped_malformed, 0u);
  // The servent is still functional afterwards: a fresh leaf can join.
  gnutella::ServentConfig leaf_cfg;
  auto leaf_answerer =
      std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
  auto leaf = std::make_unique<gnutella::Servent>(leaf_cfg, leaf_answerer, cache, 2);
  gnutella::Servent* leaf_raw = leaf.get();
  sim::HostProfile lp;
  lp.ip = util::Ipv4(12, 0, 2, 1);
  lp.port = 7000;
  net.add_node(std::move(leaf), lp);
  net.events().run_until(net.now() + SimDuration::minutes(2));
  EXPECT_GE(leaf_raw->overlay_link_count(), 1u);
}

TEST(FailureInjection, FtNodeSurvivesGarbageTraffic) {
  sim::Network net(1002);
  auto cache = std::make_shared<openft::FtHostCache>();
  openft::FtConfig cfg;
  cfg.klass = openft::kSearch | openft::kUser;
  auto node = std::make_unique<openft::FtNode>(cfg, std::vector<openft::FtShare>{},
                                               cache, 1);
  openft::FtNode* raw = node.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(13, 0, 0, 1);
  sp.port = 1216;
  sim::NodeId target = net.add_node(std::move(node), sp);
  cache->add({sp.ip, sp.port});

  for (int i = 0; i < 3; ++i) {
    sim::HostProfile gp;
    gp.ip = util::Ipv4(13, 0, 1, static_cast<std::uint8_t>(i + 1));
    gp.port = 9000;
    net.add_node(std::make_unique<GarbageNode>(target, 200 + static_cast<std::uint64_t>(i)), gp);
  }
  net.events().run_until(SimTime::zero() + SimDuration::minutes(5));
  EXPECT_GT(raw->stats().dropped_malformed, 0u);

  // Still serves legitimate users.
  openft::FtConfig user_cfg;
  std::vector<openft::FtShare> shares;
  shares.push_back({std::make_shared<const files::FileContent>(
                        "legit.mp3", util::Bytes(500, 7)),
                    "/shared/legit.mp3"});
  auto user = std::make_unique<openft::FtNode>(user_cfg, shares, cache, 3);
  openft::FtNode* user_raw = user.get();
  sim::HostProfile up;
  up.ip = util::Ipv4(13, 0, 2, 1);
  up.port = 5000;
  net.add_node(std::move(user), up);
  net.events().run_until(net.now() + SimDuration::minutes(2));
  EXPECT_GE(user_raw->session_count(), 1u);
  EXPECT_EQ(raw->child_count(), 1u);
}

TEST(FailureInjection, UltrapeerDeathMidQueryDoesNotCrash) {
  sim::Network net(1003);
  auto cache = std::make_shared<gnutella::HostCache>();
  std::vector<gnutella::Servent*> ups;
  std::vector<sim::NodeId> up_ids;
  for (int i = 0; i < 3; ++i) {
    gnutella::ServentConfig cfg;
    cfg.ultrapeer = true;
    auto answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto servent = std::make_unique<gnutella::Servent>(
        cfg, answerer, cache, static_cast<std::uint64_t>(i + 1));
    ups.push_back(servent.get());
    sim::HostProfile sp;
    sp.ip = util::Ipv4(14, 0, 0, static_cast<std::uint8_t>(i + 1));
    sp.port = 6346;
    up_ids.push_back(net.add_node(std::move(servent), sp));
    cache->add({sp.ip, sp.port});
  }
  gnutella::ServentConfig leaf_cfg;
  auto leaf_answerer =
      std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
  auto leaf = std::make_unique<gnutella::Servent>(leaf_cfg, leaf_answerer, cache, 9);
  gnutella::Servent* leaf_raw = leaf.get();
  sim::HostProfile lp;
  lp.ip = util::Ipv4(14, 0, 1, 1);
  lp.port = 7000;
  net.add_node(std::move(leaf), lp);
  net.events().run_until(SimTime::zero() + SimDuration::minutes(2));

  // Fire a query and kill an ultrapeer while descriptors are in flight.
  leaf_raw->send_query("anything at all");
  net.remove_node(up_ids[0]);
  net.events().run_until(net.now() + SimDuration::minutes(5));
  // The leaf recovers its connectivity with the survivors.
  EXPECT_GE(leaf_raw->overlay_link_count(), 1u);
}

TEST(FailureInjection, DownloaderDeathMidTransferLeavesServerHealthy) {
  sim::Network net(1004);
  auto cache = std::make_shared<gnutella::HostCache>();
  gnutella::SharedFileIndex index;
  util::Bytes big(400'000, 0x31);  // several seconds of transfer time
  big[0] = 'M';
  big[1] = 'Z';
  index.add(std::make_shared<const files::FileContent>("big file.exe", std::move(big)));
  gnutella::ServentConfig server_cfg;
  server_cfg.ultrapeer = true;
  auto server_answerer = std::make_shared<gnutella::IndexAnswerer>(std::move(index));
  auto server = std::make_unique<gnutella::Servent>(server_cfg, server_answerer,
                                                    cache, 1);
  gnutella::Servent* server_raw = server.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(15, 0, 0, 1);
  sp.port = 6346;
  net.add_node(std::move(server), sp);
  cache->add({sp.ip, sp.port});

  gnutella::ServentConfig leaf_cfg;
  auto leaf_answerer =
      std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
  auto leaf = std::make_unique<gnutella::Servent>(leaf_cfg, leaf_answerer, cache, 2);
  gnutella::Servent* leaf_raw = leaf.get();
  sim::HostProfile lp;
  lp.ip = util::Ipv4(15, 0, 0, 2);
  lp.port = 7000;
  sim::NodeId leaf_id = net.add_node(std::move(leaf), lp);
  net.events().run_until(SimTime::zero() + SimDuration::seconds(30));

  std::vector<gnutella::HitEvent> hits;
  leaf_raw->set_hit_callback([&](const gnutella::HitEvent& e) { hits.push_back(e); });
  leaf_raw->send_query("big file");
  net.events().run_until(net.now() + SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);

  leaf_raw->download(hits[0].hit, hits[0].hit.results[0]);
  net.events().run_until(net.now() + SimDuration::seconds(2));
  net.remove_node(leaf_id);  // downloader vanishes mid-transfer
  net.events().run_until(net.now() + SimDuration::minutes(5));
  // The server survives and can answer a new client.
  EXPECT_GE(server_raw->stats().uploads_served, 1u);
  EXPECT_TRUE(net.alive(server_raw->id()));
}

}  // namespace
}  // namespace p2p
