// Passive instrumentation: organic querying leaves + the instrumented
// ultrapeer observatory.
#include <gtest/gtest.h>

#include "agents/behavior.h"
#include "crawler/observatory.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

struct ObservatoryRig {
  sim::Network net{2024};
  std::shared_ptr<gnutella::HostCache> cache = std::make_shared<gnutella::HostCache>();
  std::shared_ptr<files::ContentCatalog> catalog;

  ObservatoryRig() {
    files::CorpusConfig corpus;
    corpus.seed = 3;
    corpus.num_titles = 120;
    catalog = std::make_shared<files::ContentCatalog>(corpus);
  }

  void add_ultrapeer(int i) {
    gnutella::ServentConfig cfg;
    cfg.ultrapeer = true;
    auto answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto servent = std::make_unique<gnutella::Servent>(
        cfg, answerer, cache, static_cast<std::uint64_t>(i + 10));
    sim::HostProfile profile;
    profile.ip = util::Ipv4(20, 0, 0, static_cast<std::uint8_t>(i + 1));
    profile.port = 6346;
    net.add_node(std::move(servent), profile);
    cache->add({profile.ip, profile.port});
  }

  agents::QueryingServent* add_querier(int i, SimDuration interval) {
    gnutella::ServentConfig cfg;
    auto answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto servent = std::make_unique<agents::QueryingServent>(
        cfg, answerer, cache, catalog, interval, static_cast<std::uint64_t>(i + 50));
    auto* raw = servent.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(20, 0, 1, static_cast<std::uint8_t>(i + 1));
    profile.port = 7000;
    net.add_node(std::move(servent), profile);
    return raw;
  }
};

TEST(QueryingServent, IssuesQueriesWhileOnline) {
  ObservatoryRig rig;
  rig.add_ultrapeer(0);
  auto* querier = rig.add_querier(0, SimDuration::minutes(5));
  rig.net.events().run_until(SimTime::zero() + SimDuration::hours(2));
  // ~24 expected at a 5-minute mean over 2 hours; allow wide slack.
  EXPECT_GE(querier->stats().queries_originated, 8u);
  EXPECT_LE(querier->stats().queries_originated, 60u);
}

TEST(Observatory, CountsQueriesPassingThrough) {
  ObservatoryRig rig;
  rig.add_ultrapeer(0);
  crawler::QueryObservatory observatory(rig.net, rig.cache, 77);
  for (int i = 0; i < 6; ++i) rig.add_querier(i, SimDuration::minutes(10));
  rig.net.events().run_until(SimTime::zero() + SimDuration::hours(4));

  EXPECT_GT(observatory.total_queries(), 20u);
  EXPECT_GT(observatory.distinct_queries(), 5u);
  auto top = observatory.top_queries(5);
  ASSERT_FALSE(top.empty());
  EXPECT_GE(top[0].count, top.back().count);
  // Directly-attached leaves arrive at hops 0; forwarded copies at >= 1.
  for (const auto& [hop, count] : observatory.hop_histogram()) {
    EXPECT_GE(hop, 0);
    EXPECT_LE(hop, 7);
    EXPECT_GT(count, 0u);
  }
}

TEST(Observatory, PopularityIsZipfLike) {
  ObservatoryRig rig;
  rig.add_ultrapeer(0);
  rig.add_ultrapeer(1);
  crawler::QueryObservatory observatory(rig.net, rig.cache, 78);
  for (int i = 0; i < 12; ++i) rig.add_querier(i, SimDuration::minutes(4));
  rig.net.events().run_until(SimTime::zero() + SimDuration::hours(8));

  ASSERT_GT(observatory.total_queries(), 200u);
  double slope = observatory.zipf_slope();
  // Catalog exponent is 0.8; sampled workloads regress shallower/steeper
  // but clearly negative and in a plausible band.
  EXPECT_LT(slope, -0.3);
  EXPECT_GT(slope, -1.6);
}

TEST(Observatory, SilentWithoutTraffic) {
  ObservatoryRig rig;
  rig.add_ultrapeer(0);
  crawler::QueryObservatory observatory(rig.net, rig.cache, 79);
  rig.net.events().run_until(SimTime::zero() + SimDuration::hours(1));
  EXPECT_EQ(observatory.total_queries(), 0u);
  EXPECT_DOUBLE_EQ(observatory.zipf_slope(), 0.0);
}

}  // namespace
}  // namespace p2p
