// The trace store: codec round-trips, block framing, corruption handling
// (truncation, bit flips, wrong version, empty file), and the headline
// guarantee — a replayed trace reproduces the live run's report
// byte-for-byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report.h"
#include "core/study.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace p2p {
namespace {

crawler::ResponseRecord make_record(std::uint64_t id, bool infected) {
  crawler::ResponseRecord r;
  r.id = id;
  r.network = "limewire";
  r.at = util::SimTime::at_millis(static_cast<std::int64_t>(id) * 977);
  r.query = "query " + std::to_string(id % 7);
  r.query_category = id % 2 == 0 ? "software" : "music";
  r.filename = "payload " + std::to_string(id) + (id % 2 == 0 ? ".exe" : ".zip");
  r.type_by_name = files::classify_extension(r.filename);
  r.size = 100'000 + id * 13;
  r.source_ip = util::Ipv4(static_cast<std::uint32_t>(0x0A000000u + id));
  r.source_port = static_cast<std::uint16_t>(6346 + id);
  r.source_key = "10.0.0." + std::to_string(id) + ":6346";
  r.source_firewalled = id % 3 == 0;
  r.download_attempted = true;
  r.downloaded = id % 5 != 0;
  r.infected = infected;
  r.strain = infected ? static_cast<malware::StrainId>(1 + id % 4)
                      : malware::kCleanStrain;
  r.strain_name = infected ? "W32.Fuzz." + std::to_string(id % 4) : "";
  r.content_key = "sha1:" + std::to_string(id * 2654435761u);
  r.type_by_magic =
      id % 2 == 0 ? files::FileType::kExecutable : files::FileType::kArchive;
  return r;
}

trace::TraceHeader make_header() {
  trace::TraceHeader h;
  h.network = "limewire";
  h.config_hash = 0xDEADBEEFCAFEF00Dull;
  h.seed = 42;
  h.crawl_duration_ms = 86'400'000;
  h.meta = {{"tool", "test"}, {"preset", "quick"}};
  return h;
}

void expect_records_equal(const crawler::ResponseRecord& a,
                          const crawler::ResponseRecord& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.network, b.network);
  EXPECT_EQ(a.at, b.at);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.query_category, b.query_category);
  EXPECT_EQ(a.filename, b.filename);
  EXPECT_EQ(a.type_by_name, b.type_by_name);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.source_ip, b.source_ip);
  EXPECT_EQ(a.source_port, b.source_port);
  EXPECT_EQ(a.source_key, b.source_key);
  EXPECT_EQ(a.source_firewalled, b.source_firewalled);
  EXPECT_EQ(a.download_attempted, b.download_attempted);
  EXPECT_EQ(a.downloaded, b.downloaded);
  EXPECT_EQ(a.infected, b.infected);
  EXPECT_EQ(a.strain, b.strain);
  EXPECT_EQ(a.strain_name, b.strain_name);
  EXPECT_EQ(a.content_key, b.content_key);
  EXPECT_EQ(a.type_by_magic, b.type_by_magic);
}

// Writes `n` records + a summary into a string and returns the file bytes.
std::string write_trace_string(std::size_t n, std::size_t records_per_block) {
  std::ostringstream out(std::ios::binary);
  trace::TraceWriterOptions opts;
  opts.records_per_block = records_per_block;
  trace::TraceWriter writer(out, make_header(), opts);
  for (std::size_t i = 1; i <= n; ++i) {
    writer.on_record(make_record(i, i % 3 == 0));
  }
  trace::StudySummary summary;
  summary.events_executed = 1234;
  summary.crawl_stats.queries_sent = 55;
  summary.crawl_stats.bytes_downloaded = 987654;
  writer.write_summary(summary);
  writer.close();
  EXPECT_TRUE(writer.ok());
  EXPECT_EQ(writer.records_written(), n);
  return out.str();
}

// Frame-walks the file and returns the byte offset of the payload of the
// `index`-th block (0-based), so corruption tests can hit an exact block.
std::size_t block_payload_offset(const std::string& file, std::size_t index) {
  // Prologue: magic(4) version(2) reserved(2) header_len(4).
  std::size_t pos = 8;
  std::uint32_t header_len = 0;
  for (int i = 0; i < 4; ++i) {
    header_len |= static_cast<std::uint32_t>(
                      static_cast<std::uint8_t>(file[pos + static_cast<std::size_t>(i)]))
                  << (8 * i);
  }
  pos += 4 + header_len + 4;  // header body + crc
  for (std::size_t b = 0;; ++b) {
    pos += 1;  // kind
    std::uint64_t len = 0;
    int shift = 0;
    for (;;) {
      auto byte = static_cast<std::uint8_t>(file[pos++]);
      len |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      shift += 7;
      if ((byte & 0x80) == 0) break;
    }
    pos += 4;  // crc
    if (b == index) return pos;
    pos += len;
  }
}

TEST(TraceCodec, RecordRoundTripsEveryField) {
  for (std::uint64_t id : {1ull, 2ull, 3ull, 1000ull}) {
    auto rec = make_record(id, id % 2 == 0);
    util::ByteWriter w;
    trace::encode_record(w, rec);
    util::ByteReader r(w.data());
    auto back = trace::decode_record(r);
    EXPECT_TRUE(r.empty());
    expect_records_equal(rec, back);
    // type_by_name is not stored: it re-derives from the filename.
    EXPECT_EQ(back.type_by_name, files::classify_extension(back.filename));
  }
}

TEST(TraceCodec, HeaderRoundTripsWithMeta) {
  auto h = make_header();
  util::ByteWriter w;
  trace::encode_header_body(w, h);
  util::ByteReader r(w.data());
  auto back = trace::decode_header_body(r);
  EXPECT_EQ(back.network, h.network);
  EXPECT_EQ(back.config_hash, h.config_hash);
  EXPECT_EQ(back.seed, h.seed);
  EXPECT_EQ(back.crawl_duration_ms, h.crawl_duration_ms);
  EXPECT_EQ(back.meta, h.meta);
}

TEST(TraceCodec, HeaderRejectsTrailingGarbage) {
  util::ByteWriter w;
  trace::encode_header_body(w, make_header());
  w.u8(0x99);
  util::ByteReader r(w.data());
  EXPECT_THROW((void)trace::decode_header_body(r), util::BufferUnderflow);
}

TEST(TraceRoundTrip, MultiBlockFileSurvivesExactly) {
  std::string file = write_trace_string(10, 4);  // 3 record blocks + summary
  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok()) << reader.error_message();
  EXPECT_EQ(reader.header().network, "limewire");
  EXPECT_EQ(reader.header().config_hash, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(reader.header().meta, make_header().meta);

  crawler::ResponseRecord rec;
  std::uint64_t id = 0;
  while (reader.next(rec)) {
    ++id;
    expect_records_equal(make_record(id, id % 3 == 0), rec);
  }
  EXPECT_EQ(id, 10u);
  EXPECT_TRUE(reader.stats().clean());
  EXPECT_EQ(reader.stats().blocks_read, 4u);  // 3 record blocks + summary
  EXPECT_EQ(reader.stats().records_read, 10u);
  ASSERT_TRUE(reader.summary().has_value());
  EXPECT_EQ(reader.summary()->events_executed, 1234u);
  EXPECT_EQ(reader.summary()->crawl_stats.bytes_downloaded, 987654u);
}

TEST(TraceCorruption, EmptyFileIsCleanError) {
  std::istringstream in(std::string{}, std::ios::binary);
  trace::TraceReader reader(in);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), trace::TraceError::kEmpty);
  crawler::ResponseRecord rec;
  EXPECT_FALSE(reader.next(rec));
}

TEST(TraceCorruption, BadMagicIsRejected) {
  std::string file = write_trace_string(2, 4);
  file[0] = 'X';
  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), trace::TraceError::kBadMagic);
}

TEST(TraceCorruption, WrongVersionNamesBothVersions) {
  std::string file = write_trace_string(2, 4);
  file[4] = 9;  // version u16le low byte
  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), trace::TraceError::kBadVersion);
  EXPECT_NE(reader.error_message().find("version 9"), std::string::npos);
  EXPECT_NE(reader.error_message().find(std::to_string(trace::kTraceVersion)),
            std::string::npos);
}

TEST(TraceCorruption, FlippedHeaderByteIsRejected) {
  std::string file = write_trace_string(2, 4);
  file[14] = static_cast<char>(file[14] ^ 0x40);  // inside the header body
  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), trace::TraceError::kCorruptHeader);
}

TEST(TraceCorruption, TruncatedTailYieldsPartialReadNotCrash) {
  std::string file = write_trace_string(10, 4);
  // Cut into the middle of the last records block (before the summary).
  std::size_t cut = block_payload_offset(file, 2) + 5;
  std::string truncated = file.substr(0, cut);
  std::istringstream in(truncated, std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok());
  crawler::ResponseRecord rec;
  std::uint64_t count = 0;
  while (reader.next(rec)) ++count;
  EXPECT_EQ(count, 8u);  // the two complete blocks
  EXPECT_TRUE(reader.stats().truncated_tail);
  EXPECT_FALSE(reader.stats().clean());
  EXPECT_FALSE(reader.summary().has_value());
}

TEST(TraceCorruption, BitFlippedBlockIsContained) {
  std::string file = write_trace_string(10, 4);
  // Flip one payload byte of the second records block (records 5..8).
  std::size_t offset = block_payload_offset(file, 1) + 3;
  file[offset] = static_cast<char>(file[offset] ^ 0x10);
  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok());
  crawler::ResponseRecord rec;
  std::vector<std::uint64_t> ids;
  while (reader.next(rec)) ids.push_back(rec.id);
  // Blocks 1 (ids 1..4) and 3 (ids 9..10) survive; block 2 is dropped whole.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 9, 10}));
  EXPECT_EQ(reader.stats().blocks_corrupt, 1u);
  EXPECT_FALSE(reader.stats().truncated_tail);
  // The summary block, after the damage, is still recovered.
  EXPECT_TRUE(reader.summary().has_value());
}

TEST(TraceCorruption, UnknownBlockKindIsSkipped) {
  std::string file = write_trace_string(4, 4);
  // Append a valid frame of an unknown kind (0x7F) with a correct CRC
  // (which covers the kind byte, then the payload).
  util::ByteWriter payload;
  payload.str("future data");
  util::ByteWriter frame;
  const std::uint8_t kind = 0x7F;
  frame.u8(kind);
  frame.varint(payload.size());
  frame.u32le(util::crc32(payload.data(), util::crc32({&kind, 1})));
  frame.bytes(payload.data());
  file.append(reinterpret_cast<const char*>(frame.data().data()), frame.size());

  std::istringstream in(file, std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok());
  crawler::ResponseRecord rec;
  std::uint64_t count = 0;
  while (reader.next(rec)) ++count;
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(reader.stats().blocks_skipped, 1u);
  EXPECT_TRUE(reader.stats().clean());
}

TEST(TraceStudyIo, SaveLoadRoundTripsStudyResult) {
  core::StudyResult original;
  original.events_executed = 777;
  original.messages_delivered = 888;
  original.bytes_delivered = 999;
  original.churn_joins = 11;
  original.churn_leaves = 12;
  original.crawl_stats.queries_sent = 21;
  original.crawl_stats.hits = 22;
  original.crawl_stats.downloads_ok = 23;
  original.crawl_stats.bytes_downloaded = 24;
  original.crawl_stats.distinct_contents = 25;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    original.records.push_back(make_record(i, i % 4 == 0));
  }

  std::string path = "test_trace_roundtrip.p2pt";
  auto header = make_header();
  ASSERT_TRUE(core::save_study_trace(path, original, header));

  core::StudyResult loaded;
  EXPECT_FALSE(core::load_study_trace(path, loaded, header.config_hash + 1))
      << "stale config hash must miss";
  ASSERT_TRUE(core::load_study_trace(path, loaded, header.config_hash));
  std::remove(path.c_str());

  EXPECT_EQ(loaded.events_executed, original.events_executed);
  EXPECT_EQ(loaded.messages_delivered, original.messages_delivered);
  EXPECT_EQ(loaded.bytes_delivered, original.bytes_delivered);
  EXPECT_EQ(loaded.churn_joins, original.churn_joins);
  EXPECT_EQ(loaded.churn_leaves, original.churn_leaves);
  EXPECT_EQ(loaded.crawl_stats.queries_sent, original.crawl_stats.queries_sent);
  EXPECT_EQ(loaded.crawl_stats.hits, original.crawl_stats.hits);
  EXPECT_EQ(loaded.crawl_stats.downloads_ok, original.crawl_stats.downloads_ok);
  EXPECT_EQ(loaded.crawl_stats.bytes_downloaded,
            original.crawl_stats.bytes_downloaded);
  EXPECT_EQ(loaded.crawl_stats.distinct_contents,
            original.crawl_stats.distinct_contents);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    expect_records_equal(original.records[i], loaded.records[i]);
  }
}

TEST(TraceStudyIo, LoadRejectsDamagedFile) {
  core::StudyResult original;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    original.records.push_back(make_record(i, false));
  }
  std::string path = "test_trace_damaged.p2pt";
  ASSERT_TRUE(core::save_study_trace(path, original, make_header()));

  // Flip a byte in the middle of the file: load must refuse, not salvage.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  core::StudyResult loaded;
  EXPECT_FALSE(core::load_study_trace(path, loaded));
  std::remove(path.c_str());
  EXPECT_FALSE(core::load_study_trace("no_such_trace_file.p2pt", loaded));
}

// The headline guarantee, in-process: a quick study recorded through the
// RecordSink hook replays into the byte-identical report.
TEST(TraceReplay, ReplayedReportIsByteIdenticalToLive) {
  auto cfg = core::openft_quick();
  cfg.population.users = 40;
  cfg.population.search_nodes = 4;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.seed = 4242;

  trace::TraceHeader header;
  header.network = "openft";
  header.config_hash = core::config_hash(cfg);
  header.seed = cfg.seed;
  header.crawl_duration_ms = cfg.crawl.duration.count_ms();

  std::ostringstream file(std::ios::binary);
  trace::TraceWriter writer(file, header);
  auto live = core::run_openft_study(cfg, &writer);
  writer.write_summary(core::study_summary(live));
  writer.close();
  ASSERT_TRUE(writer.ok());
  ASSERT_EQ(writer.records_written(), live.records.size());
  ASSERT_GT(live.records.size(), 0u);

  std::istringstream in(file.str(), std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok()) << reader.error_message();
  std::vector<crawler::ResponseRecord> replayed;
  crawler::ResponseRecord rec;
  while (reader.next(rec)) replayed.push_back(rec);
  ASSERT_TRUE(reader.stats().clean());
  ASSERT_EQ(replayed.size(), live.records.size());

  std::ostringstream live_json, replay_json;
  core::write_report_json(live_json, core::build_report(live.records, "openft"));
  core::write_report_json(replay_json, core::build_report(replayed, "openft"));
  EXPECT_EQ(live_json.str(), replay_json.str());

  // The summary restores the run counters exactly.
  ASSERT_TRUE(reader.summary().has_value());
  core::StudyResult restored;
  core::apply_summary(*reader.summary(), restored);
  EXPECT_EQ(restored.events_executed, live.events_executed);
  EXPECT_EQ(restored.crawl_stats.downloads_ok, live.crawl_stats.downloads_ok);
  EXPECT_EQ(restored.metrics.counters.size(), live.metrics.counters.size());
}

}  // namespace
}  // namespace p2p
