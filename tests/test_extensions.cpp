// Tests for the extension features: pong-cache host discovery, upload
// slots, alt-source retry, OpenFT INDEX nodes, polymorphic size jitter,
// the hash-blocklist filter, and category analysis.
#include <gtest/gtest.h>

#include "agents/behavior.h"
#include "analysis/stats.h"
#include "crawler/limewire_crawler.h"
#include "filter/hash_blocklist.h"
#include "gnutella/servent.h"
#include "malware/catalogs.h"
#include "malware/scanner.h"
#include "openft/node.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Pong-cache host discovery
// ---------------------------------------------------------------------------

struct GnutellaRig {
  sim::Network net{555};
  std::shared_ptr<gnutella::HostCache> cache = std::make_shared<gnutella::HostCache>();
  std::uint64_t next_seed = 1;
  int next_ip = 1;

  gnutella::Servent* add_up(bool in_cache) {
    gnutella::ServentConfig cfg;
    cfg.ultrapeer = true;
    auto answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto servent = std::make_unique<gnutella::Servent>(cfg, answerer, cache,
                                                       next_seed++);
    gnutella::Servent* raw = servent.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(8, 8, 8, static_cast<std::uint8_t>(next_ip));
    profile.port = static_cast<std::uint16_t>(6000 + next_ip);
    ++next_ip;
    net.add_node(std::move(servent), profile);
    if (in_cache) cache->add({profile.ip, profile.port});
    return raw;
  }

  void run_for(SimDuration d) { net.events().run_until(net.now() + d); }
};

TEST(PongDiscovery, LearnsNeighbourEndpointsFromPongs) {
  GnutellaRig rig;
  gnutella::Servent* hub = rig.add_up(/*in_cache=*/true);
  gnutella::Servent* hidden = rig.add_up(/*in_cache=*/false);
  // `hidden` joins via the hub (the only cache entry).
  rig.run_for(SimDuration::minutes(2));
  ASSERT_GE(hidden->overlay_link_count(), 1u);

  // A latecomer bootstraps from the hub and must learn `hidden` via pongs.
  gnutella::Servent* late = rig.add_up(/*in_cache=*/false);
  rig.run_for(SimDuration::minutes(10));
  EXPECT_FALSE(late->learned_hosts().empty());
  // With the learned endpoint available, the latecomer links beyond the hub.
  EXPECT_GE(late->overlay_link_count(), 2u);
  (void)hub;
}

// ---------------------------------------------------------------------------
// Upload slots
// ---------------------------------------------------------------------------

TEST(UploadSlots, BusyServerRefusesExcessUploads) {
  sim::Network net(777);
  auto cache = std::make_shared<gnutella::HostCache>();

  // Server with one upload slot sharing one file.
  gnutella::SharedFileIndex index;
  util::Bytes content(60'000, 0x61);
  content[0] = 'M';
  content[1] = 'Z';
  index.add(std::make_shared<const files::FileContent>("hot file.exe",
                                                       std::move(content)));
  gnutella::ServentConfig server_cfg;
  server_cfg.ultrapeer = true;
  server_cfg.upload_slots = 1;
  server_cfg.upload_window = SimDuration::minutes(5);
  auto server_answerer = std::make_shared<gnutella::IndexAnswerer>(std::move(index));
  auto server =
      std::make_unique<gnutella::Servent>(server_cfg, server_answerer, cache, 1);
  gnutella::Servent* server_raw = server.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(9, 1, 1, 1);
  sp.port = 6346;
  net.add_node(std::move(server), sp);
  cache->add({sp.ip, sp.port});

  gnutella::ServentConfig leaf_cfg;
  auto leaf_answerer =
      std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
  auto leaf = std::make_unique<gnutella::Servent>(leaf_cfg, leaf_answerer, cache, 2);
  gnutella::Servent* leaf_raw = leaf.get();
  sim::HostProfile lp;
  lp.ip = util::Ipv4(9, 1, 1, 2);
  lp.port = 7000;
  net.add_node(std::move(leaf), lp);

  net.events().run_until(SimTime::zero() + SimDuration::seconds(30));

  std::vector<gnutella::HitEvent> hits;
  std::vector<gnutella::DownloadOutcome> outcomes;
  leaf_raw->set_hit_callback([&](const gnutella::HitEvent& e) { hits.push_back(e); });
  leaf_raw->set_download_callback(
      [&](const gnutella::DownloadOutcome& o) { outcomes.push_back(o); });
  leaf_raw->send_query("hot file");
  net.events().run_until(net.now() + SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);

  // Two concurrent downloads: only one slot, so one gets 503.
  leaf_raw->download(hits[0].hit, hits[0].hit.results[0]);
  leaf_raw->download(hits[0].hit, hits[0].hit.results[0]);
  net.events().run_until(net.now() + SimDuration::minutes(4));
  ASSERT_EQ(outcomes.size(), 2u);
  int ok = 0, busy = 0;
  for (const auto& o : outcomes) {
    if (o.success) {
      ++ok;
    } else {
      EXPECT_EQ(o.error, "http 503");
      ++busy;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(busy, 1);
  EXPECT_EQ(server_raw->stats().uploads_refused_busy, 1u);
}

// ---------------------------------------------------------------------------
// OpenFT INDEX nodes
// ---------------------------------------------------------------------------

TEST(IndexNode, AggregatesSearchNodeStats) {
  sim::Network net(888);
  auto cache = std::make_shared<openft::FtHostCache>();
  auto index_cache = std::make_shared<openft::FtHostCache>();

  openft::FtConfig index_cfg;
  index_cfg.klass = openft::kIndex;
  auto index_node = std::make_unique<openft::FtNode>(
      index_cfg, std::vector<openft::FtShare>{}, cache, 1);
  openft::FtNode* index_raw = index_node.get();
  sim::HostProfile ip_prof;
  ip_prof.ip = util::Ipv4(10, 0, 0, 0);  // deliberately odd: reserved? use public
  ip_prof.ip = util::Ipv4(11, 0, 0, 1);
  ip_prof.port = 1215;
  net.add_node(std::move(index_node), ip_prof);
  index_cache->add({ip_prof.ip, ip_prof.port});

  openft::FtConfig search_cfg;
  search_cfg.klass = openft::kSearch | openft::kUser;
  search_cfg.stats_interval = SimDuration::minutes(5);
  auto search = std::make_unique<openft::FtNode>(
      search_cfg, std::vector<openft::FtShare>{}, cache, 2, index_cache);
  sim::HostProfile sp;
  sp.ip = util::Ipv4(11, 0, 0, 2);
  sp.port = 1216;
  net.add_node(std::move(search), sp);
  cache->add({sp.ip, sp.port});

  // A user child with two shares.
  std::vector<openft::FtShare> shares;
  shares.push_back({std::make_shared<const files::FileContent>(
                        "a.mp3", util::Bytes(1'000'000, 1)),
                    "/shared/a.mp3"});
  shares.push_back({std::make_shared<const files::FileContent>(
                        "b.mp3", util::Bytes(2'000'000, 2)),
                    "/shared/b.mp3"});
  openft::FtConfig user_cfg;
  auto user = std::make_unique<openft::FtNode>(user_cfg, shares, cache, 3);
  sim::HostProfile up;
  up.ip = util::Ipv4(11, 0, 0, 3);
  up.port = 5000;
  net.add_node(std::move(user), up);

  net.events().run_until(SimTime::zero() + SimDuration::minutes(12));
  auto stats = index_raw->network_stats();
  EXPECT_EQ(stats.users, 1u);
  EXPECT_EQ(stats.shares, 2u);
  EXPECT_EQ(stats.size_mb, 2u);  // ~3MB rounded down per report
}

// ---------------------------------------------------------------------------
// Polymorphic jitter (A3 model)
// ---------------------------------------------------------------------------

TEST(PolymorphicJitter, UniqueSizeAndHashPerResponse) {
  auto cat = malware::limewire_catalog();
  cat.strains[0].size_jitter = 4096;
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  malware::Scanner scanner(cat.strains);
  agents::InfectedAnswerer answerer(store, {0}, gnutella::SharedFileIndex{}, 9);

  auto r1 = answerer.answer("query one");
  auto r2 = answerer.answer("query two");
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_NE(r1[0].sha1, r2[0].sha1);

  // Still detectable by signature, and resolvable for upload.
  auto c1 = answerer.resolve(r1[0].index);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->size(), r1[0].size);
  auto scan = scanner.scan(c1->bytes());
  ASSERT_TRUE(scan.infected());
  EXPECT_EQ(scan.primary(), 0u);
}

TEST(PolymorphicJitter, DisabledByDefault) {
  auto cat = malware::limewire_catalog();
  for (const auto& s : cat.strains) EXPECT_EQ(s.size_jitter, 0u);
}

// ---------------------------------------------------------------------------
// Hash-blocklist filter
// ---------------------------------------------------------------------------

crawler::ResponseRecord labeled_record(const std::string& key, bool infected) {
  crawler::ResponseRecord r;
  r.filename = "x.exe";
  r.type_by_name = files::FileType::kExecutable;
  r.size = 1000;
  r.content_key = key;
  r.downloaded = true;
  r.infected = infected;
  return r;
}

TEST(HashBlocklist, LearnsAboveThreshold) {
  std::vector<crawler::ResponseRecord> training;
  for (int i = 0; i < 5; ++i) training.push_back(labeled_record("popular", true));
  training.push_back(labeled_record("rare", true));
  training.push_back(labeled_record("clean", false));

  auto filter = filter::HashBlocklistFilter::learn(training, 3);
  EXPECT_EQ(filter.size(), 1u);
  EXPECT_TRUE(filter.blocks(labeled_record("popular", true)));
  EXPECT_FALSE(filter.blocks(labeled_record("rare", true)));
  EXPECT_FALSE(filter.blocks(labeled_record("clean", false)));
}

TEST(HashBlocklist, CleanHashesNeverEnterList) {
  std::vector<crawler::ResponseRecord> training;
  for (int i = 0; i < 10; ++i) training.push_back(labeled_record("clean", false));
  auto filter = filter::HashBlocklistFilter::learn(training, 1);
  EXPECT_EQ(filter.size(), 0u);
}

// ---------------------------------------------------------------------------
// Category breakdown
// ---------------------------------------------------------------------------

TEST(CategoryBreakdown, GroupsAndOrders) {
  std::vector<crawler::ResponseRecord> records;
  auto rec = [&](const std::string& cat, bool infected) {
    auto r = labeled_record(cat + "-key", infected);
    r.query_category = cat;
    records.push_back(r);
  };
  rec("software", true);
  rec("software", true);
  rec("software", false);
  rec("music", true);
  rec("music", false);
  rec("lure", false);

  auto bins = analysis::category_breakdown(records);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].category, "software");
  EXPECT_EQ(bins[0].infected, 2u);
  EXPECT_NEAR(bins[0].malicious_fraction(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(bins[1].category, "music");
  EXPECT_EQ(bins[2].category, "lure");
  EXPECT_EQ(bins[2].infected, 0u);
}

}  // namespace
}  // namespace p2p
