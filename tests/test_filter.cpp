// Filtering framework tests: the size-based filter (the paper's proposal),
// the LimeWire-builtin baseline, and the evaluation harness.
#include <gtest/gtest.h>

#include "filter/evaluation.h"
#include "filter/limewire_builtin.h"
#include "filter/size_filter.h"

namespace p2p::filter {
namespace {

using crawler::ResponseRecord;

ResponseRecord record(std::string filename, std::uint64_t size, bool infected,
                      std::string strain, std::string content_key = "",
                      int day = 0) {
  ResponseRecord r;
  r.filename = std::move(filename);
  r.type_by_name = files::classify_extension(r.filename);
  r.size = size;
  r.downloaded = true;
  r.download_attempted = true;
  r.infected = infected;
  r.strain_name = std::move(strain);
  r.content_key = content_key.empty() ? r.filename + std::to_string(size)
                                      : std::move(content_key);
  r.at = util::SimTime::zero() + util::SimDuration::days(day);
  return r;
}

std::vector<ResponseRecord> worm_training() {
  std::vector<ResponseRecord> records;
  // Dominant strain with two sizes (one more common).
  for (int i = 0; i < 30; ++i) records.push_back(record("q1.exe", 58'368, true, "Worm.A", "a1"));
  for (int i = 0; i < 10; ++i) records.push_back(record("q2.exe", 58'880, true, "Worm.A", "a2"));
  // Second strain, one size.
  for (int i = 0; i < 8; ++i) records.push_back(record("q3.zip", 46'080, true, "Troj.B", "b1"));
  // Rare strain.
  records.push_back(record("q4.exe", 102'400, true, "Rare.C", "c1"));
  // Clean traffic.
  for (int i = 0; i < 20; ++i) {
    records.push_back(record("app" + std::to_string(i) + ".exe",
                             10'000 + static_cast<std::uint64_t>(i) * 131, false, ""));
  }
  return records;
}

TEST(SizeFilter, LearnsTopStrainSizes) {
  auto training = worm_training();
  SizeFilterConfig cfg;
  cfg.top_strains = 2;
  cfg.sizes_per_strain = 3;
  auto filter = SizeFilter::learn(training, cfg);
  EXPECT_EQ(filter.blocked_sizes(),
            (std::set<std::uint64_t>{58'368, 58'880, 46'080}));
}

TEST(SizeFilter, TopStrainsLimitRespected) {
  auto training = worm_training();
  SizeFilterConfig cfg;
  cfg.top_strains = 1;
  auto filter = SizeFilter::learn(training, cfg);
  EXPECT_EQ(filter.blocked_sizes(), (std::set<std::uint64_t>{58'368, 58'880}));
}

TEST(SizeFilter, SizesPerStrainLimitRespected) {
  auto training = worm_training();
  SizeFilterConfig cfg;
  cfg.top_strains = 1;
  cfg.sizes_per_strain = 1;
  auto filter = SizeFilter::learn(training, cfg);
  // Keeps the most commonly seen size only.
  EXPECT_EQ(filter.blocked_sizes(), (std::set<std::uint64_t>{58'368}));
}

TEST(SizeFilter, BlocksBySizeRegardlessOfName) {
  SizeFilter filter({58'368});
  EXPECT_TRUE(filter.blocks(record("anything at all.exe", 58'368, false, "")));
  EXPECT_TRUE(filter.blocks(record("renamed.zip", 58'368, false, "")));
  EXPECT_FALSE(filter.blocks(record("same name.exe", 58'369, false, "")));
}

TEST(SizeFilter, IgnoresNonStudyTypes) {
  SizeFilter filter({58'368});
  EXPECT_FALSE(filter.blocks(record("song.mp3", 58'368, false, "")));
}

TEST(SizeFilter, HighDetectionLowFalsePositivesOnHeldOut) {
  auto training = worm_training();
  auto filter = SizeFilter::learn(training);

  std::vector<ResponseRecord> eval;
  for (int i = 0; i < 50; ++i) {
    eval.push_back(record("new query echo.exe", i % 3 == 0 ? 58'880 : 58'368, true,
                          "Worm.A", i % 3 == 0 ? "a2" : "a1"));
  }
  for (int i = 0; i < 40; ++i) {
    eval.push_back(record("clean" + std::to_string(i) + ".exe",
                          20'000 + static_cast<std::uint64_t>(i) * 977, false, ""));
  }
  auto result = evaluate(filter, eval);
  EXPECT_EQ(result.malicious, 50u);
  EXPECT_EQ(result.true_positives, 50u);
  EXPECT_DOUBLE_EQ(result.detection_rate(), 1.0);
  EXPECT_EQ(result.false_positives, 0u);
}

TEST(SizeFilter, FalsePositiveOnExactCollision) {
  SizeFilter filter({40'000});
  auto clean = record("legit tool.exe", 40'000, false, "");
  auto result = evaluate(filter, std::vector<ResponseRecord>{clean});
  EXPECT_EQ(result.false_positives, 1u);
  EXPECT_DOUBLE_EQ(result.false_positive_rate(), 1.0);
}

TEST(BuiltinFilter, BlocksByHashAndKeyword) {
  LimewireBuiltinFilter filter({"deadbeef"}, {"screensaver_pack"});
  auto by_hash = record("x.exe", 100, true, "T", "deadbeef");
  EXPECT_TRUE(filter.blocks(by_hash));
  auto by_keyword = record("FREE screensaver_pack.exe", 100, true, "T", "other");
  EXPECT_TRUE(filter.blocks(by_keyword));
  auto unblocked = record("fresh worm.exe", 100, true, "T", "fresh");
  EXPECT_FALSE(filter.blocks(unblocked));
}

TEST(BuiltinFilter, MakeBuiltinKnowsTailFully) {
  auto training = worm_training();
  std::vector<std::string> known = {"Rare.C"};
  auto filter = make_builtin_filter(training, known);
  auto rare = record("q4.exe", 102'400, true, "Rare.C", "c1");
  EXPECT_TRUE(filter.blocks(rare));
  auto fresh_worm = record("new.exe", 58'368, true, "Worm.A", "a1");
  EXPECT_FALSE(filter.blocks(fresh_worm));
}

TEST(BuiltinFilter, PartialKnowledgeMissesFreshestVariant) {
  auto training = worm_training();
  std::vector<std::string> known;
  std::vector<std::string> partial = {"Worm.A"};
  auto filter = make_builtin_filter(training, known, partial);
  // a1 (30 sightings) is the freshest/most-circulating — missed.
  EXPECT_FALSE(filter.blocks(record("w.exe", 58'368, true, "Worm.A", "a1")));
  // a2 (10 sightings) is yesterday's variant — known.
  EXPECT_TRUE(filter.blocks(record("w.exe", 58'880, true, "Worm.A", "a2")));
}

TEST(Evaluation, SkipsUnlabeledAndNonStudy) {
  SizeFilter filter({500});
  std::vector<ResponseRecord> records;
  auto unlabeled = record("a.exe", 500, true, "X");
  unlabeled.downloaded = false;
  records.push_back(unlabeled);
  records.push_back(record("song.mp3", 500, false, ""));
  auto result = evaluate(filter, records);
  EXPECT_EQ(result.malicious + result.clean, 0u);
}

TEST(Evaluation, RatesWithEmptyDenominators) {
  FilterEvaluation e;
  EXPECT_DOUBLE_EQ(e.detection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(e.false_positive_rate(), 0.0);
}

TEST(Split, ByDayBoundary) {
  std::vector<ResponseRecord> records = {
      record("a.exe", 1, false, "", "", 0),
      record("b.exe", 1, false, "", "", 0),
      record("c.exe", 1, false, "", "", 3),
      record("d.exe", 1, false, "", "", 5),
  };
  auto split = split_at_day(records, 3);
  EXPECT_EQ(split.training.size(), 2u);
  EXPECT_EQ(split.evaluation.size(), 2u);
}

TEST(Split, ByFraction) {
  std::vector<ResponseRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(record("a.exe", 1, false, ""));
  auto split = split_at_fraction(records, 0.3);
  EXPECT_EQ(split.training.size(), 3u);
  EXPECT_EQ(split.evaluation.size(), 7u);
  auto all = split_at_fraction(records, 1.5);
  EXPECT_EQ(all.training.size(), 10u);
  auto none = split_at_fraction(records, -1.0);
  EXPECT_EQ(none.training.size(), 0u);
}

}  // namespace
}  // namespace p2p::filter
