// KAD network suite (ctest label: kad).
//
// Property tests for the 128-bit XOR metric and the k-bucket routing
// table (LRU semantics model-checked against a reference implementation),
// codec round-trips, iterative-lookup convergence on a small simulated
// swarm, and the study-level contracts: deterministic reports, trace
// record/replay byte-identity (honeypot coverage included), and the
// monotone-with-diminishing-gains shape of the E9 coverage curve.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/kad_study.h"
#include "core/report.h"
#include "core/study.h"
#include "files/corpus.h"
#include "kad/id.h"
#include "kad/message.h"
#include "kad/node.h"
#include "kad/routing.h"
#include "sim/network.h"
#include "trace/writer.h"
#include "util/rng.h"

namespace p2p {
namespace {

kad::KadId random_id(util::Rng& rng) { return kad::KadId{rng.next(), rng.next()}; }

// 128-bit a + b with an overflow flag, for checking the triangle
// inequality without wrapping.
struct Sum128 {
  kad::KadId value;
  bool overflow = false;
};

Sum128 add128(const kad::KadId& a, const kad::KadId& b) {
  Sum128 s;
  s.value.lo = a.lo + b.lo;
  std::uint64_t carry = s.value.lo < a.lo ? 1 : 0;
  std::uint64_t hi = a.hi + b.hi;
  s.overflow = hi < a.hi;
  s.value.hi = hi + carry;
  s.overflow = s.overflow || s.value.hi < hi;
  return s;
}

// ---------------------------------------------------------------------------
// XOR metric
// ---------------------------------------------------------------------------

TEST(KadId, XorMetricIdentityAndSymmetry) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    kad::KadId a = random_id(rng), b = random_id(rng);
    EXPECT_TRUE((a ^ a).is_zero());
    EXPECT_EQ(a ^ b, b ^ a);
    if (a != b) {
      EXPECT_FALSE((a ^ b).is_zero());
    }
  }
}

TEST(KadId, XorMetricUnidirectional) {
  // For a fixed a and distance d there is exactly one b with d(a,b) = d:
  // distinct peers are at distinct distances from any vantage.
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    kad::KadId a = random_id(rng), b = random_id(rng), c = random_id(rng);
    if (b == c) continue;
    EXPECT_NE(a ^ b, a ^ c);
  }
}

TEST(KadId, XorMetricTriangleInequality) {
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    kad::KadId a = random_id(rng), b = random_id(rng), c = random_id(rng);
    Sum128 rhs = add128(a ^ b, b ^ c);
    if (rhs.overflow) continue;  // sum exceeds 128 bits: trivially >= d(a,c)
    EXPECT_LE(a ^ c, rhs.value);
  }
}

TEST(KadId, KeywordIdIsCaseInsensitive) {
  EXPECT_EQ(kad::keyword_id("Shrek"), kad::keyword_id("shrek"));
  EXPECT_NE(kad::keyword_id("shrek"), kad::keyword_id("shrek 2"));
}

TEST(KadId, NodeIdIsStablePerEndpoint) {
  util::Endpoint a{util::Ipv4(0x9c380101), 4662};
  util::Endpoint b{util::Ipv4(0x9c380101), 4663};
  EXPECT_EQ(kad::node_id_for(a), kad::node_id_for(a));
  EXPECT_NE(kad::node_id_for(a), kad::node_id_for(b));
}

TEST(KadId, BucketIndexIsTheDistanceMsb) {
  EXPECT_EQ(kad::bucket_index(kad::KadId{0, 0}), -1);
  EXPECT_EQ(kad::bucket_index(kad::KadId{0, 1}), 0);
  EXPECT_EQ(kad::bucket_index(kad::KadId{0, 2}), 1);
  EXPECT_EQ(kad::bucket_index(kad::KadId{0, 0x8000'0000'0000'0000ull}), 63);
  EXPECT_EQ(kad::bucket_index(kad::KadId{1, 0}), 64);
  EXPECT_EQ(kad::bucket_index(kad::KadId{0x8000'0000'0000'0000ull, 0}), 127);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    kad::KadId d = random_id(rng);
    int idx = kad::bucket_index(d);
    ASSERT_GE(idx, 64);  // hi is nonzero almost surely
    // The index is the position of the highest set bit.
    EXPECT_TRUE(d.hi >> (idx - 64) == 1ull);
  }
}

TEST(KadId, HexRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    kad::KadId id = random_id(rng);
    EXPECT_EQ(kad::id_from_digest(kad::digest_of(id)), id);
    EXPECT_EQ(kad::to_hex(id).size(), 32u);
  }
}

// ---------------------------------------------------------------------------
// Routing table: LRU k-buckets model-checked against a reference
// ---------------------------------------------------------------------------

struct ModelEntry {
  kad::Contact contact;
  std::uint32_t failures = 0;
};

// Reference implementation of the documented bucket semantics.
class ModelTable {
 public:
  ModelTable(const kad::KadId& self, kad::RoutingConfig config)
      : self_(self), config_(config) {}

  void observe(const kad::Contact& c) {
    int idx = kad::bucket_index(c.id ^ self_);
    if (idx < 0) return;
    auto& bucket = buckets_[static_cast<std::size_t>(idx)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].contact.id == c.id) {
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
        bucket.push_back(ModelEntry{c, 0});
        return;
      }
    }
    if (bucket.size() < config_.k) {
      bucket.push_back(ModelEntry{c, 0});
      return;
    }
    if (bucket.front().failures >= config_.stale_after_failures) {
      bucket.erase(bucket.begin());
      bucket.push_back(ModelEntry{c, 0});
    }
  }

  void fail(const kad::KadId& id) {
    int idx = kad::bucket_index(id ^ self_);
    if (idx < 0) return;
    for (auto& e : buckets_[static_cast<std::size_t>(idx)]) {
      if (e.contact.id == id) {
        ++e.failures;
        return;
      }
    }
  }

  const std::vector<ModelEntry>& bucket(int idx) const {
    return buckets_[static_cast<std::size_t>(idx)];
  }

 private:
  kad::KadId self_;
  kad::RoutingConfig config_;
  std::array<std::vector<ModelEntry>, 128> buckets_;
};

TEST(KadRouting, LruBucketsMatchReferenceModel) {
  kad::KadId self{0, 0};
  kad::RoutingConfig config;
  config.k = 4;
  config.stale_after_failures = 2;
  kad::RoutingTable table(self, config);
  ModelTable model(self, config);

  // A small id pool congesting the low buckets, so full-bucket eviction,
  // refresh-moves-to-tail, and the stale rule all get exercised.
  util::Rng rng(42);
  std::vector<kad::Contact> pool;
  for (std::uint64_t v = 1; v <= 48; ++v) {
    kad::Contact c;
    c.id = kad::KadId{0, v};
    c.addr = {util::Ipv4(0x0a000000u + static_cast<std::uint32_t>(v)),
              static_cast<std::uint16_t>(1000 + v)};
    c.firewalled = (v % 3) == 0;
    pool.push_back(c);
  }
  for (int op = 0; op < 4000; ++op) {
    kad::Contact c = pool[rng.index(pool.size())];
    if (rng.chance(0.3)) {
      // Re-observations may carry a refreshed address; the table must
      // keep the newest one.
      c.addr.port = static_cast<std::uint16_t>(2000 + rng.index(1000));
    }
    if (rng.chance(0.75)) {
      table.observe(c);
      model.observe(c);
    } else {
      table.fail(c.id);
      model.fail(c.id);
    }
    if (op % 64 != 0) continue;
    for (int b = 0; b < 8; ++b) {
      const auto& got = table.bucket(b);
      const auto& want = model.bucket(b);
      ASSERT_EQ(got.size(), want.size()) << "bucket " << b << " op " << op;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].contact, want[i].contact) << "bucket " << b;
        EXPECT_EQ(got[i].failures, want[i].failures) << "bucket " << b;
      }
    }
  }
}

TEST(KadRouting, SelfIsNeverBucketed) {
  kad::KadId self{7, 7};
  kad::RoutingTable table(self, {});
  kad::Contact me;
  me.id = self;
  table.observe(me);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains(self));
}

TEST(KadRouting, ClosestMatchesBruteForce) {
  util::Rng rng(43);
  kad::KadId self = random_id(rng);
  kad::RoutingTable table(self, {});
  for (int i = 0; i < 300; ++i) {
    kad::Contact c;
    c.id = random_id(rng);
    c.addr = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
              static_cast<std::uint16_t>(rng.bounded(65535) + 1)};
    table.observe(c);
  }
  for (int t = 0; t < 20; ++t) {
    kad::KadId target = random_id(rng);
    std::vector<kad::Contact> all;
    for (int b = 0; b < 128; ++b) {
      for (const auto& e : table.bucket(b)) all.push_back(e.contact);
    }
    std::sort(all.begin(), all.end(),
              [&](const kad::Contact& a, const kad::Contact& b) {
                kad::KadId da = a.id ^ target, db = b.id ^ target;
                if (da != db) return da < db;
                return a.id < b.id;
              });
    if (all.size() > 12) all.resize(12);
    EXPECT_EQ(table.closest(target, 12), all);
  }
}

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

kad::Contact sample_contact(util::Rng& rng) {
  kad::Contact c;
  c.id = random_id(rng);
  c.addr = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
            static_cast<std::uint16_t>(rng.bounded(65536))};
  c.firewalled = rng.chance(0.3);
  return c;
}

kad::SourceEntry sample_entry(util::Rng& rng) {
  kad::SourceEntry e;
  e.keyword = random_id(rng);
  e.filename = "file_" + std::to_string(rng.index(1000)) + ".exe";
  e.size = rng.next() % (1u << 26);
  rng.fill(e.md5);
  e.owner = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
             static_cast<std::uint16_t>(rng.bounded(65536))};
  e.firewalled = rng.chance(0.4);
  return e;
}

TEST(KadCodec, AllCommandsRoundTrip) {
  util::Rng rng(44);
  std::vector<kad::KadPacket> packets;
  packets.push_back(kad::make_packet(kad::Ping{sample_contact(rng)}));
  packets.push_back(kad::make_packet(kad::Pong{sample_contact(rng)}));
  packets.push_back(
      kad::make_packet(kad::FindNode{sample_contact(rng), random_id(rng)}));
  packets.push_back(kad::make_packet(kad::FindNodeReply{
      {sample_contact(rng), sample_contact(rng), sample_contact(rng)}}));
  packets.push_back(
      kad::make_packet(kad::FindValue{sample_contact(rng), random_id(rng)}));
  packets.push_back(kad::make_packet(kad::FindValueReply{
      {sample_entry(rng), sample_entry(rng)}, {sample_contact(rng)}}));
  packets.push_back(kad::make_packet(
      kad::Store{sample_contact(rng), {sample_entry(rng), sample_entry(rng)}}));
  packets.push_back(kad::make_packet(kad::StoreReply{2}));
  kad::ServerRegister reg;
  reg.owner = {util::Ipv4(0x9c380105), 4711};
  reg.firewalled = true;
  reg.entries = {sample_entry(rng)};
  packets.push_back(kad::make_packet(reg));
  packets.push_back(kad::make_packet(kad::ServerQuery{99, "shrek keygen"}));
  packets.push_back(
      kad::make_packet(kad::ServerQueryReply{99, {sample_entry(rng)}}));

  for (const auto& pkt : packets) {
    auto wire = kad::serialize(pkt);
    auto parsed = kad::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->command, pkt.command);
    EXPECT_EQ(kad::serialize(*parsed), wire);  // canonical re-encoding
  }
}

TEST(KadCodec, RejectsTruncatedAndOversized) {
  util::Rng rng(45);
  auto wire = kad::serialize(
      kad::make_packet(kad::Store{sample_contact(rng), {sample_entry(rng)}}));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto truncated = wire;
    truncated.resize(len);
    EXPECT_NO_THROW({ auto r = kad::parse(truncated); (void)r; });
  }
  // A contact count beyond kMaxContacts must be rejected, not allocated.
  kad::FindNodeReply reply;
  for (std::size_t i = 0; i < kad::kMaxContacts; ++i) {
    reply.contacts.push_back(sample_contact(rng));
  }
  auto ok_wire = kad::serialize(kad::make_packet(reply));
  EXPECT_TRUE(kad::parse(ok_wire).has_value());
}

// ---------------------------------------------------------------------------
// Iterative lookups on a small swarm
// ---------------------------------------------------------------------------

TEST(KadSwarm, LookupsConvergeAndSearchFindsPublishedContent) {
  sim::Network net(1234);
  auto host_cache = std::make_shared<kad::KadHostCache>();
  files::CorpusConfig corpus;
  corpus.num_titles = 40;
  corpus.seed = 7;
  auto catalog = std::make_shared<files::ContentCatalog>(corpus);

  const std::size_t kNodes = 24;
  std::vector<kad::KadNode*> nodes;
  std::vector<sim::NodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    sim::HostProfile profile;
    profile.ip = util::Ipv4(0x9c380200u + static_cast<std::uint32_t>(i));
    profile.port = static_cast<std::uint16_t>(5000 + i);
    profile.behind_nat = false;
    profile.uplink_bps = 200'000;
    profile.downlink_bps = 800'000;

    kad::KadConfig cfg;
    cfg.alias = "n" + std::to_string(i);
    auto content = catalog->content(i % catalog->size());
    std::vector<kad::KadShare> shares{
        kad::KadShare{content, "/shared/" + content->name()}};
    auto node = std::make_unique<kad::KadNode>(cfg, std::move(shares),
                                               host_cache, 9000 + i);
    nodes.push_back(node.get());
    ids.push_back(net.add_node(std::move(node), profile));
    host_cache->add(util::Endpoint{profile.ip, profile.port});
  }

  // Bootstrap + first publish pass.
  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::seconds(120));
  std::size_t populated = 0;
  std::size_t indexed = 0;
  for (const auto* n : nodes) {
    if (n->routing().size() >= 3) ++populated;
    indexed += n->indexed_sources();
  }
  EXPECT_EQ(populated, kNodes) << "every node should learn >= 3 contacts";
  EXPECT_GT(indexed, kNodes) << "publishes should land on indexing nodes";

  // Search from node 0 for a title another node shares.
  std::vector<kad::KadSearchEvent> results;
  bool ended = false;
  nodes[0]->set_result_callback(
      [&](const kad::KadSearchEvent& ev) { results.push_back(ev); });
  nodes[0]->set_search_end_callback([&](std::uint64_t) { ended = true; });
  const std::string query = catalog->entry(3).query;
  net.schedule_node(ids[0], sim::SimDuration::seconds(1),
                    [&] { nodes[0]->search(query); });
  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::seconds(240));

  EXPECT_TRUE(ended) << "search window must close";
  ASSERT_FALSE(results.empty()) << "published content must be findable";
  for (const auto& ev : results) {
    EXPECT_FALSE(ev.entry.filename.empty());
    EXPECT_NE(ev.entry.owner, nodes[0]->self().addr);
  }
  EXPECT_GT(nodes[0]->stats().lookups_completed, 0u);
}

// ---------------------------------------------------------------------------
// Study-level contracts
// ---------------------------------------------------------------------------

core::KadStudyConfig small_study() {
  auto cfg = core::kad_quick();
  cfg.seed = 99;
  cfg.population.users = 60;
  cfg.population.corpus.num_titles = 300;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.crawl.query_interval = sim::SimDuration::seconds(120);
  cfg.workload_top_n = 40;
  return cfg;
}

std::string report_json(const core::StudyResult& result) {
  auto report = core::build_report(result.records, "kad");
  core::attach_fault_report(report, result.faults_enabled,
                            result.fault_counters, result.crawl_stats);
  core::attach_kad_coverage(report, result.records, result.metrics);
  report.timeseries = result.timeseries;
  std::ostringstream out;
  core::write_report_json(out, report);
  return out.str();
}

TEST(KadStudy, TwoRunsAreByteIdentical) {
  auto cfg = small_study();
  auto a = core::run_kad_study(cfg);
  auto b = core::run_kad_study(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(report_json(a), report_json(b));
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(KadStudy, TraceReplayReproducesTheReport) {
  auto cfg = small_study();
  std::string path = ::testing::TempDir() + "/kad_roundtrip.p2pt";
  trace::TraceHeader header;
  header.network = "kad";
  header.config_hash = core::config_hash(cfg);
  header.seed = cfg.seed;
  header.crawl_duration_ms = cfg.crawl.duration.count_ms();

  trace::TraceWriter writer(path, header);
  ASSERT_TRUE(writer.ok());
  auto live = core::run_kad_study(cfg, &writer);
  writer.write_summary(core::study_summary(live));
  writer.close();
  ASSERT_TRUE(writer.ok());

  core::StudyResult replayed;
  ASSERT_TRUE(core::load_study_trace(path, replayed, core::config_hash(cfg)));
  ASSERT_EQ(replayed.records.size(), live.records.size());
  // The honeypot observations flow through the same RecordSink as the
  // active client's responses, and the coverage denominators ride in the
  // summary's metrics snapshot — so replay is byte-identical, coverage
  // block included.
  EXPECT_EQ(report_json(replayed), report_json(live));
}

TEST(KadStudy, HoneypotStreamIsLabeledAndMerged) {
  auto result = core::run_kad_study(small_study());
  std::uint64_t honeypot_records = 0, active_records = 0, infected_obs = 0;
  std::uint64_t last_id = 0;
  sim::SimTime last_at{};
  for (const auto& rec : result.records) {
    EXPECT_EQ(rec.id, last_id + 1) << "ids must be renumbered contiguously";
    EXPECT_GE(rec.at, last_at) << "merged stream must stay time-ordered";
    last_id = rec.id;
    last_at = rec.at;
    if (rec.query_category == "honeypot") {
      ++honeypot_records;
      EXPECT_EQ(rec.network.rfind("kad.honeypot/", 0), 0u);
      if (rec.infected) {
        ++infected_obs;
        EXPECT_FALSE(rec.strain_name.empty());
        EXPECT_FALSE(rec.content_key.empty())
            << "only STOREs of malicious digests are labeled";
      }
    } else {
      ++active_records;
      EXPECT_EQ(rec.network, "kad");
    }
  }
  EXPECT_GT(honeypot_records, 0u);
  EXPECT_GT(active_records, 0u);
  EXPECT_GT(infected_obs, 0u);
}

TEST(KadStudy, CoverageCurveIsMonotoneWithDiminishingGains) {
  auto result = core::run_kad_study(small_study());
  auto coverage = core::kad_coverage(result.records, result.metrics);
  ASSERT_TRUE(coverage.enabled);
  EXPECT_EQ(coverage.vantages, 16u);
  EXPECT_GT(coverage.observations, 0u);
  EXPECT_LE(coverage.infected_observed, coverage.infected_total);
  ASSERT_EQ(coverage.curve.size(), 5u);
  double prev = 0.0, prev_gain = 1.0;
  for (const auto& point : coverage.curve) {
    EXPECT_GE(point.mean_coverage, prev) << "coverage must be monotone";
    double gain = point.mean_coverage - prev;
    EXPECT_LE(gain, prev_gain + 1e-12) << "marginal gains must diminish";
    prev = point.mean_coverage;
    prev_gain = gain;
    EXPECT_GE(point.mean_coverage, 0.0);
    EXPECT_LE(point.mean_coverage, 1.0);
  }
  EXPECT_GE(coverage.keyword_overlap, 0.0);
  EXPECT_LE(coverage.keyword_overlap, 1.0);
}

TEST(KadStudy, ConfigHashIsSensitiveToEveryKnob) {
  auto base = core::kad_quick();
  EXPECT_EQ(core::config_hash(base), core::config_hash(core::kad_quick()));
  auto seed = base;
  seed.seed = base.seed + 1;
  auto honeypots = base;
  honeypots.honeypots = base.honeypots + 1;
  auto bait = base;
  bait.honeypot_bait = base.honeypot_bait + 1;
  auto k = base;
  k.population.node_config.k = base.population.node_config.k + 1;
  auto poison = base;
  poison.population.poison_rank_limit = base.population.poison_rank_limit + 1;
  std::vector<std::uint64_t> hashes = {
      core::config_hash(base),     core::config_hash(seed),
      core::config_hash(honeypots), core::config_hash(bait),
      core::config_hash(k),        core::config_hash(poison)};
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end());
  EXPECT_NE(core::config_hash(base), core::config_hash(core::kad_standard()));
}

}  // namespace
}  // namespace p2p
