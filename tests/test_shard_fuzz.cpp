// Sharded-engine fuzz (ctest label: fuzz).
//
// Each round draws a random topology — entity count, stable keys (including
// colliding ones), lookahead, horizon — and a random message storm: bursty
// fan-out relays, self-timers below the lookahead floor, and bootstrap posts
// scattered over the horizon. The storm is replayed at several shard counts
// and every per-entity delivery log must match the 1-shard baseline exactly.
// All in-handler randomness is drawn from splitmix64 of intrinsic ids so the
// workload itself is shard-count-invariant; only the engine under test
// varies. The sanitizer tier scales rounds up via P2P_FUZZ_ROUNDS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sim/sharded_engine.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

std::uint64_t mix(std::uint64_t x) { return util::splitmix64(x); }

struct StormShape {
  std::uint32_t entities;
  std::int64_t lookahead_ms;
  std::int64_t horizon_ms;
  std::uint32_t bootstraps;
  std::uint64_t seed;
};

StormShape draw_shape(std::uint64_t seed) {
  util::Rng rng(seed);
  StormShape s;
  s.entities = 8 + static_cast<std::uint32_t>(rng.bounded(120));
  s.lookahead_ms = 5 + static_cast<std::int64_t>(rng.bounded(45));
  s.horizon_ms = 2000 + static_cast<std::int64_t>(rng.bounded(6000));
  s.bootstraps = 4 + static_cast<std::uint32_t>(rng.bounded(28));
  s.seed = rng.next();
  return s;
}

struct Delivery {
  std::int64_t at_ms;
  std::uint32_t origin;
  std::uint32_t step;
  bool operator==(const Delivery& o) const {
    return at_ms == o.at_ms && origin == o.origin && step == o.step;
  }
};

// One storm instance bound to an engine. Handlers fan out 0..3 relays to
// hash-chosen destinations with latency >= lookahead, plus an occasional
// self-timer *below* the lookahead floor (legal for self-posts — exactly the
// edge the conservative windows must not lose).
struct Storm {
  const StormShape& shape;
  sim::ShardedEngine engine;
  std::vector<sim::ShardedEngine::EntityId> ids;
  std::vector<std::vector<Delivery>> logs;

  Storm(const StormShape& sh, std::size_t shards)
      : shape(sh),
        engine(sim::ShardedEngine::Config{
            shards, util::SimDuration::millis(sh.lookahead_ms)}),
        logs(sh.entities) {
    ids.reserve(sh.entities);
    for (std::uint32_t i = 0; i < sh.entities; ++i) {
      // Deliberately colliding stable keys (mod 2 buckets of entropy) so
      // shard partitions are lumpy, not uniform.
      ids.push_back(engine.add_entity(mix(shape.seed ^ (i % 2 == 0 ? i : i / 3))));
    }
  }

  // Per-(origin, step) decisions are pure hash draws: identical at every
  // shard count.
  void deliver(std::uint32_t id, std::uint32_t step, std::uint32_t origin) {
    std::int64_t now_ms = engine.now().millis();
    logs[id].push_back({now_ms, origin, step});
    if (step >= 24) return;
    std::uint64_t h = mix(shape.seed ^ (std::uint64_t{id} << 40) ^
                          (std::uint64_t{step} << 8) ^ origin);
    std::uint32_t fanout = static_cast<std::uint32_t>(h % 4);
    for (std::uint32_t f = 0; f < fanout; ++f) {
      std::uint64_t hf = mix(h ^ (0x9e3779b97f4a7c15ull * (f + 1)));
      std::uint32_t dst = static_cast<std::uint32_t>(hf % shape.entities);
      std::int64_t latency =
          shape.lookahead_ms + static_cast<std::int64_t>((hf >> 32) % 400);
      std::int64_t at_ms = now_ms + latency;
      if (at_ms > shape.horizon_ms) continue;
      engine.post(ids[dst], util::SimTime::at_millis(at_ms),
                  [this, dst, next = step + 1, id] { deliver(dst, next, id); });
    }
    if ((h >> 60) == 0) {
      // Self-timer below the lookahead floor.
      std::int64_t at_ms = now_ms + 1 + static_cast<std::int64_t>((h >> 16) % 4);
      if (at_ms <= shape.horizon_ms) {
        engine.post(ids[id], util::SimTime::at_millis(at_ms),
                    [this, id, next = step + 1] { deliver(id, next, id); });
      }
    }
  }

  void seed_bootstraps() {
    for (std::uint32_t b = 0; b < shape.bootstraps; ++b) {
      std::uint64_t h = mix(shape.seed ^ 0xb007ull ^ b);
      std::uint32_t dst = static_cast<std::uint32_t>(h % shape.entities);
      std::int64_t at_ms =
          static_cast<std::int64_t>((h >> 32) % (shape.horizon_ms / 2 + 1));
      engine.post(ids[dst], util::SimTime::at_millis(at_ms),
                  [this, dst] { deliver(dst, 0, dst); });
    }
  }
};

class ShardStormFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardStormFuzz, RandomStormsMatchSerialBaselineAtEveryShardCount) {
  const int rounds = fuzz_rounds(8);
  for (int round = 0; round < rounds; ++round) {
    StormShape shape = draw_shape(GetParam() * 1000003ull + round);
    Storm baseline(shape, 1);
    baseline.seed_bootstraps();
    baseline.engine.run_all();
    std::uint64_t ref_executed = baseline.engine.executed();
    ASSERT_GT(ref_executed, shape.bootstraps / 2)
        << "degenerate storm, seed " << shape.seed;
    for (std::size_t shards : {2u, 3u, 5u, 8u}) {
      Storm storm(shape, shards);
      storm.seed_bootstraps();
      storm.engine.run_all();
      EXPECT_EQ(ref_executed, storm.engine.executed())
          << "round " << round << " shards " << shards;
      for (std::uint32_t i = 0; i < shape.entities; ++i) {
        ASSERT_EQ(baseline.logs[i], storm.logs[i])
            << "entity " << i << " log diverged, round " << round
            << ", shards " << shards;
      }
    }
  }
}

TEST_P(ShardStormFuzz, RandomStormsSurviveWindowedRunUntil) {
  // Same diff, but the sharded run is chopped into randomized run_until
  // barriers — partial drains must compose to the same final logs.
  const int rounds = fuzz_rounds(6);
  for (int round = 0; round < rounds; ++round) {
    StormShape shape = draw_shape(GetParam() * 7778777ull + round);
    Storm baseline(shape, 1);
    baseline.seed_bootstraps();
    baseline.engine.run_all();
    for (std::size_t shards : {2u, 7u}) {
      Storm storm(shape, shards);
      storm.seed_bootstraps();
      util::Rng cuts(shape.seed ^ shards);
      std::int64_t at = 0;
      while (at < shape.horizon_ms + 1000) {
        at += 1 + static_cast<std::int64_t>(cuts.bounded(
                 static_cast<std::uint64_t>(shape.horizon_ms / 3)));
        storm.engine.run_until(util::SimTime::at_millis(at));
      }
      storm.engine.run_all();
      EXPECT_EQ(baseline.engine.executed(), storm.engine.executed());
      for (std::uint32_t i = 0; i < shape.entities; ++i) {
        ASSERT_EQ(baseline.logs[i], storm.logs[i])
            << "entity " << i << " diverged under windowed run, round "
            << round << ", shards " << shards;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardStormFuzz,
                         ::testing::Values(1ull, 42ull, 0xfeedfaceull));

}  // namespace
}  // namespace p2p
