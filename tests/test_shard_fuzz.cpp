// Sharded-engine fuzz (ctest label: fuzz).
//
// Each round draws a random topology — entity count, stable keys (including
// colliding ones), lookahead, horizon — and a random message storm: bursty
// fan-out relays, self-timers below the lookahead floor, and bootstrap posts
// scattered over the horizon. The storm is replayed at several shard counts
// and every per-entity delivery log must match the 1-shard baseline exactly.
// All in-handler randomness is drawn from splitmix64 of intrinsic ids so the
// workload itself is shard-count-invariant; only the engine under test
// varies. The sanitizer tier scales rounds up via P2P_FUZZ_ROUNDS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sim/network.h"
#include "sim/sharded_engine.h"
#include "util/payload.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

std::uint64_t mix(std::uint64_t x) { return util::splitmix64(x); }

struct StormShape {
  std::uint32_t entities;
  std::int64_t lookahead_ms;
  std::int64_t horizon_ms;
  std::uint32_t bootstraps;
  std::uint64_t seed;
};

StormShape draw_shape(std::uint64_t seed) {
  util::Rng rng(seed);
  StormShape s;
  s.entities = 8 + static_cast<std::uint32_t>(rng.bounded(120));
  s.lookahead_ms = 5 + static_cast<std::int64_t>(rng.bounded(45));
  s.horizon_ms = 2000 + static_cast<std::int64_t>(rng.bounded(6000));
  s.bootstraps = 4 + static_cast<std::uint32_t>(rng.bounded(28));
  s.seed = rng.next();
  return s;
}

struct Delivery {
  std::int64_t at_ms;
  std::uint32_t origin;
  std::uint32_t step;
  bool operator==(const Delivery& o) const {
    return at_ms == o.at_ms && origin == o.origin && step == o.step;
  }
};

// One storm instance bound to an engine. Handlers fan out 0..3 relays to
// hash-chosen destinations with latency >= lookahead, plus an occasional
// self-timer *below* the lookahead floor (legal for self-posts — exactly the
// edge the conservative windows must not lose).
struct Storm {
  const StormShape& shape;
  sim::ShardedEngine engine;
  std::vector<sim::ShardedEngine::EntityId> ids;
  std::vector<std::vector<Delivery>> logs;

  Storm(const StormShape& sh, std::size_t shards)
      : shape(sh),
        engine(sim::ShardedEngine::Config{
            shards, util::SimDuration::millis(sh.lookahead_ms)}),
        logs(sh.entities) {
    ids.reserve(sh.entities);
    for (std::uint32_t i = 0; i < sh.entities; ++i) {
      // Deliberately colliding stable keys (mod 2 buckets of entropy) so
      // shard partitions are lumpy, not uniform.
      ids.push_back(engine.add_entity(mix(shape.seed ^ (i % 2 == 0 ? i : i / 3))));
    }
  }

  // Per-(origin, step) decisions are pure hash draws: identical at every
  // shard count.
  void deliver(std::uint32_t id, std::uint32_t step, std::uint32_t origin) {
    std::int64_t now_ms = engine.now().millis();
    logs[id].push_back({now_ms, origin, step});
    if (step >= 24) return;
    std::uint64_t h = mix(shape.seed ^ (std::uint64_t{id} << 40) ^
                          (std::uint64_t{step} << 8) ^ origin);
    std::uint32_t fanout = static_cast<std::uint32_t>(h % 4);
    for (std::uint32_t f = 0; f < fanout; ++f) {
      std::uint64_t hf = mix(h ^ (0x9e3779b97f4a7c15ull * (f + 1)));
      std::uint32_t dst = static_cast<std::uint32_t>(hf % shape.entities);
      std::int64_t latency =
          shape.lookahead_ms + static_cast<std::int64_t>((hf >> 32) % 400);
      std::int64_t at_ms = now_ms + latency;
      if (at_ms > shape.horizon_ms) continue;
      engine.post(ids[dst], util::SimTime::at_millis(at_ms),
                  [this, dst, next = step + 1, id] { deliver(dst, next, id); });
    }
    if ((h >> 60) == 0) {
      // Self-timer below the lookahead floor.
      std::int64_t at_ms = now_ms + 1 + static_cast<std::int64_t>((h >> 16) % 4);
      if (at_ms <= shape.horizon_ms) {
        engine.post(ids[id], util::SimTime::at_millis(at_ms),
                    [this, id, next = step + 1] { deliver(id, next, id); });
      }
    }
  }

  void seed_bootstraps() {
    for (std::uint32_t b = 0; b < shape.bootstraps; ++b) {
      std::uint64_t h = mix(shape.seed ^ 0xb007ull ^ b);
      std::uint32_t dst = static_cast<std::uint32_t>(h % shape.entities);
      std::int64_t at_ms =
          static_cast<std::int64_t>((h >> 32) % (shape.horizon_ms / 2 + 1));
      engine.post(ids[dst], util::SimTime::at_millis(at_ms),
                  [this, dst] { deliver(dst, 0, dst); });
    }
  }
};

class ShardStormFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardStormFuzz, RandomStormsMatchSerialBaselineAtEveryShardCount) {
  const int rounds = fuzz_rounds(8);
  for (int round = 0; round < rounds; ++round) {
    StormShape shape = draw_shape(GetParam() * 1000003ull + round);
    Storm baseline(shape, 1);
    baseline.seed_bootstraps();
    baseline.engine.run_all();
    std::uint64_t ref_executed = baseline.engine.executed();
    ASSERT_GT(ref_executed, shape.bootstraps / 2)
        << "degenerate storm, seed " << shape.seed;
    for (std::size_t shards : {2u, 3u, 5u, 8u}) {
      Storm storm(shape, shards);
      storm.seed_bootstraps();
      storm.engine.run_all();
      EXPECT_EQ(ref_executed, storm.engine.executed())
          << "round " << round << " shards " << shards;
      for (std::uint32_t i = 0; i < shape.entities; ++i) {
        ASSERT_EQ(baseline.logs[i], storm.logs[i])
            << "entity " << i << " log diverged, round " << round
            << ", shards " << shards;
      }
    }
  }
}

TEST_P(ShardStormFuzz, RandomStormsSurviveWindowedRunUntil) {
  // Same diff, but the sharded run is chopped into randomized run_until
  // barriers — partial drains must compose to the same final logs.
  const int rounds = fuzz_rounds(6);
  for (int round = 0; round < rounds; ++round) {
    StormShape shape = draw_shape(GetParam() * 7778777ull + round);
    Storm baseline(shape, 1);
    baseline.seed_bootstraps();
    baseline.engine.run_all();
    for (std::size_t shards : {2u, 7u}) {
      Storm storm(shape, shards);
      storm.seed_bootstraps();
      util::Rng cuts(shape.seed ^ shards);
      std::int64_t at = 0;
      while (at < shape.horizon_ms + 1000) {
        at += 1 + static_cast<std::int64_t>(cuts.bounded(
                 static_cast<std::uint64_t>(shape.horizon_ms / 3)));
        storm.engine.run_until(util::SimTime::at_millis(at));
      }
      storm.engine.run_all();
      EXPECT_EQ(baseline.engine.executed(), storm.engine.executed());
      for (std::uint32_t i = 0; i < shape.entities; ++i) {
        ASSERT_EQ(baseline.logs[i], storm.logs[i])
            << "entity " << i << " diverged under windowed run, round "
            << round << ", shards " << shards;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardStormFuzz,
                         ::testing::Values(1ull, 42ull, 0xfeedfaceull));

// ---------------------------------------------------------------------------
// Legacy-model storms: the same shard-count differential, but through the
// full sim::Network connection lifecycle instead of raw engine posts.
// Hash-driven nodes dial random peers (some behind NAT, some refusing),
// push payload bursts down whichever connections opened, close early, and a
// subset detaches and reattaches mid-run (the churn pattern). Every
// observable — per-node event logs, delivered message/byte totals, the
// connection counters — must match the 1-shard baseline exactly.
// ---------------------------------------------------------------------------

struct LegacyShape {
  std::uint32_t nodes;
  std::int64_t horizon_ms;
  std::uint64_t seed;
};

LegacyShape draw_legacy_shape(std::uint64_t seed) {
  util::Rng rng(seed);
  LegacyShape s;
  s.nodes = 6 + static_cast<std::uint32_t>(rng.bounded(30));
  s.horizon_ms = 3000 + static_cast<std::int64_t>(rng.bounded(5000));
  s.seed = rng.next();
  return s;
}

struct LegacyEvent {
  std::int64_t at_ms;
  std::uint64_t kind;  // 0=open 1=failed 2=closed 3=message
  std::uint64_t detail;  // peer id, target id, or payload size
  bool operator==(const LegacyEvent& o) const {
    return at_ms == o.at_ms && kind == o.kind && detail == o.detail;
  }
};

class LegacyStorm;

// All decisions are pure hash draws over (storm seed, node index, step):
// identical at every shard count, so only the engine under test varies.
class LegacyStormNode : public sim::Node {
 public:
  LegacyStormNode(LegacyStorm& owner, std::uint32_t index)
      : owner_(owner), index_(index) {}

  void start() override;
  bool accept_connection(sim::NodeId from) override;
  void on_connection_open(sim::ConnId conn, sim::NodeId peer,
                          bool initiated) override;
  void on_connection_failed(sim::ConnId conn, sim::NodeId target) override;
  void on_message(sim::ConnId conn, const util::Payload& payload) override;
  void on_connection_closed(sim::ConnId conn) override;

 private:
  void step(std::uint32_t k);

  LegacyStorm& owner_;
  std::uint32_t index_;
  std::vector<sim::ConnId> open_;
};

class LegacyStorm {
 public:
  LegacyStorm(const LegacyShape& shape, std::size_t shards)
      : shape(shape),
        net(shape.seed, sim::ShardingConfig{shards}),
        logs(shape.nodes) {
    for (std::uint32_t i = 0; i < shape.nodes; ++i) {
      std::uint64_t h = mix(shape.seed ^ (0xad0ull << 40) ^ i);
      sim::HostProfile profile;
      profile.ip = util::Ipv4{static_cast<std::uint32_t>(0x0a000000u | i)};
      profile.port = static_cast<std::uint16_t>(6346 + i);
      profile.behind_nat = (h % 5) == 0;
      ids.push_back(
          net.add_node(std::make_unique<LegacyStormNode>(*this, i), profile));
    }
    // Churn subset: a third of the nodes detach at a hash-chosen instant and
    // a fresh instance reattaches later, exactly the ChurnDriver pattern
    // (posted to the victim's own entity, never from inside its handlers).
    for (std::uint32_t i = 0; i < shape.nodes; ++i) {
      std::uint64_t h = mix(shape.seed ^ (0xdeadull << 32) ^ i);
      if (h % 3 != 0) continue;
      std::int64_t leave_ms =
          500 + static_cast<std::int64_t>((h >> 8) % (shape.horizon_ms / 2));
      std::int64_t back_ms =
          leave_ms + 200 + static_cast<std::int64_t>((h >> 40) % 1500);
      sim::NodeId id = ids[i];
      net.engine().post(net.entity_of(id), util::SimTime::at_millis(leave_ms),
                        [this, id] { net.remove_node(id); });
      net.engine().post(net.entity_of(id), util::SimTime::at_millis(back_ms),
                        [this, id, i] {
                          net.attach_node(
                              id, std::make_unique<LegacyStormNode>(*this, i));
                        });
    }
  }

  void run() {
    net.engine().run_until(util::SimTime::at_millis(shape.horizon_ms + 3000));
  }

  const LegacyShape& shape;
  sim::Network net;
  std::vector<sim::NodeId> ids;
  std::vector<std::vector<LegacyEvent>> logs;
};

void LegacyStormNode::start() {
  std::uint64_t h = mix(owner_.shape.seed ^ (std::uint64_t{index_} << 20));
  network().schedule_node(
      id(), util::SimDuration::millis(1 + static_cast<std::int64_t>(h % 300)),
      [this] { step(0); });
}

bool LegacyStormNode::accept_connection(sim::NodeId from) {
  // Deterministic per (self, dialer): some peers always refuse some dialers.
  return mix(owner_.shape.seed ^ (std::uint64_t{index_} << 32) ^ from) % 7 != 0;
}

void LegacyStormNode::on_connection_open(sim::ConnId conn, sim::NodeId peer,
                                         bool initiated) {
  owner_.logs[index_].push_back(
      {network().now().millis(), 0, std::uint64_t{peer}});
  open_.push_back(conn);
  if (initiated) {
    // Greet down the fresh pipe: exercises tx_free serialization from the
    // very first exchange.
    network().send(conn, id(), util::Payload(util::Bytes(64, 0x5a)));
  }
}

void LegacyStormNode::on_connection_failed(sim::ConnId conn,
                                           sim::NodeId target) {
  (void)conn;
  owner_.logs[index_].push_back(
      {network().now().millis(), 1, std::uint64_t{target}});
}

void LegacyStormNode::on_message(sim::ConnId conn, const util::Payload& payload) {
  (void)conn;
  owner_.logs[index_].push_back(
      {network().now().millis(), 3, payload.size()});
}

void LegacyStormNode::on_connection_closed(sim::ConnId conn) {
  owner_.logs[index_].push_back({network().now().millis(), 2, 0});
  std::erase(open_, conn);
}

void LegacyStormNode::step(std::uint32_t k) {
  std::int64_t now_ms = network().now().millis();
  if (now_ms > owner_.shape.horizon_ms) return;
  std::uint64_t h = mix(owner_.shape.seed ^ (std::uint64_t{index_} << 24) ^
                        (std::uint64_t{k} << 4));
  switch (h % 4) {
    case 0: {  // dial a hash-chosen peer (possibly NATed or refusing)
      std::uint32_t dst = static_cast<std::uint32_t>((h >> 16) % owner_.shape.nodes);
      if (dst != index_) network().connect(id(), owner_.ids[dst]);
      break;
    }
    case 1:
    case 2: {  // burst 1..3 payloads down one open connection
      if (!open_.empty()) {
        sim::ConnId conn = open_[(h >> 16) % open_.size()];
        std::uint32_t burst = 1 + static_cast<std::uint32_t>((h >> 32) % 3);
        for (std::uint32_t b = 0; b < burst; ++b) {
          std::size_t size = 16 + ((h >> (8 + 4 * b)) % 900);
          network().send(conn, id(),
                         util::Payload(util::Bytes(size, std::uint8_t(b))));
        }
      }
      break;
    }
    default: {  // hang up one open connection
      if (!open_.empty()) {
        network().close(open_[(h >> 16) % open_.size()], id());
      }
      break;
    }
  }
  network().schedule_node(
      id(),
      util::SimDuration::millis(1 + static_cast<std::int64_t>((h >> 48) % 180)),
      [this, k] { step(k + 1); });
}

class LegacyStormFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LegacyStormFuzz, NetworkStormsMatchOneShardBaseline) {
  const int rounds = fuzz_rounds(4);
  for (int round = 0; round < rounds; ++round) {
    LegacyShape shape = draw_legacy_shape(GetParam() * 6700417ull + round);
    LegacyStorm baseline(shape, 1);
    baseline.run();
    ASSERT_GT(baseline.net.messages_delivered(), 0u)
        << "degenerate storm, seed " << shape.seed;
    for (std::size_t shards : {2u, 3u, 5u}) {
      LegacyStorm storm(shape, shards);
      storm.run();
      EXPECT_EQ(baseline.net.engine().executed(), storm.net.engine().executed())
          << "round " << round << " shards " << shards;
      EXPECT_EQ(baseline.net.messages_delivered(), storm.net.messages_delivered());
      EXPECT_EQ(baseline.net.bytes_delivered(), storm.net.bytes_delivered());
      EXPECT_EQ(baseline.net.open_connection_count(),
                storm.net.open_connection_count());
      for (std::uint32_t i = 0; i < shape.nodes; ++i) {
        ASSERT_EQ(baseline.logs[i], storm.logs[i])
            << "node " << i << " log diverged, round " << round << ", shards "
            << shards;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegacyStormFuzz,
                         ::testing::Values(3ull, 0xa11ceull));

}  // namespace
}  // namespace p2p
