// Trace ring wraparound, JSONL well-formedness, per-component filtering.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/trace.h"

namespace p2p::obs {
namespace {

util::SimTime at(std::int64_t ms) { return util::SimTime::at_millis(ms); }

TEST(ObsTrace, ComponentNamesRoundTrip) {
  for (unsigned i = 0; i < static_cast<unsigned>(Component::kCount); ++i) {
    auto c = static_cast<Component>(i);
    auto back = component_from_name(component_name(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(component_from_name("nonsense").has_value());
}

TEST(ObsTrace, DisabledComponentsRecordNothing) {
  TraceBuffer buf(8);
  buf.record(Component::kNet, "x", at(0), {});
  EXPECT_EQ(buf.size(), 0u);
  buf.enable(Component::kNet);
  buf.record(Component::kNet, "x", at(0), {});
  buf.record(Component::kSim, "y", at(0), {});  // still disabled
  EXPECT_EQ(buf.size(), 1u);
  buf.disable(Component::kNet);
  EXPECT_FALSE(buf.any_enabled());
}

TEST(ObsTrace, EnableFromSpec) {
  TraceBuffer buf(8);
  EXPECT_TRUE(buf.enable_from_spec("crawler,scanner"));
  EXPECT_TRUE(buf.enabled(Component::kCrawler));
  EXPECT_TRUE(buf.enabled(Component::kScanner));
  EXPECT_FALSE(buf.enabled(Component::kNet));
  EXPECT_FALSE(buf.enable_from_spec("crawler,bogus"));  // valid names still apply
  buf.disable_all();
  EXPECT_TRUE(buf.enable_from_spec("all"));
  for (unsigned i = 0; i < static_cast<unsigned>(Component::kCount); ++i) {
    EXPECT_TRUE(buf.enabled(static_cast<Component>(i)));
  }
}

TEST(ObsTrace, RingOverwritesOldest) {
  TraceBuffer buf(4);
  buf.enable_all();
  for (int i = 0; i < 10; ++i) {
    buf.record(Component::kSim, "e" + std::to_string(i), at(i), {});
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  std::vector<std::string> events;
  buf.for_each([&](const TraceEvent& e) { events.push_back(e.event); });
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: the last four records survive.
  EXPECT_EQ(events.front(), "e6");
  EXPECT_EQ(events.back(), "e9");
}

TEST(ObsTrace, JsonlWellFormed) {
  TraceBuffer buf(16);
  buf.enable_all();
  buf.record(Component::kCrawler, "download_ok", at(1500),
             {tf("key", std::string_view("ab\"cd")), tf("bytes", std::uint64_t{512}),
              tf("ok", true), tf("ratio", 0.5)});
  std::ostringstream out;
  buf.write_jsonl(out);
  std::string line = out.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line[line.size() - 2], '}');  // trailing newline after each record
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"t_sim\":1500"), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"crawler\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"download_ok\""), std::string::npos);
  EXPECT_NE(line.find("\"key\":\"ab\\\"cd\""), std::string::npos);  // escaped quote
  EXPECT_NE(line.find("\"bytes\":512"), std::string::npos);  // raw number, unquoted
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  // Exactly one line per record.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(ObsTrace, JsonlComponentFilter) {
  TraceBuffer buf(16);
  buf.enable_all();
  buf.record(Component::kNet, "conn_open", at(1), {});
  buf.record(Component::kScanner, "scan", at(2), {});
  buf.record(Component::kNet, "conn_close", at(3), {});
  std::ostringstream net_only;
  buf.write_jsonl(net_only, Component::kNet);
  std::string text = net_only.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.find("scan"), std::string::npos);
}

TEST(ObsTrace, SetCapacityResetsState) {
  TraceBuffer buf(4);
  buf.enable_all();
  buf.record(Component::kSim, "x", at(0), {});
  buf.set_capacity(2);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 2u);
  EXPECT_EQ(buf.total_recorded(), 0u);
  buf.record(Component::kSim, "a", at(1), {});
  buf.record(Component::kSim, "b", at(2), {});
  buf.record(Component::kSim, "c", at(3), {});
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
}

TEST(ObsTrace, MacroChecksEnableFlagBeforeRecording) {
  TraceBuffer& buf = TraceBuffer::global();
  buf.disable_all();
  buf.clear();
  P2P_TRACE(Component::kFilter, "blocked", at(0), tf("n", 1));
#ifndef P2P_OBS_DISABLED
  EXPECT_EQ(buf.size(), 0u);
  buf.enable(Component::kFilter);
  P2P_TRACE(Component::kFilter, "blocked", at(0), tf("n", 1));
  EXPECT_EQ(buf.size(), 1u);
#endif
  buf.disable_all();
  buf.clear();
}

}  // namespace
}  // namespace p2p::obs
