// Analysis-statistics tests over hand-built record sets with known answers.
#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/csv.h"

namespace p2p::analysis {
namespace {

using crawler::ResponseRecord;

ResponseRecord record(std::string filename, bool downloaded, bool infected,
                      std::string strain, std::uint64_t size = 1000,
                      std::string source = "1.2.3.4:10/x", int day = 0) {
  ResponseRecord r;
  r.network = "test";
  r.at = util::SimTime::zero() + util::SimDuration::days(day) +
         util::SimDuration::hours(1);
  r.filename = std::move(filename);
  r.type_by_name = files::classify_extension(r.filename);
  r.size = size;
  r.downloaded = downloaded;
  r.download_attempted = true;
  r.infected = infected;
  // Distinct strain names need distinct ids (strain_ranking keys on id).
  r.strain = infected ? static_cast<malware::StrainId>(
                            std::hash<std::string>{}(strain) & 0x7fffffff)
                      : malware::kCleanStrain;
  r.strain_name = std::move(strain);
  r.content_key = r.filename + std::to_string(size);
  r.source_key = source;
  auto colon = source.find(':');
  r.source_ip = util::Ipv4::parse(source.substr(0, colon)).value_or(util::Ipv4{});
  return r;
}

TEST(Prevalence, CountsStudyTypesOnly) {
  std::vector<ResponseRecord> records = {
      record("a.mp3", false, false, ""),          // not a study type
      record("b.exe", true, true, "W32.X"),
      record("c.exe", true, false, ""),
      record("d.zip", true, true, "W32.X"),
      record("e.zip", false, false, ""),          // study type, not labeled
  };
  auto s = prevalence(records);
  EXPECT_EQ(s.total_responses, 5u);
  EXPECT_EQ(s.study_responses, 4u);
  EXPECT_EQ(s.labeled, 3u);
  EXPECT_EQ(s.infected, 2u);
  EXPECT_NEAR(s.malicious_fraction(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(s.exe_labeled, 2u);
  EXPECT_EQ(s.exe_infected, 1u);
  EXPECT_EQ(s.archive_labeled, 1u);
  EXPECT_EQ(s.archive_infected, 1u);
  EXPECT_DOUBLE_EQ(s.exe_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(s.archive_fraction(), 1.0);
}

TEST(Prevalence, EmptyIsZero) {
  std::vector<ResponseRecord> none;
  auto s = prevalence(none);
  EXPECT_EQ(s.total_responses, 0u);
  EXPECT_DOUBLE_EQ(s.malicious_fraction(), 0.0);
}

TEST(StrainRanking, OrdersByResponses) {
  std::vector<ResponseRecord> records;
  for (int i = 0; i < 6; ++i) records.push_back(record("a.exe", true, true, "Big"));
  for (int i = 0; i < 3; ++i) records.push_back(record("b.exe", true, true, "Mid"));
  records.push_back(record("c.exe", true, true, "Small"));
  records.push_back(record("clean.exe", true, false, ""));

  auto ranking = strain_ranking(records);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].name, "Big");
  EXPECT_EQ(ranking[0].responses, 6u);
  EXPECT_NEAR(ranking[0].share, 0.6, 1e-9);
  EXPECT_EQ(ranking[1].name, "Mid");
  EXPECT_EQ(ranking[2].name, "Small");

  EXPECT_NEAR(topk_share(ranking, 1), 0.6, 1e-9);
  EXPECT_NEAR(topk_share(ranking, 2), 0.9, 1e-9);
  EXPECT_NEAR(topk_share(ranking, 3), 1.0, 1e-9);
  EXPECT_NEAR(topk_share(ranking, 10), 1.0, 1e-9);
}

TEST(StrainRanking, CountsDistinctContentsAndSources) {
  std::vector<ResponseRecord> records = {
      record("a.exe", true, true, "X", 100, "1.1.1.1:5/a"),
      record("a.exe", true, true, "X", 100, "2.2.2.2:5/b"),
      record("b.exe", true, true, "X", 200, "1.1.1.1:5/a"),
  };
  auto ranking = strain_ranking(records);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].distinct_contents, 2u);
  EXPECT_EQ(ranking[0].distinct_sources, 2u);
}

TEST(Sources, ClassifiesAndComputesPrivateShare) {
  std::vector<ResponseRecord> records = {
      record("a.exe", true, true, "X", 100, "8.8.8.8:1/a"),
      record("a.exe", true, true, "X", 100, "192.168.1.2:1/b"),
      record("a.exe", true, true, "X", 100, "10.0.0.3:1/c"),
      record("a.exe", true, true, "X", 100, "7.7.7.7:1/d"),
      record("clean.exe", true, false, "", 100, "192.168.9.9:1/e"),  // clean ignored
  };
  auto s = sources(records);
  EXPECT_EQ(s.malicious_responses, 4u);
  EXPECT_EQ(s.by_class[util::IpClass::kPrivate], 2u);
  EXPECT_EQ(s.by_class[util::IpClass::kPublic], 2u);
  EXPECT_NEAR(s.private_fraction, 0.5, 1e-9);
  EXPECT_EQ(s.distinct_sources, 4u);
}

TEST(Sources, TopSourcesOrdered) {
  std::vector<ResponseRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(record("a.exe", true, true, "X", 100, "1.1.1.1:5/hot"));
  }
  records.push_back(record("a.exe", true, true, "X", 100, "2.2.2.2:5/cold"));
  auto s = sources(records, 1);
  ASSERT_EQ(s.top_sources.size(), 1u);
  EXPECT_EQ(s.top_sources[0].first, "1.1.1.1:5/hot");
  EXPECT_EQ(s.top_sources[0].second, 5u);
}

TEST(StrainSourceConcentration, SingleHostStrain) {
  std::vector<ResponseRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(record("g.exe", true, true, "Gobbler", 100, "9.9.9.9:1/ss"));
  }
  records.push_back(record("o.exe", true, true, "Other", 100, "1.1.1.1:1/a"));
  records.push_back(record("o.exe", true, true, "Other", 100, "2.2.2.2:1/b"));

  auto conc = strain_source_concentration(records);
  ASSERT_EQ(conc.size(), 2u);
  EXPECT_EQ(conc[0].name, "Gobbler");
  EXPECT_EQ(conc[0].distinct_sources, 1u);
  EXPECT_DOUBLE_EQ(conc[0].top_source_share, 1.0);
  EXPECT_EQ(conc[1].name, "Other");
  EXPECT_DOUBLE_EQ(conc[1].top_source_share, 0.5);
}

TEST(SizeDistribution, GroupsByExactSize) {
  std::vector<ResponseRecord> records = {
      record("a.exe", true, true, "X", 500),
      record("b.exe", true, true, "X", 500),
      record("c.exe", true, false, "", 500),
      record("d.exe", true, false, "", 777),
  };
  auto buckets = size_distribution(records);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].size, 500u);
  EXPECT_EQ(buckets[0].malicious, 2u);
  EXPECT_EQ(buckets[0].clean, 1u);
  EXPECT_EQ(buckets[1].size, 777u);
}

TEST(SizesPerStrain, CollectsDistinctSizes) {
  std::vector<ResponseRecord> records = {
      record("a.exe", true, true, "X", 500),
      record("b.exe", true, true, "X", 500),
      record("c.exe", true, true, "X", 600),
      record("d.exe", true, true, "Y", 700),
  };
  auto sizes = sizes_per_strain(records);
  EXPECT_EQ(sizes["X"], (std::set<std::uint64_t>{500, 600}));
  EXPECT_EQ(sizes["Y"], (std::set<std::uint64_t>{700}));
}

TEST(DailySeries, BinsByDayAndAccumulatesStrains) {
  std::vector<ResponseRecord> records = {
      record("a.exe", true, true, "X", 100, "1.1.1.1:1/a", 0),
      record("b.exe", true, false, "", 100, "1.1.1.1:1/a", 0),
      record("c.exe", true, true, "Y", 100, "1.1.1.1:1/a", 1),
      record("d.exe", true, true, "X", 100, "1.1.1.1:1/a", 2),
  };
  auto series = daily_series(records);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].day, 0);
  EXPECT_EQ(series[0].labeled, 2u);
  EXPECT_EQ(series[0].infected, 1u);
  EXPECT_DOUBLE_EQ(series[0].malicious_fraction(), 0.5);
  EXPECT_EQ(series[0].cumulative_strains, 1u);
  EXPECT_EQ(series[1].cumulative_strains, 2u);
  EXPECT_EQ(series[2].cumulative_strains, 2u);  // X already known
}

TEST(Csv, WritesHeaderAndRows) {
  std::vector<ResponseRecord> records = {
      record("plain.exe", true, true, "W32.X", 500, "8.8.8.8:9/a"),
      record("has,comma.exe", true, false, "", 600),
  };
  std::ostringstream out;
  write_csv(out, records);
  std::string text = out.str();
  EXPECT_NE(text.find("id,network,"), std::string::npos);
  EXPECT_NE(text.find("source_key"), std::string::npos);
  EXPECT_NE(text.find("plain.exe"), std::string::npos);
  EXPECT_NE(text.find("\"has,comma.exe\""), std::string::npos);
  EXPECT_NE(text.find("W32.X"), std::string::npos);
  // header + 2 rows
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Csv, EscapesQuotes) {
  auto r = record("say \"hi\".exe", true, false, "");
  std::ostringstream out;
  write_csv(out, std::vector<ResponseRecord>{r});
  EXPECT_NE(out.str().find("\"say \"\"hi\"\".exe\""), std::string::npos);
}

}  // namespace
}  // namespace p2p::analysis
