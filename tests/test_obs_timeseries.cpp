// TimeSeriesRecorder semantics (window deltas, setup baseline, ring bound,
// export shapes) and the determinism contract: a study's timeseries block
// is byte-identical across runs, and a sweep's across --jobs counts.
#include <gtest/gtest.h>

#include <sstream>

#include "core/study.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sweep/sweep.h"
#include "util/sim_time.h"

namespace p2p::obs {
namespace {

TimeSeriesConfig window_config(std::int64_t ms, std::size_t max_windows = 4096) {
  TimeSeriesConfig cfg;
  cfg.window = util::SimDuration::millis(ms);
  cfg.max_windows = max_windows;
  return cfg;
}

TEST(ObsTimeSeries, WindowsHoldCounterDeltasNotTotals) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  auto& sent = r.counter("net.sent");
  TimeSeriesRecorder rec(r, window_config(1000));
  sent.add(7);
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(1000));
  sent.add(3);
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(2000));

  TimeSeries series = rec.take();
  ASSERT_EQ(series.windows.size(), 2u);
  EXPECT_EQ(series.window_ms, 1000);
  ASSERT_EQ(series.windows[0].counters.size(), 1u);
  EXPECT_EQ(series.windows[0].counters[0].first, "net.sent");
  EXPECT_EQ(series.windows[0].counters[0].second, 7u);
  EXPECT_EQ(series.windows[0].end_ms, 1000);
  ASSERT_EQ(series.windows[1].counters.size(), 1u);
  EXPECT_EQ(series.windows[1].counters[0].second, 3u);
}

TEST(ObsTimeSeries, SetupActivityBeforeConstructionIsBaseline) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  r.counter("setup.work").add(100);
  TimeSeriesRecorder rec(r, window_config(1000));
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(1000));

  TimeSeries series = rec.take();
  ASSERT_EQ(series.windows.size(), 1u);
  // Unchanged since the baseline snapshot → zero delta → omitted.
  EXPECT_TRUE(series.windows[0].counters.empty());
}

TEST(ObsTimeSeries, GaugesAreSampledLevels) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  auto& depth = r.gauge("queue.depth");
  TimeSeriesRecorder rec(r, window_config(1000));
  depth.set(42);
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(1000));
  depth.set(17);
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(2000));

  TimeSeries series = rec.take();
  ASSERT_EQ(series.windows.size(), 2u);
  ASSERT_EQ(series.windows[0].gauges.size(), 1u);
  EXPECT_EQ(series.windows[0].gauges[0].second, 42);
  EXPECT_EQ(series.windows[1].gauges[0].second, 17);
}

TEST(ObsTimeSeries, RingBufferDropsOldestAndCounts) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  auto& c = r.counter("c");
  TimeSeriesRecorder rec(r, window_config(1000, 3));
  for (int i = 1; i <= 5; ++i) {
    c.add(1);
    rec.sample(util::SimTime::zero() + util::SimDuration::millis(1000 * i));
  }

  TimeSeries series = rec.take();
  ASSERT_EQ(series.windows.size(), 3u);
  EXPECT_EQ(series.windows_dropped, 2u);
  // The oldest two windows (end 1000, 2000) were dropped.
  EXPECT_EQ(series.windows[0].end_ms, 3000);
  EXPECT_EQ(series.windows[2].end_ms, 5000);
}

TEST(ObsTimeSeries, DisabledConfigRecordsNothing) {
  MetricsRegistry r;
  r.counter("c").add(5);
  TimeSeriesRecorder rec(r, TimeSeriesConfig{});  // window 0 → disabled
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(1000));
  TimeSeries series = rec.take();
  EXPECT_TRUE(series.windows.empty());
  EXPECT_TRUE(series.empty());
}

TEST(ObsTimeSeries, JsonJsonlCsvShapes) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  MetricsRegistry r;
  r.counter("a");
  auto& b = r.counter("b");
  auto& g = r.gauge("g");
  TimeSeriesRecorder rec(r, window_config(500));
  b.add(2);
  g.set(-3);
  rec.sample(util::SimTime::zero() + util::SimDuration::millis(500));
  TimeSeries series = rec.take();

  std::ostringstream json;
  write_timeseries_json(json, series);
  EXPECT_EQ(json.str(),
            "{\"window_ms\":500,\"dropped\":0,\"windows\":["
            "{\"end_ms\":500,\"counters\":{\"b\":2},\"gauges\":{\"g\":-3}}]}");

  std::ostringstream jsonl;
  write_timeseries_jsonl(jsonl, series);
  EXPECT_EQ(jsonl.str(),
            "{\"end_ms\":500,\"counters\":{\"b\":2},\"gauges\":{\"g\":-3}}\n");

  std::ostringstream csv;
  write_timeseries_csv(csv, series);
  EXPECT_EQ(csv.str(),
            "end_ms,kind,name,value\n"
            "500,counter,b,2\n"
            "500,gauge,g,-3\n");
}

// A short faulted study run twice produces byte-identical timeseries JSON —
// the windowed sampling must not perturb (or be perturbed by) the
// deterministic schedule.
TEST(ObsTimeSeriesStudy, TwoRunsProduceIdenticalBytes) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  auto cfg = core::limewire_quick();
  cfg.crawl.duration = util::SimDuration::hours(4);
  cfg.timeseries.window = util::SimDuration::hours(1);
  core::apply_faults(cfg, fault::preset_moderate(), /*fault_seed=*/7);

  auto render = [&] {
    auto result = core::run_limewire_study(cfg);
    std::ostringstream out;
    write_timeseries_json(out, result.timeseries);
    return out.str();
  };
  std::string first = render();
  std::string second = render();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("\"end_ms\":3600000"), std::string::npos);
  EXPECT_EQ(first, second);
}

// Enabling the recorder must not change what the simulation does: the same
// config with recording off yields the same records.
TEST(ObsTimeSeriesStudy, RecordingIsBehaviorNeutral) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  auto cfg = core::limewire_quick();
  cfg.crawl.duration = util::SimDuration::hours(4);

  auto baseline = core::run_limewire_study(cfg);
  cfg.timeseries.window = util::SimDuration::minutes(30);
  auto recorded = core::run_limewire_study(cfg);

  EXPECT_EQ(baseline.events_executed, recorded.events_executed);
  ASSERT_EQ(baseline.records.size(), recorded.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    EXPECT_EQ(baseline.records[i].at.millis(), recorded.records[i].at.millis());
    EXPECT_EQ(baseline.records[i].source_port, recorded.records[i].source_port);
  }
  // Windows tile warmup + crawl + the settle grace period; the final
  // (possibly partial) window ends exactly at the study end.
  ASSERT_GE(recorded.timeseries.windows.size(), 8u);
  EXPECT_EQ(recorded.timeseries.windows.back().end_ms,
            (cfg.crawl.warmup + cfg.crawl.duration).count_ms() + 600'000);
}

// Per-task series ride through the sweep unchanged by parallelism: the
// whole sweep JSON (which embeds them) is byte-identical for any --jobs.
TEST(ObsTimeSeriesSweep, JobsCountDoesNotChangeBytes) {
#ifdef P2P_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out (P2P_OBS_DISABLED)";
#endif

  sweep::PlanConfig plan;
  plan.network = sweep::NetworkKind::kLimewire;
  plan.quick = true;
  plan.replications = 3;
  plan.duration = util::SimDuration::hours(3);
  plan.timeseries.window = util::SimDuration::hours(1);

  auto render = [&](std::size_t jobs) {
    sweep::SweepOptions options;
    options.jobs = jobs;
    auto result = sweep::run(sweep::plan(plan), options);
    std::ostringstream out;
    sweep::write_json(out, result);
    return out.str();
  };
  std::string serial = render(1);
  std::string parallel = render(4);
  EXPECT_NE(serial.find("\"timeseries\""), std::string::npos);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace p2p::obs
