// Passive-worm epidemic dynamics and the network-wide size-filter
// countermeasure.
#include "agents/epidemic.h"

#include <gtest/gtest.h>

#include "malware/catalogs.h"

namespace p2p::agents {
namespace {

EpidemicSimulation::Config tiny_config() {
  EpidemicSimulation::Config cfg;
  cfg.seed = 77;
  cfg.ultrapeers = 4;
  cfg.users = 40;
  cfg.initial_infected = 2;
  cfg.duration = sim::SimDuration::days(3);
  cfg.sample_interval = sim::SimDuration::hours(12);
  cfg.corpus.num_titles = 200;
  cfg.behavior.mean_query_interval = sim::SimDuration::minutes(20);
  return cfg;
}

TEST(SwitchableAnswerer, CleanUntilInfected) {
  auto cat = malware::limewire_catalog();
  auto store = std::make_shared<malware::ArtifactStore>(cat.strains, 5);
  gnutella::SharedFileIndex index;
  index.add(std::make_shared<const files::FileContent>("legit song.mp3",
                                                       util::Bytes(100, 1)));
  SwitchableAnswerer answerer(store, 0, std::move(index), 9);

  EXPECT_FALSE(answerer.infected());
  EXPECT_EQ(answerer.answer("anything").size(), 0u);
  EXPECT_EQ(answerer.answer("legit song").size(), 1u);

  gnutella::QueryRouteTable clean_qrt(13);
  answerer.populate_qrt(clean_qrt);
  EXPECT_LT(clean_qrt.fill_ratio(), 0.01);

  answerer.infect();
  EXPECT_TRUE(answerer.infected());
  auto results = answerer.answer("anything");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].filename, "anything.exe");
  EXPECT_NE(answerer.resolve(results[0].index), nullptr);

  gnutella::QueryRouteTable worm_qrt(13);
  answerer.populate_qrt(worm_qrt);
  EXPECT_DOUBLE_EQ(worm_qrt.fill_ratio(), 1.0);
}

TEST(Epidemic, WormSpreadsWithoutDefense) {
  EpidemicSimulation sim(tiny_config());
  sim.run();
  const auto& curve = sim.infection_curve();
  ASSERT_GE(curve.size(), 2u);
  EXPECT_EQ(curve.front().infected, 2u);
  EXPECT_GT(sim.infected_count(), 10u);  // clear growth within three days
  // Monotone non-decreasing (no recovery in this model).
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].infected, curve[i - 1].infected);
  }
}

TEST(Epidemic, SizeFilterContainsTheWorm) {
  auto cfg = tiny_config();
  cfg.deploy_size_filter = true;
  EpidemicSimulation sim(cfg);
  sim.run();
  EXPECT_EQ(sim.infected_count(), cfg.initial_infected);
  EXPECT_GT(sim.total_downloads_blocked(), 0u);
}

TEST(Epidemic, NoExecutionNoSpread) {
  auto cfg = tiny_config();
  cfg.behavior.execute_prob = 0.0;
  EpidemicSimulation sim(cfg);
  sim.run();
  EXPECT_EQ(sim.infected_count(), cfg.initial_infected);
}

TEST(Epidemic, NoSeedsNoOutbreak) {
  auto cfg = tiny_config();
  cfg.initial_infected = 0;
  EpidemicSimulation sim(cfg);
  sim.run();
  EXPECT_EQ(sim.infected_count(), 0u);
}

TEST(Epidemic, DeterministicForSameSeed) {
  auto cfg = tiny_config();
  EpidemicSimulation a(cfg);
  a.run();
  EpidemicSimulation b(cfg);
  b.run();
  ASSERT_EQ(a.infection_curve().size(), b.infection_curve().size());
  for (std::size_t i = 0; i < a.infection_curve().size(); ++i) {
    EXPECT_EQ(a.infection_curve()[i].infected, b.infection_curve()[i].infected);
  }
}

}  // namespace
}  // namespace p2p::agents
