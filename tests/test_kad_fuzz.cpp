// KAD wire-format fuzzing: randomized round trips, byte-mutation sweeps,
// and garbage input. The codec must never crash or over-allocate, and
// valid packets must re-encode canonically. Loops scale with
// P2P_FUZZ_ROUNDS like the rest of the fuzz binary (see ci/run_tiers.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "kad/message.h"
#include "util/rng.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

kad::KadId random_kad_id(util::Rng& rng) {
  return kad::KadId{rng.next(), rng.next()};
}

kad::Contact random_contact(util::Rng& rng) {
  kad::Contact c;
  c.id = random_kad_id(rng);
  c.addr = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
            static_cast<std::uint16_t>(rng.bounded(65536))};
  c.firewalled = rng.chance(0.3);
  return c;
}

kad::SourceEntry random_entry(util::Rng& rng) {
  kad::SourceEntry e;
  e.keyword = random_kad_id(rng);
  std::size_t len = rng.index(60);
  for (std::size_t i = 0; i < len; ++i) {
    e.filename.push_back(static_cast<char>(32 + rng.index(95)));
  }
  e.size = rng.next();
  rng.fill(e.md5);
  e.owner = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
             static_cast<std::uint16_t>(rng.bounded(65536))};
  e.firewalled = rng.chance(0.5);
  return e;
}

kad::KadPacket random_packet(util::Rng& rng) {
  switch (rng.index(11)) {
    case 0:
      return kad::make_packet(kad::Ping{random_contact(rng)});
    case 1:
      return kad::make_packet(kad::Pong{random_contact(rng)});
    case 2:
      return kad::make_packet(
          kad::FindNode{random_contact(rng), random_kad_id(rng)});
    case 3: {
      kad::FindNodeReply r;
      std::size_t n = rng.index(kad::kMaxContacts + 1);
      for (std::size_t i = 0; i < n; ++i) r.contacts.push_back(random_contact(rng));
      return kad::make_packet(std::move(r));
    }
    case 4:
      return kad::make_packet(
          kad::FindValue{random_contact(rng), random_kad_id(rng)});
    case 5: {
      kad::FindValueReply r;
      std::size_t e = rng.index(8), c = rng.index(8);
      for (std::size_t i = 0; i < e; ++i) r.entries.push_back(random_entry(rng));
      for (std::size_t i = 0; i < c; ++i) r.contacts.push_back(random_contact(rng));
      return kad::make_packet(std::move(r));
    }
    case 6: {
      kad::Store s;
      s.sender = random_contact(rng);
      std::size_t n = rng.index(8) + 1;
      for (std::size_t i = 0; i < n; ++i) s.entries.push_back(random_entry(rng));
      return kad::make_packet(std::move(s));
    }
    case 7:
      return kad::make_packet(
          kad::StoreReply{static_cast<std::uint32_t>(rng.next())});
    case 8: {
      kad::ServerRegister r;
      r.owner = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
                 static_cast<std::uint16_t>(rng.bounded(65536))};
      r.firewalled = rng.chance(0.5);
      std::size_t n = rng.index(6);
      for (std::size_t i = 0; i < n; ++i) r.entries.push_back(random_entry(rng));
      return kad::make_packet(std::move(r));
    }
    case 9: {
      kad::ServerQuery q;
      q.query_id = rng.next();
      std::size_t len = rng.index(40);
      for (std::size_t i = 0; i < len; ++i) {
        q.query.push_back(static_cast<char>(32 + rng.index(95)));
      }
      return kad::make_packet(std::move(q));
    }
    default: {
      kad::ServerQueryReply r;
      r.query_id = rng.next();
      std::size_t n = rng.index(6);
      for (std::size_t i = 0; i < n; ++i) r.entries.push_back(random_entry(rng));
      return kad::make_packet(std::move(r));
    }
  }
}

class KadRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KadRoundTripFuzz, RandomPacketsSurviveCanonically) {
  util::Rng rng(GetParam() * 7919);
  int rounds = fuzz_rounds(50);
  for (int i = 0; i < rounds; ++i) {
    kad::KadPacket pkt = random_packet(rng);
    auto wire = kad::serialize(pkt);
    auto parsed = kad::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->command, pkt.command);
    // Canonical: re-encoding the parse reproduces the original bytes.
    EXPECT_EQ(kad::serialize(*parsed), wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KadRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

class KadMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KadMutationFuzz, MutatedPacketsNeverCrashTheParser) {
  util::Rng rng(GetParam() * 104729);
  int rounds = fuzz_rounds(80);
  for (int i = 0; i < rounds; ++i) {
    auto wire = kad::serialize(random_packet(rng));
    util::Bytes mutated = wire;
    std::size_t flips = rng.index(8) + 1;
    for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    if (rng.chance(0.3)) mutated.resize(rng.index(mutated.size() + 1));
    EXPECT_NO_THROW({ auto r = kad::parse(mutated); (void)r; });
  }
}

TEST_P(KadMutationFuzz, RandomBytesNeverCrashTheParser) {
  util::Rng rng(GetParam() * 6151);
  int rounds = fuzz_rounds(80);
  for (int i = 0; i < rounds; ++i) {
    util::Bytes garbage(rng.index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.index(256));
    EXPECT_NO_THROW({ auto r = kad::parse(garbage); (void)r; });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KadMutationFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace p2p
