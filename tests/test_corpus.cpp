#include "files/corpus.h"

#include <gtest/gtest.h>

#include "files/file_types.h"
#include "util/strings.h"

namespace p2p::files {
namespace {

CorpusConfig small_config() {
  CorpusConfig cfg;
  cfg.seed = 77;
  cfg.num_titles = 300;
  return cfg;
}

TEST(Corpus, DeterministicAcrossInstances) {
  ContentCatalog a(small_config());
  ContentCatalog b(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 17) {
    EXPECT_EQ(a.entry(i).name, b.entry(i).name);
    EXPECT_EQ(a.entry(i).size, b.entry(i).size);
    EXPECT_EQ(a.content(i)->sha1(), b.content(i)->sha1());
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  CorpusConfig cfg2 = small_config();
  cfg2.seed = 78;
  ContentCatalog a(small_config());
  ContentCatalog b(cfg2);
  int same = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (a.entry(i).name == b.entry(i).name) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Corpus, AdvertisedSizeMatchesContent) {
  ContentCatalog catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); i += 13) {
    EXPECT_EQ(catalog.entry(i).size, catalog.content(i)->size()) << i;
  }
}

TEST(Corpus, ContentMagicMatchesType) {
  ContentCatalog catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); i += 11) {
    const auto& entry = catalog.entry(i);
    auto content = catalog.content(i);
    FileType magic = content->type_by_magic();
    switch (entry.type) {
      case FileType::kAudio: EXPECT_EQ(magic, FileType::kAudio); break;
      case FileType::kVideo: EXPECT_EQ(magic, FileType::kVideo); break;
      case FileType::kExecutable: EXPECT_EQ(magic, FileType::kExecutable); break;
      case FileType::kArchive: EXPECT_EQ(magic, FileType::kArchive); break;
      case FileType::kImage: EXPECT_EQ(magic, FileType::kImage); break;
      case FileType::kDocument: EXPECT_EQ(magic, FileType::kDocument); break;
      default: break;
    }
  }
}

TEST(Corpus, ExtensionMatchesType) {
  ContentCatalog catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(classify_extension(catalog.entry(i).name), catalog.entry(i).type) << i;
  }
}

TEST(Corpus, QueryMatchesName) {
  // A work's natural query must keyword-match its filename, or honest
  // sharers could never be found.
  ContentCatalog catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); i += 7) {
    const auto& e = catalog.entry(i);
    EXPECT_TRUE(util::keyword_match(e.query, e.name))
        << "query '" << e.query << "' vs name '" << e.name << "'";
  }
}

TEST(Corpus, TypeMixRoughlyMatchesConfig) {
  CorpusConfig cfg;
  cfg.seed = 5;
  cfg.num_titles = 3000;
  ContentCatalog catalog(cfg);
  std::map<FileType, int> counts;
  for (std::size_t i = 0; i < catalog.size(); ++i) ++counts[catalog.entry(i).type];
  auto frac = [&](FileType t) {
    return static_cast<double>(counts[t]) / static_cast<double>(catalog.size());
  };
  EXPECT_NEAR(frac(FileType::kAudio), cfg.frac_audio, 0.05);
  EXPECT_NEAR(frac(FileType::kVideo), cfg.frac_video, 0.04);
  EXPECT_NEAR(frac(FileType::kExecutable), cfg.frac_executable, 0.03);
  EXPECT_NEAR(frac(FileType::kArchive), cfg.frac_archive, 0.03);
}

TEST(Corpus, ZipfSamplingFavorsLowRanks) {
  ContentCatalog catalog(small_config());
  util::Rng rng(3);
  std::size_t low = 0, high = 0;
  for (int i = 0; i < 10'000; ++i) {
    std::size_t r = catalog.sample(rng);
    if (r < 30) ++low;
    if (r >= 270) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(Corpus, PopularityDecreasesWithRank) {
  ContentCatalog catalog(small_config());
  EXPECT_GT(catalog.popularity(0), catalog.popularity(10));
  EXPECT_GT(catalog.popularity(10), catalog.popularity(200));
}

TEST(Corpus, ContentIsCached) {
  ContentCatalog catalog(small_config());
  auto a = catalog.content(5);
  auto b = catalog.content(5);
  EXPECT_EQ(a.get(), b.get());
}

TEST(Corpus, ArchivesAreValidZips) {
  ContentCatalog catalog(small_config());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.entry(i).type != FileType::kArchive) continue;
    EXPECT_EQ(catalog.content(i)->type_by_magic(), FileType::kArchive) << i;
  }
}

TEST(Corpus, RejectsEmptyCatalog) {
  CorpusConfig cfg;
  cfg.num_titles = 0;
  EXPECT_THROW(ContentCatalog{cfg}, std::invalid_argument);
}

TEST(Corpus, OutOfRangeThrows) {
  ContentCatalog catalog(small_config());
  EXPECT_THROW((void)catalog.entry(catalog.size()), std::out_of_range);
  EXPECT_THROW((void)catalog.content(catalog.size()), std::out_of_range);
}

}  // namespace
}  // namespace p2p::files
