// Sharded-engine suite (ctest -L shard).
//
// Two halves:
//  * Differential: the full studies — both networks, quick presets, several
//    seeds — must produce byte-identical JSON reports, trace files, and
//    time series at every --shards count, fault-free and faulted alike.
//    `--shards 1` is the serial baseline the parallel counts are diffed
//    against.
//  * Properties of the conservative lookahead scheduler, model-checked
//    against a single-queue reference replay: randomized latency matrices
//    never deliver a message before send-time + latency, same-(at, origin,
//    seq) keys are never reordered, and windows drain cleanly at barriers.
#include "sim/sharded_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/study.h"
#include "fault/fault.h"
#include "trace/codec.h"
#include "trace/writer.h"
#include "util/rng.h"

namespace p2p {
namespace {

// ---------------------------------------------------------------------------
// Differential study runs
// ---------------------------------------------------------------------------

core::LimewireStudyConfig lw_config(std::uint64_t seed, std::size_t shards) {
  core::LimewireStudyConfig cfg = core::limewire_quick();
  cfg.seed = seed;
  cfg.shards = shards;
  return cfg;
}

core::OpenFtStudyConfig oft_config(std::uint64_t seed, std::size_t shards) {
  core::OpenFtStudyConfig cfg = core::openft_quick();
  cfg.seed = seed;
  cfg.shards = shards;
  return cfg;
}

std::string report_json(const core::StudyResult& result,
                        const std::string& network) {
  core::Report report = core::build_report(result.records, network);
  core::attach_fault_report(report, result.faults_enabled,
                            result.fault_counters, result.crawl_stats);
  report.timeseries = result.timeseries;
  std::ostringstream out;
  core::write_report_json(out, report);
  return out.str();
}

std::string lw_report(std::uint64_t seed, std::size_t shards) {
  return report_json(core::run_limewire_study(lw_config(seed, shards)),
                     "limewire");
}

std::string oft_report(std::uint64_t seed, std::size_t shards) {
  return report_json(core::run_openft_study(oft_config(seed, shards)),
                     "openft");
}

TEST(ShardDifferential, LimewireReportsIdenticalAcrossShardCounts) {
  for (std::uint64_t seed : {7ull, 2006ull}) {
    std::string baseline = lw_report(seed, 1);
    ASSERT_FALSE(baseline.empty());
    for (std::size_t shards : {2u, 4u, 7u}) {
      EXPECT_EQ(baseline, lw_report(seed, shards))
          << "limewire seed " << seed << " diverged at " << shards
          << " shards";
    }
  }
}

TEST(ShardDifferential, OpenFtReportsIdenticalAcrossShardCounts) {
  for (std::uint64_t seed : {7ull, 2007ull}) {
    std::string baseline = oft_report(seed, 1);
    ASSERT_FALSE(baseline.empty());
    for (std::size_t shards : {2u, 4u, 7u}) {
      EXPECT_EQ(baseline, oft_report(seed, shards))
          << "openft seed " << seed << " diverged at " << shards << " shards";
    }
  }
}

TEST(ShardDifferential, RepeatedShardedRunsAreBitReproducible) {
  EXPECT_EQ(lw_report(11, 4), lw_report(11, 4));
  EXPECT_EQ(oft_report(11, 4), oft_report(11, 4));
}

TEST(ShardDifferential, FaultedRunsIdenticalAcrossShardCounts) {
  auto spec = fault::parse_spec("moderate");
  ASSERT_TRUE(spec.has_value());
  for (std::size_t shards : {4u, 7u}) {
    {
      core::LimewireStudyConfig base = lw_config(7, 1);
      core::apply_faults(base, *spec);
      core::LimewireStudyConfig cfg = lw_config(7, shards);
      core::apply_faults(cfg, *spec);
      EXPECT_EQ(report_json(core::run_limewire_study(base), "limewire"),
                report_json(core::run_limewire_study(cfg), "limewire"));
    }
    {
      core::OpenFtStudyConfig base = oft_config(7, 1);
      core::apply_faults(base, *spec);
      core::OpenFtStudyConfig cfg = oft_config(7, shards);
      core::apply_faults(cfg, *spec);
      EXPECT_EQ(report_json(core::run_openft_study(base), "openft"),
                report_json(core::run_openft_study(cfg), "openft"));
    }
  }
}

TEST(ShardDifferential, TimeseriesIdenticalAcrossShardCounts) {
  auto with_ts = [](std::size_t shards) {
    core::LimewireStudyConfig cfg = lw_config(7, shards);
    cfg.timeseries.window = sim::SimDuration::minutes(30);
    return report_json(core::run_limewire_study(cfg), "limewire");
  };
  std::string baseline = with_ts(1);
  EXPECT_NE(baseline.find("\"timeseries\""), std::string::npos);
  EXPECT_EQ(baseline, with_ts(4));
}

std::string record_trace(const std::filesystem::path& path, std::uint64_t seed,
                         std::size_t shards, bool limewire) {
  trace::TraceHeader header;
  header.seed = seed;
  std::string bytes;
  if (limewire) {
    core::LimewireStudyConfig cfg = lw_config(seed, shards);
    header.network = "limewire";
    header.config_hash = core::config_hash(cfg);
    header.crawl_duration_ms = cfg.crawl.duration.count_ms();
    trace::TraceWriter writer(path.string(), header);
    EXPECT_TRUE(writer.ok());
    auto result = core::run_limewire_study(cfg, &writer);
    writer.write_summary(core::study_summary(result));
    writer.close();
    EXPECT_TRUE(writer.ok());
  } else {
    core::OpenFtStudyConfig cfg = oft_config(seed, shards);
    header.network = "openft";
    header.config_hash = core::config_hash(cfg);
    header.crawl_duration_ms = cfg.crawl.duration.count_ms();
    trace::TraceWriter writer(path.string(), header);
    EXPECT_TRUE(writer.ok());
    auto result = core::run_openft_study(cfg, &writer);
    writer.write_summary(core::study_summary(result));
    writer.close();
    EXPECT_TRUE(writer.ok());
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ShardDifferential, TraceBytesIdenticalAcrossShardCounts) {
  std::filesystem::path dir = ::testing::TempDir();
  for (bool limewire : {true, false}) {
    const char* tag = limewire ? "lw" : "oft";
    std::string baseline =
        record_trace(dir / (std::string("shard1_") + tag + ".p2pt"), 7, 1,
                     limewire);
    ASSERT_FALSE(baseline.empty());
    std::string sharded =
        record_trace(dir / (std::string("shard4_") + tag + ".p2pt"), 7, 4,
                     limewire);
    EXPECT_EQ(baseline, sharded) << tag << " trace diverged at 4 shards";
  }
}

TEST(ShardDifferential, ConfigHashMarksShardedButNotTheCount) {
  core::LimewireStudyConfig legacy = lw_config(7, 0);
  // The sharded model is a different generator than the legacy serial model,
  // so the two must never share trace caches; but every shard count of the
  // sharded model produces identical bytes, so the count must not leak in.
  EXPECT_NE(core::config_hash(legacy), core::config_hash(lw_config(7, 1)));
  EXPECT_EQ(core::config_hash(lw_config(7, 1)),
            core::config_hash(lw_config(7, 4)));
  // The SoA capacity model is yet another generator: its marker must differ
  // from both the serial and the sharded-legacy digests, and must itself be
  // shard-count-invariant.
  core::LimewireStudyConfig soa1 = lw_config(7, 1);
  soa1.soa_capacity = true;
  core::LimewireStudyConfig soa4 = lw_config(7, 4);
  soa4.soa_capacity = true;
  EXPECT_NE(core::config_hash(soa1), core::config_hash(legacy));
  EXPECT_NE(core::config_hash(soa1), core::config_hash(lw_config(7, 1)));
  EXPECT_EQ(core::config_hash(soa1), core::config_hash(soa4));
}

TEST(ShardDifferential, SoaCapacityModelIdenticalAcrossShardCounts) {
  // --shards routes to the full-fidelity legacy model by default; the SoA
  // capacity variant stays reachable behind soa_capacity and keeps its own
  // shard-count invariance.
  auto lw_soa = [](std::size_t shards) {
    core::LimewireStudyConfig cfg = lw_config(7, shards);
    cfg.soa_capacity = true;
    return report_json(core::run_limewire_study(cfg), "limewire");
  };
  auto oft_soa = [](std::size_t shards) {
    core::OpenFtStudyConfig cfg = oft_config(7, shards);
    cfg.soa_capacity = true;
    return report_json(core::run_openft_study(cfg), "openft");
  };
  std::string lw_base = lw_soa(1);
  ASSERT_FALSE(lw_base.empty());
  EXPECT_EQ(lw_base, lw_soa(4));
  std::string oft_base = oft_soa(1);
  ASSERT_FALSE(oft_base.empty());
  EXPECT_EQ(oft_base, oft_soa(4));
}

TEST(ShardDifferential, LegacyShardedTracksSerialAtBandLevel) {
  // Serial and sharded-legacy are distinct generators (latency draws are
  // keyed vs. stream-drawn, failure notification costs 2L vs. L), so no
  // byte-level agreement is expected — but they simulate the same study and
  // must land in the same statistical band.
  core::StudyResult serial = core::run_limewire_study(lw_config(7, 0));
  core::StudyResult sharded = core::run_limewire_study(lw_config(7, 2));
  ASSERT_GT(serial.crawl_stats.study_responses, 0u);
  ASSERT_GT(sharded.crawl_stats.study_responses, 0u);
  auto ratio = [](double a, double b) { return a > b ? a / b : b / a; };
  EXPECT_LT(ratio(double(serial.crawl_stats.study_responses),
                  double(sharded.crawl_stats.study_responses)),
            2.0);
  EXPECT_LT(ratio(double(serial.crawl_stats.queries_sent),
                  double(sharded.crawl_stats.queries_sent)),
            1.2);
  EXPECT_GT(serial.messages_delivered, 0u);
  EXPECT_GT(sharded.messages_delivered, 0u);
}

// ---------------------------------------------------------------------------
// Lookahead-scheduler properties, model-checked against a single-queue
// reference replay.
//
// Workload: `kEntities` relays. Handler (id, step) posts one successor to
// dst = f(id, step) with latency L[id % kDim][dst % kDim] taken from a
// seeded random matrix with entries >= the lookahead floor. Everything is a
// pure function of (seed, id, step), so an independent model replay with a
// plain priority queue must visit exactly the same (time, origin, step)
// tuples in exactly the same per-entity order.
// ---------------------------------------------------------------------------

constexpr std::size_t kEntities = 64;
constexpr std::size_t kDim = 16;
constexpr std::int64_t kLookaheadMs = 20;
constexpr std::int64_t kHorizonMs = 5'000;

struct Delivery {
  std::int64_t at_ms = 0;
  std::uint32_t origin = 0;
  std::uint32_t step = 0;

  bool operator==(const Delivery&) const = default;
};

struct LatencyMatrix {
  std::int64_t l[kDim][kDim];

  explicit LatencyMatrix(std::uint64_t seed) {
    util::Rng rng(seed);
    for (auto& row : l) {
      for (auto& cell : row) {
        cell = kLookaheadMs + static_cast<std::int64_t>(rng.bounded(480));
      }
    }
  }
};

std::uint32_t next_dst(std::uint32_t id, std::uint32_t step) {
  std::uint64_t state = (std::uint64_t{id} << 32) | step;
  return static_cast<std::uint32_t>(util::splitmix64(state) % kEntities);
}

struct Harness {
  sim::ShardedEngine engine;
  const LatencyMatrix& latency;
  // One log per entity: an entity lives on exactly one shard, so its
  // handler executions are serial and the logs are race-free by design.
  std::vector<std::vector<Delivery>> logs;
  std::vector<sim::ShardedEngine::EntityId> ids;
  bool early_delivery = false;

  Harness(std::size_t shards, const LatencyMatrix& lat)
      : engine([&] {
          sim::ShardedEngine::Config cfg;
          cfg.shards = shards;
          cfg.lookahead = sim::SimDuration::millis(kLookaheadMs);
          return cfg;
        }()),
        latency(lat),
        logs(kEntities) {
    for (std::size_t i = 0; i < kEntities; ++i) {
      ids.push_back(engine.add_entity(0xfeedull ^ (i * 0x9e37ull)));
    }
  }

  void relay(std::uint32_t id, std::uint32_t step, std::int64_t expect_ms) {
    if (engine.now().millis() != expect_ms) early_delivery = true;
    logs[id].push_back(Delivery{engine.now().millis(), id, step});
    std::uint32_t dst = next_dst(id, step);
    std::int64_t delay = latency.l[id % kDim][dst % kDim];
    sim::SimTime at = engine.now() + sim::SimDuration::millis(delay);
    if (at.millis() > kHorizonMs) return;
    std::int64_t at_ms = at.millis();
    engine.post(ids[dst], at,
                [this, dst, next = step + 1, at_ms] { relay(dst, next, at_ms); });
  }

  void bootstrap_and_run() {
    for (std::uint32_t i = 0; i < kEntities; ++i) {
      std::int64_t at_ms = static_cast<std::int64_t>(i % 10);
      engine.post(ids[i], sim::SimTime::at_millis(at_ms),
                  [this, i, at_ms] { relay(i, 0, at_ms); });
    }
    engine.run_all();
  }
};

// Reference model: the same workload on a plain ordered queue keyed
// (at, origin, per-origin seq) — the intrinsic event key the engine
// guarantees at every shard count.
std::vector<std::vector<Delivery>> model_replay(const LatencyMatrix& latency) {
  struct Msg {
    std::int64_t at;
    std::uint32_t oid;
    std::uint64_t oseq;
    std::uint32_t dst;
    std::uint32_t step;
  };
  auto later = [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at > b.at;
    if (a.oid != b.oid) return a.oid > b.oid;
    return a.oseq > b.oseq;
  };
  std::priority_queue<Msg, std::vector<Msg>, decltype(later)> queue(later);
  std::vector<std::uint64_t> oseq(kEntities, 0);
  // Bootstrap posts take the destination's own counter (self-posts).
  for (std::uint32_t i = 0; i < kEntities; ++i) {
    queue.push(Msg{static_cast<std::int64_t>(i % 10), i, oseq[i]++, i, 0});
  }
  std::vector<std::vector<Delivery>> logs(kEntities);
  while (!queue.empty()) {
    Msg m = queue.top();
    queue.pop();
    logs[m.dst].push_back(Delivery{m.at, m.dst, m.step});
    std::uint32_t dst = next_dst(m.dst, m.step);
    std::int64_t at = m.at + latency.l[m.dst % kDim][dst % kDim];
    if (at > kHorizonMs) continue;
    queue.push(Msg{at, m.dst, oseq[m.dst]++, dst, m.step + 1});
  }
  return logs;
}

TEST(ShardLookahead, RandomMatricesNeverDeliverEarlyAndMatchModel) {
  for (std::uint64_t seed : {1ull, 42ull, 9001ull}) {
    LatencyMatrix latency(seed);
    std::vector<std::vector<Delivery>> reference = model_replay(latency);
    for (std::size_t shards : {1u, 2u, 4u, 7u}) {
      Harness h(shards, latency);
      h.bootstrap_and_run();
      EXPECT_FALSE(h.early_delivery)
          << "delivery before send+latency at " << shards << " shards";
      ASSERT_EQ(h.logs.size(), reference.size());
      for (std::size_t e = 0; e < kEntities; ++e) {
        EXPECT_EQ(h.logs[e], reference[e])
            << "entity " << e << " log diverged from the single-queue "
            << "reference at " << shards << " shards (matrix seed " << seed
            << ")";
      }
      if (shards > 1) {
        EXPECT_GT(h.engine.stats().cross_shard_messages, 0u)
            << "workload never crossed a shard boundary — test is vacuous";
      }
    }
  }
}

TEST(ShardLookahead, SameKeyMessagesAreNeverReordered) {
  constexpr int kBurst = 32;
  for (std::size_t shards : {1u, 4u}) {
    sim::ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.lookahead = sim::SimDuration::millis(kLookaheadMs);
    sim::ShardedEngine engine(cfg);
    auto a = engine.add_entity(1);
    auto b = engine.add_entity(2);
    std::vector<int> received;
    engine.post(a, sim::SimTime::at_millis(0), [&] {
      // One origin, one destination, one timestamp: delivery must follow
      // post order (the per-origin sequence breaks the tie).
      sim::SimTime at = engine.now() + sim::SimDuration::millis(kLookaheadMs);
      for (int i = 0; i < kBurst; ++i) {
        engine.post(b, at, [&received, i] { received.push_back(i); });
      }
    });
    engine.run_all();
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kBurst));
    for (int i = 0; i < kBurst; ++i) {
      EXPECT_EQ(received[static_cast<std::size_t>(i)], i)
          << "same-key reorder at " << shards << " shards";
    }
  }
}

TEST(ShardLookahead, WindowsDrainCleanlyAtBarriers) {
  LatencyMatrix latency(7);
  std::vector<std::vector<Delivery>> reference = model_replay(latency);
  for (std::size_t shards : {1u, 4u}) {
    Harness h(shards, latency);
    for (std::uint32_t i = 0; i < kEntities; ++i) {
      std::int64_t at_ms = static_cast<std::int64_t>(i % 10);
      h.engine.post(h.ids[i], sim::SimTime::at_millis(at_ms),
                    [&h, i, at_ms] { h.relay(i, 0, at_ms); });
    }
    // Chop the run into arbitrary barriers; each run_until must retire
    // every event at or before the barrier and nothing after it.
    const std::int64_t barriers[] = {137, 1'000, 2'500, kHorizonMs + 600};
    for (std::int64_t barrier : barriers) {
      h.engine.run_until(sim::SimTime::at_millis(barrier));
      EXPECT_EQ(h.engine.now(), sim::SimTime::at_millis(barrier));
      for (const auto& log : h.logs) {
        if (!log.empty()) EXPECT_LE(log.back().at_ms, barrier);
      }
    }
    EXPECT_TRUE(h.engine.empty());
    EXPECT_FALSE(h.early_delivery);
    for (std::size_t e = 0; e < kEntities; ++e) {
      EXPECT_EQ(h.logs[e], reference[e])
          << "barrier-chopped run diverged at entity " << e << ", " << shards
          << " shards";
    }
  }
}

TEST(ShardLookahead, CrossEntityPostBelowFloorThrows) {
  for (std::size_t shards : {1u, 4u}) {
    sim::ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.lookahead = sim::SimDuration::millis(kLookaheadMs);
    sim::ShardedEngine engine(cfg);
    auto a = engine.add_entity(1);
    auto b = engine.add_entity(2);
    engine.post(a, sim::SimTime::at_millis(100), [&] {
      engine.post(b, engine.now() + sim::SimDuration::millis(kLookaheadMs - 1),
                  [] {});
    });
    EXPECT_THROW(engine.run_all(), std::logic_error)
        << "lookahead floor not enforced at " << shards << " shards";
  }
}

TEST(ShardLookahead, PostingInThePastThrows) {
  for (std::size_t shards : {1u, 4u}) {
    sim::ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.lookahead = sim::SimDuration::millis(kLookaheadMs);
    sim::ShardedEngine engine(cfg);
    auto a = engine.add_entity(1);
    engine.post(a, sim::SimTime::at_millis(100), [&] {
      engine.post(a, sim::SimTime::at_millis(50), [] {});
    });
    EXPECT_THROW(engine.run_all(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace p2p
