// Executor contract + EventQueue specifics.
//
// The first half is engine-agnostic: every test runs parametrically against
// the serial EventQueue and the ShardedEngine at 1 and 4 shards through the
// sim::Engine interface, pinning the contract both executors must share —
// time order, same-context tie order, clock visibility, monotonicity, and
// run_until/run_all semantics. The second half covers what is genuinely
// EventQueue-only (step(), the 4-ary heap's pop-order equivalence to the
// old binary heap) and the Task small-buffer closure type.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/sharded_engine.h"
#include "util/rng.h"

namespace p2p::sim {
namespace {

// ---------------------------------------------------------------------------
// Engine contract (parametric over executors)
// ---------------------------------------------------------------------------

enum class EngineKind { kSerial, kSharded1, kSharded4 };

std::unique_ptr<Engine> make_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSerial:
      return std::make_unique<EventQueue>();
    case EngineKind::kSharded1:
      return std::make_unique<ShardedEngine>(ShardedEngine::Config{1});
    case EngineKind::kSharded4:
      return std::make_unique<ShardedEngine>(ShardedEngine::Config{4});
  }
  return nullptr;
}

std::string kind_name(const ::testing::TestParamInfo<EngineKind>& info) {
  switch (info.param) {
    case EngineKind::kSerial: return "EventQueue";
    case EngineKind::kSharded1: return "Sharded1";
    case EngineKind::kSharded4: return "Sharded4";
  }
  return "Unknown";
}

class EngineContract : public ::testing::TestWithParam<EngineKind> {
 protected:
  std::unique_ptr<Engine> q_ = make_engine(GetParam());
  Engine& q() { return *q_; }
};

TEST_P(EngineContract, RunsInTimeOrder) {
  std::vector<int> order;
  q().schedule_at(SimTime::at_millis(30), [&] { order.push_back(3); });
  q().schedule_at(SimTime::at_millis(10), [&] { order.push_back(1); });
  q().schedule_at(SimTime::at_millis(20), [&] { order.push_back(2); });
  q().run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q().now(), SimTime::at_millis(30));
}

TEST_P(EngineContract, TiesBreakByScheduleOrder) {
  // Same instant, same scheduling context: runs in scheduling order on
  // every executor (insertion seq on the serial queue, origin-sequence on
  // the sharded one).
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q().schedule_at(SimTime::at_millis(10), [&order, i] { order.push_back(i); });
  }
  q().run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(EngineContract, ClockAdvancesDuringExecution) {
  SimTime seen;
  q().schedule_at(SimTime::at_millis(42), [&] { seen = q().now(); });
  q().run_all();
  EXPECT_EQ(seen, SimTime::at_millis(42));
}

TEST_P(EngineContract, EventsCanScheduleMoreEvents) {
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q().schedule_in(SimDuration::millis(10), tick);
  };
  q().schedule_in(SimDuration::millis(10), tick);
  q().run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q().now(), SimTime::at_millis(50));
}

TEST_P(EngineContract, SchedulingInPastThrows) {
  q().schedule_at(SimTime::at_millis(100), [] {});
  q().run_all();
  EXPECT_THROW(q().schedule_at(SimTime::at_millis(50), [] {}),
               std::invalid_argument);
}

TEST_P(EngineContract, RunUntilLeavesLaterEventsQueued) {
  int ran = 0;
  q().schedule_at(SimTime::at_millis(10), [&] { ++ran; });
  q().schedule_at(SimTime::at_millis(100), [&] { ++ran; });
  q().run_until(SimTime::at_millis(50));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q().pending(), 1u);
  EXPECT_EQ(q().now(), SimTime::at_millis(50));
  q().run_until(SimTime::at_millis(200));
  EXPECT_EQ(ran, 2);
}

TEST_P(EngineContract, RunUntilInclusiveOfBoundary) {
  bool ran = false;
  q().schedule_at(SimTime::at_millis(50), [&] { ran = true; });
  q().run_until(SimTime::at_millis(50));
  EXPECT_TRUE(ran);
}

TEST_P(EngineContract, CountsExecutedAndDrains) {
  for (int i = 0; i < 7; ++i) q().schedule_in(SimDuration::millis(i), [] {});
  q().run_all();
  EXPECT_EQ(q().executed(), 7u);
  EXPECT_TRUE(q().empty());
  EXPECT_EQ(q().pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Executors, EngineContract,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kSharded1,
                                           EngineKind::kSharded4),
                         kind_name);

// ---------------------------------------------------------------------------
// EventQueue specifics (single-event step(), heap order equivalence)
// ---------------------------------------------------------------------------

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_in(SimDuration::millis(1), [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

// Reference for the property test below: the binary heap the queue used
// before the 4-ary rewrite, with its exact Later comparator. Every report
// byte depends on pop order, so the new heap must reproduce this order —
// not just "some valid (at, seq) order".
struct RefEntry {
  SimTime at;
  std::uint64_t seq;
};
struct RefLater {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

TEST(EventQueue, PropertyPopsMatchBinaryHeapUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(0x4a77'0000 + seed);
    EventQueue q;
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefLater> ref;
    std::uint64_t next_seq = 0;
    std::vector<std::pair<std::int64_t, std::uint64_t>> popped;
    std::vector<RefEntry> expected;

    // Interleave bursts of pushes (with heavy stamp collisions so seq
    // tie-breaks are exercised) and partial drains that restructure the
    // heap mid-stream.
    for (int round = 0; round < 40; ++round) {
      std::uint64_t pushes = rng.bounded(30);
      for (std::uint64_t i = 0; i < pushes; ++i) {
        SimTime at = q.now() + SimDuration::millis(
                                   static_cast<std::int64_t>(rng.bounded(8)));
        std::uint64_t seq = next_seq++;
        q.schedule_at(at, [&popped, at, seq] {
          popped.emplace_back(at.millis(), seq);
        });
        ref.push(RefEntry{at, seq});
      }
      std::uint64_t pops = rng.bounded(20);
      for (std::uint64_t i = 0; i < pops && !ref.empty(); ++i) {
        expected.push_back(ref.top());
        ref.pop();
        ASSERT_TRUE(q.step());
      }
    }
    while (!ref.empty()) {
      expected.push_back(ref.top());
      ref.pop();
      ASSERT_TRUE(q.step());
    }
    ASSERT_FALSE(q.step());

    ASSERT_EQ(popped.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].first, expected[i].at.millis()) << "seed " << seed;
      EXPECT_EQ(popped[i].second, expected[i].seq) << "seed " << seed;
    }
  }
}

TEST(Task, InvokesAndReportsEngagement) {
  int calls = 0;
  Task t([&] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(t));
  t();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(static_cast<bool>(Task{}));
}

TEST(Task, MoveTransfersCallable) {
  int calls = 0;
  Task a([&] { ++calls; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(Task, LargeCapturesFallBackToHeapAndStillRun) {
  // 3x the inline budget: forces the heap path.
  struct Big {
    unsigned char blob[Task::kInlineSize * 3] = {};
  };
  auto big = std::make_shared<int>(0);
  Big payload;
  payload.blob[0] = 7;
  Task t([big, payload] { *big = payload.blob[0]; });
  Task moved(std::move(t));
  moved();
  EXPECT_EQ(*big, 7);
}

TEST(Task, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    Task t([token = std::move(token)] { (void)token; });
    Task u(std::move(t));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(Task, TypicalDeliveryClosureFitsInline) {
  // The shape of Network::send's delivery event: this + conn + receiver +
  // one Payload handle. If this ever outgrows the inline buffer the hot
  // path regresses to one allocation per message — fail loudly here.
  struct Probe {
    void* self;
    std::uint64_t conn;
    std::uint32_t receiver;
    void* payload_rep;
  };
  static_assert(sizeof(Probe) <= Task::kInlineSize,
                "delivery closure no longer fits Task inline storage");
}

}  // namespace
}  // namespace p2p::sim
