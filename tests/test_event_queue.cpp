#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace p2p::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::at_millis(30), [&] { order.push_back(3); });
  q.schedule_at(SimTime::at_millis(10), [&] { order.push_back(1); });
  q.schedule_at(SimTime::at_millis(20), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::at_millis(30));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(SimTime::at_millis(10), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesDuringExecution) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::at_millis(42), [&] { seen = q.now(); });
  q.run_all();
  EXPECT_EQ(seen, SimTime::at_millis(42));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule_in(SimDuration::millis(10), tick);
  };
  q.schedule_in(SimDuration::millis(10), tick);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), SimTime::at_millis(50));
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(SimTime::at_millis(100), [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(SimTime::at_millis(50), [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(SimTime::at_millis(10), [&] { ++ran; });
  q.schedule_at(SimTime::at_millis(100), [&] { ++ran; });
  q.run_until(SimTime::at_millis(50));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), SimTime::at_millis(50));
  q.run_until(SimTime::at_millis(200));
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, RunUntilInclusiveOfBoundary) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(SimTime::at_millis(50), [&] { ran = true; });
  q.run_until(SimTime::at_millis(50));
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_in(SimDuration::millis(1), [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, CountsExecuted) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_in(SimDuration::millis(i), [] {});
  q.run_all();
  EXPECT_EQ(q.executed(), 7u);
}

}  // namespace
}  // namespace p2p::sim
