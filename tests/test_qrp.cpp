#include "gnutella/qrp.h"

#include <gtest/gtest.h>

namespace p2p::gnutella {
namespace {

TEST(QrpHash, DeterministicAndCaseInsensitive) {
  EXPECT_EQ(qrp_hash("hello", 13), qrp_hash("hello", 13));
  EXPECT_EQ(qrp_hash("HELLO", 13), qrp_hash("hello", 13));
}

TEST(QrpHash, StaysInTable) {
  for (unsigned bits : {4u, 8u, 13u, 16u}) {
    for (const char* word : {"a", "abc", "longerkeyword", "1234567890"}) {
      EXPECT_LT(qrp_hash(word, bits), 1u << bits);
    }
  }
}

TEST(QrpHash, SpreadsValues) {
  std::set<std::uint32_t> values;
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                         "zeta",  "eta",  "theta", "iota",  "kappa"};
  for (const char* w : words) values.insert(qrp_hash(w, 16));
  EXPECT_GE(values.size(), 9u);  // collisions in 64k slots should be rare
}

TEST(QrpHash, RejectsBadBits) {
  EXPECT_THROW((void)qrp_hash("x", 0), std::invalid_argument);
  EXPECT_THROW((void)qrp_hash("x", 32), std::invalid_argument);
}

TEST(QueryRouteTable, EmptyMatchesNothing) {
  QueryRouteTable qrt(13);
  EXPECT_FALSE(qrt.matches("anything at all"));
  EXPECT_DOUBLE_EQ(qrt.fill_ratio(), 0.0);
}

TEST(QueryRouteTable, MatchesAfterAddingKeywords) {
  QueryRouteTable qrt(13);
  qrt.add_keywords("blue horizon - midnight rain.mp3");
  EXPECT_TRUE(qrt.matches("blue horizon"));
  EXPECT_TRUE(qrt.matches("midnight rain"));
  EXPECT_TRUE(qrt.matches("blue"));
  EXPECT_FALSE(qrt.matches("completely unrelated"));
}

TEST(QueryRouteTable, AllKeywordsRequired) {
  QueryRouteTable qrt(13);
  qrt.add_keywords("blue horizon");
  // "blue" is present but "unrelatedword" is not.
  EXPECT_FALSE(qrt.matches("blue unrelatedword"));
}

TEST(QueryRouteTable, FillAllMatchesEverything) {
  QueryRouteTable qrt(13);
  qrt.fill_all();
  EXPECT_TRUE(qrt.matches("anything"));
  EXPECT_TRUE(qrt.matches("zzz qqq xxx"));
  EXPECT_DOUBLE_EQ(qrt.fill_ratio(), 1.0);
}

TEST(QueryRouteTable, ClearResets) {
  QueryRouteTable qrt(13);
  qrt.add_keywords("something shared");
  qrt.clear();
  EXPECT_FALSE(qrt.matches("something"));
}

TEST(QueryRouteTable, EmptyQueryNeverMatches) {
  QueryRouteTable qrt(13);
  qrt.fill_all();
  EXPECT_FALSE(qrt.matches(""));
  EXPECT_FALSE(qrt.matches("!"));
}

TEST(QueryRouteTable, PatchBytesRoundTrip) {
  QueryRouteTable qrt(8);
  qrt.add_keywords("roundtrip test keywords");
  util::Bytes patch = qrt.to_patch_bytes();
  EXPECT_EQ(patch.size(), 256u);

  QueryRouteTable restored(13);
  ASSERT_TRUE(restored.from_patch_bytes(patch));
  EXPECT_EQ(restored.table_bits(), 8u);
  EXPECT_TRUE(restored.matches("roundtrip"));
  EXPECT_TRUE(restored.matches("test keywords"));
  EXPECT_FALSE(restored.matches("absent"));
}

TEST(QueryRouteTable, FromPatchRejectsBadSizes) {
  QueryRouteTable qrt(13);
  EXPECT_FALSE(qrt.from_patch_bytes(util::Bytes(100)));  // not a power of two
  EXPECT_FALSE(qrt.from_patch_bytes(util::Bytes(8)));    // too small
  EXPECT_FALSE(qrt.from_patch_bytes({}));
}

TEST(QueryRouteTable, ConstructorValidatesBits) {
  EXPECT_THROW(QueryRouteTable(3), std::invalid_argument);
  EXPECT_THROW(QueryRouteTable(25), std::invalid_argument);
  EXPECT_NO_THROW(QueryRouteTable(4));
  EXPECT_NO_THROW(QueryRouteTable(24));
}

TEST(QueryRouteTable, FillRatioCountsKeywords) {
  QueryRouteTable qrt(13);
  qrt.add_keywords("one two three four five");
  double ratio = qrt.fill_ratio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 5.0 / 8192.0);
}

}  // namespace
}  // namespace p2p::gnutella
