// Segmented trace storage (`ctest -L trace`): segment-directory round trips
// against the single-file backend, zero drift of the single-file format
// through the storage interface, parallel-replay byte-identity at any jobs
// count, MANIFEST damage and staleness as hard failures, and the
// per-segment corruption containment matrix (bit flip / truncation /
// missing file — the report must still come out, with the damage counted).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/replay.h"
#include "core/report.h"
#include "trace/reader.h"
#include "trace/segment.h"
#include "trace/storage.h"
#include "trace/writer.h"
#include "util/rng.h"

namespace p2p {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kHourMs = 3'600'000;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Deterministic synthetic stream: non-decreasing timestamps spanning
/// `hours` simulated hours, ~8% infected over four strains, a mix of study
/// and non-study types. Everything derives from splitmix64(i).
std::vector<crawler::ResponseRecord> make_stream(std::size_t count,
                                                 std::int64_t hours,
                                                 std::uint64_t salt = 0) {
  std::vector<crawler::ResponseRecord> out;
  out.reserve(count);
  std::int64_t stride = hours * kHourMs / static_cast<std::int64_t>(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t state = i ^ salt ^ 0x5e97ull;
    std::uint64_t h = util::splitmix64(state);
    std::uint64_t h2 = util::splitmix64(state);
    crawler::ResponseRecord r;
    r.id = i + 1;
    r.network = "limewire";
    r.at = util::SimTime::at_millis(
        static_cast<std::int64_t>(i) * stride +
        static_cast<std::int64_t>(h % static_cast<std::uint64_t>(stride)));
    r.query = "q" + std::to_string(h % 12);
    r.query_category = (h % 4 == 0) ? "software" : "music";
    r.type_by_name =
        h2 % 3 == 0 ? files::FileType::kExecutable
                    : (h2 % 3 == 1 ? files::FileType::kArchive
                                   : files::FileType::kAudio);
    r.type_by_magic = r.type_by_name;
    r.filename = r.type_by_name == files::FileType::kExecutable
                     ? "f" + std::to_string(h2 % 40) + ".exe"
                     : "f" + std::to_string(h2 % 40) + ".mp3";
    r.source_ip = util::Ipv4(static_cast<std::uint32_t>(0x08000000u + h2 % 50));
    r.source_port = static_cast<std::uint16_t>(1024 + h % 1000);
    r.source_key = "s" + std::to_string(h2 % 50);
    r.download_attempted = r.is_study_type();
    r.downloaded = r.is_study_type() && h % 10 < 7;
    if (r.downloaded && h2 % 100 < 8) {
      r.infected = true;
      r.strain = static_cast<malware::StrainId>(1 + h2 % 4);
      r.strain_name = "seg.worm-" + std::to_string(h2 % 4);
      r.size = 80'000 + (h2 % 4) * 8'192 + (h % 3) * 512;
      r.content_key = "inf-" + std::to_string(h2 % 4) + "-" + std::to_string(h % 9);
    } else {
      r.size = 50'000 + h2 % 5'000'000;
      r.content_key = "c-" + std::to_string(h % 3'000);
    }
    out.push_back(std::move(r));
  }
  return out;
}

trace::TraceHeader make_header() {
  trace::TraceHeader header;
  header.network = "limewire";
  header.config_hash = 0xabcdef0123456789ull;
  header.seed = 42;
  header.crawl_duration_ms = 72 * kHourMs;
  header.meta = {{"tool", "test_trace_segments"}};
  return header;
}

trace::StudySummary make_summary() {
  trace::StudySummary summary;
  summary.events_executed = 1234;
  summary.messages_delivered = 567;
  summary.crawl_stats.responses = 89;
  return summary;
}

/// Record `records` into a segment directory at `dir` and return it.
void record_dir(const std::string& dir,
                const std::vector<crawler::ResponseRecord>& records,
                std::int64_t window_ms, bool with_summary = true) {
  fs::remove_all(dir);
  trace::SegmentWriterOptions options;
  options.window_ms = window_ms;
  options.records_per_block = 16;  // small blocks: more corruption targets
  trace::SegmentWriter writer(dir, make_header(), options);
  ASSERT_TRUE(writer.ok());
  for (const auto& r : records) writer.on_record(r);
  if (with_summary) writer.write_summary(make_summary());
  writer.close();
  ASSERT_TRUE(writer.ok());
}

std::vector<crawler::ResponseRecord> read_all(trace::StorageReader& reader) {
  std::vector<crawler::ResponseRecord> out;
  crawler::ResponseRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

std::string report_json(const core::Report& report) {
  std::ostringstream out;
  core::write_report_json(out, report);
  return std::move(out).str();
}

// ---------------------------------------------------------------------------
// Round trips and zero drift
// ---------------------------------------------------------------------------

TEST(TraceSegments, SegmentRoundTripMatchesSingleFile) {
  auto records = make_stream(600, 72);
  std::string file = temp_path("roundtrip.p2pt");
  {
    trace::TraceWriter writer(file, make_header());
    ASSERT_TRUE(writer.ok());
    for (const auto& r : records) writer.on_record(r);
    writer.write_summary(make_summary());
    writer.close();
    ASSERT_TRUE(writer.ok());
  }
  std::string dir = temp_path("roundtrip.p2ps");
  record_dir(dir, records, 24 * kHourMs);

  trace::TraceReader file_reader(file);
  trace::SegmentReader dir_reader(dir);
  ASSERT_TRUE(file_reader.ok());
  ASSERT_TRUE(dir_reader.ok());
  EXPECT_EQ(dir_reader.header().config_hash, file_reader.header().config_hash);
  EXPECT_EQ(dir_reader.manifest().segments.size(), 3u);  // 72h / 24h windows

  auto from_file = read_all(file_reader);
  auto from_dir = read_all(dir_reader);
  ASSERT_EQ(from_file.size(), records.size());
  ASSERT_EQ(from_dir.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(from_dir[i].id, from_file[i].id);
    EXPECT_EQ(from_dir[i].at.millis(), from_file[i].at.millis());
    EXPECT_EQ(from_dir[i].content_key, from_file[i].content_key);
    EXPECT_EQ(from_dir[i].infected, from_file[i].infected);
  }
  EXPECT_TRUE(dir_reader.stats().clean());
  EXPECT_EQ(dir_reader.stats().segments_read, 3u);
  ASSERT_TRUE(dir_reader.summary().has_value());
  EXPECT_EQ(dir_reader.summary()->events_executed, 1234u);
}

TEST(TraceSegments, EverySegmentIsAValidTraceWithIndexFooter) {
  auto records = make_stream(400, 48);
  std::string dir = temp_path("footers.p2ps");
  record_dir(dir, records, 12 * kHourMs);
  trace::ManifestData manifest = trace::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest.manifest.segments.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& entry : manifest.manifest.segments) {
    trace::TraceReader reader(trace::segment_path(dir, entry));
    ASSERT_TRUE(reader.ok()) << entry.file;
    auto segment_records = read_all(reader);
    EXPECT_EQ(segment_records.size(), entry.records) << entry.file;
    ASSERT_TRUE(reader.segment_index().has_value()) << entry.file;
    EXPECT_EQ(reader.segment_index()->records, entry.records);
    EXPECT_EQ(reader.segment_index()->window_index, entry.window_index);
    total += entry.records;
  }
  EXPECT_EQ(total, records.size());
}

TEST(TraceSegments, StorageFactorySingleFileHasZeroDrift) {
  auto records = make_stream(200, 8);
  std::string direct = temp_path("drift_direct.p2pt");
  std::string routed = temp_path("drift_routed.p2pt");
  {
    trace::TraceWriter writer(direct, make_header());
    for (const auto& r : records) writer.on_record(r);
    writer.write_summary(make_summary());
    writer.close();
    ASSERT_TRUE(writer.ok());
  }
  {
    auto writer = trace::open_storage_writer(routed, make_header());
    for (const auto& r : records) writer->on_record(r);
    writer->write_summary(make_summary());
    writer->close();
    ASSERT_TRUE(writer->ok());
    EXPECT_EQ(writer->segments_written(), 1u);
  }
  std::ifstream a(direct, std::ios::binary), b(routed, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(TraceSegments, StorageFactoryRoutesByPathShape) {
  EXPECT_TRUE(trace::is_segment_path("capture.p2ps"));
  EXPECT_TRUE(trace::is_segment_path("/tmp/x/capture.p2ps"));
  EXPECT_FALSE(trace::is_segment_path("capture.p2pt"));
  EXPECT_TRUE(trace::is_segment_path(::testing::TempDir()));  // existing dir

  std::string dir = temp_path("routed.p2ps");
  record_dir(dir, make_stream(50, 4), 2 * kHourMs);
  auto reader = trace::open_storage_reader(dir);
  ASSERT_TRUE(reader->ok());
  EXPECT_EQ(read_all(*reader).size(), 50u);
  EXPECT_GT(reader->stats().segments_read, 0u);
}

// ---------------------------------------------------------------------------
// Parallel replay determinism
// ---------------------------------------------------------------------------

TEST(TraceSegments, ReplayIsJobsInvariant) {
  std::string dir = temp_path("jobs.p2ps");
  record_dir(dir, make_stream(1200, 96), 12 * kHourMs);  // 8 segments

  core::ReplayResult results[3];
  std::size_t jobs[3] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    core::ReplayOptions options;
    options.jobs = jobs[i];
    results[i] = core::replay_segment_dir(dir, options);
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_TRUE(results[i].stats.clean());
    EXPECT_EQ(results[i].stats.records_read, 1200u);
  }
  std::string serial = report_json(results[0].report);
  EXPECT_EQ(report_json(results[1].report), serial);
  EXPECT_EQ(report_json(results[2].report), serial);
  // Windowed analytics merge identically too.
  ASSERT_EQ(results[1].windows.size(), results[0].windows.size());
  for (std::size_t i = 0; i < results[0].windows.size(); ++i) {
    EXPECT_EQ(results[1].windows[i].responses, results[0].windows[i].responses);
    EXPECT_EQ(results[1].windows[i].distinct_strains,
              results[0].windows[i].distinct_strains);
    EXPECT_EQ(results[1].windows[i].new_strains, results[0].windows[i].new_strains);
  }
  // Summary plumbed through: the synthetic summary's counters surface.
  EXPECT_EQ(results[0].report.records, 1200u);
}

TEST(TraceSegments, ReplayIsRunToRunDeterministic) {
  std::string dir = temp_path("rerun.p2ps");
  record_dir(dir, make_stream(600, 48), 6 * kHourMs);
  core::ReplayOptions options;
  options.jobs = 4;
  auto first = core::replay_segment_dir(dir, options);
  auto second = core::replay_segment_dir(dir, options);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(report_json(first.report), report_json(second.report));
}

// ---------------------------------------------------------------------------
// Manifest damage and staleness: hard failures
// ---------------------------------------------------------------------------

TEST(TraceSegments, DamagedManifestIsHardError) {
  std::string dir = temp_path("badmanifest.p2ps");
  record_dir(dir, make_stream(100, 8), 4 * kHourMs);
  std::string mpath = trace::manifest_path(dir);
  {
    std::fstream f(mpath, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(30);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }
  trace::ManifestData manifest = trace::read_manifest(dir);
  EXPECT_FALSE(manifest.ok());

  trace::SegmentReader reader(dir);
  EXPECT_FALSE(reader.ok());

  auto replay = core::replay_segment_dir(dir, {});
  EXPECT_FALSE(replay.ok);
  EXPECT_FALSE(replay.error.empty());
}

TEST(TraceSegments, MissingManifestIsHardError) {
  std::string dir = temp_path("nomanifest.p2ps");
  record_dir(dir, make_stream(100, 8), 4 * kHourMs);
  fs::remove(trace::manifest_path(dir));
  trace::SegmentReader reader(dir);
  EXPECT_FALSE(reader.ok());
  auto replay = core::replay_segment_dir(dir, {});
  EXPECT_FALSE(replay.ok);
}

TEST(TraceSegments, StaleManifestDropsMismatchedSegments) {
  // A MANIFEST rewritten for a different config must not blend foreign
  // segments into an analysis: every segment whose header contradicts it is
  // dropped whole and the damage is visible in the stats.
  std::string dir = temp_path("stale.p2ps");
  record_dir(dir, make_stream(200, 16), 8 * kHourMs);
  trace::ManifestData manifest = trace::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  manifest.manifest.header.config_hash ^= 0x1;  // stale: different capture
  ASSERT_TRUE(trace::write_manifest(dir, manifest.manifest));

  trace::SegmentReader reader(dir);
  ASSERT_TRUE(reader.ok());  // manifest itself is well-formed
  EXPECT_TRUE(read_all(reader).empty());
  EXPECT_EQ(reader.stats().segments_read, 0u);
  EXPECT_EQ(reader.stats().segments_corrupt,
            manifest.manifest.segments.size());
  EXPECT_FALSE(reader.stats().clean());
}

// ---------------------------------------------------------------------------
// Per-segment corruption containment
// ---------------------------------------------------------------------------

struct Damage {
  const char* name;
  void (*apply)(const std::string& segment_file);
};

void bit_flip(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  auto size = static_cast<std::int64_t>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(size / 2);
  f.write(&byte, 1);
}

void truncate_half(const std::string& path) {
  auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
}

void remove_file(const std::string& path) { fs::remove(path); }

TEST(TraceSegments, CorruptionIsContainedPerSegment) {
  const Damage kMatrix[] = {
      {"bit-flip", bit_flip},
      {"truncation", truncate_half},
      {"missing-file", remove_file},
  };
  auto records = make_stream(800, 64);
  for (const Damage& damage : kMatrix) {
    SCOPED_TRACE(damage.name);
    std::string dir = temp_path(std::string("contain-") + damage.name + ".p2ps");
    record_dir(dir, records, 8 * kHourMs);  // 8 segments
    trace::ManifestData manifest = trace::read_manifest(dir);
    ASSERT_TRUE(manifest.ok());
    ASSERT_EQ(manifest.manifest.segments.size(), 8u);
    damage.apply(trace::segment_path(dir, manifest.manifest.segments[3]));

    core::ReplayOptions options;
    options.jobs = 4;
    auto replay = core::replay_segment_dir(dir, options);
    // The report still comes out; the damage is counted, not fatal.
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_FALSE(replay.stats.clean());
    EXPECT_GT(replay.stats.records_read, 0u);
    EXPECT_LT(replay.stats.records_read, records.size());
    EXPECT_TRUE(replay.stats.blocks_corrupt > 0 ||
                replay.stats.segments_corrupt > 0 ||
                replay.stats.truncated_tail);
    EXPECT_EQ(replay.segments_total, 8u);
    EXPECT_GT(replay.report.records, 0u);
    // Jobs invariance holds on damaged input too.
    auto serial = core::replay_segment_dir(dir, {});
    ASSERT_TRUE(serial.ok);
    EXPECT_EQ(report_json(replay.report), report_json(serial.report));
  }
}

TEST(TraceSegments, DamageInOneSegmentLeavesOthersExact) {
  auto records = make_stream(400, 32);
  std::string dir = temp_path("exact.p2ps");
  record_dir(dir, records, 8 * kHourMs);  // 4 segments
  trace::ManifestData manifest = trace::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  std::uint64_t dropped = manifest.manifest.segments[1].records;
  fs::remove(trace::segment_path(dir, manifest.manifest.segments[1]));

  trace::SegmentReader reader(dir);
  ASSERT_TRUE(reader.ok());
  auto survived = read_all(reader);
  EXPECT_EQ(survived.size(), records.size() - dropped);
  EXPECT_EQ(reader.stats().segments_corrupt, 1u);
  EXPECT_EQ(reader.stats().segments_read, 3u);
  // Survivors stream in order and untouched.
  for (std::size_t i = 1; i < survived.size(); ++i) {
    EXPECT_LT(survived[i - 1].id, survived[i].id);
  }
}

}  // namespace
}  // namespace p2p
