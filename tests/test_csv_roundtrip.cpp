// CSV export/import round trip: the offline-analysis path must reproduce
// every field an analysis depends on.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/csv.h"
#include "analysis/stats.h"

namespace p2p::analysis {
namespace {

crawler::ResponseRecord make_record(std::uint64_t id) {
  crawler::ResponseRecord r;
  r.id = id;
  r.network = "limewire";
  r.at = util::SimTime::at_millis(static_cast<std::int64_t>(id * 86'400'000 / 3));
  r.query = id % 2 ? "plain query" : "query, with \"punctuation\"";
  r.query_category = "software";
  r.filename = id % 2 ? "file.exe" : "name, with \"quotes\".zip";
  r.type_by_name = files::classify_extension(r.filename);
  r.type_by_magic =
      id % 2 ? files::FileType::kExecutable : files::FileType::kArchive;
  r.size = 1000 + id * 7;
  r.source_ip = id % 3 ? util::Ipv4(8, 8, 8, static_cast<std::uint8_t>(id))
                       : util::Ipv4(192, 168, 1, static_cast<std::uint8_t>(id));
  r.source_port = static_cast<std::uint16_t>(6000 + id);
  r.source_key = r.source_ip.str() + ":" + std::to_string(r.source_port) + "/ab";
  r.source_firewalled = id % 2 == 0;
  r.content_key = "hash" + std::to_string(id % 5);
  r.download_attempted = true;
  r.downloaded = id % 7 != 0;
  r.infected = id % 3 == 0;
  r.strain_name = r.infected ? "W32.Strain." + std::to_string(id % 2) : "";
  r.strain = r.infected ? static_cast<malware::StrainId>(id % 2) : malware::kCleanStrain;
  return r;
}

TEST(CsvRoundTrip, PreservesAnalysisFields) {
  std::vector<crawler::ResponseRecord> records;
  for (std::uint64_t i = 1; i <= 40; ++i) records.push_back(make_record(i));

  std::stringstream io;
  write_csv(io, records);
  auto loaded = read_csv(io);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), records.size());

  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& a = records[i];
    const auto& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.query_category, b.query_category);
    EXPECT_EQ(a.filename, b.filename);
    EXPECT_EQ(a.type_by_name, b.type_by_name);
    EXPECT_EQ(a.type_by_magic, b.type_by_magic);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.source_ip, b.source_ip);
    EXPECT_EQ(a.source_port, b.source_port);
    EXPECT_EQ(a.source_key, b.source_key);
    EXPECT_EQ(a.source_firewalled, b.source_firewalled);
    EXPECT_EQ(a.content_key, b.content_key);
    EXPECT_EQ(a.download_attempted, b.download_attempted);
    EXPECT_EQ(a.downloaded, b.downloaded);
    EXPECT_EQ(a.infected, b.infected);
    EXPECT_EQ(a.strain_name, b.strain_name);
  }
}

TEST(CsvRoundTrip, AnalysesAgreeAfterReload) {
  std::vector<crawler::ResponseRecord> records;
  for (std::uint64_t i = 1; i <= 200; ++i) records.push_back(make_record(i));

  std::stringstream io;
  write_csv(io, records);
  auto loaded = read_csv(io);
  ASSERT_TRUE(loaded.has_value());

  auto before = prevalence(records);
  auto after = prevalence(*loaded);
  EXPECT_EQ(before.study_responses, after.study_responses);
  EXPECT_EQ(before.labeled, after.labeled);
  EXPECT_EQ(before.infected, after.infected);

  auto rank_before = strain_ranking(records);
  auto rank_after = strain_ranking(*loaded);
  ASSERT_EQ(rank_before.size(), rank_after.size());
  for (std::size_t i = 0; i < rank_before.size(); ++i) {
    EXPECT_EQ(rank_before[i].name, rank_after[i].name);
    EXPECT_EQ(rank_before[i].responses, rank_after[i].responses);
  }

  auto src_before = sources(records);
  auto src_after = sources(*loaded);
  EXPECT_EQ(src_before.malicious_responses, src_after.malicious_responses);
  EXPECT_DOUBLE_EQ(src_before.private_fraction, src_after.private_fraction);
}

TEST(CsvRoundTrip, RejectsForeignHeader) {
  std::stringstream io("a,b,c\n1,2,3\n");
  EXPECT_FALSE(read_csv(io).has_value());
}

TEST(CsvRoundTrip, RejectsMalformedRow) {
  std::vector<crawler::ResponseRecord> records = {make_record(1)};
  std::stringstream io;
  write_csv(io, records);
  std::string text = io.str();
  text += "not,a,valid,row\n";
  std::stringstream io2(text);
  EXPECT_FALSE(read_csv(io2).has_value());
}

TEST(CsvRoundTrip, EmptyLogRoundTrips) {
  std::stringstream io;
  write_csv(io, {});
  auto loaded = read_csv(io);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace p2p::analysis
