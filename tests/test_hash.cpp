#include "files/hash.h"

#include <gtest/gtest.h>

namespace p2p::files {
namespace {

util::Bytes bytes_of(std::string_view s) { return util::Bytes(s.begin(), s.end()); }

// FIPS 180-1 / RFC 1321 reference vectors.

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(sha1({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(sha1(bytes_of("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(sha1(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  util::Bytes data(1'000'000, 'a');
  EXPECT_EQ(hex(sha1(data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md5, EmptyInput) {
  EXPECT_EQ(hex(md5({})), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, Abc) {
  EXPECT_EQ(hex(md5(bytes_of("abc"))), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, LongerVector) {
  EXPECT_EQ(hex(md5(bytes_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5, RepeatedDigits) {
  EXPECT_EQ(hex(md5(bytes_of("12345678901234567890123456789012345678901234567890123456789012345678901234567890"))),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

// Property: incremental hashing with arbitrary chunking equals one-shot.
class ChunkedHashing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkedHashing, Sha1MatchesOneShot) {
  std::size_t chunk = GetParam();
  util::Bytes data(4099);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  Sha1 h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    std::size_t n = std::min(chunk, data.size() - off);
    h.update({data.data() + off, n});
  }
  EXPECT_EQ(h.finish(), sha1(data));
}

TEST_P(ChunkedHashing, Md5MatchesOneShot) {
  std::size_t chunk = GetParam();
  util::Bytes data(4099);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 29 + 3);
  }
  Md5 h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    std::size_t n = std::min(chunk, data.size() - off);
    h.update({data.data() + off, n});
  }
  EXPECT_EQ(h.finish(), md5(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkedHashing,
                         ::testing::Values(1, 3, 55, 56, 63, 64, 65, 128, 1000));

// Property: sizes around the padding boundary all hash consistently
// (one-shot vs 1-byte incremental).
class PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingBoundary, Sha1Consistent) {
  util::Bytes data(GetParam(), 0x5A);
  Sha1 h;
  for (std::uint8_t b : data) h.update({&b, 1});
  EXPECT_EQ(h.finish(), sha1(data));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PaddingBoundary,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120,
                                           121, 127, 128));

TEST(Digests, DifferentInputsDiffer) {
  EXPECT_NE(sha1(bytes_of("a")), sha1(bytes_of("b")));
  EXPECT_NE(md5(bytes_of("a")), md5(bytes_of("b")));
}

}  // namespace
}  // namespace p2p::files
