#include "util/ip.h"

#include <gtest/gtest.h>

namespace p2p::util {
namespace {

TEST(Ipv4, ParseAndFormatRoundTrip) {
  auto ip = Ipv4::parse("156.56.1.10");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->str(), "156.56.1.10");
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4, OctetConstructor) {
  Ipv4 ip(10, 0, 0, 1);
  EXPECT_EQ(ip.value(), 0x0A000001u);
  EXPECT_EQ(ip.str(), "10.0.0.1");
}

struct ClassCase {
  const char* addr;
  IpClass expected;
};

class IpClassification : public ::testing::TestWithParam<ClassCase> {};

TEST_P(IpClassification, Classifies) {
  auto ip = Ipv4::parse(GetParam().addr);
  ASSERT_TRUE(ip.has_value()) << GetParam().addr;
  EXPECT_EQ(ip->classify(), GetParam().expected) << GetParam().addr;
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, IpClassification,
    ::testing::Values(
        ClassCase{"8.8.8.8", IpClass::kPublic},
        ClassCase{"156.56.1.10", IpClass::kPublic},
        ClassCase{"9.255.255.255", IpClass::kPublic},
        ClassCase{"11.0.0.1", IpClass::kPublic},
        ClassCase{"10.0.0.1", IpClass::kPrivate},
        ClassCase{"10.255.255.255", IpClass::kPrivate},
        ClassCase{"172.16.0.1", IpClass::kPrivate},
        ClassCase{"172.31.255.254", IpClass::kPrivate},
        ClassCase{"172.15.0.1", IpClass::kPublic},
        ClassCase{"172.32.0.1", IpClass::kPublic},
        ClassCase{"192.168.1.100", IpClass::kPrivate},
        ClassCase{"192.167.1.1", IpClass::kPublic},
        ClassCase{"192.169.1.1", IpClass::kPublic},
        ClassCase{"127.0.0.1", IpClass::kLoopback},
        ClassCase{"169.254.17.3", IpClass::kLinkLocal},
        ClassCase{"169.253.0.1", IpClass::kPublic},
        ClassCase{"0.1.2.3", IpClass::kReserved},
        ClassCase{"224.0.0.1", IpClass::kReserved},
        ClassCase{"240.1.2.3", IpClass::kReserved},
        ClassCase{"255.255.255.255", IpClass::kReserved}));

TEST(Ipv4, HelperPredicates) {
  EXPECT_TRUE(Ipv4(192, 168, 0, 2).is_private());
  EXPECT_FALSE(Ipv4(192, 168, 0, 2).is_publicly_routable());
  EXPECT_TRUE(Ipv4(4, 4, 4, 4).is_publicly_routable());
  EXPECT_FALSE(Ipv4(127, 0, 0, 1).is_publicly_routable());
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(2, 0, 0, 1));
  EXPECT_EQ(Ipv4(5, 6, 7, 8), Ipv4(5, 6, 7, 8));
}

TEST(Endpoint, FormatAndOrdering) {
  Endpoint a{Ipv4(1, 2, 3, 4), 6346};
  EXPECT_EQ(a.str(), "1.2.3.4:6346");
  Endpoint b{Ipv4(1, 2, 3, 4), 6347};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (Endpoint{Ipv4(1, 2, 3, 4), 6346}));
}

TEST(IpClassNames, AllDistinct) {
  EXPECT_EQ(to_string(IpClass::kPublic), "public");
  EXPECT_EQ(to_string(IpClass::kPrivate), "private");
  EXPECT_EQ(to_string(IpClass::kLoopback), "loopback");
  EXPECT_EQ(to_string(IpClass::kLinkLocal), "link-local");
  EXPECT_EQ(to_string(IpClass::kReserved), "reserved");
}

}  // namespace
}  // namespace p2p::util
