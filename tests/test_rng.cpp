#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace p2p::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.bounded(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, RangeBadArgsThrow) {
  Rng rng(9);
  EXPECT_THROW(rng.range(3, 2), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng child = parent.fork();
  // Parent and child streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, FillCoversWholeSpan) {
  Rng rng(29);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill(buf);
  // Chance all 37 bytes are zero is negligible.
  int zeros = 0;
  for (auto b : buf) {
    if (b == 0) ++zeros;
  }
  EXPECT_LT(zeros, 10);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(50));
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(500, 0.8);
  double sum = 0;
  for (std::size_t i = 0; i < 500; ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, SamplesMatchPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(31);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    double expected = zipf.pmf(k);
    double observed = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << k;
  }
}

TEST(ZipfSampler, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DiscreteSampler, RespectsWeights) {
  std::vector<double> weights = {1.0, 3.0};
  DiscreteSampler sampler(weights);
  Rng rng(37);
  int ones = 0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  std::vector<double> empty;
  EXPECT_THROW(DiscreteSampler{empty}, std::invalid_argument);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{negative}, std::invalid_argument);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{zeros}, std::invalid_argument);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  std::vector<double> weights = {0.0, 1.0, 0.0};
  DiscreteSampler sampler(weights);
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

// Property sweep: bounded() stays unbiased-ish for varied bounds.
class RngBoundedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundedSweep, RoughlyUniform) {
  std::uint64_t bound = GetParam();
  Rng rng(bound * 977 + 1);
  std::vector<int> counts(bound, 0);
  const int n = static_cast<int>(bound) * 2000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(bound)];
  double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.2) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedSweep, ::testing::Values(2, 3, 7, 10, 16));

}  // namespace
}  // namespace p2p::util
