// Integration tests for OpenFT nodes: sessions, child registration + share
// indexing, search (local + forwarded), transfers (direct and push-relayed).
#include "openft/node.h"

#include <gtest/gtest.h>

namespace p2p::openft {
namespace {

using sim::Network;
using sim::SimDuration;

std::shared_ptr<const files::FileContent> make_file(const std::string& name,
                                                    std::size_t size,
                                                    std::uint8_t fill = 0x33) {
  util::Bytes bytes(size, fill);
  return std::make_shared<const files::FileContent>(name, std::move(bytes));
}

struct MiniFt {
  Network net{4242};
  std::shared_ptr<FtHostCache> cache = std::make_shared<FtHostCache>();
  std::uint64_t next_seed = 500;
  int next_ip = 1;

  FtNode* add_search(std::vector<FtShare> shares = {}) {
    FtConfig cfg;
    cfg.klass = kSearch | kUser;
    cfg.alias = "search" + std::to_string(next_ip);
    return add(cfg, std::move(shares), false);
  }

  FtNode* add_user(std::vector<FtShare> shares = {}, bool behind_nat = false) {
    FtConfig cfg;
    cfg.klass = kUser;
    cfg.alias = "user" + std::to_string(next_ip);
    return add(cfg, std::move(shares), behind_nat);
  }

  FtNode* add(FtConfig cfg, std::vector<FtShare> shares, bool behind_nat) {
    auto node = std::make_unique<FtNode>(cfg, std::move(shares), cache, next_seed++);
    FtNode* raw = node.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(7, 7, 7, static_cast<std::uint8_t>(next_ip));
    profile.port = static_cast<std::uint16_t>(1200 + next_ip);
    ++next_ip;
    profile.behind_nat = behind_nat;
    net.add_node(std::move(node), profile);
    if ((cfg.klass & kSearch) != 0 && !behind_nat) {
      cache->add(util::Endpoint{profile.ip, profile.port});
    }
    return raw;
  }

  void run_for(SimDuration d) { net.events().run_until(net.now() + d); }
};

TEST(FtNode, UserEstablishesSessionAndBecomesChild) {
  MiniFt m;
  FtNode* search = m.add_search();
  FtNode* user = m.add_user({{make_file("song.mp3", 1000), "/shared/song.mp3"}});
  m.run_for(SimDuration::seconds(60));
  EXPECT_GE(user->session_count(), 1u);
  EXPECT_EQ(search->child_count(), 1u);
  EXPECT_EQ(search->stats().shares_indexed, 1u);
}

TEST(FtNode, SearchNodesPeer) {
  MiniFt m;
  FtNode* s1 = m.add_search();
  FtNode* s2 = m.add_search();
  m.run_for(SimDuration::seconds(60));
  EXPECT_GE(s1->session_count() + s2->session_count(), 1u);
}

TEST(FtNode, SearchFindsChildShares) {
  MiniFt m;
  m.add_search();
  m.add_user({{make_file("photomax setup.exe", 5000), "/shared/photomax setup.exe"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  std::vector<std::uint64_t> ended;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->set_search_end_callback([&](std::uint64_t id) { ended.push_back(id); });
  std::uint64_t id = searcher->search("photomax");
  m.run_for(SimDuration::minutes(2));

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].search_id, id);
  EXPECT_EQ(results[0].entry.path, "/shared/photomax setup.exe");
  EXPECT_EQ(results[0].entry.size, 5000u);
  ASSERT_EQ(ended.size(), 1u);
  EXPECT_EQ(ended[0], id);
}

TEST(FtNode, SearchForwardsAcrossSearchMesh) {
  MiniFt m;
  FtNode* s1 = m.add_search();
  FtNode* s2 = m.add_search();
  (void)s1;
  m.run_for(SimDuration::seconds(60));

  // A user whose only parent is s2 shares a file; searcher's parents
  // include s1 (and maybe s2) — forwarding must surface it either way.
  m.add_user({{make_file("rare item.zip", 4000), "/shared/rare item.zip"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));
  (void)s2;

  std::vector<FtSearchEvent> results;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->search("rare item");
  m.run_for(SimDuration::minutes(2));
  EXPECT_GE(results.size(), 1u);
}

TEST(FtNode, SearchNodeAnswersOwnShares) {
  MiniFt m;
  m.add_search({{make_file("hub file.exe", 2000), "/shared/hub file.exe"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->search("hub file");
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(results.size(), 1u);
}

TEST(FtNode, NoMatchesNoResults) {
  MiniFt m;
  m.add_search();
  m.add_user({{make_file("something.mp3", 100), "/shared/something.mp3"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->search("absent keywords");
  m.run_for(SimDuration::minutes(2));
  EXPECT_TRUE(results.empty());
}

TEST(FtNode, DirectDownloadDeliversBytes) {
  MiniFt m;
  auto file = make_file("download me.exe", 30'000, 0x44);
  m.add_search();
  m.add_user({{file, "/shared/download me.exe"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  std::vector<FtDownloadOutcome> outcomes;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->set_download_callback(
      [&](const FtDownloadOutcome& o) { outcomes.push_back(o); });
  searcher->search("download");
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].entry.owner_firewalled);

  searcher->download(results[0].entry);
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].content, file->bytes());
}

TEST(FtNode, FirewalledOwnerMarkedAndPushWorks) {
  MiniFt m;
  auto file = make_file("nat file.exe", 12'000, 0x55);
  m.add_search();
  m.add_user({{file, "/shared/nat file.exe"}}, /*behind_nat=*/true);
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  std::vector<FtDownloadOutcome> outcomes;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->set_download_callback(
      [&](const FtDownloadOutcome& o) { outcomes.push_back(o); });
  searcher->search("nat file");
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].entry.owner_firewalled);
  EXPECT_EQ(results[0].entry.owner_http_port, 0);

  searcher->download(results[0].entry);
  m.run_for(SimDuration::minutes(3));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].content, file->bytes());
}

TEST(FtNode, DownloadOfVanishedOwnerFails) {
  MiniFt m;
  auto file = make_file("gone.exe", 1000);
  m.add_search();
  FtNode* owner = m.add_user({{file, "/shared/gone.exe"}});
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  std::vector<FtDownloadOutcome> outcomes;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->set_download_callback(
      [&](const FtDownloadOutcome& o) { outcomes.push_back(o); });
  searcher->search("gone");
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(results.size(), 1u);

  m.net.remove_node(owner->id());
  searcher->download(results[0].entry);
  m.run_for(SimDuration::minutes(5));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].success);
}

TEST(FtNode, SameContentManyPathsServedIdentically) {
  // The super-spreader pattern: one artifact registered under many paths.
  MiniFt m;
  auto artifact = make_file("gobbler.exe", 81'920, 0x13);
  std::vector<FtShare> shares;
  shares.push_back({artifact, "/shared/photomax.exe"});
  shares.push_back({artifact, "/shared/diskwizard.exe"});
  m.add_search();
  m.add_user(shares);
  FtNode* searcher = m.add_user();
  m.run_for(SimDuration::seconds(60));

  std::vector<FtSearchEvent> results;
  searcher->set_result_callback([&](const FtSearchEvent& e) { results.push_back(e); });
  searcher->search("photomax");
  searcher->search("diskwizard");
  m.run_for(SimDuration::minutes(2));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].entry.md5, results[1].entry.md5);
  EXPECT_EQ(results[0].entry.owner, results[1].entry.owner);
}

TEST(FtNode, ChildCapacityEnforced) {
  MiniFt m;
  FtConfig cfg;
  cfg.klass = kSearch | kUser;
  cfg.max_children = 1;
  FtNode* search = m.add(cfg, {}, false);
  m.add_user();
  m.add_user();
  m.run_for(SimDuration::minutes(2));
  EXPECT_EQ(search->child_count(), 1u);
}

}  // namespace
}  // namespace p2p::openft
