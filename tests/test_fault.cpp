// Fault-injection determinism and crawler-resilience suite (ctest label:
// fault).
//
// The contract under test, in order of importance:
//   1. Same (spec, seed) ⇒ the same fault schedule, decision by decision.
//   2. Per-category streams are independent: message-layer draws never shift
//      the crawler- or crash-layer schedules.
//   3. Faults disabled ⇒ study output is byte-identical to the pre-fault
//      tree (pinned by tests/data/fault_off_*.json fixtures).
//   4. A faulted study is reproducible end to end, and its degradation
//      counters obey the accounting invariants.
//   5. Retry/backoff/circuit-breaker behave as configured.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/study.h"
#include "fault/fault.h"

namespace p2p {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string report_json(const core::StudyResult& result,
                        const std::string& network) {
  auto report = core::build_report(result.records, network);
  core::attach_fault_report(report, result.faults_enabled,
                            result.fault_counters, result.crawl_stats);
  std::ostringstream out;
  core::write_report_json(out, report);
  return out.str();
}

// Keep in sync with the generator that produced tests/data/fault_off_*.json
// (a pre-fault-subsystem build of exactly these configs).
core::LimewireStudyConfig tiny_limewire() {
  auto cfg = core::limewire_quick();
  cfg.seed = 4242;
  cfg.population.ultrapeers = 6;
  cfg.population.leaves = 60;
  cfg.population.corpus.num_titles = 400;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.crawl.query_interval = sim::SimDuration::seconds(120);
  cfg.workload_top_n = 40;
  return cfg;
}

core::OpenFtStudyConfig tiny_openft() {
  auto cfg = core::openft_quick();
  cfg.seed = 4242;
  cfg.population.search_nodes = 4;
  cfg.population.users = 50;
  cfg.population.corpus.num_titles = 400;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.crawl.query_interval = sim::SimDuration::seconds(120);
  cfg.workload_top_n = 40;
  return cfg;
}

// ---------------------------------------------------------------------------
// 1. Schedule determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  auto spec = fault::preset_moderate();
  fault::FaultPlan a(spec, 99);
  fault::FaultPlan b(spec, 99);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.drop_message(), b.drop_message()) << "at draw " << i;
    auto da = a.extra_delay();
    auto db = b.extra_delay();
    ASSERT_EQ(da.has_value(), db.has_value()) << "at draw " << i;
    if (da) {
      EXPECT_EQ(da->count_ms(), db->count_ms());
    }
    EXPECT_EQ(a.duplicate_message(), b.duplicate_message());
    EXPECT_EQ(a.download_stalls(), b.download_stalls());
    EXPECT_EQ(a.scan_times_out(), b.scan_times_out());
    EXPECT_EQ(a.next_crash_delay().count_ms(), b.next_crash_delay().count_ms());
    EXPECT_EQ(a.pick_victim(97), b.pick_victim(97));
    util::Bytes pa(64, 0x5a), pb(64, 0x5a);
    EXPECT_EQ(a.corrupt_payload(pa), b.corrupt_payload(pb));
    EXPECT_EQ(pa, pb);
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  auto spec = fault::preset_moderate();
  fault::FaultPlan a(spec, 1);
  fault::FaultPlan b(spec, 2);
  bool diverged = false;
  for (int i = 0; i < 2000 && !diverged; ++i) {
    diverged = a.drop_message() != b.drop_message() ||
               a.next_crash_delay().count_ms() != b.next_crash_delay().count_ms();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, CategoryStreamsAreIndependent) {
  auto spec = fault::preset_severe();
  fault::FaultPlan quiet(spec, 7);
  fault::FaultPlan noisy(spec, 7);
  // Burn through message- and corruption-layer draws on one plan only; the
  // crawler and crash schedules must not move.
  for (int i = 0; i < 500; ++i) {
    (void)noisy.drop_message();
    (void)noisy.extra_delay();
    (void)noisy.duplicate_message();
    util::Bytes p(32, 0xff);
    (void)noisy.corrupt_payload(p);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(quiet.download_stalls(), noisy.download_stalls()) << "at " << i;
    EXPECT_EQ(quiet.scan_times_out(), noisy.scan_times_out());
    EXPECT_EQ(quiet.next_crash_delay().count_ms(),
              noisy.next_crash_delay().count_ms());
    EXPECT_EQ(quiet.pick_victim(31), noisy.pick_victim(31));
  }
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsePresetsAndKeyValues) {
  auto none = fault::parse_spec("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->enabled());

  for (const char* name : {"mild", "moderate", "severe"}) {
    auto p = fault::parse_spec(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_TRUE(p->enabled()) << name;
  }

  auto kv = fault::parse_spec("loss=0.1,delay=0.2,delay_max_ms=1500,stall=0.05");
  ASSERT_TRUE(kv.has_value());
  EXPECT_DOUBLE_EQ(kv->message_loss, 0.1);
  EXPECT_DOUBLE_EQ(kv->message_delay, 0.2);
  EXPECT_EQ(kv->message_delay_max.count_ms(), 1500);
  EXPECT_DOUBLE_EQ(kv->download_stall, 0.05);
  EXPECT_TRUE(kv->enabled());
}

TEST(FaultSpec, ParseRejectsMalformedInput) {
  EXPECT_FALSE(fault::parse_spec("hurricane").has_value());
  EXPECT_FALSE(fault::parse_spec("loss").has_value());
  EXPECT_FALSE(fault::parse_spec("loss=abc").has_value());
  EXPECT_FALSE(fault::parse_spec("loss=-0.1").has_value());
  EXPECT_FALSE(fault::parse_spec("unknown_key=1").has_value());
}

// ---------------------------------------------------------------------------
// 3. Faults off ⇒ byte-identical to the pre-fault tree
// ---------------------------------------------------------------------------

TEST(FaultOff, LimewireReportMatchesPreFaultFixture) {
  std::string expected =
      read_file(std::string(P2P_SOURCE_DIR) + "/tests/data/fault_off_limewire.json");
  ASSERT_FALSE(expected.empty()) << "fixture missing";
  auto result = core::run_limewire_study(tiny_limewire());
  EXPECT_FALSE(result.faults_enabled);
  EXPECT_EQ(report_json(result, "limewire"), expected);
}

TEST(FaultOff, OpenFtReportMatchesPreFaultFixture) {
  std::string expected =
      read_file(std::string(P2P_SOURCE_DIR) + "/tests/data/fault_off_openft.json");
  ASSERT_FALSE(expected.empty()) << "fixture missing";
  auto result = core::run_openft_study(tiny_openft());
  EXPECT_FALSE(result.faults_enabled);
  EXPECT_EQ(report_json(result, "openft"), expected);
}

TEST(FaultOff, NoneSpecIsIdenticalToNoSpec) {
  auto plain = tiny_limewire();
  auto none = tiny_limewire();
  core::apply_faults(none, *fault::parse_spec("none"));
  EXPECT_EQ(core::config_hash(plain), core::config_hash(none));
  EXPECT_FALSE(none.faults.enabled());
  EXPECT_FALSE(none.crawl.fetch.active());
}

TEST(FaultOff, FaultPlanChangesConfigHash) {
  auto plain = tiny_limewire();
  auto faulted = tiny_limewire();
  core::apply_faults(faulted, fault::preset_mild());
  EXPECT_NE(core::config_hash(plain), core::config_hash(faulted));
  auto reseeded = tiny_limewire();
  core::apply_faults(reseeded, fault::preset_mild(), 77);
  EXPECT_NE(core::config_hash(faulted), core::config_hash(reseeded));
}

// ---------------------------------------------------------------------------
// 4. Faulted runs: reproducibility + degradation accounting
// ---------------------------------------------------------------------------

TEST(FaultedStudy, SameSeedSameFaultedRun) {
  auto cfg = tiny_limewire();
  core::apply_faults(cfg, fault::preset_moderate());
  auto a = core::run_limewire_study(cfg);
  auto b = core::run_limewire_study(cfg);
  EXPECT_TRUE(a.faults_enabled);
  EXPECT_EQ(a.fault_counters.messages_dropped, b.fault_counters.messages_dropped);
  EXPECT_EQ(a.fault_counters.peer_crashes, b.fault_counters.peer_crashes);
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(report_json(a, "limewire"), report_json(b, "limewire"));
}

TEST(FaultedStudy, FaultSeedSelectsTheSchedule) {
  auto cfg = tiny_limewire();
  core::apply_faults(cfg, fault::preset_moderate(), 11);
  auto a = core::run_limewire_study(cfg);
  cfg.fault_seed = 12;
  auto b = core::run_limewire_study(cfg);
  // A different fault schedule over the same study seed must not produce the
  // same injection record.
  EXPECT_NE(report_json(a, "limewire"), report_json(b, "limewire"));
}

TEST(FaultedStudy, DegradationAccountingHolds) {
  auto cfg = tiny_limewire();
  core::apply_faults(cfg, fault::preset_severe());
  auto result = core::run_limewire_study(cfg);
  const auto& s = result.crawl_stats;
  const auto& f = result.fault_counters;
  EXPECT_GT(f.messages_dropped, 0u);
  EXPECT_GT(f.peer_crashes, 0u);
  // Every resolution is a started download; in-flight fetches at end-of-study
  // account for the remainder.
  EXPECT_GE(s.downloads_started,
            s.downloads_ok + s.downloads_failed + s.downloads_abandoned);
  // Stalls are a subset of started downloads.
  EXPECT_LE(f.downloads_stalled, s.downloads_started);
  // The run still produces a study (graceful degradation, not collapse).
  EXPECT_GT(result.records.size(), 0u);
  EXPECT_GT(s.downloads_ok, 0u);
}

TEST(FaultedStudy, OpenFtFaultedRunIsReproducible) {
  auto cfg = tiny_openft();
  core::apply_faults(cfg, fault::preset_moderate());
  auto a = core::run_openft_study(cfg);
  auto b = core::run_openft_study(cfg);
  EXPECT_TRUE(a.faults_enabled);
  EXPECT_EQ(report_json(a, "openft"), report_json(b, "openft"));
  EXPECT_GT(a.fault_counters.messages_dropped, 0u);
}

TEST(FaultedStudy, SummaryRoundTripsFaultRecord) {
  auto cfg = tiny_openft();
  core::apply_faults(cfg, fault::preset_mild());
  auto result = core::run_openft_study(cfg);
  auto summary = core::study_summary(result);
  core::StudyResult restored;
  restored.records = result.records;
  core::apply_summary(summary, restored);
  EXPECT_EQ(restored.faults_enabled, result.faults_enabled);
  EXPECT_EQ(restored.fault_counters.messages_dropped,
            result.fault_counters.messages_dropped);
  EXPECT_EQ(restored.fault_counters.scan_timeouts,
            result.fault_counters.scan_timeouts);
  EXPECT_EQ(report_json(restored, "openft"), report_json(result, "openft"));
}

// ---------------------------------------------------------------------------
// 5. Resilience mechanics: retries, backoff bounds, circuit breaker
// ---------------------------------------------------------------------------

// The resilience tests want download volume, not byte-identity, so they use
// the quick preset as-is (an order of magnitude more fetches than the tiny
// fixture configs above).
core::LimewireStudyConfig busy_limewire() {
  auto cfg = core::limewire_quick();
  cfg.seed = 4242;
  return cfg;
}

TEST(Resilience, RetriesSpendAlternateSources) {
  auto cfg = busy_limewire();
  // Heavy payload corruption: content-hash mismatches fail downloads, which
  // then get retried from recorded alternate sources.
  core::apply_faults(cfg, *fault::parse_spec("corrupt=0.4"));
  auto result = core::run_limewire_study(cfg);
  EXPECT_GT(result.crawl_stats.downloads_failed, 0u);
  EXPECT_GT(result.crawl_stats.retries_spent, 0u);
}

TEST(Resilience, WatchdogAbandonsStalledDownloads) {
  auto cfg = busy_limewire();
  core::apply_faults(cfg, *fault::parse_spec("stall=0.5"));
  auto result = core::run_limewire_study(cfg);
  EXPECT_GT(result.fault_counters.downloads_stalled, 0u);
  // Every stall resolves through the watchdog, never through an outcome.
  EXPECT_EQ(result.crawl_stats.downloads_abandoned,
            result.fault_counters.downloads_stalled);
}

TEST(Resilience, BreakerQuarantinesRepeatOffenders) {
  auto cfg = busy_limewire();
  // Hosts serving corrupted bytes count against their breaker; with a
  // hair-trigger threshold one bad payload quarantines the host.
  core::apply_faults(cfg, *fault::parse_spec("corrupt=0.25"));
  cfg.crawl.fetch.breaker_threshold = 1;
  auto result = core::run_limewire_study(cfg);
  EXPECT_GT(result.crawl_stats.hosts_quarantined, 0u);
  // Each quarantine consumes at least one failure event (transfer failure,
  // watchdog abandonment, or a content-hash mismatch on an otherwise
  // successful transfer), and every failure event maps to a started fetch.
  EXPECT_LE(result.crawl_stats.hosts_quarantined,
            result.crawl_stats.downloads_started);
}

TEST(Resilience, ScanTimeoutsAreCountedAndRetried) {
  auto cfg = busy_limewire();
  core::apply_faults(cfg, *fault::parse_spec("scan_timeout=0.5"));
  auto result = core::run_limewire_study(cfg);
  EXPECT_GT(result.crawl_stats.scan_timeouts, 0u);
  EXPECT_EQ(result.crawl_stats.scan_timeouts,
            result.fault_counters.scan_timeouts);
}

TEST(Resilience, ResilientPolicyIsBoundedAndActive) {
  auto p = crawler::resilient_fetch_policy();
  EXPECT_TRUE(p.active());
  EXPECT_GT(p.fetch_timeout.count_ms(), 0);
  EXPECT_GT(p.retry_backoff.count_ms(), 0);
  EXPECT_GE(p.retry_backoff_max.count_ms(), p.retry_backoff.count_ms());
  EXPECT_GT(p.breaker_threshold, 0u);
  // Default-constructed policy is the legacy crawler: everything off.
  crawler::FetchPolicy off;
  EXPECT_FALSE(off.active());
}

}  // namespace
}  // namespace p2p
