// BYE graceful-leave semantics and multi-vantage crawling.
#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "core/study.h"
#include "gnutella/servent.h"

namespace p2p {
namespace {

using sim::SimDuration;
using sim::SimTime;

TEST(ByeMessage, RoundTrips) {
  util::Rng rng(1);
  auto msg = gnutella::make_bye(gnutella::Guid::random(rng), 200, "client exiting");
  auto parsed = gnutella::parse(gnutella::serialize(msg));
  ASSERT_TRUE(parsed.has_value());
  const auto& bye = std::get<gnutella::Bye>(parsed->payload);
  EXPECT_EQ(bye.code, 200);
  EXPECT_EQ(bye.reason, "client exiting");
}

struct ByeRig {
  sim::Network net{606};
  std::shared_ptr<gnutella::HostCache> cache = std::make_shared<gnutella::HostCache>();
  int next_ip = 1;

  gnutella::Servent* add(bool ultrapeer) {
    gnutella::ServentConfig cfg;
    cfg.ultrapeer = ultrapeer;
    auto answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto servent = std::make_unique<gnutella::Servent>(
        cfg, answerer, cache, static_cast<std::uint64_t>(next_ip));
    gnutella::Servent* raw = servent.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(40, 0, 0, static_cast<std::uint8_t>(next_ip));
    profile.port = 6346;
    ++next_ip;
    net.add_node(std::move(servent), profile);
    if (ultrapeer) cache->add({profile.ip, profile.port});
    return raw;
  }
};

TEST(ByeMessage, PeerDropsLinkImmediately) {
  ByeRig rig;
  gnutella::Servent* up = rig.add(true);
  gnutella::Servent* leaf = rig.add(false);
  rig.net.events().run_until(SimTime::zero() + SimDuration::minutes(1));
  ASSERT_EQ(up->leaf_count(), 1u);

  leaf->shutdown(200, "bye test");
  rig.net.remove_node(leaf->id());
  rig.net.events().run_until(rig.net.now() + SimDuration::seconds(10));
  // The ultrapeer processed the BYE and released the leaf slot without
  // waiting for any timeout.
  EXPECT_EQ(up->leaf_count(), 0u);
}

TEST(ByeMessage, SurvivorRefillsAfterGracefulLeave) {
  ByeRig rig;
  gnutella::Servent* up1 = rig.add(true);
  gnutella::Servent* up2 = rig.add(true);
  gnutella::Servent* leaf = rig.add(false);
  rig.net.events().run_until(SimTime::zero() + SimDuration::minutes(1));
  EXPECT_GE(leaf->overlay_link_count(), 2u);

  sim::NodeId up1_id = up1->id();
  up1->shutdown();
  rig.net.remove_node(up1_id);
  rig.cache->remove({rig.net.profile(up1_id).ip, rig.net.profile(up1_id).port});
  rig.net.events().run_until(rig.net.now() + SimDuration::minutes(2));
  EXPECT_GE(leaf->overlay_link_count(), 1u);
  EXPECT_GE(up2->leaf_count(), 1u);
}

TEST(MultiVantage, MergedLogsAreTimeOrderedWithFreshIds) {
  auto cfg = core::limewire_quick();
  cfg.population.ultrapeers = 6;
  cfg.population.leaves = 80;
  cfg.population.corpus.num_titles = 300;
  cfg.crawl.duration = SimDuration::hours(2);
  cfg.crawl.query_interval = SimDuration::seconds(120);
  cfg.crawler_count = 3;
  auto result = core::run_limewire_study(cfg);

  ASSERT_GT(result.records.size(), 100u);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].id, i + 1);
    if (i > 0) {
      EXPECT_LE(result.records[i - 1].at, result.records[i].at);
    }
  }
  // Three vantage points issue roughly 3x the queries of one.
  EXPECT_GT(result.crawl_stats.queries_sent, 100u);
}

TEST(MultiVantage, MoreVantagePointsMoreCoverage) {
  auto base = core::limewire_quick();
  base.population.ultrapeers = 6;
  base.population.leaves = 80;
  base.population.corpus.num_titles = 300;
  base.crawl.duration = SimDuration::hours(2);
  base.crawl.query_interval = SimDuration::seconds(120);

  auto single = core::run_limewire_study(base);
  auto multi_cfg = base;
  multi_cfg.crawler_count = 2;
  auto multi = core::run_limewire_study(multi_cfg);

  EXPECT_GT(multi.records.size(), single.records.size());
  // The headline statistic is vantage-independent.
  auto s1 = analysis::prevalence(single.records);
  auto s2 = analysis::prevalence(multi.records);
  EXPECT_NEAR(s1.malicious_fraction(), s2.malicious_fraction(), 0.15);
}

}  // namespace
}  // namespace p2p
