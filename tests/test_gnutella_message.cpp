#include "gnutella/message.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace p2p::gnutella {
namespace {

Guid guid_of(std::uint64_t seed) {
  util::Rng rng(seed);
  return Guid::random(rng);
}

TEST(Guid, RandomSetsModernMarkers) {
  Guid g = guid_of(1);
  EXPECT_EQ(g.bytes[8], 0xff);
  EXPECT_EQ(g.bytes[15], 0x00);
}

TEST(Guid, HexIs32Chars) { EXPECT_EQ(guid_of(1).hex().size(), 32u); }

TEST(Guid, HashDistinguishes) {
  GuidHash h;
  EXPECT_NE(h(guid_of(1)), h(guid_of(2)));
  EXPECT_EQ(h(guid_of(3)), h(guid_of(3)));
}

TEST(Message, PingRoundTrip) {
  Message ping = make_ping(guid_of(1), 7);
  auto parsed = parse(serialize(ping));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type(), MsgType::kPing);
  EXPECT_EQ(parsed->header.guid, ping.header.guid);
  EXPECT_EQ(parsed->header.ttl, 7);
  EXPECT_EQ(parsed->header.hops, 0);
}

TEST(Message, PongRoundTrip) {
  Pong pong;
  pong.addr = {util::Ipv4(10, 20, 30, 40), 6346};
  pong.file_count = 123;
  pong.kb_shared = 4567;
  auto parsed = parse(serialize(make_pong(guid_of(2), 5, pong)));
  ASSERT_TRUE(parsed.has_value());
  const auto& p = std::get<Pong>(parsed->payload);
  EXPECT_EQ(p.addr.ip.str(), "10.20.30.40");
  EXPECT_EQ(p.addr.port, 6346);
  EXPECT_EQ(p.file_count, 123u);
  EXPECT_EQ(p.kb_shared, 4567u);
}

TEST(Message, QueryRoundTrip) {
  auto parsed = parse(serialize(make_query(guid_of(3), 4, "blue horizon mp3", 56)));
  ASSERT_TRUE(parsed.has_value());
  const auto& q = std::get<Query>(parsed->payload);
  EXPECT_EQ(q.criteria, "blue horizon mp3");
  EXPECT_EQ(q.min_speed, 56);
}

TEST(Message, QueryHitRoundTripWithSha1) {
  QueryHit hit;
  hit.addr = {util::Ipv4(192, 168, 1, 5), 12345};
  hit.speed = 384;
  hit.needs_push = true;
  hit.servent_guid = guid_of(9);
  QueryHitResult r1;
  r1.index = 42;
  r1.size = 58'368;
  r1.filename = "some file with spaces.exe";
  for (std::size_t i = 0; i < r1.sha1.size(); ++i) {
    r1.sha1[i] = static_cast<std::uint8_t>(i);
  }
  hit.results.push_back(r1);
  QueryHitResult r2;
  r2.index = 7;
  r2.size = 1000;
  r2.filename = "b.zip";
  hit.results.push_back(r2);

  auto parsed = parse(serialize(make_query_hit(guid_of(4), 3, hit)));
  ASSERT_TRUE(parsed.has_value());
  const auto& h = std::get<QueryHit>(parsed->payload);
  EXPECT_EQ(h.addr.ip.str(), "192.168.1.5");
  EXPECT_TRUE(h.needs_push);
  EXPECT_EQ(h.servent_guid, hit.servent_guid);
  ASSERT_EQ(h.results.size(), 2u);
  EXPECT_EQ(h.results[0].index, 42u);
  EXPECT_EQ(h.results[0].size, 58'368u);
  EXPECT_EQ(h.results[0].filename, "some file with spaces.exe");
  EXPECT_EQ(h.results[0].sha1, r1.sha1);
  EXPECT_EQ(h.results[1].filename, "b.zip");
}

TEST(Message, QueryHitPushFlagOff) {
  QueryHit hit;
  hit.servent_guid = guid_of(9);
  auto parsed = parse(serialize(make_query_hit(guid_of(4), 3, hit)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(std::get<QueryHit>(parsed->payload).needs_push);
}

TEST(Message, PushRoundTrip) {
  Push push;
  push.servent_guid = guid_of(5);
  push.file_index = 99;
  push.requester = {util::Ipv4(156, 56, 1, 10), 6346};
  auto parsed = parse(serialize(make_push(guid_of(6), 7, push)));
  ASSERT_TRUE(parsed.has_value());
  const auto& p = std::get<Push>(parsed->payload);
  EXPECT_EQ(p.servent_guid, push.servent_guid);
  EXPECT_EQ(p.file_index, 99u);
  EXPECT_EQ(p.requester.ip.str(), "156.56.1.10");
}

TEST(Message, QrpResetRoundTrip) {
  auto parsed = parse(serialize(make_qrp_reset(guid_of(7), 13)));
  ASSERT_TRUE(parsed.has_value());
  const auto& qrp = std::get<Qrp>(parsed->payload);
  ASSERT_TRUE(std::holds_alternative<QrpReset>(qrp.op));
  EXPECT_EQ(std::get<QrpReset>(qrp.op).table_bits, 13u);
}

TEST(Message, QrpPatchRoundTrip) {
  util::Bytes bits(64);
  bits[5] = 1;
  bits[63] = 1;
  auto parsed = parse(serialize(make_qrp_patch(guid_of(8), bits)));
  ASSERT_TRUE(parsed.has_value());
  const auto& qrp = std::get<Qrp>(parsed->payload);
  ASSERT_TRUE(std::holds_alternative<QrpPatch>(qrp.op));
  EXPECT_EQ(std::get<QrpPatch>(qrp.op).bits, bits);
}

TEST(Message, RejectsUnknownType) {
  Message ping = make_ping(guid_of(1), 7);
  auto wire = serialize(ping);
  wire[16] = 0x77;  // type byte
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Message, RejectsBadPayloadLength) {
  auto wire = serialize(make_ping(guid_of(1), 7));
  wire[19] = 5;  // claim 5 payload bytes that aren't there
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Message, RejectsTruncatedHeader) {
  util::Bytes wire(10, 0);
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Message, RejectsTruncatedQueryHit) {
  QueryHit hit;
  hit.servent_guid = guid_of(9);
  QueryHitResult r;
  r.filename = "x.exe";
  hit.results.push_back(r);
  auto wire = serialize(make_query_hit(guid_of(4), 3, hit));
  wire.resize(wire.size() - 10);
  // Truncated: payload length mismatch.
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Message, HeaderPreservesTtlAndHops) {
  Message q = make_query(guid_of(3), 4, "x");
  q.header.hops = 2;
  q.header.ttl = 2;
  auto parsed = parse(serialize(q));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.ttl, 2);
  EXPECT_EQ(parsed->header.hops, 2);
}

// Round-trip sweep over query strings with odd characters.
class QueryCriteriaSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryCriteriaSweep, Survives) {
  auto parsed = parse(serialize(make_query(guid_of(10), 4, GetParam())));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<Query>(parsed->payload).criteria, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Criteria, QueryCriteriaSweep,
                         ::testing::Values("", "a", "multi word query",
                                           "punct!@#$%^&*()", "UPPER lower",
                                           "trailing space "));

}  // namespace
}  // namespace p2p::gnutella
