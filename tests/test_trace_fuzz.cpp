// Trace-store robustness: randomized record/header round trips through the
// codec, and mutation fuzzing of whole trace files through TraceReader —
// bit flips, truncations, and pure garbage must never crash, throw past the
// reader, or report inconsistent stats.
//
// Lives in the fuzz binary (ctest label: fuzz) so the sanitizer tier can
// scale the loops up via P2P_FUZZ_ROUNDS (see ci/run_tiers.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "trace/codec.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/rng.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

std::string random_text(util::Rng& rng, std::size_t max_len) {
  std::size_t len = rng.index(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(32 + rng.index(95)));
  }
  return out;
}

crawler::ResponseRecord random_record(util::Rng& rng, std::uint64_t id) {
  crawler::ResponseRecord r;
  r.id = id;
  r.network = rng.chance(0.5) ? "limewire" : "openft";
  r.at = util::SimTime::at_millis(static_cast<std::int64_t>(rng.bounded(1u << 30)));
  r.query = random_text(rng, 40);
  r.query_category = random_text(rng, 16);
  r.filename = random_text(rng, 80) + (rng.chance(0.5) ? ".exe" : ".mp3");
  r.size = rng.next();
  r.source_ip = util::Ipv4(static_cast<std::uint32_t>(rng.next()));
  r.source_port = static_cast<std::uint16_t>(rng.bounded(65536));
  r.source_key = random_text(rng, 30);
  r.source_firewalled = rng.chance(0.3);
  r.download_attempted = rng.chance(0.9);
  r.downloaded = r.download_attempted && rng.chance(0.8);
  r.infected = r.downloaded && rng.chance(0.2);
  r.strain = r.infected ? static_cast<malware::StrainId>(rng.bounded(64))
                        : malware::kCleanStrain;
  r.strain_name = r.infected ? random_text(rng, 24) : "";
  r.content_key = random_text(rng, 32);
  r.type_by_magic = r.infected ? files::FileType::kExecutable : files::FileType::kOther;
  return r;
}

// Drain a reader over arbitrary bytes. Must never throw; returns the record
// count so callers can sanity-check stats consistency.
std::uint64_t drain(const std::string& bytes, trace::ReadStats* stats_out = nullptr) {
  std::istringstream in(bytes, std::ios::binary);
  trace::TraceReader reader(in);
  std::uint64_t count = 0;
  crawler::ResponseRecord rec;
  while (reader.next(rec)) ++count;
  if (stats_out != nullptr) *stats_out = reader.stats();
  EXPECT_EQ(reader.stats().records_read, count);
  return count;
}

// ---------------------------------------------------------------------------
// Codec round trips over random records
// ---------------------------------------------------------------------------

class TraceRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTripFuzz, RecordCodecSurvives) {
  util::Rng rng(GetParam() ^ 0x7ace);
  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    auto rec = random_record(rng, rng.next());
    util::ByteWriter w;
    trace::encode_record(w, rec);
    util::ByteReader r(w.data());
    auto back = trace::decode_record(r);
    ASSERT_TRUE(r.empty());
    EXPECT_EQ(back.id, rec.id);
    EXPECT_EQ(back.network, rec.network);
    EXPECT_EQ(back.at, rec.at);
    EXPECT_EQ(back.query, rec.query);
    EXPECT_EQ(back.filename, rec.filename);
    EXPECT_EQ(back.type_by_name, files::classify_extension(rec.filename));
    EXPECT_EQ(back.size, rec.size);
    EXPECT_EQ(back.source_ip, rec.source_ip);
    EXPECT_EQ(back.source_port, rec.source_port);
    EXPECT_EQ(back.source_key, rec.source_key);
    EXPECT_EQ(back.source_firewalled, rec.source_firewalled);
    EXPECT_EQ(back.download_attempted, rec.download_attempted);
    EXPECT_EQ(back.downloaded, rec.downloaded);
    EXPECT_EQ(back.infected, rec.infected);
    EXPECT_EQ(back.strain, rec.strain);
    EXPECT_EQ(back.strain_name, rec.strain_name);
    EXPECT_EQ(back.content_key, rec.content_key);
    EXPECT_EQ(back.type_by_magic, rec.type_by_magic);
  }
}

TEST_P(TraceRoundTripFuzz, WholeFileSurvives) {
  util::Rng rng(GetParam() ^ 0xf11e);
  trace::TraceHeader header;
  header.network = "limewire";
  header.config_hash = rng.next();
  header.seed = rng.next();
  header.crawl_duration_ms = static_cast<std::int64_t>(rng.bounded(1u << 30));
  header.meta = {{"k", random_text(rng, 20)}};

  std::ostringstream out(std::ios::binary);
  trace::TraceWriterOptions opts;
  opts.records_per_block = rng.index(7) + 1;
  trace::TraceWriter writer(out, header, opts);
  std::size_t n = rng.index(40) + 1;
  std::vector<crawler::ResponseRecord> originals;
  for (std::size_t i = 0; i < n; ++i) {
    originals.push_back(random_record(rng, i + 1));
    writer.on_record(originals.back());
  }
  writer.close();
  ASSERT_TRUE(writer.ok());

  std::istringstream in(out.str(), std::ios::binary);
  trace::TraceReader reader(in);
  ASSERT_TRUE(reader.ok()) << reader.error_message();
  EXPECT_EQ(reader.header().config_hash, header.config_hash);
  EXPECT_EQ(reader.header().seed, header.seed);
  EXPECT_EQ(reader.header().meta, header.meta);
  crawler::ResponseRecord rec;
  std::size_t i = 0;
  while (reader.next(rec)) {
    ASSERT_LT(i, originals.size());
    EXPECT_EQ(rec.id, originals[i].id);
    EXPECT_EQ(rec.filename, originals[i].filename);
    EXPECT_EQ(rec.content_key, originals[i].content_key);
    ++i;
  }
  EXPECT_EQ(i, originals.size());
  EXPECT_TRUE(reader.stats().clean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Mutation fuzz: damaged trace files must degrade, never crash
// ---------------------------------------------------------------------------

class TraceMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceMutationFuzz, ReaderNeverThrowsOnMutatedFiles) {
  util::Rng rng(GetParam() ^ 0xdead7ace);
  trace::TraceHeader header;
  header.network = "openft";
  header.config_hash = 0x1234;
  header.meta = {{"tool", "fuzz"}};
  std::ostringstream out(std::ios::binary);
  trace::TraceWriterOptions opts;
  opts.records_per_block = 3;
  trace::TraceWriter writer(out, header, opts);
  for (std::uint64_t i = 1; i <= 12; ++i) writer.on_record(random_record(rng, i));
  writer.write_summary(trace::StudySummary{});
  writer.close();
  ASSERT_TRUE(writer.ok());
  const std::string clean = out.str();
  ASSERT_EQ(drain(clean), 12u);

  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    std::string mutated = clean;
    std::size_t flips = rng.index(6) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<char>(rng.bounded(255) + 1);
    }
    if (rng.chance(0.3)) mutated.resize(rng.index(mutated.size() + 1));
    trace::ReadStats stats;
    std::uint64_t count = 0;
    EXPECT_NO_THROW(count = drain(mutated, &stats));
    // A damaged file can only lose records, and any loss must be accounted
    // for: fewer records than the clean file implies corrupt blocks or a
    // truncated tail (header failures read zero records and report no
    // blocks at all). Sole exception: a cut landing exactly on a block
    // boundary is indistinguishable from a file that recorded fewer blocks
    // — but then the reader must have consumed every remaining byte.
    EXPECT_LE(count, 12u);
    if (count < 12u && stats.blocks_read + stats.blocks_corrupt > 0 &&
        stats.clean()) {
      EXPECT_EQ(stats.bytes_read, mutated.size());
    }
  }
}

TEST_P(TraceMutationFuzz, PureGarbageNeverReadsRecords) {
  util::Rng rng(GetParam() ^ 0x9a7ba9e);
  const int rounds = fuzz_rounds(100);
  std::uint64_t total = 0;
  for (int round = 0; round < rounds; ++round) {
    util::Bytes junk(rng.index(400) + 1);
    rng.fill(junk);
    std::string bytes(reinterpret_cast<const char*>(junk.data()), junk.size());
    EXPECT_NO_THROW(total += drain(bytes));
  }
  // Random bytes essentially never carry the magic, a valid header CRC, and
  // a valid block CRC all at once.
  EXPECT_EQ(total, 0u);
}

TEST_P(TraceMutationFuzz, TruncationAtEveryLengthIsContained) {
  util::Rng rng(GetParam() ^ 0x7a11);
  trace::TraceHeader header;
  header.network = "limewire";
  std::ostringstream out(std::ios::binary);
  trace::TraceWriterOptions opts;
  opts.records_per_block = 2;
  trace::TraceWriter writer(out, header, opts);
  for (std::uint64_t i = 1; i <= 6; ++i) writer.on_record(random_record(rng, i));
  writer.close();
  ASSERT_TRUE(writer.ok());
  const std::string clean = out.str();

  for (std::size_t cut = 0; cut < clean.size(); ++cut) {
    trace::ReadStats stats;
    std::uint64_t count = 0;
    EXPECT_NO_THROW(count = drain(clean.substr(0, cut), &stats));
    EXPECT_LE(count, 6u);
    EXPECT_EQ(count % 2, 0u) << "blocks are atomic: partial blocks must not leak";
  }
  ASSERT_EQ(drain(clean), 6u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceMutationFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace p2p
