#include "openft/packet.h"

#include <gtest/gtest.h>

namespace p2p::openft {
namespace {

files::Digest16 md5_of(int fill) {
  files::Digest16 d;
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = static_cast<std::uint8_t>(fill + static_cast<int>(i));
  }
  return d;
}

template <typename T>
T round_trip(T payload) {
  auto wire = serialize(make_packet(std::move(payload)));
  auto parsed = parse(wire);
  EXPECT_TRUE(parsed.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(parsed->payload));
  return std::get<T>(parsed->payload);
}

TEST(FtPacket, VersionRoundTrip) {
  auto v = round_trip(VersionResponse{0, 2, 1, 6});
  EXPECT_EQ(v.major, 0);
  EXPECT_EQ(v.minor, 2);
  EXPECT_EQ(v.micro, 1);
  EXPECT_EQ(v.rev, 6);
}

TEST(FtPacket, EmptyPayloadsRoundTrip) {
  (void)round_trip(VersionRequest{});
  (void)round_trip(SessionRequest{});
  (void)round_trip(ChildRequest{});
}

TEST(FtPacket, NodeInfoRoundTrip) {
  NodeInfo info;
  info.klass = kSearch | kUser;
  info.addr = {util::Ipv4(1, 2, 3, 4), 1216};
  info.http_port = 1217;
  info.alias = "some node";
  auto out = round_trip(info);
  EXPECT_EQ(out.klass, kSearch | kUser);
  EXPECT_EQ(out.addr.ip.str(), "1.2.3.4");
  EXPECT_EQ(out.addr.port, 1216);
  EXPECT_EQ(out.http_port, 1217);
  EXPECT_EQ(out.alias, "some node");
}

TEST(FtPacket, SessionAndChildResponses) {
  EXPECT_TRUE(round_trip(SessionResponse{true}).accepted);
  EXPECT_FALSE(round_trip(SessionResponse{false}).accepted);
  EXPECT_TRUE(round_trip(ChildResponse{true}).accepted);
  EXPECT_FALSE(round_trip(ChildResponse{false}).accepted);
}

TEST(FtPacket, AddShareRoundTrip) {
  AddShare share;
  share.md5 = md5_of(10);
  share.size = 123'456;
  share.path = "/shared/photomax v3.1 setup.exe";
  auto out = round_trip(share);
  EXPECT_EQ(out.md5, share.md5);
  EXPECT_EQ(out.size, share.size);
  EXPECT_EQ(out.path, share.path);
}

TEST(FtPacket, RemShareRoundTrip) {
  EXPECT_EQ(round_trip(RemShare{md5_of(3)}).md5, md5_of(3));
}

TEST(FtPacket, SearchRequestRoundTrip) {
  SearchRequest req;
  req.search_id = 0xDEADBEEFCAFEBABEull;
  req.ttl = 2;
  req.query = "blue horizon";
  auto out = round_trip(req);
  EXPECT_EQ(out.search_id, req.search_id);
  EXPECT_EQ(out.ttl, 2);
  EXPECT_EQ(out.query, "blue horizon");
}

TEST(FtPacket, SearchResponseRoundTrip) {
  SearchResponse resp;
  resp.search_id = 42;
  resp.owner = {util::Ipv4(10, 0, 0, 1), 5555};
  resp.owner_http_port = 0;
  resp.md5 = md5_of(7);
  resp.size = 81'920;
  resp.path = "/shared/file.exe";
  resp.availability = 3;
  resp.owner_firewalled = true;
  auto out = round_trip(resp);
  EXPECT_EQ(out.search_id, 42u);
  EXPECT_EQ(out.owner.ip.str(), "10.0.0.1");
  EXPECT_EQ(out.owner_http_port, 0);
  EXPECT_EQ(out.md5, resp.md5);
  EXPECT_EQ(out.size, 81'920u);
  EXPECT_EQ(out.path, resp.path);
  EXPECT_EQ(out.availability, 3);
  EXPECT_TRUE(out.owner_firewalled);
}

TEST(FtPacket, SearchEndRoundTrip) {
  EXPECT_EQ(round_trip(SearchEnd{977}).search_id, 977u);
}

TEST(FtPacket, PushRequestRoundTrip) {
  PushRequest push;
  push.requester = {util::Ipv4(9, 8, 7, 6), 2048};
  push.md5 = md5_of(1);
  auto out = round_trip(push);
  EXPECT_EQ(out.requester.ip.str(), "9.8.7.6");
  EXPECT_EQ(out.requester.port, 2048);
  EXPECT_EQ(out.md5, push.md5);
}

TEST(FtPacket, StatsRoundTrip) {
  auto out = round_trip(Stats{100, 2000, 34'567});
  EXPECT_EQ(out.users, 100u);
  EXPECT_EQ(out.shares, 2000u);
  EXPECT_EQ(out.size_mb, 34'567u);
}

TEST(FtPacket, RejectsUnknownCommand) {
  auto wire = serialize(make_packet(VersionRequest{}));
  wire[3] = 0x7F;  // command low byte
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(FtPacket, RejectsLengthMismatch) {
  auto wire = serialize(make_packet(SearchEnd{1}));
  wire[1] = static_cast<std::uint8_t>(wire[1] + 1);
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(FtPacket, RejectsTruncated) {
  auto wire = serialize(make_packet(Stats{1, 2, 3}));
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(FtPacket, RejectsTrailingGarbage) {
  auto wire = serialize(make_packet(SearchEnd{1}));
  wire.push_back(0xAA);
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(FtPacket, CommandTagsMatchPayloads) {
  EXPECT_EQ(make_packet(VersionRequest{}).command, FtCommand::kVersionRequest);
  EXPECT_EQ(make_packet(NodeInfo{}).command, FtCommand::kNodeInfo);
  EXPECT_EQ(make_packet(AddShare{}).command, FtCommand::kAddShare);
  EXPECT_EQ(make_packet(SearchRequest{}).command, FtCommand::kSearchRequest);
  EXPECT_EQ(make_packet(PushRequest{}).command, FtCommand::kPushRequest);
}

}  // namespace
}  // namespace p2p::openft
