// Wire-format robustness: randomized round-trip sweeps and mutation fuzzing
// of both protocols' codecs. Parsers must never crash, and valid messages
// must always survive serialization exactly.
//
// Runs in its own binary (ctest label: fuzz) so the sanitizer tier can
// re-run just this suite with the loops scaled up via P2P_FUZZ_ROUNDS
// (see ci/run_tiers.sh).
#include <gtest/gtest.h>

#include <cstdlib>

#include "gnutella/message.h"
#include "openft/packet.h"
#include "util/rng.h"

namespace p2p {
namespace {

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

std::string random_text(util::Rng& rng, std::size_t max_len) {
  // NUL-free printable-ish text (NUL is the wire terminator).
  std::size_t len = rng.index(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(32 + rng.index(95)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Gnutella: randomized round trips
// ---------------------------------------------------------------------------

class GnutellaRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GnutellaRoundTripFuzz, QueryHitSurvives) {
  util::Rng rng(GetParam());
  gnutella::QueryHit hit;
  hit.addr = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
              static_cast<std::uint16_t>(rng.bounded(65536))};
  hit.speed = static_cast<std::uint32_t>(rng.next());
  hit.needs_push = rng.chance(0.5);
  hit.servent_guid = gnutella::Guid::random(rng);
  std::size_t n = rng.index(12) + 1;
  for (std::size_t i = 0; i < n; ++i) {
    gnutella::QueryHitResult r;
    r.index = static_cast<std::uint32_t>(rng.next());
    r.size = static_cast<std::uint32_t>(rng.next());
    r.filename = random_text(rng, 80);
    rng.fill(r.sha1);
    hit.results.push_back(std::move(r));
  }
  auto msg = gnutella::make_query_hit(gnutella::Guid::random(rng),
                                      static_cast<std::uint8_t>(rng.range(1, 7)), hit);
  msg.header.hops = static_cast<std::uint8_t>(rng.range(0, 7));
  auto parsed = gnutella::parse(gnutella::serialize(msg));
  ASSERT_TRUE(parsed.has_value());
  const auto& out = std::get<gnutella::QueryHit>(parsed->payload);
  ASSERT_EQ(out.results.size(), hit.results.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.results[i].index, hit.results[i].index);
    EXPECT_EQ(out.results[i].size, hit.results[i].size);
    EXPECT_EQ(out.results[i].filename, hit.results[i].filename);
    EXPECT_EQ(out.results[i].sha1, hit.results[i].sha1);
  }
  EXPECT_EQ(out.needs_push, hit.needs_push);
  EXPECT_EQ(out.servent_guid, hit.servent_guid);
  EXPECT_EQ(parsed->header.ttl, msg.header.ttl);
  EXPECT_EQ(parsed->header.hops, msg.header.hops);
}

TEST_P(GnutellaRoundTripFuzz, QuerySurvives) {
  util::Rng rng(GetParam() ^ 0xfeed);
  auto msg = gnutella::make_query(gnutella::Guid::random(rng), 4,
                                  random_text(rng, 120),
                                  static_cast<std::uint16_t>(rng.bounded(65536)));
  auto parsed = gnutella::parse(gnutella::serialize(msg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<gnutella::Query>(parsed->payload).criteria,
            std::get<gnutella::Query>(msg.payload).criteria);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GnutellaRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Mutation fuzz: corrupted wires must parse to nullopt or valid data, never
// crash or throw past the parser.
// ---------------------------------------------------------------------------

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, GnutellaParserNeverThrows) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  gnutella::QueryHit hit;
  hit.servent_guid = gnutella::Guid::random(rng);
  gnutella::QueryHitResult r;
  r.filename = "sample file.exe";
  hit.results.push_back(r);
  auto wire = gnutella::serialize(
      gnutella::make_query_hit(gnutella::Guid::random(rng), 4, hit));

  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes mutated = wire;
    std::size_t flips = rng.index(5) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(rng.bounded(255) + 1);
    }
    if (rng.chance(0.3)) mutated.resize(rng.index(mutated.size() + 1));
    EXPECT_NO_THROW({ auto result = gnutella::parse(mutated); (void)result; });
  }
}

TEST_P(MutationFuzz, OpenFtParserNeverThrows) {
  util::Rng rng(GetParam() ^ 0x123456);
  openft::SearchResponse resp;
  resp.search_id = rng.next();
  resp.owner = {util::Ipv4(1, 2, 3, 4), 1216};
  resp.path = "/shared/some file.exe";
  auto wire = openft::serialize(openft::make_packet(resp));

  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes mutated = wire;
    std::size_t flips = rng.index(5) + 1;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(rng.bounded(255) + 1);
    }
    if (rng.chance(0.3)) mutated.resize(rng.index(mutated.size() + 1));
    EXPECT_NO_THROW({ auto result = openft::parse(mutated); (void)result; });
  }
}

TEST_P(MutationFuzz, RandomBytesNeverParseAsProtocol) {
  util::Rng rng(GetParam() ^ 0x777);
  // Pure random buffers virtually never form a valid descriptor (the
  // length field must match exactly and the type byte must be known).
  int gnutella_accepts = 0;
  int openft_accepts = 0;
  const int rounds = fuzz_rounds(100);
  for (int round = 0; round < rounds; ++round) {
    util::Bytes junk(rng.index(200) + 1);
    rng.fill(junk);
    if (gnutella::parse(junk).has_value()) ++gnutella_accepts;
    if (openft::parse(junk).has_value()) ++openft_accepts;
  }
  EXPECT_LE(gnutella_accepts, 1);
  EXPECT_LE(openft_accepts, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// OpenFT randomized round trips
// ---------------------------------------------------------------------------

class OpenFtRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpenFtRoundTripFuzz, SearchResponseSurvives) {
  util::Rng rng(GetParam() ^ 0x0f7f7);
  openft::SearchResponse resp;
  resp.search_id = rng.next();
  resp.owner = {util::Ipv4(static_cast<std::uint32_t>(rng.next())),
                static_cast<std::uint16_t>(rng.bounded(65536))};
  resp.owner_http_port = static_cast<std::uint16_t>(rng.bounded(65536));
  rng.fill(resp.md5);
  resp.size = static_cast<std::uint32_t>(rng.next());
  resp.path = "/shared/" + random_text(rng, 60);
  resp.availability = static_cast<std::uint16_t>(rng.bounded(65536));
  resp.owner_firewalled = rng.chance(0.5);

  auto parsed = openft::parse(openft::serialize(openft::make_packet(resp)));
  ASSERT_TRUE(parsed.has_value());
  const auto& out = std::get<openft::SearchResponse>(parsed->payload);
  EXPECT_EQ(out.search_id, resp.search_id);
  EXPECT_EQ(out.owner, resp.owner);
  EXPECT_EQ(out.owner_http_port, resp.owner_http_port);
  EXPECT_EQ(out.md5, resp.md5);
  EXPECT_EQ(out.size, resp.size);
  EXPECT_EQ(out.path, resp.path);
  EXPECT_EQ(out.availability, resp.availability);
  EXPECT_EQ(out.owner_firewalled, resp.owner_firewalled);
}

TEST_P(OpenFtRoundTripFuzz, AddShareSurvives) {
  util::Rng rng(GetParam() ^ 0x55);
  openft::AddShare share;
  rng.fill(share.md5);
  share.size = static_cast<std::uint32_t>(rng.next());
  share.path = "/shared/" + random_text(rng, 100);
  auto parsed = openft::parse(openft::serialize(openft::make_packet(share)));
  ASSERT_TRUE(parsed.has_value());
  const auto& out = std::get<openft::AddShare>(parsed->payload);
  EXPECT_EQ(out.md5, share.md5);
  EXPECT_EQ(out.size, share.size);
  EXPECT_EQ(out.path, share.path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenFtRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace p2p
