#include "util/strings.h"

#include <gtest/gtest.h>

namespace p2p::util {
namespace {

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("AbC xY-Z"), "abc xy-z");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Split, DropsEmptyPieces) {
  auto parts = split("a,,b,c,", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, MultipleDelimiters) {
  auto parts = split("a b\tc", " \t");
  ASSERT_EQ(parts.size(), 3u);
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Keywords, TokenizesLowercaseAlnum) {
  auto kw = keywords("Blue Horizon - Midnight_Rain (Live).mp3");
  std::vector<std::string> expected = {"blue", "horizon", "midnight",
                                       "rain", "live", "mp3"};
  EXPECT_EQ(kw, expected);
}

TEST(Keywords, DropsShortTokens) {
  auto kw = keywords("a b cd");
  ASSERT_EQ(kw.size(), 1u);
  EXPECT_EQ(kw[0], "cd");
}

TEST(KeywordMatch, AllQueryTokensRequired) {
  EXPECT_TRUE(keyword_match("blue rain", "blue horizon - midnight rain.mp3"));
  EXPECT_FALSE(keyword_match("blue sun", "blue horizon - midnight rain.mp3"));
  EXPECT_TRUE(keyword_match("RAIN", "Midnight Rain"));
}

TEST(KeywordMatch, EmptyQueryNeverMatches) {
  EXPECT_FALSE(keyword_match("", "anything"));
  EXPECT_FALSE(keyword_match("!!", "anything"));
}

TEST(EndsWithIcase, Works) {
  EXPECT_TRUE(ends_with_icase("setup.EXE", ".exe"));
  EXPECT_TRUE(ends_with_icase("a.zip", ".ZIP"));
  EXPECT_FALSE(ends_with_icase("a.zipx", ".zip"));
  EXPECT_FALSE(ends_with_icase("zip", ".zip"));
}

TEST(Extension, Basic) {
  EXPECT_EQ(extension("Setup.EXE"), "exe");
  EXPECT_EQ(extension("archive.tar.gz"), "gz");
  EXPECT_EQ(extension("noext"), "");
  EXPECT_EQ(extension("trailingdot."), "");
  EXPECT_EQ(extension("dir.v2/file"), "");
  EXPECT_EQ(extension("/shared/song.mp3"), "mp3");
}

TEST(FormatPct, Rounding) {
  EXPECT_EQ(format_pct(0.684), "68.4%");
  EXPECT_EQ(format_pct(0.9999, 2), "99.99%");
  EXPECT_EQ(format_pct(0.0), "0.0%");
  EXPECT_EQ(format_pct(1.0, 0), "100%");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_count(123456), "123,456");
}

}  // namespace
}  // namespace p2p::util
