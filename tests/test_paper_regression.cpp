// Statistical regression suite pinning the paper's headline numbers
// (ctest label: paper).
//
// Kalafut, Acharya, Gupta — "A Study of Malware in Peer-to-Peer Networks"
// (IMC 2006) reports, over a month of crawling (see EXPERIMENTS.md for the
// full-scale reproduction):
//   E1  68% of downloadable exe/archive responses in LimeWire carry
//       malware; 3% in OpenFT.
//   E2  the top-3 LimeWire strains cover 99% of malicious responses; the
//       top OpenFT strain alone covers 67%, served by a single host.
//   E5  LimeWire's built-in mechanisms detect ~6% of malicious responses;
//       size-based filtering detects >99% with near-zero false positives.
//
// Scale-down rationale: the full standard preset costs ~1 minute per seed,
// so this suite sweeps the quick preset stretched to 5 simulated days over
// 4 fixed seeds per network (~20s total). The bands below were calibrated
// against that scale (EXPERIMENTS.md seed-band tables hold the full-scale
// equivalents): prevalence and concentration are already stable at 5 days,
// while OpenFT's size filter sits a few points below its 30-day value
// (fewer training sizes seen), hence its looser floor. Everything is
// deterministic for the pinned seeds — a band violation means the
// simulation's behaviour changed, not bad luck.
#include <gtest/gtest.h>

#include "sweep/sweep.h"

namespace p2p {
namespace {

const sweep::SweepResult& limewire_sweep() {
  static const sweep::SweepResult result = [] {
    sweep::PlanConfig plan;
    plan.network = sweep::NetworkKind::kLimewire;
    plan.quick = true;
    plan.seeds = {2006, 2007, 2008, 2009};
    plan.duration = util::SimDuration::days(5);
    return sweep::run(sweep::plan(plan), {});
  }();
  return result;
}

const sweep::SweepResult& openft_sweep() {
  static const sweep::SweepResult result = [] {
    sweep::PlanConfig plan;
    plan.network = sweep::NetworkKind::kOpenFt;
    plan.quick = true;
    plan.seeds = {2007, 2008, 2009, 2010};
    plan.duration = util::SimDuration::days(5);
    return sweep::run(sweep::plan(plan), {});
  }();
  return result;
}

// Mean of `metric` over the sweep's replications, with the per-seed range
// in the failure message.
double band_mean(const sweep::SweepResult& sweep, std::string_view metric) {
  const sweep::MetricSummary* s = sweep.summary(metric);
  EXPECT_NE(s, nullptr) << "metric missing from sweep: " << metric;
  if (s == nullptr) return -1.0;
  EXPECT_EQ(s->moments.n, 4u) << metric;
  return s->moments.mean;
}

TEST(PaperRegressionE1, LimewirePrevalenceNearTwoThirds) {
  const auto& sweep = limewire_sweep();
  ASSERT_TRUE(sweep.all_ok());
  double fraction = band_mean(sweep, "prevalence.malicious_fraction");
  EXPECT_GE(fraction, 0.60);
  EXPECT_LE(fraction, 0.75);
  // Every seed individually stays in a slightly wider band.
  for (const auto& task : sweep.tasks) {
    double f = task.values.at("prevalence.malicious_fraction");
    EXPECT_GE(f, 0.55) << "seed " << task.seed;
    EXPECT_LE(f, 0.80) << "seed " << task.seed;
  }
  // A sweep this small still needs real data behind it.
  EXPECT_GT(band_mean(sweep, "prevalence.study_responses"), 1000.0);
}

TEST(PaperRegressionE1, OpenftPrevalenceAnOrderOfMagnitudeLower) {
  const auto& sweep = openft_sweep();
  ASSERT_TRUE(sweep.all_ok());
  double fraction = band_mean(sweep, "prevalence.malicious_fraction");
  EXPECT_GE(fraction, 0.01);
  EXPECT_LE(fraction, 0.10);
}

TEST(PaperRegressionE2, LimewireTopThreeStrainsDominate) {
  const auto& sweep = limewire_sweep();
  EXPECT_GE(band_mean(sweep, "strains.top3_share"), 0.95);
  double top1 = band_mean(sweep, "strains.top1_share");
  EXPECT_GE(top1, 0.50);
  EXPECT_LE(top1, 0.80);
}

TEST(PaperRegressionE2, OpenftSingleStrainSingleHost) {
  const auto& sweep = openft_sweep();
  double top1 = band_mean(sweep, "strains.top1_share");
  EXPECT_GE(top1, 0.70);
  EXPECT_LE(top1, 0.95);
  EXPECT_GE(band_mean(sweep, "strains.top3_share"), 0.85);
  // The paper's super-spreader: the top strain is served by one host.
  EXPECT_GE(band_mean(sweep, "sources.top_strain_top_source_share"), 0.90);
}

TEST(PaperRegressionE5, SizeFilterBeatsBuiltinByAnOrderOfMagnitude) {
  const auto& sweep = limewire_sweep();
  double size_detection = band_mean(sweep, "filter.size_detection");
  double builtin_detection = band_mean(sweep, "filter.builtin_detection");
  EXPECT_GE(size_detection, 0.97);
  EXPECT_LE(band_mean(sweep, "filter.size_false_positives"), 0.005);
  EXPECT_GE(builtin_detection, 0.02);
  EXPECT_LE(builtin_detection, 0.20);
  EXPECT_GT(size_detection, 5.0 * builtin_detection);
}

TEST(PaperRegressionE5, SizeFilterTransfersToOpenft) {
  const auto& sweep = openft_sweep();
  EXPECT_GE(band_mean(sweep, "filter.size_detection"), 0.80);
  EXPECT_LE(band_mean(sweep, "filter.size_false_positives"), 0.005);
}

}  // namespace
}  // namespace p2p
