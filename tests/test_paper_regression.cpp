// Statistical regression suite pinning the paper's headline numbers
// (ctest label: paper).
//
// Kalafut, Acharya, Gupta — "A Study of Malware in Peer-to-Peer Networks"
// (IMC 2006) reports, over a month of crawling (see EXPERIMENTS.md for the
// full-scale reproduction):
//   E1  68% of downloadable exe/archive responses in LimeWire carry
//       malware; 3% in OpenFT.
//   E2  the top-3 LimeWire strains cover 99% of malicious responses; the
//       top OpenFT strain alone covers 67%, served by a single host.
//   E5  LimeWire's built-in mechanisms detect ~6% of malicious responses;
//       size-based filtering detects >99% with near-zero false positives.
//   E9  distributed-honeypot coverage of the infected population grows
//       monotonically with the number of vantage points, with sharply
//       diminishing marginal gain (the honeypot follow-up's headline).
//   E10 a single vantage point is a biased sample: its expected coverage
//       sits well below what the full vantage set observes.
//
// Scale-down rationale: the full standard preset costs ~1 minute per seed,
// so this suite sweeps the quick preset stretched to 5 simulated days over
// 4 fixed seeds per network (~20s total). The bands below were calibrated
// against that scale (EXPERIMENTS.md seed-band tables hold the full-scale
// equivalents): prevalence and concentration are already stable at 5 days,
// while OpenFT's size filter sits a few points below its 30-day value
// (fewer training sizes seen), hence its looser floor. Everything is
// deterministic for the pinned seeds — a band violation means the
// simulation's behaviour changed, not bad luck.
#include <gtest/gtest.h>

#include <cstdint>

#include "sweep/sweep.h"

namespace p2p {
namespace {

const sweep::SweepResult& limewire_sweep() {
  static const sweep::SweepResult result = [] {
    sweep::PlanConfig plan;
    plan.network = sweep::NetworkKind::kLimewire;
    plan.quick = true;
    plan.seeds = {2006, 2007, 2008, 2009};
    plan.duration = util::SimDuration::days(5);
    return sweep::run(sweep::plan(plan), {});
  }();
  return result;
}

const sweep::SweepResult& openft_sweep() {
  static const sweep::SweepResult result = [] {
    sweep::PlanConfig plan;
    plan.network = sweep::NetworkKind::kOpenFt;
    plan.quick = true;
    plan.seeds = {2007, 2008, 2009, 2010};
    plan.duration = util::SimDuration::days(5);
    return sweep::run(sweep::plan(plan), {});
  }();
  return result;
}

// 16 seeds at the quick preset's native 8 simulated hours (~10s total):
// the coverage statistics need more replications than the prevalence
// bands because each run holds only ~9 infected users.
const sweep::SweepResult& kad_sweep() {
  static const sweep::SweepResult result = [] {
    sweep::PlanConfig plan;
    plan.network = sweep::NetworkKind::kKad;
    plan.quick = true;
    plan.seeds.reserve(16);
    for (std::uint64_t seed = 2006; seed < 2022; ++seed) {
      plan.seeds.push_back(seed);
    }
    return sweep::run(sweep::plan(plan), {});
  }();
  return result;
}

// Mean of `metric` over the sweep's replications, with the per-seed range
// in the failure message.
double band_mean(const sweep::SweepResult& sweep, std::string_view metric,
                 std::size_t expect_n = 4) {
  const sweep::MetricSummary* s = sweep.summary(metric);
  EXPECT_NE(s, nullptr) << "metric missing from sweep: " << metric;
  if (s == nullptr) return -1.0;
  EXPECT_EQ(s->moments.n, expect_n) << metric;
  return s->moments.mean;
}

TEST(PaperRegressionE1, LimewirePrevalenceNearTwoThirds) {
  const auto& sweep = limewire_sweep();
  ASSERT_TRUE(sweep.all_ok());
  double fraction = band_mean(sweep, "prevalence.malicious_fraction");
  EXPECT_GE(fraction, 0.60);
  EXPECT_LE(fraction, 0.75);
  // Every seed individually stays in a slightly wider band.
  for (const auto& task : sweep.tasks) {
    double f = task.values.at("prevalence.malicious_fraction");
    EXPECT_GE(f, 0.55) << "seed " << task.seed;
    EXPECT_LE(f, 0.80) << "seed " << task.seed;
  }
  // A sweep this small still needs real data behind it.
  EXPECT_GT(band_mean(sweep, "prevalence.study_responses"), 1000.0);
}

TEST(PaperRegressionE1, OpenftPrevalenceAnOrderOfMagnitudeLower) {
  const auto& sweep = openft_sweep();
  ASSERT_TRUE(sweep.all_ok());
  double fraction = band_mean(sweep, "prevalence.malicious_fraction");
  EXPECT_GE(fraction, 0.01);
  EXPECT_LE(fraction, 0.10);
}

TEST(PaperRegressionE2, LimewireTopThreeStrainsDominate) {
  const auto& sweep = limewire_sweep();
  EXPECT_GE(band_mean(sweep, "strains.top3_share"), 0.95);
  double top1 = band_mean(sweep, "strains.top1_share");
  EXPECT_GE(top1, 0.50);
  EXPECT_LE(top1, 0.80);
}

TEST(PaperRegressionE2, OpenftSingleStrainSingleHost) {
  const auto& sweep = openft_sweep();
  double top1 = band_mean(sweep, "strains.top1_share");
  EXPECT_GE(top1, 0.70);
  EXPECT_LE(top1, 0.95);
  EXPECT_GE(band_mean(sweep, "strains.top3_share"), 0.85);
  // The paper's super-spreader: the top strain is served by one host.
  EXPECT_GE(band_mean(sweep, "sources.top_strain_top_source_share"), 0.90);
}

TEST(PaperRegressionE5, SizeFilterBeatsBuiltinByAnOrderOfMagnitude) {
  const auto& sweep = limewire_sweep();
  double size_detection = band_mean(sweep, "filter.size_detection");
  double builtin_detection = band_mean(sweep, "filter.builtin_detection");
  EXPECT_GE(size_detection, 0.97);
  EXPECT_LE(band_mean(sweep, "filter.size_false_positives"), 0.005);
  EXPECT_GE(builtin_detection, 0.02);
  EXPECT_LE(builtin_detection, 0.20);
  EXPECT_GT(size_detection, 5.0 * builtin_detection);
}

TEST(PaperRegressionE5, SizeFilterTransfersToOpenft) {
  const auto& sweep = openft_sweep();
  EXPECT_GE(band_mean(sweep, "filter.size_detection"), 0.80);
  EXPECT_LE(band_mean(sweep, "filter.size_false_positives"), 0.005);
}

TEST(PaperRegressionE9, HoneypotCoverageCurveStaysInBand) {
  const auto& sweep = kad_sweep();
  ASSERT_TRUE(sweep.all_ok());
  // Calibrated against the 16-seed quick sweep (mean curve
  // 0.743 / 0.831 / 0.853 / 0.854 / 0.854 at k = 1/2/4/8/16).
  double k1 = band_mean(sweep, "honeypot.coverage_k1", 16);
  double k2 = band_mean(sweep, "honeypot.coverage_k2", 16);
  double k4 = band_mean(sweep, "honeypot.coverage_k4", 16);
  double k8 = band_mean(sweep, "honeypot.coverage_k8", 16);
  double k16 = band_mean(sweep, "honeypot.coverage_k16", 16);
  EXPECT_GE(k1, 0.60);
  EXPECT_LE(k1, 0.88);
  EXPECT_GE(k16, 0.72);
  EXPECT_LE(k16, 0.96);
  // Monotone in the vantage count, for the mean and for every seed.
  EXPECT_LE(k1, k2);
  EXPECT_LE(k2, k4);
  EXPECT_LE(k4, k8);
  EXPECT_LE(k8, k16);
  for (const auto& task : sweep.tasks) {
    double prev = -1.0;
    for (const char* key :
         {"honeypot.coverage_k1", "honeypot.coverage_k2",
          "honeypot.coverage_k4", "honeypot.coverage_k8",
          "honeypot.coverage_k16"}) {
      double v = task.values.at(key);
      EXPECT_GE(v, prev - 1e-12) << "seed " << task.seed << " " << key;
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      prev = v;
    }
  }
  // Diminishing marginal gain: each doubling of the vantage count buys
  // strictly less additional coverage than the previous one.
  double g12 = k2 - k1, g24 = k4 - k2, g48 = k8 - k4, g816 = k16 - k8;
  EXPECT_LT(g24, g12);
  EXPECT_LE(g48, g24 + 1e-12);
  EXPECT_LE(g816, g48 + 1e-12);
  // The first doubling is worth a real jump; the last is worth almost
  // nothing — the paper's "a handful of honeypots suffices" conclusion.
  EXPECT_GE(g12, 0.03);
  EXPECT_LE(g816, 0.005);
}

TEST(PaperRegressionE9, HoneypotStreamCarriesRealVolume) {
  const auto& sweep = kad_sweep();
  EXPECT_EQ(band_mean(sweep, "honeypot.vantages", 16), 16.0);
  EXPECT_GT(band_mean(sweep, "honeypot.observations", 16), 5000.0);
  EXPECT_GT(band_mean(sweep, "honeypot.infected_total", 16), 4.0);
  // The index-poisoning prevalence the active client measures alongside
  // the honeypots (analogous to E1, an order of magnitude between the
  // saturated LimeWire picture and the clean OpenFT one).
  double fraction = band_mean(sweep, "prevalence.malicious_fraction", 16);
  EXPECT_GE(fraction, 0.15);
  EXPECT_LE(fraction, 0.55);
}

TEST(PaperRegressionE10, SingleVantageIsABiasedSample) {
  const auto& sweep = kad_sweep();
  double k1 = band_mean(sweep, "honeypot.coverage_k1", 16);
  double k16 = band_mean(sweep, "honeypot.coverage_k16", 16);
  // One vantage misses a meaningful slice of what the full deployment
  // sees (measured gap ~0.11 of the infected population).
  EXPECT_GE(k16 - k1, 0.05);
  // And vantages are not clones of each other: their bait keyword sets
  // overlap only partially (mean pairwise Jaccard ~0.28).
  double overlap = band_mean(sweep, "honeypot.keyword_overlap", 16);
  EXPECT_GE(overlap, 0.10);
  EXPECT_LE(overlap, 0.50);
}

}  // namespace
}  // namespace p2p
