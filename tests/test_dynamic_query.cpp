// Dynamic querying: iterative ultrapeer probing with result-count cutoff.
#include <gtest/gtest.h>

#include "gnutella/servent.h"

namespace p2p::gnutella {
namespace {

using sim::SimDuration;
using sim::SimTime;

std::shared_ptr<const files::FileContent> make_file(const std::string& name,
                                                    std::size_t size) {
  util::Bytes bytes(size, 0x61);
  bytes[0] = 'M';
  bytes[1] = 'Z';
  return std::make_shared<const files::FileContent>(name, std::move(bytes));
}

struct DqRig {
  sim::Network net{31415};
  std::shared_ptr<HostCache> cache = std::make_shared<HostCache>();
  std::vector<Servent*> ups;
  int next_ip = 1;

  Servent* add_up(std::vector<std::shared_ptr<const files::FileContent>> shares) {
    SharedFileIndex index;
    for (auto& f : shares) index.add(std::move(f));
    ServentConfig cfg;
    cfg.ultrapeer = true;
    auto answerer = std::make_shared<IndexAnswerer>(std::move(index));
    auto servent = std::make_unique<Servent>(cfg, answerer, cache,
                                             static_cast<std::uint64_t>(next_ip));
    Servent* raw = servent.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(30, 0, 0, static_cast<std::uint8_t>(next_ip));
    profile.port = 6346;
    ++next_ip;
    net.add_node(std::move(servent), profile);
    cache->add({profile.ip, profile.port});
    ups.push_back(raw);
    return raw;
  }

  Servent* add_searcher() {
    ServentConfig cfg;
    cfg.leaf_up_count = 4;
    auto answerer = std::make_shared<IndexAnswerer>(SharedFileIndex{});
    auto servent = std::make_unique<Servent>(cfg, answerer, cache, 999);
    Servent* raw = servent.get();
    sim::HostProfile profile;
    profile.ip = util::Ipv4(30, 0, 1, 1);
    profile.port = 7000;
    net.add_node(std::move(servent), profile);
    return raw;
  }

  void run_for(SimDuration d) { net.events().run_until(net.now() + d); }
};

TEST(DynamicQuery, StopsProbingOnceTargetReached) {
  DqRig rig;
  // Every ultrapeer shares a match: the first probe already satisfies a
  // target of 1.
  for (int i = 0; i < 4; ++i) {
    rig.add_up({make_file("abundant file " + std::to_string(i) + ".mp3", 100)});
  }
  Servent* searcher = rig.add_searcher();
  rig.run_for(SimDuration::minutes(2));

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->send_query_dynamic("abundant file", 1, SimDuration::seconds(8));
  rig.run_for(SimDuration::minutes(3));

  // The probes stop after the target: fewer queries processed across the
  // mesh than a flood would cause.
  std::uint64_t processed = 0;
  for (auto* up : rig.ups) processed += up->stats().queries_received;
  EXPECT_GE(hits.size(), 1u);
  EXPECT_LT(processed, 4u);  // a flood (ttl 4) would reach all 4 ultrapeers
}

TEST(DynamicQuery, WidensUntilRareResultFound) {
  DqRig rig;
  rig.add_up({});
  rig.add_up({});
  rig.add_up({});
  rig.add_up({make_file("needle in haystack.exe", 500)});
  Servent* searcher = rig.add_searcher();
  rig.run_for(SimDuration::minutes(2));

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->send_query_dynamic("needle haystack", 1, SimDuration::seconds(5));
  rig.run_for(SimDuration::minutes(5));
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].hit.results[0].filename, "needle in haystack.exe");
}

TEST(DynamicQuery, RepeatedGuidSuppressedAtVisitedNodes) {
  DqRig rig;
  rig.add_up({});
  rig.add_up({});
  Servent* searcher = rig.add_searcher();
  rig.run_for(SimDuration::minutes(2));

  // Impossible target: the probe sequence exhausts every ultrapeer.
  searcher->send_query_dynamic("nothing matches this", 1000,
                               SimDuration::seconds(5));
  rig.run_for(SimDuration::minutes(5));
  // Each ultrapeer processed the query exactly once (later copies of the
  // same GUID are duplicate-dropped).
  for (auto* up : rig.ups) {
    EXPECT_EQ(up->stats().queries_received, 1u) << "ultrapeer over-processed";
  }
}

TEST(DynamicQuery, NoUltrapeersNoCrash) {
  sim::Network net(1);
  auto cache = std::make_shared<HostCache>();
  ServentConfig cfg;
  auto answerer = std::make_shared<IndexAnswerer>(SharedFileIndex{});
  auto servent = std::make_unique<Servent>(cfg, answerer, cache, 5);
  Servent* raw = servent.get();
  sim::HostProfile profile;
  profile.ip = util::Ipv4(30, 1, 1, 1);
  profile.port = 7000;
  net.add_node(std::move(servent), profile);
  net.events().run_until(SimTime::zero() + SimDuration::seconds(30));
  raw->send_query_dynamic("anything", 10, SimDuration::seconds(5));
  net.events().run_until(net.now() + SimDuration::minutes(2));
  EXPECT_EQ(raw->stats().hits_received, 0u);
}

}  // namespace
}  // namespace p2p::gnutella
