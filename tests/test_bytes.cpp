#include "util/bytes.h"

#include <gtest/gtest.h>

namespace p2p::util {
namespace {

TEST(ByteWriter, WritesLittleEndian) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16le(0x1234);
  w.u32le(0xDEADBEEF);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xEF);
  EXPECT_EQ(b[4], 0xBE);
  EXPECT_EQ(b[5], 0xAD);
  EXPECT_EQ(b[6], 0xDE);
}

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0xCAFEBABE);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xCA);
  EXPECT_EQ(b[3], 0xFE);
  EXPECT_EQ(b[4], 0xBA);
  EXPECT_EQ(b[5], 0xBE);
}

TEST(ByteWriter, CstrAppendsNul) {
  ByteWriter w;
  w.cstr("hi");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data()[2], 0u);
}

TEST(ByteReader, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(7);
  w.u16le(65535);
  w.u32le(123456789);
  w.u64le(0x0123456789ABCDEFull);
  w.u16be(4096);
  w.u32be(0xFEEDFACE);
  Bytes wire = std::move(w).take();

  ByteReader r(wire);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16le(), 65535);
  EXPECT_EQ(r.u32le(), 123456789u);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.u16be(), 4096);
  EXPECT_EQ(r.u32be(), 0xFEEDFACEu);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, CstrStopsAtNul) {
  ByteWriter w;
  w.cstr("alpha");
  w.cstr("beta");
  Bytes wire = std::move(w).take();
  ByteReader r(wire);
  EXPECT_EQ(r.cstr(), "alpha");
  EXPECT_EQ(r.cstr(), "beta");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, CstrWithoutNulThrows) {
  Bytes wire = {'a', 'b', 'c'};
  ByteReader r(wire);
  EXPECT_THROW((void)r.cstr(), BufferUnderflow);
}

TEST(ByteReader, UnderflowThrows) {
  Bytes wire = {1, 2};
  ByteReader r(wire);
  EXPECT_THROW((void)r.u32le(), BufferUnderflow);
  // Failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u16le(), 0x0201);
}

TEST(ByteReader, SkipAndPosition) {
  Bytes wire = {1, 2, 3, 4, 5};
  ByteReader r(wire);
  r.skip(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(3), BufferUnderflow);
}

TEST(ByteReader, BytesExtractsExactRange) {
  Bytes wire = {9, 8, 7, 6};
  ByteReader r(wire);
  r.skip(1);
  Bytes mid = r.bytes(2);
  EXPECT_EQ(mid, (Bytes{8, 7}));
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, AcceptsUppercase) {
  auto v = from_hex("AB");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 0xAB);
}

TEST(Hex, EmptyIsEmpty) {
  auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

// Property: any byte vector survives a hex round trip.
class HexRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexRoundTrip, Survives) {
  Bytes data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  auto back = from_hex(to_hex(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexRoundTrip,
                         ::testing::Values(0, 1, 2, 15, 64, 255, 1000));

}  // namespace
}  // namespace p2p::util
