#include "util/bytes.h"

#include <gtest/gtest.h>

namespace p2p::util {
namespace {

TEST(ByteWriter, WritesLittleEndian) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16le(0x1234);
  w.u32le(0xDEADBEEF);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xEF);
  EXPECT_EQ(b[4], 0xBE);
  EXPECT_EQ(b[5], 0xAD);
  EXPECT_EQ(b[6], 0xDE);
}

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0xCAFEBABE);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xCA);
  EXPECT_EQ(b[3], 0xFE);
  EXPECT_EQ(b[4], 0xBA);
  EXPECT_EQ(b[5], 0xBE);
}

TEST(ByteWriter, CstrAppendsNul) {
  ByteWriter w;
  w.cstr("hi");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data()[2], 0u);
}

TEST(ByteReader, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(7);
  w.u16le(65535);
  w.u32le(123456789);
  w.u64le(0x0123456789ABCDEFull);
  w.u16be(4096);
  w.u32be(0xFEEDFACE);
  Bytes wire = std::move(w).take();

  ByteReader r(wire);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16le(), 65535);
  EXPECT_EQ(r.u32le(), 123456789u);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.u16be(), 4096);
  EXPECT_EQ(r.u32be(), 0xFEEDFACEu);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, CstrStopsAtNul) {
  ByteWriter w;
  w.cstr("alpha");
  w.cstr("beta");
  Bytes wire = std::move(w).take();
  ByteReader r(wire);
  EXPECT_EQ(r.cstr(), "alpha");
  EXPECT_EQ(r.cstr(), "beta");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, CstrWithoutNulThrows) {
  Bytes wire = {'a', 'b', 'c'};
  ByteReader r(wire);
  EXPECT_THROW((void)r.cstr(), BufferUnderflow);
}

TEST(ByteReader, UnderflowThrows) {
  Bytes wire = {1, 2};
  ByteReader r(wire);
  EXPECT_THROW((void)r.u32le(), BufferUnderflow);
  // Failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u16le(), 0x0201);
}

TEST(ByteReader, SkipAndPosition) {
  Bytes wire = {1, 2, 3, 4, 5};
  ByteReader r(wire);
  r.skip(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(3), BufferUnderflow);
}

TEST(ByteReader, BytesExtractsExactRange) {
  Bytes wire = {9, 8, 7, 6};
  ByteReader r(wire);
  r.skip(1);
  Bytes mid = r.bytes(2);
  EXPECT_EQ(mid, (Bytes{8, 7}));
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Varint, EncodesCanonicalLeb128) {
  ByteWriter w;
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(300);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x00);
  EXPECT_EQ(b[1], 0x7F);
  EXPECT_EQ(b[2], 0x80);  // 128 = [0x80, 0x01]
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[4], 0xAC);  // 300 = [0xAC, 0x02]
  EXPECT_EQ(b[5], 0x02);
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xFFFFFFFFull,
                                  0xFFFFFFFFFFFFFFFFull};
  ByteWriter w;
  for (std::uint64_t v : values) w.varint(v);
  Bytes wire = std::move(w).take();
  ByteReader r(wire);
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.empty());
}

TEST(Varint, TruncatedThrows) {
  Bytes wire = {0x80, 0x80};  // continuation bits with no terminator
  ByteReader r(wire);
  EXPECT_THROW((void)r.varint(), BufferUnderflow);
}

TEST(Varint, OverlongThrows) {
  // 11 continuation bytes: more than a uint64 can carry.
  Bytes wire(11, 0x80);
  wire.push_back(0x01);
  ByteReader r(wire);
  EXPECT_THROW((void)r.varint(), BufferUnderflow);
}

TEST(Varint, TenthByteOverflowThrows) {
  // 10-byte encoding whose final byte sets bits beyond the 64th.
  Bytes wire(9, 0x80);
  wire.push_back(0x02);
  ByteReader r(wire);
  EXPECT_THROW((void)r.varint(), BufferUnderflow);
}

TEST(LpStr, RoundTripsIncludingEmptyAndNulBytes) {
  ByteWriter w;
  w.lp_str("");
  w.lp_str("hello");
  w.lp_str(std::string_view("a\0b", 3));
  Bytes wire = std::move(w).take();
  ByteReader r(wire);
  EXPECT_EQ(r.lp_str(), "");
  EXPECT_EQ(r.lp_str(), "hello");
  EXPECT_EQ(r.lp_str(), std::string("a\0b", 3));
  EXPECT_TRUE(r.empty());
}

TEST(LpStr, LengthBeyondBufferThrows) {
  ByteWriter w;
  w.varint(100);  // declares 100 bytes...
  w.str("hi");    // ...provides 2
  Bytes wire = std::move(w).take();
  ByteReader r(wire);
  EXPECT_THROW((void)r.lp_str(), BufferUnderflow);
}

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(Crc32, SeedChainsIncrementalComputation) {
  Bytes all = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  Bytes head(all.begin(), all.begin() + 4);
  Bytes tail(all.begin() + 4, all.end());
  EXPECT_EQ(crc32(tail, crc32(head)), crc32(all));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, 0x5A);
  std::uint32_t clean = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), clean);
}

TEST(TaggedFrame, RoundTrips) {
  Bytes payload = {1, 2, 3};
  Bytes wire = tagged_frame_be16(0x0042, payload);
  ASSERT_EQ(wire.size(), 7u);
  EXPECT_EQ(wire[0], 0x00);  // length, big-endian
  EXPECT_EQ(wire[1], 0x03);
  EXPECT_EQ(wire[2], 0x00);  // tag, big-endian
  EXPECT_EQ(wire[3], 0x42);
  auto frame = parse_tagged_frame_be16(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, 0x0042);
  EXPECT_EQ(Bytes(frame->payload.begin(), frame->payload.end()), payload);
}

TEST(TaggedFrame, RejectsLengthMismatch) {
  Bytes payload = {1, 2, 3};
  Bytes wire = tagged_frame_be16(7, payload);
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(parse_tagged_frame_be16(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(parse_tagged_frame_be16(padded).has_value());
  EXPECT_FALSE(parse_tagged_frame_be16(Bytes{0x00}).has_value());
}

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, AcceptsUppercase) {
  auto v = from_hex("AB");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 0xAB);
}

TEST(Hex, EmptyIsEmpty) {
  auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

// Property: any byte vector survives a hex round trip.
class HexRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexRoundTrip, Survives) {
  Bytes data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  auto back = from_hex(to_hex(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexRoundTrip,
                         ::testing::Values(0, 1, 2, 15, 64, 255, 1000));

}  // namespace
}  // namespace p2p::util
