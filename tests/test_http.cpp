#include "gnutella/http.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace p2p::gnutella {
namespace {

TEST(HttpRequest, SerializeParseRoundTrip) {
  HttpRequest req = make_get_request(42, "plain.exe");
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  auto get = parse_get_path(parsed->path);
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->first, 42u);
  EXPECT_EQ(get->second, "plain.exe");
}

TEST(HttpRequest, FilenamesWithSpacesSurvive) {
  // Regression: spaces in advertised filenames must not break the request
  // line (they broke every crawler download before URL-encoding).
  HttpRequest req = make_get_request(7, "blue horizon - midnight rain.exe");
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  auto get = parse_get_path(parsed->path);
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->second, "blue horizon - midnight rain.exe");
}

TEST(HttpRequest, CarriesHeaders) {
  HttpRequest req = make_get_request(1, "f.zip");
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  bool has_ua = false;
  for (const auto& [name, value] : parsed->headers) {
    if (name == "User-Agent") has_ua = true;
  }
  EXPECT_TRUE(has_ua);
}

TEST(HttpRequest, RejectsGarbage) {
  util::Bytes junk = {'x', 'y', 'z'};
  EXPECT_FALSE(HttpRequest::parse(junk).has_value());
}

TEST(ParseGetPath, RejectsWrongShapes) {
  EXPECT_FALSE(parse_get_path("/uri-res/N2R").has_value());
  EXPECT_FALSE(parse_get_path("/get/").has_value());
  EXPECT_FALSE(parse_get_path("/get/abc/file").has_value());
  EXPECT_FALSE(parse_get_path("/get/12").has_value());
  EXPECT_FALSE(parse_get_path("/get/12/").has_value());
}

TEST(HttpResponse, RoundTripWithBody) {
  HttpResponse resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.body = {1, 2, 3, 4, 5};
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, resp.body);
}

TEST(HttpResponse, AutoContentLength) {
  HttpResponse resp;
  resp.body = util::Bytes(321);
  auto wire = resp.serialize();
  std::string text(wire.begin(), wire.end());
  EXPECT_NE(text.find("Content-Length: 321"), std::string::npos);
}

TEST(HttpResponse, RejectsLengthMismatch) {
  HttpResponse resp;
  resp.body = {1, 2, 3};
  auto wire = resp.serialize();
  wire.push_back(99);  // extra byte beyond Content-Length
  EXPECT_FALSE(HttpResponse::parse(wire).has_value());
}

TEST(HttpResponse, BinaryBodySurvives) {
  HttpResponse resp;
  util::Rng rng(3);
  resp.body.resize(4096);
  rng.fill(resp.body);
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, resp.body);
}

TEST(HttpResponse, NotFoundRoundTrip) {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_TRUE(parsed->body.empty());
}

TEST(GivLine, RoundTrip) {
  util::Rng rng(9);
  GivLine giv;
  giv.index = 1234;
  giv.servent_guid = Guid::random(rng);
  giv.filename = "file with spaces.zip";
  auto parsed = GivLine::parse(giv.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->index, 1234u);
  EXPECT_EQ(parsed->servent_guid, giv.servent_guid);
  EXPECT_EQ(parsed->filename, giv.filename);
}

TEST(GivLine, RejectsMalformed) {
  util::Bytes no_giv = {'G', 'E', 'T', ' '};
  EXPECT_FALSE(GivLine::parse(no_giv).has_value());
  std::string bad = "GIV notanumber:xx/file\n\n";
  EXPECT_FALSE(GivLine::parse(util::Bytes(bad.begin(), bad.end())).has_value());
  std::string short_guid = "GIV 5:abcd/file\n\n";
  EXPECT_FALSE(GivLine::parse(util::Bytes(short_guid.begin(), short_guid.end())).has_value());
}

TEST(Classifiers, DistinguishMessageKinds) {
  util::Rng rng(9);
  auto get = make_get_request(1, "x").serialize();
  EXPECT_TRUE(looks_like_http_request(get));
  EXPECT_FALSE(looks_like_giv(get));
  EXPECT_FALSE(looks_like_handshake(get));

  GivLine giv;
  giv.servent_guid = Guid::random(rng);
  giv.filename = "f";
  auto giv_wire = giv.serialize();
  EXPECT_TRUE(looks_like_giv(giv_wire));
  EXPECT_FALSE(looks_like_http_request(giv_wire));

  std::string hs = "GNUTELLA CONNECT/0.6\r\n\r\n";
  util::Bytes hs_wire(hs.begin(), hs.end());
  EXPECT_TRUE(looks_like_handshake(hs_wire));
  EXPECT_FALSE(looks_like_http_request(hs_wire));
}

}  // namespace
}  // namespace p2p::gnutella
