// Workload and crawler tests, including a miniature end-to-end crawl of a
// hand-built infected network.
#include <gtest/gtest.h>

#include "agents/behavior.h"
#include "crawler/limewire_crawler.h"
#include "crawler/openft_crawler.h"
#include "crawler/workload.h"
#include "malware/catalogs.h"
#include "malware/scanner.h"

namespace p2p::crawler {
namespace {

using sim::SimDuration;
using sim::SimTime;

TEST(QueryWorkload, BuildsFromCatalog) {
  files::CorpusConfig corpus;
  corpus.seed = 9;
  corpus.num_titles = 100;
  files::ContentCatalog catalog(corpus);
  auto workload =
      QueryWorkload::popular_from_catalog(catalog, 20, {"password cracker"});
  EXPECT_EQ(workload.size(), 21u);
  EXPECT_EQ(workload.item(20).category, "lure");
}

TEST(QueryWorkload, SamplesFavorPopular) {
  files::CorpusConfig corpus;
  corpus.seed = 9;
  corpus.num_titles = 100;
  files::ContentCatalog catalog(corpus);
  auto workload = QueryWorkload::popular_from_catalog(catalog, 50, {});
  util::Rng rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[workload.sample(rng).text];
  // The most popular work should be sampled far more than a mid-rank one.
  EXPECT_GT(counts[workload.item(0).text], counts[workload.item(30).text]);
}

TEST(QueryWorkload, RejectsEmpty) {
  EXPECT_THROW(QueryWorkload{std::vector<QueryItem>{}}, std::invalid_argument);
}

TEST(LabelStore, DownloadLifecycle) {
  LabelStore store(2);
  EXPECT_TRUE(store.want_download("k"));
  store.mark_pending("k");
  EXPECT_FALSE(store.want_download("k"));  // already pending
  store.mark_failed("k");
  EXPECT_TRUE(store.want_download("k"));  // one attempt left
  store.mark_pending("k");
  store.mark_failed("k");
  EXPECT_FALSE(store.want_download("k"));  // attempts exhausted
}

TEST(LabelStore, LabeledContentNotRedownloaded) {
  LabelStore store;
  store.mark_pending("k");
  store.mark_succeeded("k");
  ContentLabel label;
  label.infected = true;
  store.put("k", label);
  EXPECT_FALSE(store.want_download("k"));
  ASSERT_NE(store.find("k"), nullptr);
  EXPECT_TRUE(store.find("k")->infected);
  EXPECT_EQ(store.find("missing"), nullptr);
}

/// Builds a small Gnutella network with one infected leaf and one honest
/// sharer, plus a crawler, and runs a short crawl.
struct MiniCrawl {
  sim::Network net{31337};
  std::shared_ptr<gnutella::HostCache> cache = std::make_shared<gnutella::HostCache>();
  malware::CalibratedCatalog catalog = malware::limewire_catalog();
  std::shared_ptr<malware::ArtifactStore> artifacts =
      std::make_shared<malware::ArtifactStore>(catalog.strains, 17);
  std::shared_ptr<malware::Scanner> scanner =
      std::make_shared<malware::Scanner>(catalog.strains);

  MiniCrawl() {
    // One ultrapeer.
    gnutella::ServentConfig up_cfg;
    up_cfg.ultrapeer = true;
    auto up_answerer =
        std::make_shared<gnutella::IndexAnswerer>(gnutella::SharedFileIndex{});
    auto up = std::make_unique<gnutella::Servent>(up_cfg, up_answerer, cache, 100);
    sim::HostProfile up_prof;
    up_prof.ip = util::Ipv4(3, 3, 3, 3);
    up_prof.port = 6346;
    net.add_node(std::move(up), up_prof);
    cache->add({up_prof.ip, up_prof.port});

    // Honest leaf sharing one clean executable.
    gnutella::SharedFileIndex honest;
    util::Bytes clean(9'000, 0x41);
    clean[0] = 'M';
    clean[1] = 'Z';
    honest.add(std::make_shared<const files::FileContent>("photomax setup.exe",
                                                          std::move(clean)));
    gnutella::ServentConfig leaf_cfg;
    auto honest_answerer = std::make_shared<gnutella::IndexAnswerer>(std::move(honest));
    auto honest_leaf =
        std::make_unique<gnutella::Servent>(leaf_cfg, honest_answerer, cache, 101);
    sim::HostProfile honest_prof;
    honest_prof.ip = util::Ipv4(4, 4, 4, 4);
    honest_prof.port = 7000;
    net.add_node(std::move(honest_leaf), honest_prof);

    // Infected leaf echoing every query with strain 0.
    auto infected_answerer = std::make_shared<agents::InfectedAnswerer>(
        artifacts, std::vector<malware::StrainId>{0}, gnutella::SharedFileIndex{},
        102);
    auto infected_leaf =
        std::make_unique<gnutella::Servent>(leaf_cfg, infected_answerer, cache, 103);
    sim::HostProfile infected_prof;
    infected_prof.ip = util::Ipv4(5, 5, 5, 5);
    infected_prof.port = 7001;
    net.add_node(std::move(infected_leaf), infected_prof);
  }
};

TEST(LimewireCrawler, EndToEndLabelsResponses) {
  MiniCrawl m;
  std::vector<QueryItem> queries = {{"photomax", "software", 1.0}};
  CrawlConfig cfg;
  cfg.duration = SimDuration::minutes(30);
  cfg.query_interval = SimDuration::minutes(2);
  cfg.warmup = SimDuration::minutes(1);
  cfg.seed = 1;
  LimewireCrawler crawler(m.net, m.cache, QueryWorkload(queries), m.scanner, cfg);
  crawler.start();
  m.net.events().run_until(SimTime::zero() + SimDuration::minutes(45));
  crawler.finalize();

  const auto& stats = crawler.stats();
  EXPECT_GT(stats.queries_sent, 5u);
  EXPECT_GT(stats.responses, 0u);
  EXPECT_GT(stats.downloads_ok, 0u);
  EXPECT_EQ(stats.downloads_failed, 0u);

  // Every study response must be labeled; echo responses malicious, the
  // honest setup clean.
  std::size_t malicious = 0, clean = 0;
  for (const auto& rec : crawler.records()) {
    ASSERT_TRUE(rec.is_study_type());  // only exe results in this setup
    ASSERT_TRUE(rec.downloaded) << rec.filename;
    if (rec.infected) {
      EXPECT_EQ(rec.strain_name, "W32.Mallet.A");
      EXPECT_EQ(rec.filename, "photomax.exe");  // query echo
      ++malicious;
    } else {
      EXPECT_EQ(rec.filename, "photomax setup.exe");
      ++clean;
    }
  }
  EXPECT_GT(malicious, 0u);
  EXPECT_GT(clean, 0u);

  // Download dedup: distinct contents are few (1 clean + at most 2 variants).
  EXPECT_LE(stats.downloads_started, 4u);
}

TEST(LimewireCrawler, RecordsCarrySourceMetadata) {
  MiniCrawl m;
  std::vector<QueryItem> queries = {{"photomax", "software", 1.0}};
  CrawlConfig cfg;
  cfg.duration = SimDuration::minutes(10);
  cfg.query_interval = SimDuration::minutes(2);
  cfg.warmup = SimDuration::minutes(1);
  LimewireCrawler crawler(m.net, m.cache, QueryWorkload(queries), m.scanner, cfg);
  crawler.start();
  m.net.events().run_until(SimTime::zero() + SimDuration::minutes(20));
  crawler.finalize();

  ASSERT_FALSE(crawler.records().empty());
  for (const auto& rec : crawler.records()) {
    EXPECT_EQ(rec.network, "limewire");
    EXPECT_EQ(rec.query, "photomax");
    EXPECT_EQ(rec.query_category, "software");
    EXPECT_FALSE(rec.source_key.empty());
    EXPECT_FALSE(rec.content_key.empty());
    EXPECT_GT(rec.size, 0u);
  }
}

TEST(OpenFtCrawler, EndToEndAgainstSearchNode) {
  sim::Network net(999);
  auto cache = std::make_shared<openft::FtHostCache>();
  auto catalog = malware::openft_catalog();
  auto artifacts = std::make_shared<malware::ArtifactStore>(catalog.strains, 21);
  auto scanner = std::make_shared<malware::Scanner>(catalog.strains);

  // Search node.
  openft::FtConfig search_cfg;
  search_cfg.klass = openft::kSearch | openft::kUser;
  auto search = std::make_unique<openft::FtNode>(search_cfg,
                                                 std::vector<openft::FtShare>{},
                                                 cache, 200);
  sim::HostProfile sp;
  sp.ip = util::Ipv4(6, 6, 6, 6);
  sp.port = 1216;
  net.add_node(std::move(search), sp);
  cache->add({sp.ip, sp.port});

  // Infected user sharing a strain-0 artifact under a popular-looking path,
  // plus a clean exe.
  util::Rng pick(5);
  std::vector<openft::FtShare> shares;
  shares.push_back({artifacts->pick(0, pick), "/shared/tunegrab.exe"});
  util::Bytes clean(7'000, 0x42);
  clean[0] = 'M';
  clean[1] = 'Z';
  shares.push_back({std::make_shared<const files::FileContent>("tunegrab pro.exe",
                                                               std::move(clean)),
                    "/shared/tunegrab pro.exe"});
  openft::FtConfig user_cfg;
  auto user = std::make_unique<openft::FtNode>(user_cfg, shares, cache, 201);
  sim::HostProfile up;
  up.ip = util::Ipv4(6, 6, 6, 7);
  up.port = 5000;
  net.add_node(std::move(user), up);

  std::vector<QueryItem> queries = {{"tunegrab", "software", 1.0}};
  CrawlConfig cfg;
  cfg.duration = SimDuration::minutes(30);
  cfg.query_interval = SimDuration::minutes(3);
  cfg.warmup = SimDuration::minutes(2);
  OpenFtCrawler crawler(net, cache, QueryWorkload(queries), scanner, cfg);
  crawler.start();
  net.events().run_until(SimTime::zero() + SimDuration::minutes(45));
  crawler.finalize();

  EXPECT_GT(crawler.stats().queries_sent, 3u);
  ASSERT_GT(crawler.records().size(), 0u);
  std::size_t malicious = 0, clean_count = 0;
  for (const auto& rec : crawler.records()) {
    EXPECT_EQ(rec.network, "openft");
    ASSERT_TRUE(rec.downloaded) << rec.filename;
    if (rec.infected) {
      EXPECT_EQ(rec.strain_name, "FT.Gobbler.A");
      ++malicious;
    } else {
      ++clean_count;
    }
  }
  EXPECT_GT(malicious, 0u);
  EXPECT_GT(clean_count, 0u);
}

}  // namespace
}  // namespace p2p::crawler
