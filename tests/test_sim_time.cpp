#include "util/sim_time.h"

#include <gtest/gtest.h>

#include "util/table.h"

namespace p2p::util {
namespace {

TEST(SimDuration, UnitConstructors) {
  EXPECT_EQ(SimDuration::seconds(2).count_ms(), 2000);
  EXPECT_EQ(SimDuration::minutes(3).count_ms(), 180'000);
  EXPECT_EQ(SimDuration::hours(1).count_ms(), 3'600'000);
  EXPECT_EQ(SimDuration::days(2).count_ms(), 172'800'000);
}

TEST(SimDuration, Arithmetic) {
  auto d = SimDuration::seconds(10) + SimDuration::millis(500);
  EXPECT_EQ(d.count_ms(), 10'500);
  EXPECT_EQ((d - SimDuration::seconds(10)).count_ms(), 500);
  EXPECT_EQ((SimDuration::seconds(1) * 5).count_ms(), 5000);
  EXPECT_EQ((SimDuration::seconds(5) / 5).count_ms(), 1000);
  EXPECT_DOUBLE_EQ(SimDuration::millis(1500).as_seconds(), 1.5);
}

TEST(SimTime, AdvancesByDuration) {
  SimTime t = SimTime::zero() + SimDuration::days(2) + SimDuration::hours(3);
  EXPECT_EQ(t.whole_days(), 2);
  EXPECT_EQ(t - SimTime::zero(), SimDuration::hours(51));
}

TEST(SimTime, Ordering) {
  SimTime a = SimTime::at_millis(100);
  SimTime b = SimTime::at_millis(200);
  EXPECT_LT(a, b);
  EXPECT_EQ(a + SimDuration::millis(100), b);
}

TEST(SimTime, FormatsDayAndTimeOfDay) {
  SimTime t = SimTime::zero() + SimDuration::days(3) + SimDuration::hours(7) +
              SimDuration::minutes(15) + SimDuration::seconds(2) +
              SimDuration::millis(250);
  EXPECT_EQ(t.str(), "d3 07:15:02.250");
}

TEST(SimTime, ZeroFormats) { EXPECT_EQ(SimTime::zero().str(), "d0 00:00:00.000"); }

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("name    count"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW((void)t.render());
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

}  // namespace
}  // namespace p2p::util
