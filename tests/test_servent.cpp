// Integration tests for the Gnutella servent: handshake, topology, query
// flow, hit routing, QRP, downloads (direct and PUSH), and failure paths —
// run on small hand-built networks.
#include "gnutella/servent.h"

#include <gtest/gtest.h>

#include "files/file.h"
#include "gnutella/shared_index.h"

namespace p2p::gnutella {
namespace {

using sim::Network;
using sim::NodeId;
using sim::SimDuration;
using sim::SimTime;

std::shared_ptr<const files::FileContent> make_file(const std::string& name,
                                                    std::size_t size,
                                                    std::uint8_t fill = 0x61) {
  util::Bytes bytes(size, fill);
  if (size >= 2) {
    bytes[0] = 'M';
    bytes[1] = 'Z';
  }
  return std::make_shared<const files::FileContent>(name, std::move(bytes));
}

struct MiniNet {
  Network net{777};
  std::shared_ptr<HostCache> cache = std::make_shared<HostCache>();
  std::vector<Servent*> servents;
  std::uint64_t next_seed = 1000;
  int next_ip = 1;

  Servent* add(bool ultrapeer, std::vector<std::shared_ptr<const files::FileContent>> shares,
               bool behind_nat = false, bool advertise_private = false) {
    SharedFileIndex index;
    for (auto& f : shares) index.add(std::move(f));
    auto answerer = std::make_shared<IndexAnswerer>(std::move(index));
    ServentConfig cfg;
    cfg.ultrapeer = ultrapeer;
    auto servent = std::make_unique<Servent>(cfg, answerer, cache, next_seed++);
    Servent* raw = servent.get();

    sim::HostProfile profile;
    profile.ip = advertise_private ? util::Ipv4(192, 168, 1, 77)
                                   : util::Ipv4(5, 5, 5, static_cast<std::uint8_t>(next_ip));
    profile.port = static_cast<std::uint16_t>(6000 + next_ip);
    ++next_ip;
    profile.behind_nat = behind_nat;
    net.add_node(std::move(servent), profile);
    if (ultrapeer && !behind_nat) {
      cache->add(util::Endpoint{profile.ip, profile.port});
    }
    servents.push_back(raw);
    return raw;
  }

  void run_for(SimDuration d) { net.events().run_until(net.now() + d); }
};

TEST(Servent, LeafConnectsToUltrapeer) {
  MiniNet m;
  Servent* up = m.add(true, {});
  Servent* leaf = m.add(false, {});
  m.run_for(SimDuration::seconds(30));
  EXPECT_GE(leaf->overlay_link_count(), 1u);
  EXPECT_EQ(up->leaf_count(), 1u);
}

TEST(Servent, UltrapeersFormMesh) {
  MiniNet m;
  Servent* up1 = m.add(true, {});
  Servent* up2 = m.add(true, {});
  Servent* up3 = m.add(true, {});
  m.run_for(SimDuration::seconds(60));
  EXPECT_GE(up1->overlay_link_count(), 1u);
  EXPECT_GE(up2->overlay_link_count(), 1u);
  EXPECT_GE(up3->overlay_link_count(), 1u);
}

TEST(Servent, LeafDoesNotAcceptOverlay) {
  MiniNet m;
  // Leaf registered in the host cache as if it were an ultrapeer.
  Servent* fake = m.add(false, {});
  m.cache->add(util::Endpoint{m.net.profile(fake->id()).ip,
                              m.net.profile(fake->id()).port});
  Servent* joiner = m.add(false, {});
  m.run_for(SimDuration::seconds(60));
  EXPECT_EQ(joiner->overlay_link_count(), 0u);
}

TEST(Servent, QueryReachesSharerAndHitRoutesBack) {
  MiniNet m;
  m.add(true, {make_file("blue horizon - midnight rain.mp3", 5000)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  Guid query = searcher->send_query("blue horizon");
  m.run_for(SimDuration::seconds(30));

  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].query_guid, query);
  ASSERT_EQ(hits[0].hit.results.size(), 1u);
  EXPECT_EQ(hits[0].hit.results[0].filename, "blue horizon - midnight rain.mp3");
  EXPECT_EQ(hits[0].hit.results[0].size, 5000u);
}

TEST(Servent, QueryFloodsAcrossUltrapeers) {
  MiniNet m;
  m.add(true, {});
  Servent* far_up = m.add(true, {make_file("rare gem.exe", 4000)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(60));
  ASSERT_GE(far_up->overlay_link_count(), 1u);

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->send_query("rare gem");
  m.run_for(SimDuration::seconds(30));
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].hit.results[0].filename, "rare gem.exe");
}

TEST(Servent, QueryReachesLeafViaQrp) {
  MiniNet m;
  m.add(true, {});
  Servent* sharer = m.add(false, {make_file("hidden treasure.zip", 3000)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->send_query("hidden treasure");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].hit.servent_guid, sharer->servent_guid());
}

TEST(Servent, QrpSuppressesNonMatchingLeafForwards) {
  MiniNet m;
  Servent* up = m.add(true, {});
  Servent* sharer = m.add(false, {make_file("something else.mp3", 1000)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  searcher->send_query("no leaf shares this");
  m.run_for(SimDuration::seconds(30));
  EXPECT_EQ(sharer->stats().queries_received, 0u);
  EXPECT_GE(up->stats().qrp_suppressed, 1u);
}

TEST(Servent, QrpDisabledFloodsLeaves) {
  MiniNet m;
  // Build an ultrapeer with QRP off.
  SharedFileIndex empty;
  ServentConfig up_cfg;
  up_cfg.ultrapeer = true;
  up_cfg.use_qrp = false;
  auto answerer = std::make_shared<IndexAnswerer>(std::move(empty));
  auto up = std::make_unique<Servent>(up_cfg, answerer, m.cache, 1);
  sim::HostProfile profile;
  profile.ip = util::Ipv4(9, 9, 9, 9);
  profile.port = 6346;
  m.net.add_node(std::move(up), profile);
  m.cache->add(util::Endpoint{profile.ip, profile.port});

  Servent* leaf = m.add(false, {make_file("whatever.mp3", 100)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  searcher->send_query("zzz nothing matches");
  m.run_for(SimDuration::seconds(30));
  EXPECT_EQ(leaf->stats().queries_received, 1u);
}

TEST(Servent, DirectDownloadDeliversExactBytes) {
  MiniNet m;
  auto file = make_file("payload.exe", 20'000, 0x5A);
  m.add(true, {file});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  std::vector<DownloadOutcome> outcomes;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->set_download_callback(
      [&](const DownloadOutcome& o) { outcomes.push_back(o); });
  searcher->send_query("payload");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);

  searcher->download(hits[0].hit, hits[0].hit.results[0]);
  m.run_for(SimDuration::seconds(60));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].content, file->bytes());
}

TEST(Servent, DownloadFromFirewalledHostUsesPush) {
  MiniNet m;
  auto file = make_file("natted file.exe", 8'000, 0x77);
  m.add(true, {});
  Servent* natted = m.add(false, {file}, /*behind_nat=*/true,
                          /*advertise_private=*/true);
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  std::vector<DownloadOutcome> outcomes;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->set_download_callback(
      [&](const DownloadOutcome& o) { outcomes.push_back(o); });
  searcher->send_query("natted file");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].hit.needs_push);
  EXPECT_TRUE(hits[0].hit.addr.ip.is_private());

  searcher->download(hits[0].hit, hits[0].hit.results[0]);
  m.run_for(SimDuration::minutes(3));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].content, file->bytes());
  EXPECT_GE(natted->stats().uploads_served, 1u);
}

TEST(Servent, DownloadOfUnknownIndexFails) {
  MiniNet m;
  m.add(true, {make_file("real.exe", 1000)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  std::vector<DownloadOutcome> outcomes;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->set_download_callback(
      [&](const DownloadOutcome& o) { outcomes.push_back(o); });
  searcher->send_query("real");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);

  QueryHitResult bogus = hits[0].hit.results[0];
  bogus.index = 999;  // not shared
  searcher->download(hits[0].hit, bogus);
  m.run_for(SimDuration::minutes(3));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].success);
}

TEST(Servent, DownloadFromVanishedHostTimesOut) {
  MiniNet m;
  auto file = make_file("gone.exe", 1000);
  m.add(true, {});
  Servent* sharer = m.add(false, {file});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  std::vector<DownloadOutcome> outcomes;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->set_download_callback(
      [&](const DownloadOutcome& o) { outcomes.push_back(o); });
  searcher->send_query("gone");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);

  m.net.remove_node(sharer->id());
  searcher->download(hits[0].hit, hits[0].hit.results[0]);
  m.run_for(SimDuration::minutes(5));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].success);
}

TEST(Servent, DuplicateQueriesDropped) {
  MiniNet m;
  Servent* up1 = m.add(true, {});
  Servent* up2 = m.add(true, {});
  Servent* up3 = m.add(true, {});
  Servent* searcher = m.add(false, {});
  (void)up1;
  (void)up2;
  (void)up3;
  m.run_for(SimDuration::seconds(60));

  searcher->send_query("flood me");
  m.run_for(SimDuration::seconds(30));
  // With a 3-UP mesh the same query arrives at each UP multiple times;
  // each must process it exactly once.
  std::uint64_t dups = up1->stats().dropped_duplicate + up2->stats().dropped_duplicate +
                       up3->stats().dropped_duplicate;
  EXPECT_GE(dups, 1u);
  EXPECT_EQ(up1->stats().queries_received, 1u);
  EXPECT_EQ(up2->stats().queries_received, 1u);
  EXPECT_EQ(up3->stats().queries_received, 1u);
}

TEST(Servent, LeafReconnectsAfterUltrapeerLoss) {
  MiniNet m;
  Servent* up1 = m.add(true, {});
  Servent* up2 = m.add(true, {});
  Servent* leaf = m.add(false, {});
  m.run_for(SimDuration::seconds(60));
  EXPECT_GE(leaf->overlay_link_count(), 2u);

  sim::NodeId up1_id = up1->id();
  util::Endpoint up1_ep{m.net.profile(up1_id).ip, m.net.profile(up1_id).port};
  m.net.remove_node(up1_id);  // up1 pointer is dead from here on
  m.cache->remove(up1_ep);
  m.run_for(SimDuration::minutes(5));
  // Still connected to the surviving ultrapeer.
  EXPECT_GE(leaf->overlay_link_count(), 1u);
  EXPECT_GE(up2->leaf_count(), 1u);
}

TEST(Servent, MultipleResultsInOneHit) {
  MiniNet m;
  m.add(true, {make_file("album track one.mp3", 100),
               make_file("album track two.mp3", 200)});
  Servent* searcher = m.add(false, {});
  m.run_for(SimDuration::seconds(30));

  std::vector<HitEvent> hits;
  searcher->set_hit_callback([&](const HitEvent& e) { hits.push_back(e); });
  searcher->send_query("album track");
  m.run_for(SimDuration::seconds(30));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].hit.results.size(), 2u);
}

TEST(SharedFileIndex, MatchAndLookup) {
  SharedFileIndex index;
  auto f1 = make_file("alpha beta.mp3", 100);
  auto f2 = make_file("beta gamma.exe", 200);
  std::uint32_t i1 = index.add(f1);
  std::uint32_t i2 = index.add(f2);
  EXPECT_EQ(index.count(), 2u);
  EXPECT_EQ(index.total_bytes(), 300u);

  auto matches = index.match("beta");
  EXPECT_EQ(matches.size(), 2u);
  matches = index.match("alpha");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].index, i1);

  EXPECT_EQ(index.get(i2)->name(), "beta gamma.exe");
  EXPECT_EQ(index.get(999), nullptr);

  auto qrt = index.build_qrt(13);
  EXPECT_TRUE(qrt.matches("alpha"));
  EXPECT_TRUE(qrt.matches("gamma"));
  EXPECT_FALSE(qrt.matches("delta"));
}

}  // namespace
}  // namespace p2p::gnutella
