// End-to-end study invariants on heavily scaled-down configurations —
// the full-size shape checks live in the bench binaries.
#include "core/study.h"

#include <gtest/gtest.h>

#include "analysis/stats.h"

namespace p2p::core {
namespace {

LimewireStudyConfig tiny_limewire() {
  LimewireStudyConfig cfg = limewire_quick();
  cfg.population.ultrapeers = 6;
  cfg.population.leaves = 80;
  cfg.population.corpus.num_titles = 300;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.crawl.query_interval = sim::SimDuration::seconds(120);
  cfg.workload_top_n = 50;
  return cfg;
}

OpenFtStudyConfig tiny_openft() {
  OpenFtStudyConfig cfg = openft_quick();
  cfg.population.search_nodes = 4;
  cfg.population.users = 60;
  cfg.population.corpus.num_titles = 300;
  cfg.crawl.duration = sim::SimDuration::hours(2);
  cfg.crawl.query_interval = sim::SimDuration::seconds(120);
  cfg.workload_top_n = 50;
  return cfg;
}

TEST(LimewireStudy, ProducesLabeledMaliciousMajority) {
  auto result = run_limewire_study(tiny_limewire());
  EXPECT_GT(result.records.size(), 100u);
  auto s = analysis::prevalence(result.records);
  EXPECT_GT(s.study_responses, 50u);
  // Nearly all study responses should get labeled in this small network.
  EXPECT_GT(static_cast<double>(s.labeled) / static_cast<double>(s.study_responses),
            0.9);
  // Malware dominates exe/zip responses on LimeWire (paper: 68%; tiny
  // populations are noisy, so assert the band).
  EXPECT_GT(s.malicious_fraction(), 0.4);
  EXPECT_LT(s.malicious_fraction(), 0.95);
}

TEST(LimewireStudy, TopStrainsAreTheQueryEchoWorms) {
  auto result = run_limewire_study(tiny_limewire());
  auto ranking = analysis::strain_ranking(result.records);
  ASSERT_GE(ranking.size(), 2u);
  std::set<std::string> head = {ranking[0].name, ranking[1].name};
  std::set<std::string> expected = {"W32.Mallet.A", "W32.Sprocket.B",
                                    "Troj.Keymaker.C"};
  for (const auto& name : head) {
    EXPECT_TRUE(expected.contains(name)) << name;
  }
  EXPECT_GT(analysis::topk_share(ranking, 3), 0.9);
}

TEST(LimewireStudy, DeterministicForSameSeed) {
  auto cfg = tiny_limewire();
  auto a = run_limewire_study(cfg);
  auto b = run_limewire_study(cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.events_executed, b.events_executed);
  auto sa = analysis::prevalence(a.records);
  auto sb = analysis::prevalence(b.records);
  EXPECT_EQ(sa.infected, sb.infected);
  EXPECT_EQ(sa.labeled, sb.labeled);
}

TEST(LimewireStudy, DifferentSeedsDiffer) {
  auto cfg = tiny_limewire();
  auto a = run_limewire_study(cfg);
  cfg.seed += 1;
  auto b = run_limewire_study(cfg);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(OpenFtStudy, MalwareIsRareAndHeadIsSingleHost) {
  auto result = run_openft_study(tiny_openft());
  auto s = analysis::prevalence(result.records);
  EXPECT_GT(s.labeled, 50u);
  // OpenFT malware prevalence is an order of magnitude below LimeWire's.
  EXPECT_LT(s.malicious_fraction(), 0.25);

  auto conc = analysis::strain_source_concentration(result.records);
  ASSERT_FALSE(conc.empty());
  // The dominant strain comes from exactly one host (the super-spreader).
  EXPECT_EQ(conc[0].name, "FT.Gobbler.A");
  EXPECT_EQ(conc[0].distinct_sources, 1u);
  EXPECT_DOUBLE_EQ(conc[0].top_source_share, 1.0);
}

TEST(OpenFtStudy, ChurnHappens) {
  auto result = run_openft_study(tiny_openft());
  EXPECT_GT(result.churn_joins, 10u);
  EXPECT_GT(result.churn_leaves, 0u);
}

TEST(StudyPresets, StandardIsMonthScale) {
  auto lw = limewire_standard();
  EXPECT_EQ(lw.crawl.duration.count_ms(), sim::SimDuration::days(30).count_ms());
  auto ft = openft_standard();
  EXPECT_EQ(ft.crawl.duration.count_ms(), sim::SimDuration::days(30).count_ms());
}

TEST(StudyResult, CarriesRunStatistics) {
  auto result = run_limewire_study(tiny_limewire());
  EXPECT_GT(result.events_executed, 1000u);
  EXPECT_GT(result.messages_delivered, 1000u);
  EXPECT_GT(result.bytes_delivered, 10'000u);
  EXPECT_FALSE(result.strain_catalog.strains.empty());
}

}  // namespace
}  // namespace p2p::core
