// Report emitters and the bench study-result cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/study_cache.h"
#include "core/report.h"

namespace p2p {
namespace {

crawler::ResponseRecord sample_record(std::uint64_t id, bool infected) {
  crawler::ResponseRecord r;
  r.id = id;
  r.network = "limewire";
  r.at = util::SimTime::at_millis(static_cast<std::int64_t>(id) * 1000);
  r.query = "test query";
  r.query_category = "software";
  r.filename = "file " + std::to_string(id) + ".exe";
  r.type_by_name = files::FileType::kExecutable;
  r.size = 1000 + id;
  r.source_ip = util::Ipv4(10, 1, 2, 3);
  r.source_port = 6346;
  r.source_key = "10.1.2.3:6346/abcd";
  r.source_firewalled = true;
  r.content_key = "key" + std::to_string(id);
  r.download_attempted = true;
  r.downloaded = true;
  r.infected = infected;
  r.strain = infected ? 2 : malware::kCleanStrain;
  r.strain_name = infected ? "W32.Test.A" : "";
  r.type_by_magic = files::FileType::kExecutable;
  return r;
}

TEST(Report, PrevalenceTableMentionsKeyNumbers) {
  std::vector<crawler::ResponseRecord> records = {sample_record(1, true),
                                                  sample_record(2, false)};
  std::ostringstream out;
  core::print_prevalence(out, "limewire", analysis::prevalence(records));
  std::string text = out.str();
  EXPECT_NE(text.find("limewire"), std::string::npos);
  EXPECT_NE(text.find("50.0%"), std::string::npos);
  EXPECT_NE(text.find("malicious"), std::string::npos);
}

TEST(Report, StrainRankingShowsTopkLines) {
  std::vector<crawler::ResponseRecord> records = {sample_record(1, true),
                                                  sample_record(2, true)};
  std::ostringstream out;
  core::print_strain_ranking(out, "limewire", analysis::strain_ranking(records));
  std::string text = out.str();
  EXPECT_NE(text.find("W32.Test.A"), std::string::npos);
  EXPECT_NE(text.find("top-1 share: 100.0%"), std::string::npos);
  EXPECT_NE(text.find("top-3 share: 100.0%"), std::string::npos);
}

TEST(Report, SourcesShowPrivateShare) {
  std::vector<crawler::ResponseRecord> records = {sample_record(1, true)};
  std::ostringstream out;
  core::print_sources(out, "limewire", analysis::sources(records),
                      analysis::strain_source_concentration(records));
  std::string text = out.str();
  EXPECT_NE(text.find("private"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(Report, CategoryBreakdownRenders) {
  std::vector<crawler::ResponseRecord> records = {sample_record(1, true)};
  std::ostringstream out;
  core::print_category_breakdown(out, "limewire",
                                 analysis::category_breakdown(records));
  EXPECT_NE(out.str().find("software"), std::string::npos);
}

TEST(StudyCache, RoundTripsRecordsExactly) {
  core::StudyResult original;
  original.events_executed = 12345;
  original.messages_delivered = 678;
  original.bytes_delivered = 91011;
  original.churn_joins = 12;
  original.churn_leaves = 13;
  original.crawl_stats.queries_sent = 14;
  original.crawl_stats.responses = 15;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    original.records.push_back(sample_record(i, i % 3 == 0));
  }

  std::string path = "test_cache_roundtrip.bin";
  ASSERT_TRUE(bench::save_study(path, original));
  core::StudyResult loaded;
  ASSERT_TRUE(bench::load_study(path, loaded));
  std::remove(path.c_str());

  EXPECT_EQ(loaded.events_executed, original.events_executed);
  EXPECT_EQ(loaded.messages_delivered, original.messages_delivered);
  EXPECT_EQ(loaded.churn_joins, original.churn_joins);
  EXPECT_EQ(loaded.crawl_stats.queries_sent, original.crawl_stats.queries_sent);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    const auto& a = original.records[i];
    const auto& b = loaded.records[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.filename, b.filename);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.source_ip, b.source_ip);
    EXPECT_EQ(a.source_key, b.source_key);
    EXPECT_EQ(a.source_firewalled, b.source_firewalled);
    EXPECT_EQ(a.content_key, b.content_key);
    EXPECT_EQ(a.downloaded, b.downloaded);
    EXPECT_EQ(a.infected, b.infected);
    EXPECT_EQ(a.strain, b.strain);
    EXPECT_EQ(a.strain_name, b.strain_name);
    EXPECT_EQ(a.type_by_name, b.type_by_name);
    EXPECT_EQ(a.type_by_magic, b.type_by_magic);
  }
}

TEST(StudyCache, RejectsMissingAndCorrupt) {
  core::StudyResult result;
  EXPECT_FALSE(bench::load_study("nonexistent_file.bin", result));

  // Corrupt: truncated file.
  core::StudyResult original;
  original.records.push_back(sample_record(1, true));
  std::string path = "test_cache_corrupt.bin";
  ASSERT_TRUE(bench::save_study(path, original));
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_FALSE(bench::load_study(path, result));
  std::remove(path.c_str());
}

TEST(StudyCache, PathEncodesNameAndSeed) {
  EXPECT_EQ(bench::cache_path("limewire", 2006), "bench_cache_limewire_2006.p2pt");
  EXPECT_EQ(bench::sweep_cache_path(0xabcULL),
            "bench_cache_sweep_0000000000000abc.p2pt");
}

TEST(StudyCache, MissesWhenConfigHashChanges) {
  core::StudyResult original;
  original.records.push_back(sample_record(1, true));
  std::string path = "test_cache_stale.bin";
  auto cfg = core::limewire_quick();
  std::uint64_t hash = core::config_hash(cfg);
  ASSERT_TRUE(bench::save_study(path, original, hash));

  core::StudyResult loaded;
  EXPECT_TRUE(bench::load_study(path, loaded, hash));

  // Any config edit changes the hash, so the cache entry goes stale.
  cfg.crawl.duration = cfg.crawl.duration + util::SimDuration::hours(1);
  std::uint64_t changed = core::config_hash(cfg);
  ASSERT_NE(changed, hash);
  EXPECT_FALSE(bench::load_study(path, loaded, changed));

  // Hash 0 skips validation (legacy callers).
  EXPECT_TRUE(bench::load_study(path, loaded, 0));
  std::remove(path.c_str());
}

TEST(StudyCache, ConfigHashCoversSeedAndNestedFields) {
  auto cfg = core::limewire_quick();
  std::uint64_t base = core::config_hash(cfg);

  auto seed_changed = cfg;
  seed_changed.seed += 1;
  EXPECT_NE(core::config_hash(seed_changed), base);

  auto pop_changed = cfg;
  pop_changed.population.leaves += 1;
  EXPECT_NE(core::config_hash(pop_changed), base);

  auto corpus_changed = cfg;
  corpus_changed.population.corpus.zipf_exponent += 0.01;
  EXPECT_NE(core::config_hash(corpus_changed), base);

  // Networks never collide even at identical seeds.
  auto lw = core::limewire_quick();
  auto ft = core::openft_quick();
  ft.seed = lw.seed;
  EXPECT_NE(core::config_hash(lw), core::config_hash(ft));
}

}  // namespace
}  // namespace p2p
