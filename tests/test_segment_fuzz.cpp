// Segment-store robustness fuzzing: randomized segment-index payloads
// through the codec, mutated kSegmentIndex blocks through TraceReader, and
// whole-directory mutation (MANIFEST bytes and segment files) through
// read_manifest / SegmentReader. Nothing here may crash, throw past the
// reader, or report stats that contradict each other — damage is either a
// hard manifest error or contained per segment/block.
//
// Lives in the fuzz binary (ctest label: fuzz) so the sanitizer tier can
// scale the loops up via P2P_FUZZ_ROUNDS (see ci/run_tiers.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/codec.h"
#include "trace/reader.h"
#include "trace/segment.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace p2p {
namespace {

namespace fs = std::filesystem;

int fuzz_rounds(int fallback) {
  if (const char* env = std::getenv("P2P_FUZZ_ROUNDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

trace::SegmentIndex random_index(util::Rng& rng) {
  trace::SegmentIndex index;
  index.window_index = rng.next();
  index.window_ms = static_cast<std::int64_t>(rng.bounded(1u << 30));
  index.records = rng.bounded(1u << 20);
  index.honeypot_records = rng.bounded(1u << 20);
  index.min_at_ms = static_cast<std::int64_t>(rng.bounded(1u << 30));
  index.max_at_ms = index.min_at_ms + static_cast<std::int64_t>(rng.bounded(1u << 20));
  std::size_t kinds = rng.index(4);
  for (std::size_t i = 0; i < kinds; ++i) {
    index.kind_counts.emplace_back(static_cast<std::uint8_t>(i),
                                   rng.bounded(1u << 16));
  }
  std::size_t offsets = rng.index(16);
  std::uint64_t offset = 32;
  for (std::size_t i = 0; i < offsets; ++i) {
    offset += rng.bounded(1u << 16);
    index.block_offsets.push_back(offset);
  }
  return index;
}

TEST(SegmentFuzz, IndexCodecRoundTrip) {
  util::Rng rng(0x5e9f00d1u);
  const int rounds = fuzz_rounds(200);
  for (int round = 0; round < rounds; ++round) {
    trace::SegmentIndex index = random_index(rng);
    util::ByteWriter w;
    trace::encode_segment_index(w, index);
    util::ByteReader r(w.data());
    trace::SegmentIndex back = trace::decode_segment_index(r);
    EXPECT_EQ(back.window_index, index.window_index);
    EXPECT_EQ(back.window_ms, index.window_ms);
    EXPECT_EQ(back.records, index.records);
    EXPECT_EQ(back.honeypot_records, index.honeypot_records);
    EXPECT_EQ(back.kind_counts, index.kind_counts);
    EXPECT_EQ(back.block_offsets, index.block_offsets);
  }
}

TEST(SegmentFuzz, MutatedIndexPayloadNeverCrashes) {
  util::Rng rng(0xfacade02u);
  const int rounds = fuzz_rounds(300);
  for (int round = 0; round < rounds; ++round) {
    util::ByteWriter w;
    trace::encode_segment_index(w, random_index(rng));
    std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());
    std::size_t flips = 1 + rng.index(8);
    for (std::size_t i = 0; i < flips && !bytes.empty(); ++i) {
      bytes[rng.index(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.index(255));
    }
    if (rng.chance(0.3) && !bytes.empty()) bytes.resize(rng.index(bytes.size()));
    try {
      util::ByteReader r(bytes);
      (void)trace::decode_segment_index(r);
    } catch (const util::BufferUnderflow&) {
      // Malformed input maps to the codec's one failure mode; anything
      // else (crash, other throw) fails the test.
    }
  }
}

/// Build a small capture directory to mutate.
std::string build_capture(util::Rng& rng, const std::string& name) {
  std::string dir = (fs::path(::testing::TempDir()) / name).string();
  fs::remove_all(dir);
  trace::TraceHeader header;
  header.network = "limewire";
  header.config_hash = 0x1badd00dull;
  header.seed = 7;
  trace::SegmentWriterOptions options;
  options.window_ms = 3'600'000;
  options.records_per_block = 8;
  trace::SegmentWriter writer(dir, header, options);
  for (std::uint64_t i = 0; i < 120; ++i) {
    crawler::ResponseRecord r;
    r.id = i + 1;
    r.network = "limewire";
    r.at = util::SimTime::at_millis(
        static_cast<std::int64_t>(i) * 120'000 +
        static_cast<std::int64_t>(rng.index(120'000)));
    r.query = "q";
    r.filename = "f.exe";
    r.size = 1000 + i;
    r.content_key = "c" + std::to_string(i % 9);
    r.source_key = "s" + std::to_string(i % 5);
    writer.on_record(r);
  }
  writer.close();
  EXPECT_TRUE(writer.ok());
  return dir;
}

void mutate_file(util::Rng& rng, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  if (bytes.empty()) return;
  std::size_t flips = 1 + rng.index(6);
  for (std::size_t i = 0; i < flips; ++i) {
    bytes[rng.index(bytes.size())] ^= static_cast<char>(1 + rng.index(255));
  }
  if (rng.chance(0.25)) bytes.resize(rng.index(bytes.size()));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(SegmentFuzz, MutatedManifestNeverCrashes) {
  util::Rng rng(0xabad1deau);
  const int rounds = fuzz_rounds(100);
  std::string pristine = build_capture(rng, "fuzz_manifest_src.p2ps");
  for (int round = 0; round < rounds; ++round) {
    std::string dir =
        (fs::path(::testing::TempDir()) / "fuzz_manifest.p2ps").string();
    fs::remove_all(dir);
    fs::copy(pristine, dir, fs::copy_options::recursive);
    mutate_file(rng, trace::manifest_path(dir));
    trace::ManifestData manifest = trace::read_manifest(dir);
    if (manifest.ok()) {
      // A surviving manifest must still drive a non-crashing read.
      trace::SegmentReader reader(dir);
      crawler::ResponseRecord rec;
      while (reader.next(rec)) {
      }
    } else {
      EXPECT_FALSE(manifest.error_message.empty());
      trace::SegmentReader reader(dir);
      EXPECT_FALSE(reader.ok());
    }
  }
}

TEST(SegmentFuzz, MutatedSegmentsAreContained) {
  util::Rng rng(0xc0ffee03u);
  const int rounds = fuzz_rounds(100);
  std::string pristine = build_capture(rng, "fuzz_segment_src.p2ps");
  trace::ManifestData manifest = trace::read_manifest(pristine);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest.manifest.segments.empty());
  for (int round = 0; round < rounds; ++round) {
    std::string dir =
        (fs::path(::testing::TempDir()) / "fuzz_segment.p2ps").string();
    fs::remove_all(dir);
    fs::copy(pristine, dir, fs::copy_options::recursive);
    std::size_t victim = rng.index(manifest.manifest.segments.size());
    mutate_file(
        rng, trace::segment_path(dir, manifest.manifest.segments[victim]));

    trace::SegmentReader reader(dir);
    ASSERT_TRUE(reader.ok());  // manifest untouched
    crawler::ResponseRecord rec;
    std::uint64_t streamed = 0;
    while (reader.next(rec)) ++streamed;
    const auto& stats = reader.stats();
    EXPECT_EQ(stats.records_read, streamed);
    EXPECT_LE(stats.segments_read + stats.segments_corrupt,
              manifest.manifest.segments.size());
    // Whatever was dropped must be accounted for somewhere.
    if (streamed < 120) {
      EXPECT_TRUE(stats.blocks_corrupt > 0 || stats.segments_corrupt > 0 ||
                  stats.truncated_tail);
    }
  }
}

}  // namespace
}  // namespace p2p
