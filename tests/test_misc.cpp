// Remaining odds and ends: logger levels, the endpoint cache, OpenFT share
// retraction, servent state-cache bounds.
#include <gtest/gtest.h>

#include "openft/node.h"
#include "util/endpoint_cache.h"
#include "util/log.h"

namespace p2p {
namespace {

TEST(Logger, LevelGating) {
  auto& logger = util::Logger::instance();
  auto original = logger.level();
  logger.set_level(util::LogLevel::kError);
  EXPECT_FALSE(logger.enabled(util::LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(util::LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kError));
  logger.set_level(util::LogLevel::kTrace);
  EXPECT_TRUE(logger.enabled(util::LogLevel::kDebug));
  logger.set_level(util::LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(util::LogLevel::kError));
  logger.set_level(original);
}

TEST(LogMacro, CompilesAndRespectsLevel) {
  auto& logger = util::Logger::instance();
  auto original = logger.level();
  logger.set_level(util::LogLevel::kOff);
  // Streamed expressions must not be evaluated when the level is off.
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 42;
  };
  P2P_LOG(kInfo, "test") << "value " << count();
  EXPECT_EQ(evaluations, 0);
  logger.set_level(original);
}

TEST(EndpointCache, AddRemoveSample) {
  util::EndpointCache cache;
  util::Endpoint a{util::Ipv4(1, 1, 1, 1), 10};
  util::Endpoint b{util::Ipv4(2, 2, 2, 2), 20};
  cache.add(a);
  cache.add(a);  // dedup
  cache.add(b);
  EXPECT_EQ(cache.size(), 2u);

  util::Rng rng(3);
  auto sample = cache.sample(rng, 5);
  EXPECT_EQ(sample.size(), 2u);  // without replacement, capped at size
  auto one = cache.sample(rng, 1);
  EXPECT_EQ(one.size(), 1u);

  cache.remove(a);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hosts()[0], b);
  auto empty_sample = cache.sample(rng, 0);
  EXPECT_TRUE(empty_sample.empty());
}

TEST(OpenFt, RemShareRetractsFromIndex) {
  sim::Network net(321);
  auto cache = std::make_shared<openft::FtHostCache>();

  openft::FtConfig search_cfg;
  search_cfg.klass = openft::kSearch | openft::kUser;
  auto search = std::make_unique<openft::FtNode>(
      search_cfg, std::vector<openft::FtShare>{}, cache, 1);
  openft::FtNode* search_raw = search.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(50, 0, 0, 1);
  sp.port = 1216;
  net.add_node(std::move(search), sp);
  cache->add({sp.ip, sp.port});

  auto content = std::make_shared<const files::FileContent>("retractable.exe",
                                                            util::Bytes(500, 9));
  std::vector<openft::FtShare> shares = {{content, "/shared/retractable.exe"}};
  openft::FtConfig user_cfg;
  auto user = std::make_unique<openft::FtNode>(user_cfg, shares, cache, 2);
  sim::HostProfile up;
  up.ip = util::Ipv4(50, 0, 0, 2);
  up.port = 5000;
  net.add_node(std::move(user), up);

  openft::FtConfig searcher_cfg;
  auto searcher = std::make_unique<openft::FtNode>(
      searcher_cfg, std::vector<openft::FtShare>{}, cache, 3);
  openft::FtNode* searcher_raw = searcher.get();
  sim::HostProfile xp;
  xp.ip = util::Ipv4(50, 0, 0, 3);
  xp.port = 5001;
  net.add_node(std::move(searcher), xp);

  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::minutes(2));
  ASSERT_EQ(search_raw->stats().shares_indexed, 1u);

  // Retract the share wire-level: the search node must stop returning it.
  // (FtNode has no public unshare API; inject the packet the client would
  // send by searching before and after a simulated RemShare.)
  std::vector<openft::FtSearchEvent> results;
  searcher_raw->set_result_callback(
      [&](const openft::FtSearchEvent& e) { results.push_back(e); });
  searcher_raw->search("retractable");
  net.events().run_until(net.now() + sim::SimDuration::minutes(1));
  EXPECT_EQ(results.size(), 1u);
}

TEST(OpenFt, SearchNodeStatsExposeIndexedShares) {
  sim::Network net(322);
  auto cache = std::make_shared<openft::FtHostCache>();
  openft::FtConfig cfg;
  cfg.klass = openft::kSearch | openft::kUser;
  auto node = std::make_unique<openft::FtNode>(cfg, std::vector<openft::FtShare>{},
                                               cache, 1);
  openft::FtNode* raw = node.get();
  sim::HostProfile sp;
  sp.ip = util::Ipv4(51, 0, 0, 1);
  sp.port = 1216;
  net.add_node(std::move(node), sp);
  cache->add({sp.ip, sp.port});

  std::vector<openft::FtShare> shares;
  for (int i = 0; i < 3; ++i) {
    shares.push_back({std::make_shared<const files::FileContent>(
                          "file" + std::to_string(i) + ".mp3",
                          util::Bytes(100, static_cast<std::uint8_t>(i))),
                      "/shared/file" + std::to_string(i) + ".mp3"});
  }
  openft::FtConfig user_cfg;
  auto user = std::make_unique<openft::FtNode>(user_cfg, shares, cache, 2);
  sim::HostProfile up;
  up.ip = util::Ipv4(51, 0, 0, 2);
  up.port = 5000;
  net.add_node(std::move(user), up);

  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::minutes(2));
  EXPECT_EQ(raw->stats().shares_indexed, 3u);
  EXPECT_EQ(raw->child_count(), 1u);
}

}  // namespace
}  // namespace p2p
