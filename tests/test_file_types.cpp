#include "files/file_types.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace p2p::files {
namespace {

struct ExtCase {
  const char* name;
  FileType expected;
};

class ExtensionClassification : public ::testing::TestWithParam<ExtCase> {};

TEST_P(ExtensionClassification, Classifies) {
  EXPECT_EQ(classify_extension(GetParam().name), GetParam().expected)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Extensions, ExtensionClassification,
    ::testing::Values(
        ExtCase{"setup.exe", FileType::kExecutable},
        ExtCase{"SETUP.EXE", FileType::kExecutable},
        ExtCase{"virus.scr", FileType::kExecutable},
        ExtCase{"run.bat", FileType::kExecutable},
        ExtCase{"app.msi", FileType::kExecutable},
        ExtCase{"shortcut.pif", FileType::kExecutable},
        ExtCase{"pack.zip", FileType::kArchive},
        ExtCase{"pack.rar", FileType::kArchive},
        ExtCase{"pack.tar", FileType::kArchive},
        ExtCase{"pack.gz", FileType::kArchive},
        ExtCase{"song.mp3", FileType::kAudio},
        ExtCase{"song.ogg", FileType::kAudio},
        ExtCase{"movie.avi", FileType::kVideo},
        ExtCase{"movie.mpeg", FileType::kVideo},
        ExtCase{"photo.jpg", FileType::kImage},
        ExtCase{"photo.png", FileType::kImage},
        ExtCase{"manual.pdf", FileType::kDocument},
        ExtCase{"notes.txt", FileType::kDocument},
        ExtCase{"mystery.xyz", FileType::kOther},
        ExtCase{"noextension", FileType::kOther},
        ExtCase{"a song - with spaces.mp3", FileType::kAudio}));

TEST(MagicClassification, DetectsHeaders) {
  util::Bytes exe = {'M', 'Z', 0x90, 0, 0, 0};
  EXPECT_EQ(classify_magic(exe), FileType::kExecutable);

  util::Bytes zip = {'P', 'K', 0x03, 0x04, 0, 0};
  EXPECT_EQ(classify_magic(zip), FileType::kArchive);

  util::Bytes rar = {'R', 'a', 'r', '!', 0};
  EXPECT_EQ(classify_magic(rar), FileType::kArchive);

  util::Bytes gz = {0x1f, 0x8b, 8};
  EXPECT_EQ(classify_magic(gz), FileType::kArchive);

  util::Bytes mp3 = {'I', 'D', '3', 3, 0};
  EXPECT_EQ(classify_magic(mp3), FileType::kAudio);

  util::Bytes avi = {'R', 'I', 'F', 'F', 0, 0, 0, 0};
  EXPECT_EQ(classify_magic(avi), FileType::kVideo);

  util::Bytes jpg = {0xff, 0xd8, 0xff, 0xe0};
  EXPECT_EQ(classify_magic(jpg), FileType::kImage);

  util::Bytes png = {0x89, 'P', 'N', 'G'};
  EXPECT_EQ(classify_magic(png), FileType::kImage);

  util::Bytes pdf = {'%', 'P', 'D', 'F', '-'};
  EXPECT_EQ(classify_magic(pdf), FileType::kDocument);
}

TEST(MagicClassification, UnknownAndShortInputs) {
  util::Bytes junk = {0x42, 0x42, 0x42};
  EXPECT_EQ(classify_magic(junk), FileType::kOther);
  EXPECT_EQ(classify_magic({}), FileType::kOther);
  util::Bytes one = {'M'};
  EXPECT_EQ(classify_magic(one), FileType::kOther);
}

TEST(MagicClassification, CatchesRenamedExecutable) {
  // The study's download pipeline classifies by magic: a renamed exe is
  // still an exe.
  util::Bytes exe = {'M', 'Z', 0x90, 0x00};
  EXPECT_EQ(classify_extension("innocent.mp3"), FileType::kAudio);
  EXPECT_EQ(classify_magic(exe), FileType::kExecutable);
}

TEST(StudyTypes, OnlyExecutablesAndArchives) {
  EXPECT_TRUE(is_study_type(FileType::kExecutable));
  EXPECT_TRUE(is_study_type(FileType::kArchive));
  EXPECT_FALSE(is_study_type(FileType::kAudio));
  EXPECT_FALSE(is_study_type(FileType::kVideo));
  EXPECT_FALSE(is_study_type(FileType::kImage));
  EXPECT_FALSE(is_study_type(FileType::kDocument));
  EXPECT_FALSE(is_study_type(FileType::kOther));
}

TEST(TypeNames, RoundTrip) {
  EXPECT_EQ(to_string(FileType::kExecutable), "executable");
  EXPECT_EQ(to_string(FileType::kArchive), "archive");
  EXPECT_EQ(to_string(FileType::kOther), "other");
}

}  // namespace
}  // namespace p2p::files
