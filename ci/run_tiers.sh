#!/usr/bin/env bash
# Test tiers for CI and pre-merge runs:
#
#   tier 1  Release build, full ctest suite (includes the obs, cli, fuzz,
#           and paper labels at their default scale).
#   tier 2  Sanitizer build (address,undefined), wire-format fuzz suite
#           with the mutation loops scaled up via P2P_FUZZ_ROUNDS.
#
# Usage: ci/run_tiers.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: Release build + full suite =="
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "${JOBS}"
(
  cd build-ci-release
  ctest -L obs --output-on-failure
  ctest -L paper --output-on-failure
  ctest -j "${JOBS}" --output-on-failure
)

echo "== tier 2: sanitizer build + scaled fuzz suite =="
cmake -B build-ci-sanitize -S . -DCMAKE_BUILD_TYPE=Debug \
  -DP2P_SANITIZE=address,undefined
cmake --build build-ci-sanitize -j "${JOBS}"
(
  cd build-ci-sanitize
  P2P_FUZZ_ROUNDS=2000 ctest -L fuzz -j "${JOBS}" --output-on-failure
)

echo "== all tiers passed =="
