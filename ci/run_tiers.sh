#!/usr/bin/env bash
# Test tiers for CI and pre-merge runs:
#
#   release   Release build, full ctest suite (includes the obs, cli, fault,
#             fuzz, and paper labels at their default scale).
#   sanitize  Sanitizer build (address,undefined), wire-format + trace-store
#             + fault-corruption fuzz suite with the mutation loops scaled up
#             via P2P_FUZZ_ROUNDS.
#   replay    Replay determinism: record a quick study of each network as a
#             trace file, replay it offline, and require the replayed JSON
#             report to be byte-identical to the live one.
#   tsan      ThreadSanitizer build (-DP2P_SANITIZE=thread); runs the sweep,
#             fault, shard, and kad suites plus the Payload refcount stress,
#             a sharded (--shards 4) full-fidelity legacy quick study of
#             each sharded network and a quick KAD honeypot study — the
#             concurrency-bearing layers under their real workload.
#   bench     Simulation-core microbench (bench_sim_core --check): asserts
#             the >=2x scheduling and >=5x copy-reduction floors hold and
#             leaves bench_sim_core.json behind as a CI artifact. Also runs
#             bench_shard --check (sharded-engine scaling + million-peer
#             capacity; the >=2x 4-shard speedup floor is enforced on
#             >=4-core hosts), bench_trace --check (out-of-core segment
#             replay throughput floor + peak-RSS ceiling, byte-identical
#             reports across jobs counts), bench_legacy_engine --check
#             (legacy study on the sharded engine: interned query hot-path
#             ratio, serial events/sec floor, 1-vs-4-shard determinism,
#             and the >=2x study speedup floor on >=4-core hosts),
#             and bench_obs_overhead --check
#             in the release
#             build AND in a -DP2P_OBS_DISABLED=ON build, pinning the
#             per-op cost ceilings of the observability primitives in both
#             flavors.
#   chaos     Faulted --quick studies of all three networks: bit-reproducible
#             under a fixed seed + fault plan, degradation counters obey
#             their accounting invariants, unknown --faults specs exit
#             non-zero, and a faulted sweep is --jobs invariant.
#   longhaul  Ten-simulated-week KAD honeypot capture into a segment
#             directory (~2.5M records, out of core), parallel replay at
#             1 and 4 jobs byte-identical to each other and to the live
#             report, and a bit-flipped segment contained (replay still
#             succeeds, damage counted) while MANIFEST damage stays fatal.
#             Leaves the MANIFEST, rolling-window CSV, and reports in
#             ci-longhaul/ for artifact upload.
#
# Usage: ci/run_tiers.sh [jobs] [tier ...]
#   A leading integer sets the job count (default: nproc); remaining
#   arguments select tiers, in order. No tier arguments = all tiers.
#   Unknown tier names fail fast (exit 2) before any tier runs.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"
if [[ $# -gt 0 && "$1" =~ ^[0-9]+$ ]]; then
  JOBS="$1"
  shift
fi
TIERS=("$@")
if [[ ${#TIERS[@]} -eq 0 ]]; then
  TIERS=(release sanitize replay tsan chaos bench longhaul)
fi

# Validate every tier name up front: a typo in the third tier must not cost
# a full run of the first two before failing.
KNOWN_TIERS="release sanitize replay tsan chaos bench longhaul"
for tier in "${TIERS[@]}"; do
  case " ${KNOWN_TIERS} " in
    *" ${tier} "*) ;;
    *)
      echo "unknown tier: ${tier} (known: ${KNOWN_TIERS})" >&2
      exit 2
      ;;
  esac
done

build_release() {
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci-release -j "${JOBS}"
}

tier_release() {
  echo "== tier release: Release build + full suite =="
  build_release
  (
    cd build-ci-release
    ctest -L obs --output-on-failure
    ctest -L paper --output-on-failure
    ctest -j "${JOBS}" --output-on-failure
  )
}

tier_sanitize() {
  echo "== tier sanitize: asan/ubsan build + scaled fuzz suite =="
  cmake -B build-ci-sanitize -S . -DCMAKE_BUILD_TYPE=Debug \
    -DP2P_SANITIZE=address,undefined
  cmake --build build-ci-sanitize -j "${JOBS}"
  (
    cd build-ci-sanitize
    # Callers (or CI variables) can raise the mutation budget; 2000 rounds
    # is the default scale for the wire/trace/fault/segment-index targets.
    P2P_FUZZ_ROUNDS="${P2P_FUZZ_ROUNDS:-2000}" \
      ctest -L fuzz -j "${JOBS}" --output-on-failure
    # The zero-copy payload layer is all refcounts and aliasing — exactly
    # what asan/ubsan are for; the event queue's slab recycling rides along.
    ctest -R 'Payload|EventQueue|^Task' -j "${JOBS}" --output-on-failure
  )
}

tier_replay() {
  echo "== tier replay: record/replay determinism =="
  [[ -d build-ci-release ]] || build_release
  (
    cd build-ci-release
    rm -rf ci-replay && mkdir ci-replay && cd ci-replay
    for network in limewire openft kad; do
      ../examples/trace record --network "${network}" --quick --seed 7 \
        "${network}.p2pt" > /dev/null
      ../examples/trace inspect "${network}.p2pt"
      ../examples/trace replay "${network}.p2pt" \
        --json "${network}_replayed.json" > /dev/null
    done
    ../examples/limewire_study --quick --seed 7 --json limewire_live.json \
      > /dev/null
    ../examples/openft_study --quick --seed 7 --json openft_live.json > /dev/null
    ../examples/kad_study --quick --seed 7 --json kad_live.json > /dev/null
    cmp limewire_live.json limewire_replayed.json
    cmp openft_live.json openft_replayed.json
    cmp kad_live.json kad_replayed.json
    echo "replayed reports are byte-identical to live runs"
  )
}

tier_tsan() {
  echo "== tier tsan: ThreadSanitizer build + sweep/fault/shard suites =="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DP2P_SANITIZE=thread
  cmake --build build-ci-tsan -j "${JOBS}" \
    --target p2p_tests p2p_fault_tests p2p_shard_tests p2p_kad_tests \
             limewire_study openft_study kad_study
  (
    cd build-ci-tsan
    ctest -L fault -j "${JOBS}" --output-on-failure
    ctest -R '^Sweep' -j "${JOBS}" --output-on-failure
    # Payload refcounts cross sweep worker threads; the stress test hammers
    # concurrent copy/destroy so TSan can see any missing ordering.
    ctest -R 'Payload' -j "${JOBS}" --output-on-failure
    # The sharded engine is the most concurrency-dense layer: worker pool,
    # window barriers, cross-shard outbox drains. Run its differential and
    # lookahead-property suite plus a full sharded quick study of each
    # network — --shards now runs the full-fidelity legacy model (servents,
    # crawler, scanner on worker threads), so TSan sees the real study
    # workload, not just the harness.
    ctest -L shard -j "${JOBS}" --output-on-failure
    for network in limewire openft; do
      ./examples/${network}_study --quick --seed 7 --shards 4 \
        --json "tsan_${network}_sharded.json" > /dev/null
    done
    # The KAD driver is serial, but its RPC fan-out and honeypot stream
    # merge still run under the sweep worker pool in `-L kad`'s study
    # tests; a standalone quick study keeps the CLI path covered too.
    ctest -L kad -j "${JOBS}" --output-on-failure
    ./examples/kad_study --quick --seed 7 --json tsan_kad.json > /dev/null
  )
}

tier_chaos() {
  echo "== tier chaos: faulted studies, invariants, jobs invariance =="
  [[ -d build-ci-release ]] || build_release
  (
    cd build-ci-release
    rm -rf ci-chaos && mkdir ci-chaos && cd ci-chaos

    echo "-- faulted runs are bit-reproducible"
    for network in limewire openft kad; do
      ../examples/${network}_study --quick --seed 7 --faults moderate \
        --json "${network}_a.json" > /dev/null
      ../examples/${network}_study --quick --seed 7 --faults moderate \
        --json "${network}_b.json" > /dev/null
      cmp "${network}_a.json" "${network}_b.json"
    done

    echo "-- fault appendix present iff faults were injected"
    ../examples/limewire_study --quick --seed 7 --json clean.json > /dev/null
    grep -q '"faults"' limewire_a.json
    grep -q '"faults"' openft_a.json
    grep -q '"faults"' kad_a.json
    ! grep -q '"faults"' clean.json

    echo "-- faulted KAD honeypot stream still yields the coverage appendix"
    grep -q '"honeypots"' kad_a.json

    echo "-- degradation counters obey their accounting invariants"
    for network in limewire openft kad; do
      python3 - "${network}_a.json" <<'PY'
import json, sys
f = json.load(open(sys.argv[1]))["faults"]
deg, inj = f["degradation"], f["injected"]
assert deg["downloads_started"] >= (
    deg["downloads_ok"] + deg["downloads_failed"] + deg["downloads_abandoned"]
), "resolutions exceed started downloads"
assert inj["downloads_stalled"] <= deg["downloads_started"], "stalls exceed fetches"
assert deg["downloads_ok"] > 0, "faulted study collapsed (no downloads)"
assert inj["messages_dropped"] > 0, "moderate preset injected nothing"
print(f"   {sys.argv[1]}: ok")
PY
    done

    echo "-- unknown fault specs are rejected"
    for tool in limewire_study openft_study kad_study sweep; do
      if ../examples/${tool} --faults not-a-preset > /dev/null 2>&1; then
        echo "${tool} accepted an unknown --faults spec" >&2
        exit 1
      fi
    done

    echo "-- faulted sweep JSON is identical across --jobs"
    ../examples/sweep --quick --seeds 3 --faults moderate --jobs 1 \
      --json sweep_j1.json > /dev/null
    ../examples/sweep --quick --seeds 3 --faults moderate --jobs 4 \
      --json sweep_j4.json > /dev/null
    cmp sweep_j1.json sweep_j4.json

    echo "-- time-resolved telemetry of a faulted run (artifacts + determinism)"
    # One fully-instrumented faulted study: the hourly time series and the
    # span profile land in ci-chaos/ for artifact upload, and the series
    # (standalone and embedded in the report) is bit-reproducible.
    ../examples/limewire_study --quick --seed 7 --faults moderate \
      --timeseries limewire_faulted.timeseries.jsonl --window 1h \
      --profile limewire_faulted.trace.json \
      --json limewire_ts_a.json > /dev/null
    ../examples/limewire_study --quick --seed 7 --faults moderate \
      --timeseries limewire_ts_b.jsonl --window 1h \
      --json limewire_ts_b.json > /dev/null
    cmp limewire_faulted.timeseries.jsonl limewire_ts_b.jsonl
    cmp limewire_ts_a.json limewire_ts_b.json
    grep -q '"timeseries"' limewire_ts_a.json
    python3 - limewire_faulted.trace.json <<'PY'
import json, sys
t = json.load(open(sys.argv[1]))
events = t["traceEvents"]
assert events, "profile captured no spans"
assert all(e["ph"] == "X" and e["ts"] >= 0 and e["dur"] >= 0 for e in events)
print(f"   {sys.argv[1]}: {len(events)} spans ok")
PY
    echo "chaos tier passed"
  )
}

tier_bench() {
  echo "== tier bench: simulation-core perf floors =="
  [[ -d build-ci-release ]] || build_release
  (
    cd build-ci-release
    # --check enforces the floors pinned in BENCH_sim_core.json at the repo
    # root (>=2x events/sec, >=5x fewer copied bytes on a 30-neighbor
    # broadcast); the JSON lands next to the binary for artifact upload.
    ./bench/bench_sim_core --check --json bench_sim_core.json

    # Sharded-engine scaling: events/sec at 1/2/4/8 shards plus the
    # million-peer --quick capacity run. --check asserts executed-event
    # counts are identical at every shard count and, on >=4-core hosts,
    # that 4 shards clear a >=2x speedup floor over 1 shard.
    ./bench/bench_shard --check --json bench_shard.json

    # Out-of-core trace storage: a synthetic twelve-week capture recorded
    # straight into a segment directory, replayed at 1/4 jobs. --check pins
    # the replay-throughput floor and the peak-RSS ceiling that back the
    # out-of-core claim; byte-identical reports are asserted either way.
    ./bench/bench_trace --check --json bench_trace.json

    # Full-fidelity legacy study on the sharded engine: interned-vs-
    # reference query hot-path ratio (>= 1.3x), serial events/sec floor,
    # identical 1/4-shard record streams, and — on >=4-core hosts only —
    # the >=2x 4-shard study speedup floor. A smaller host prints
    # "1-core host: parallel speedup floor skipped" instead of failing.
    ./bench/bench_legacy_engine --check --json bench_legacy_engine.json

    echo "-- obs overhead ceilings (enabled flavor)"
    ./bench/bench_obs_overhead --check | tee bench_obs_overhead.txt
  )

  echo "-- obs overhead ceilings (P2P_OBS_DISABLED flavor)"
  cmake -B build-ci-obsoff -S . -DCMAKE_BUILD_TYPE=Release -DP2P_OBS_DISABLED=ON
  cmake --build build-ci-obsoff -j "${JOBS}" --target bench_obs_overhead
  (
    cd build-ci-obsoff
    ./bench/bench_obs_overhead --check \
      | tee ../build-ci-release/bench_obs_overhead_disabled.txt
  )
}

tier_longhaul() {
  echo "== tier longhaul: ten-week segmented capture + out-of-core replay =="
  [[ -d build-ci-release ]] || build_release
  (
    cd build-ci-release
    rm -rf ci-longhaul && mkdir ci-longhaul && cd ci-longhaul

    echo "-- record ten simulated weeks into a segment directory"
    ../examples/kad_study --longhaul --seed 7 --record-dir capture.p2ps \
      --json longhaul_live.json > /dev/null
    ../examples/trace inspect capture.p2ps

    echo "-- parallel replay is byte-identical (1 vs 4 jobs, and vs live)"
    ../examples/kad_study --replay-dir capture.p2ps --replay-jobs 1 \
      --json longhaul_replay_j1.json --windows longhaul_windows.csv > /dev/null
    ../examples/kad_study --replay-dir capture.p2ps --replay-jobs 4 \
      --json longhaul_replay_j4.json --windows longhaul_windows_j4.csv \
      > /dev/null
    cmp longhaul_replay_j1.json longhaul_replay_j4.json
    cmp longhaul_windows.csv longhaul_windows_j4.csv
    cmp longhaul_live.json longhaul_replay_j1.json
    echo "   replayed reports and window CSVs are byte-identical"

    echo "-- a bit-flipped segment is contained, not fatal"
    cp -r capture.p2ps damaged.p2ps
    python3 - <<'PY'
import pathlib
segs = sorted(pathlib.Path("damaged.p2ps").glob("seg-*.p2pt"))
victim = segs[len(segs) // 2]
data = bytearray(victim.read_bytes())
data[len(data) // 2] ^= 0x40
victim.write_bytes(data)
print(f"   flipped one byte in {victim.name}")
PY
    ../examples/kad_study --replay-dir damaged.p2ps --replay-jobs 4 \
      --json longhaul_damaged.json | grep "damage contained"

    echo "-- MANIFEST damage stays a hard error"
    python3 - <<'PY'
import pathlib
manifest = pathlib.Path("damaged.p2ps/MANIFEST")
data = bytearray(manifest.read_bytes())
data[len(data) // 2] ^= 0x01
manifest.write_bytes(data)
PY
    if ../examples/kad_study --replay-dir damaged.p2ps \
        --json /dev/null > /dev/null 2>&1; then
      echo "replay accepted a corrupted MANIFEST" >&2
      exit 1
    fi
    rm -rf damaged.p2ps
    echo "longhaul tier passed"
  )
}

for tier in "${TIERS[@]}"; do
  case "${tier}" in
    release)  tier_release ;;
    sanitize) tier_sanitize ;;
    replay)   tier_replay ;;
    tsan)     tier_tsan ;;
    chaos)    tier_chaos ;;
    bench)    tier_bench ;;
    longhaul) tier_longhaul ;;
  esac
done

echo "== all selected tiers passed =="
