#!/usr/bin/env bash
# Test tiers for CI and pre-merge runs:
#
#   tier 1  Release build, full ctest suite (includes the obs, cli, fuzz,
#           and paper labels at their default scale).
#   tier 2  Sanitizer build (address,undefined), wire-format + trace-store
#           fuzz suite with the mutation loops scaled up via P2P_FUZZ_ROUNDS.
#   tier 3  Replay determinism: record a quick study of each network as a
#           trace file, replay it offline, and require the replayed JSON
#           report to be byte-identical to the live one.
#
# Usage: ci/run_tiers.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: Release build + full suite =="
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "${JOBS}"
(
  cd build-ci-release
  ctest -L obs --output-on-failure
  ctest -L paper --output-on-failure
  ctest -j "${JOBS}" --output-on-failure
)

echo "== tier 2: sanitizer build + scaled fuzz suite =="
cmake -B build-ci-sanitize -S . -DCMAKE_BUILD_TYPE=Debug \
  -DP2P_SANITIZE=address,undefined
cmake --build build-ci-sanitize -j "${JOBS}"
(
  cd build-ci-sanitize
  P2P_FUZZ_ROUNDS=2000 ctest -L fuzz -j "${JOBS}" --output-on-failure
)

echo "== tier 3: record/replay determinism =="
(
  cd build-ci-release
  rm -rf ci-replay && mkdir ci-replay && cd ci-replay
  for network in limewire openft; do
    ../examples/trace record --network "${network}" --quick --seed 7 \
      "${network}.p2pt" > /dev/null
    ../examples/trace inspect "${network}.p2pt"
    ../examples/trace replay "${network}.p2pt" \
      --json "${network}_replayed.json" > /dev/null
  done
  ../examples/limewire_study --quick --seed 7 --json limewire_live.json \
    > /dev/null
  ../examples/openft_study --quick --seed 7 --json openft_live.json > /dev/null
  cmp limewire_live.json limewire_replayed.json
  cmp openft_live.json openft_replayed.json
  echo "replayed reports are byte-identical to live runs"
)

echo "== all tiers passed =="
