// Shared observability flag set for the example CLIs. Every example accepts
// the same eight flags (and rejects malformed ones with exit 2 via its own
// usage()), so the walkthroughs in README work against any binary:
//
//   --metrics <path>            metrics snapshot JSON (enables per-event
//                               wall timing)
//   --trace <path>              structured event trace JSONL
//   --trace-components <list>   comma list or "all" (default)
//   --timeseries <path>         windowed counter/gauge series; .csv extension
//                               selects CSV, anything else JSONL
//   --window <dur>              sim-time sampling window, e.g. 30s, 15m, 2h,
//                               1d, 500ms, or a plain millisecond count
//                               (default 1h when --timeseries is given)
//   --profile <path>            span profile as Chrome trace-event JSON
//                               (load in chrome://tracing or Perfetto)
//   --progress                  live human status lines on stderr
//   --progress-json <path>      live status as JSONL
//
// Progress and profile are wall-clock observability and never touch the
// deterministic outputs; --timeseries/--window change only what extra data
// a run records (and its config_hash), never its behavior.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "util/sim_time.h"

namespace p2p::examples {

/// Parse a sim-duration spec: integer + optional unit suffix (ms, s, m, h,
/// d); a bare integer means milliseconds. Returns false on anything else.
inline bool parse_sim_duration(const char* text, util::SimDuration& out) {
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || value < 0) return false;
  if (std::strcmp(end, "ms") == 0 || *end == '\0') {
    out = util::SimDuration::millis(value);
  } else if (std::strcmp(end, "s") == 0) {
    out = util::SimDuration::seconds(value);
  } else if (std::strcmp(end, "m") == 0) {
    out = util::SimDuration::minutes(value);
  } else if (std::strcmp(end, "h") == 0) {
    out = util::SimDuration::hours(value);
  } else if (std::strcmp(end, "d") == 0) {
    out = util::SimDuration::days(value);
  } else {
    return false;
  }
  return true;
}

struct ObsCli {
  std::string metrics_path;
  std::string trace_path;
  std::string trace_spec = "all";
  std::string timeseries_path;
  std::string profile_path;
  std::string progress_jsonl;
  util::SimDuration window{};
  bool progress = false;

  /// Appended to every example's usage line.
  static constexpr const char* kUsage =
      " [--metrics <path>] [--trace <path>] [--trace-components <list|all>]"
      " [--timeseries <path>] [--window <dur>] [--profile <path>]"
      " [--progress] [--progress-json <path>]";

  /// Consume argv[i] (and its value) when it is an obs flag. Returns true
  /// when consumed; a consumed-but-malformed flag (missing value, bad
  /// duration) also sets *err so the caller exits via its usage().
  bool parse(int argc, char** argv, int& i, bool* err) {
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) {
        *err = true;
        return false;
      }
      into = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--metrics") == 0) return value(metrics_path);
    if (std::strcmp(argv[i], "--trace") == 0) return value(trace_path);
    if (std::strcmp(argv[i], "--trace-components") == 0) return value(trace_spec);
    if (std::strcmp(argv[i], "--timeseries") == 0) return value(timeseries_path);
    if (std::strcmp(argv[i], "--profile") == 0) return value(profile_path);
    if (std::strcmp(argv[i], "--progress-json") == 0) return value(progress_jsonl);
    if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
      return true;
    }
    if (std::strcmp(argv[i], "--window") == 0) {
      std::string spec;
      if (!value(spec)) return true;
      if (!parse_sim_duration(spec.c_str(), window) || window.count_ms() <= 0) {
        std::cerr << "bad --window duration: " << spec << "\n";
        *err = true;
      }
      return true;
    }
    return false;
  }

  /// The recorder config this command line asks for (disabled unless
  /// --timeseries was given; --window alone changes nothing).
  [[nodiscard]] obs::TimeSeriesConfig timeseries_config() const {
    obs::TimeSeriesConfig cfg;
    if (!timeseries_path.empty()) {
      cfg.window =
          window.count_ms() > 0 ? window : util::SimDuration::hours(1);
    }
    return cfg;
  }

  /// Turn on the run-time layers this command line asks for. Call before
  /// the run. Returns false (with a message on stderr) on a bad
  /// --trace-components spec.
  [[nodiscard]] bool activate() const {
    if (!metrics_path.empty()) {
      // Per-event wall timing is opt-in (two steady_clock reads per event);
      // a metrics snapshot is the one consumer of sim.event_wall_ns.
      sim::EventQueue::set_default_wall_timing(true);
    }
    if (!trace_path.empty() &&
        !obs::TraceBuffer::global().enable_from_spec(trace_spec)) {
      std::cerr << "unknown trace component in: " << trace_spec << "\n";
      return false;
    }
    if (!profile_path.empty()) obs::SpanProfiler::global().enable();
    return true;
  }

  /// The progress reporter this command line asks for (nullptr when none).
  /// The caller keeps it alive and installs a ProgressReporter::Scope (or
  /// passes it to SweepOptions).
  [[nodiscard]] std::unique_ptr<obs::ProgressReporter> make_progress() const {
    if (!progress && progress_jsonl.empty()) return nullptr;
    obs::ProgressConfig cfg;
    cfg.human = progress;
    cfg.jsonl_path = progress_jsonl;
    return std::make_unique<obs::ProgressReporter>(cfg);
  }

  /// Write the standalone timeseries export (JSONL, or CSV for a .csv
  /// path). Call with the run's series; no-op without --timeseries.
  [[nodiscard]] bool write_timeseries(const obs::TimeSeries& series) const {
    if (timeseries_path.empty()) return true;
    std::ofstream out(timeseries_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << timeseries_path << "\n";
      return false;
    }
    bool csv = timeseries_path.size() > 4 &&
               timeseries_path.compare(timeseries_path.size() - 4, 4, ".csv") == 0;
    if (csv) {
      obs::write_timeseries_csv(out, series);
    } else {
      obs::write_timeseries_jsonl(out, series);
    }
    std::cout << "wrote " << series.windows.size() << " timeseries windows to "
              << timeseries_path << "\n";
    return true;
  }

  /// Write the Chrome trace-event profile. Call after the run (spans still
  /// open are not exported); no-op without --profile.
  [[nodiscard]] bool write_profile() const {
    if (profile_path.empty()) return true;
    std::ofstream out(profile_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << profile_path << "\n";
      return false;
    }
    const auto& profiler = obs::SpanProfiler::global();
    profiler.write_chrome_trace(out);
    std::cout << "wrote " << profiler.total_spans() << " profile spans ("
              << profiler.total_dropped() << " dropped) to " << profile_path
              << "\n";
    return true;
  }

  /// Write the structured-event trace JSONL. No-op without --trace.
  [[nodiscard]] bool write_trace() const {
    if (trace_path.empty()) return true;
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return false;
    }
    const auto& buf = obs::TraceBuffer::global();
    buf.write_jsonl(out);
    std::cout << "wrote " << buf.size() << " trace events (" << buf.dropped()
              << " dropped) to " << trace_path << "\n";
    return true;
  }
};

}  // namespace p2p::examples
