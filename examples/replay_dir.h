// Shared --replay-dir driver for the study CLIs (limewire/openft/kad):
// out-of-core map-reduce replay of a segment directory via
// core::replay_segment_dir, printing the study's standard sections and
// writing the report JSON / windowed CSV. The JSON is byte-identical to the
// recording run's --json at any --replay-jobs count.
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/windowed.h"
#include "core/replay.h"
#include "core/report.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace p2p::examples {

inline int run_replay_dir(const std::string& dir, std::size_t jobs,
                          const std::string& expect_network,
                          const std::string& json_path,
                          const std::string& windows_path) {
  core::ReplayOptions options;
  options.jobs = jobs;
  auto start = std::chrono::steady_clock::now();
  auto result = core::replay_segment_dir(dir, options);
  if (!result.ok) {
    std::cerr << dir << ": " << result.error << "\n";
    return 1;
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double rate =
      secs > 0.0 ? static_cast<double>(result.stats.records_read) / secs : 0.0;
  obs::MetricsRegistry::global()
      .gauge("trace.replay_records_per_sec")
      .set(static_cast<std::int64_t>(rate));
  const core::Report& report = result.report;
  if (!expect_network.empty() && report.network != expect_network) {
    std::cerr << dir << ": capture network is \"" << report.network
              << "\", expected \"" << expect_network << "\"\n";
    return 1;
  }
  std::cout << "Replaying " << report.network << " study from " << dir << ": "
            << util::format_count(report.records) << " records across "
            << util::format_count(result.stats.segments_read) << " of "
            << util::format_count(result.segments_total) << " segments ("
            << jobs << (jobs == 1 ? " job)" : " jobs)") << "\n";
  if (result.stats.segments_corrupt > 0 || result.stats.blocks_corrupt > 0 ||
      result.stats.truncated_tail) {
    std::cout << "  damage contained: "
              << util::format_count(result.stats.segments_corrupt)
              << " segments dropped, "
              << util::format_count(result.stats.blocks_corrupt)
              << " corrupt blocks\n";
  }
  std::cout << "\n";

  core::print_prevalence(std::cout, report.network, report.prevalence);
  core::print_strain_ranking(std::cout, report.network, report.strain_ranking);
  core::print_sources(std::cout, report.network, report.sources,
                      report.strain_sources);
  core::print_filter_comparison(std::cout, report.network, report.filter_evals);
  core::print_honeypot_coverage(std::cout, report.network, report.honeypots);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    core::write_report_json(out, report);
    std::cout << "wrote report JSON to " << json_path << "\n";
  }
  if (!windows_path.empty()) {
    std::ofstream out(windows_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << windows_path << "\n";
      return 1;
    }
    analysis::write_window_csv(out, result.windows);
    std::cout << "wrote " << util::format_count(result.windows.size())
              << " windows to " << windows_path << "\n";
  }
  return 0;
}

}  // namespace p2p::examples
