// Full KAD measurement study: the distributed-hash-table counterpart to
// limewire_study / openft_study. Infected peers poison the keyword index
// (publishing lure-named aliases under popular keywords), and a set of
// passive honeypot vantages advertises bait content and logs every STORE
// and keyword query that reaches it — the E9/E10 coverage-vs-vantage-count
// analysis is computed from those observation logs.
//
// --record captures the crawl (active client responses interleaved with the
// honeypot observations) as a binary trace; --replay rebuilds the same
// report — including the honeypot coverage block — from the trace without
// simulating. The --json report is byte-identical between a recorded live
// run and its replay.
//
// --record-dir captures the same stream to a time-sharded segment directory
// (one .p2pt segment per simulated day plus a MANIFEST), and --replay-dir
// replays it out of core: segments fan out across --replay-jobs threads and
// the partial reports merge deterministically, so the JSON is byte-identical
// at any jobs count. --longhaul selects the ten-week capture preset.
//
//   ./kad_study [--quick|--longhaul] [--csv <path>] [--seed <n>]
//               [--honeypots <n>] [--json <path>]
//               [--record <trace>|--replay <trace>]
//               [--record-dir <dir>|--replay-dir <dir>] [--replay-jobs <n>]
//               [--windows <csv>] [--faults <preset|spec>] [--fault-seed <n>]
//               [obs flags — see examples/obs_cli.h]
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/kad_study.h"
#include "core/report.h"
#include "core/study.h"
#include "fault/fault.h"
#include "obs_cli.h"
#include "replay_dir.h"
#include "trace/segment.h"
#include "trace/writer.h"
#include "util/strings.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--quick|--longhaul] [--csv <path>] [--seed <n>] [--honeypots <n>]"
               " [--json <path>] [--record <trace>|--replay <trace>]"
               " [--record-dir <dir>|--replay-dir <dir>] [--replay-jobs <n>]"
               " [--windows <csv>]"
               " [--faults <none|mild|moderate|severe|k=v,...>]"
               " [--fault-seed <n>] [--list-presets]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  auto cfg = core::kad_standard();
  std::string preset = "standard";
  std::string csv_path, json_path, record_path, replay_path;
  std::string record_dir, replay_dir, windows_path;
  std::size_t replay_jobs = 1;
  std::string faults_spec;
  std::uint64_t fault_seed = 0;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg = core::kad_quick();
      preset = "quick";
    } else if (std::strcmp(argv[i], "--longhaul") == 0) {
      cfg = core::kad_longhaul();
      preset = "longhaul";
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--honeypots") == 0 && i + 1 < argc) {
      char* end = nullptr;
      cfg.honeypots = std::strtoull(argv[++i], &end, 10);
      // Reject junk and wrapped negatives ("-3" parses as 2^64-3).
      if (end == argv[i] || *end != '\0' || cfg.honeypots == 0 ||
          cfg.honeypots > 256) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      record_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--record-dir") == 0 && i + 1 < argc) {
      record_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-dir") == 0 && i + 1 < argc) {
      replay_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      replay_jobs = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || replay_jobs == 0 ||
          replay_jobs > 256) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc) {
      windows_path = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  cfg.timeseries = obs_cli.timeseries_config();
  int capture_modes = (record_path.empty() ? 0 : 1) +
                      (replay_path.empty() ? 0 : 1) +
                      (record_dir.empty() ? 0 : 1) + (replay_dir.empty() ? 0 : 1);
  if (capture_modes > 1) {
    std::cerr << "--record, --replay, --record-dir and --replay-dir are "
                 "mutually exclusive\n";
    return 2;
  }
  if (!windows_path.empty() && replay_dir.empty()) {
    std::cerr << "--windows requires --replay-dir\n";
    return 2;
  }
  if (!replay_dir.empty() && !csv_path.empty()) {
    std::cerr << "--csv is not supported with --replay-dir (the capture is "
                 "never materialized); use trace cat on the directory\n";
    return 2;
  }
  if (!faults_spec.empty()) {
    auto parsed = fault::parse_spec(faults_spec);
    if (!parsed) {
      std::cerr << "bad --faults spec: " << faults_spec << "\n";
      return usage(argv[0]);
    }
    core::apply_faults(cfg, *parsed, fault_seed);
    if (cfg.faults.enabled()) {
      std::cout << "Fault injection: " << fault::describe(cfg.faults) << "\n";
    }
  }

  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();

  if (!replay_dir.empty()) {
    return examples::run_replay_dir(replay_dir, replay_jobs, "kad", json_path,
                                    windows_path);
  }

  core::StudyResult result;
  if (!replay_path.empty()) {
    if (!core::load_study_trace(replay_path, result)) {
      std::cerr << "cannot replay " << replay_path
                << ": missing, corrupt, or incomplete trace\n";
      return 1;
    }
    std::cout << "Replaying KAD study from " << replay_path << ": "
              << util::format_count(result.records.size()) << " records\n";
  } else {
    std::cout << "Running KAD study: " << cfg.population.users << " users, "
              << cfg.population.servers << " index servers, " << cfg.honeypots
              << " honeypots, " << cfg.crawl.duration.count_ms() / 3'600'000
              << " hours, seed " << cfg.seed << "\n";
    std::optional<obs::ProgressReporter::Scope> progress_scope;
    if (progress != nullptr) progress_scope.emplace(*progress);
    const std::string& capture_path =
        !record_dir.empty() ? record_dir : record_path;
    std::unique_ptr<trace::StorageWriter> writer;
    if (!capture_path.empty()) {
      trace::TraceHeader header;
      header.network = "kad";
      header.config_hash = core::config_hash(cfg);
      header.seed = cfg.seed;
      header.crawl_duration_ms = cfg.crawl.duration.count_ms();
      header.meta = {{"tool", "kad_study"}, {"preset", preset}};
      if (!record_dir.empty()) {
        writer = std::make_unique<trace::SegmentWriter>(record_dir, header);
      } else {
        writer = std::make_unique<trace::TraceWriter>(record_path, header);
      }
      if (!writer->ok()) {
        std::cerr << "cannot write " << capture_path << "\n";
        return 1;
      }
    }
    result = core::run_kad_study(cfg, writer.get());
    if (writer != nullptr) {
      writer->write_summary(core::study_summary(result));
      writer->close();
      if (!writer->ok()) {
        std::cerr << "failed writing trace " << capture_path << "\n";
        return 1;
      }
      std::cout << "  recorded " << util::format_count(writer->records_written())
                << " records (" << util::format_count(writer->blocks_written())
                << " blocks, " << util::format_count(writer->bytes_written())
                << " bytes";
      if (writer->segments_written() > 1 || !record_dir.empty()) {
        std::cout << ", " << util::format_count(writer->segments_written())
                  << " segments";
      }
      std::cout << ") to " << capture_path << "\n";
    }
  }
  std::cout << "  " << util::format_count(result.events_executed) << " events, "
            << util::format_count(result.messages_delivered) << " messages, "
            << util::format_count(result.records.size()) << " records\n\n";

  auto report = core::build_report(result.records, "kad");
  core::attach_fault_report(report, result.faults_enabled, result.fault_counters,
                            result.crawl_stats);
  core::attach_kad_coverage(report, result.records, result.metrics);
  report.timeseries = result.timeseries;
  core::print_prevalence(std::cout, "kad", report.prevalence);
  core::print_strain_ranking(std::cout, "kad", report.strain_ranking);
  core::print_sources(std::cout, "kad", report.sources, report.strain_sources);
  core::print_honeypot_coverage(std::cout, "kad", report.honeypots);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    core::write_report_json(out, report);
    std::cout << "wrote report JSON to " << json_path << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    analysis::write_csv(out, result.records);
    std::cout << "wrote " << util::format_count(result.records.size())
              << " records to " << csv_path << "\n";
  }
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, result.metrics);
    core::print_metrics(std::cout, "kad", result.metrics);
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  if (!obs_cli.write_timeseries(result.timeseries)) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  return 0;
}
