// Quickstart: run a scaled-down version of the paper's study on both
// networks and print the headline results (malware prevalence, strain
// concentration, sources, and the filtering comparison).
//
//   ./quickstart [--standard] [--list-presets]
//
// The default "quick" preset simulates ~8 hours of crawling in a couple of
// seconds; --standard runs the full 30-day configuration the benches use.
#include <cstring>
#include <iostream>

#include "analysis/stats.h"
#include "core/report.h"
#include "core/study.h"
#include "filter/limewire_builtin.h"
#include "filter/size_filter.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bool standard = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--standard") == 0) {
      standard = true;
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      std::cerr << "usage: " << argv[0] << " [--standard] [--list-presets]\n";
      return 2;
    }
  }

  auto lw_cfg = standard ? core::limewire_standard() : core::limewire_quick();
  auto ft_cfg = standard ? core::openft_standard() : core::openft_quick();

  std::cout << "Running LimeWire study ("
            << lw_cfg.crawl.duration.count_ms() / 3'600'000 << "h simulated)...\n";
  core::StudyResult lw = core::run_limewire_study(lw_cfg);
  std::cout << "  events: " << lw.events_executed
            << ", messages: " << lw.messages_delivered
            << ", responses: " << lw.records.size() << "\n\n";

  std::cout << "Running OpenFT study...\n";
  core::StudyResult ft = core::run_openft_study(ft_cfg);
  std::cout << "  events: " << ft.events_executed
            << ", messages: " << ft.messages_delivered
            << ", responses: " << ft.records.size() << "\n\n";

  for (const auto* result : {&lw, &ft}) {
    const std::string network = result == &lw ? "limewire" : "openft";
    auto summary = analysis::prevalence(result->records);
    core::print_prevalence(std::cout, network, summary);
    auto ranking = analysis::strain_ranking(result->records);
    core::print_strain_ranking(std::cout, network, ranking);
    auto sources = analysis::sources(result->records);
    auto concentration = analysis::strain_source_concentration(result->records);
    core::print_sources(std::cout, network, sources, concentration);
  }

  // Filtering comparison on the LimeWire crawl: train on the first quarter
  // of the crawl, evaluate on the rest.
  auto split = filter::split_at_fraction(lw.records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training);
  std::vector<std::string> vendor_known = {"Troj.Dropper.D", "W32.Paplin.E",
                                           "Troj.Loader.F"};
  auto builtin = filter::make_builtin_filter(split.training, vendor_known);
  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(builtin, split.evaluation),
      filter::evaluate(size_filter, split.evaluation),
  };
  core::print_filter_comparison(std::cout, "limewire", evals);
  return 0;
}
