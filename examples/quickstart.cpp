// Quickstart: run a scaled-down version of the paper's study on both
// networks and print the headline results (malware prevalence, strain
// concentration, sources, and the filtering comparison).
//
//   ./quickstart [--standard] [--list-presets] [obs flags]
//
// The default "quick" preset simulates ~8 hours of crawling in a couple of
// seconds; --standard runs the full 30-day configuration the benches use.
#include <cstring>
#include <iostream>
#include <optional>

#include "analysis/stats.h"
#include "core/report.h"
#include "core/study.h"
#include "filter/limewire_builtin.h"
#include "filter/size_filter.h"
#include "obs_cli.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--standard] [--list-presets]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  bool standard = false;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--standard") == 0) {
      standard = true;
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();
  std::optional<obs::ProgressReporter::Scope> progress_scope;
  if (progress != nullptr) progress_scope.emplace(*progress);

  auto lw_cfg = standard ? core::limewire_standard() : core::limewire_quick();
  auto ft_cfg = standard ? core::openft_standard() : core::openft_quick();
  lw_cfg.timeseries = obs_cli.timeseries_config();
  ft_cfg.timeseries = obs_cli.timeseries_config();

  std::cout << "Running LimeWire study ("
            << lw_cfg.crawl.duration.count_ms() / 3'600'000 << "h simulated)...\n";
  core::StudyResult lw = core::run_limewire_study(lw_cfg);
  std::cout << "  events: " << lw.events_executed
            << ", messages: " << lw.messages_delivered
            << ", responses: " << lw.records.size() << "\n\n";

  std::cout << "Running OpenFT study...\n";
  core::StudyResult ft = core::run_openft_study(ft_cfg);
  std::cout << "  events: " << ft.events_executed
            << ", messages: " << ft.messages_delivered
            << ", responses: " << ft.records.size() << "\n\n";

  for (const auto* result : {&lw, &ft}) {
    const std::string network = result == &lw ? "limewire" : "openft";
    auto summary = analysis::prevalence(result->records);
    core::print_prevalence(std::cout, network, summary);
    auto ranking = analysis::strain_ranking(result->records);
    core::print_strain_ranking(std::cout, network, ranking);
    auto sources = analysis::sources(result->records);
    auto concentration = analysis::strain_source_concentration(result->records);
    core::print_sources(std::cout, network, sources, concentration);
  }

  // Filtering comparison on the LimeWire crawl: train on the first quarter
  // of the crawl, evaluate on the rest.
  auto split = filter::split_at_fraction(lw.records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training);
  std::vector<std::string> vendor_known = {"Troj.Dropper.D", "W32.Paplin.E",
                                           "Troj.Loader.F"};
  auto builtin = filter::make_builtin_filter(split.training, vendor_known);
  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(builtin, split.evaluation),
      filter::evaluate(size_filter, split.evaluation),
  };
  core::print_filter_comparison(std::cout, "limewire", evals);

  // The standalone timeseries export carries the LimeWire run's series (the
  // OpenFT run reuses the registry after its own reset; each study's series
  // rides in its own StudyResult).
  if (!obs_cli.write_timeseries(lw.timeseries)) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, ft.metrics);
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  return 0;
}
