// Deploying the paper's size-based filter as a client-side defense.
//
// This example plays the role of a LimeWire user: it learns the filter from
// the first week of a crawl (the "community blocklist"), then replays the
// remaining weeks as if the user were downloading every exe/zip response —
// counting how many infections the filter would have prevented, how many
// slipped through, and how many clean downloads it would have cost.
//
//   ./filter_defense [--quick] [--top-strains N] [--sizes-per-strain M]
//                    [obs flags]
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>

#include "core/study.h"
#include "filter/evaluation.h"
#include "filter/size_filter.h"
#include "obs/export.h"
#include "obs_cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--quick] [--top-strains N] [--sizes-per-strain M]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  auto cfg = core::limewire_standard();
  filter::SizeFilterConfig filter_cfg;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg = core::limewire_quick();
    } else if (std::strcmp(argv[i], "--top-strains") == 0 && i + 1 < argc) {
      filter_cfg.top_strains = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sizes-per-strain") == 0 && i + 1 < argc) {
      filter_cfg.sizes_per_strain = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  cfg.timeseries = obs_cli.timeseries_config();
  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();
  std::optional<obs::ProgressReporter::Scope> progress_scope;
  if (progress != nullptr) progress_scope.emplace(*progress);

  std::cout << "Crawling to collect training + exposure data...\n";
  auto result = core::run_limewire_study(cfg);
  auto split = filter::split_at_fraction(result.records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training, filter_cfg);

  std::cout << "Learned " << size_filter.blocked_sizes().size()
            << " blocked sizes from the first quarter of the crawl:\n ";
  for (auto s : size_filter.blocked_sizes()) std::cout << " " << s;
  std::cout << "\n\n";

  // Replay the user's exposure.
  std::uint64_t infections_prevented = 0;
  std::uint64_t infections_suffered = 0;
  std::uint64_t clean_lost = 0;
  std::uint64_t clean_kept = 0;
  for (const auto& rec : split.evaluation) {
    if (!rec.is_study_type() || !rec.downloaded) continue;
    bool blocked = size_filter.blocks(rec);
    if (rec.infected) {
      (blocked ? infections_prevented : infections_suffered)++;
    } else {
      (blocked ? clean_lost : clean_kept)++;
    }
  }

  util::Table t({"outcome", "downloads"});
  t.add_row({"infections prevented", util::format_count(infections_prevented)});
  t.add_row({"infections suffered", util::format_count(infections_suffered)});
  t.add_row({"clean downloads kept", util::format_count(clean_kept)});
  t.add_row({"clean downloads lost (false positives)", util::format_count(clean_lost)});
  std::cout << t.render() << "\n";

  double detection =
      infections_prevented + infections_suffered == 0
          ? 0.0
          : static_cast<double>(infections_prevented) /
                static_cast<double>(infections_prevented + infections_suffered);
  std::cout << "Detection " << util::format_pct(detection) << " at "
            << util::format_pct(
                   clean_lost + clean_kept == 0
                       ? 0.0
                       : static_cast<double>(clean_lost) /
                             static_cast<double>(clean_lost + clean_kept),
                   3)
            << " false positives — the paper's \"over 99% vs very low\" result.\n";

  if (!obs_cli.write_timeseries(result.timeseries)) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, result.metrics);
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  return 0;
}
