// Offline analysis: reload a response log exported with
// `limewire_study --csv` / `openft_study --csv` and regenerate every
// analysis table without re-crawling — the workflow of an analyst working
// from the study's raw data.
//
//   ./analyze_log <log.csv>
#include <fstream>
#include <iostream>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "filter/evaluation.h"
#include "filter/size_filter.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace p2p;
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <log.csv>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  auto records = analysis::read_csv(in);
  if (!records) {
    std::cerr << argv[1] << ": not a response log written by this framework\n";
    return 1;
  }
  std::string network = records->empty() ? "unknown" : records->front().network;
  std::cout << "loaded " << util::format_count(records->size()) << " " << network
            << " responses from " << argv[1] << "\n\n";

  core::print_prevalence(std::cout, network, analysis::prevalence(*records));
  core::print_strain_ranking(std::cout, network, analysis::strain_ranking(*records));
  core::print_sources(std::cout, network, analysis::sources(*records),
                      analysis::strain_source_concentration(*records));
  core::print_category_breakdown(std::cout, network,
                                 analysis::category_breakdown(*records));
  core::print_size_analysis(std::cout, network, analysis::size_distribution(*records),
                            analysis::sizes_per_strain(*records));
  core::print_daily_series(std::cout, network, analysis::daily_series(*records));

  auto split = filter::split_at_fraction(*records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training);
  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(size_filter, split.evaluation)};
  core::print_filter_comparison(std::cout, network, evals);
  return 0;
}
