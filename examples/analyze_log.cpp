// Offline analysis: reload a response log exported with
// `limewire_study --csv` / `openft_study --csv` and regenerate every
// analysis table without re-crawling — the workflow of an analyst working
// from the study's raw data.
//
//   ./analyze_log <log.csv> [obs flags]
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "filter/evaluation.h"
#include "filter/size_filter.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs_cli.h"
#include "util/strings.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <log.csv>"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  std::string path;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (!obs_cli.activate()) return 2;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  auto records = analysis::read_csv(in);
  if (!records) {
    std::cerr << path << ": not a response log written by this framework\n";
    return 1;
  }
  std::string network = records->empty() ? "unknown" : records->front().network;
  std::cout << "loaded " << util::format_count(records->size()) << " " << network
            << " responses from " << path << "\n\n";

  core::print_prevalence(std::cout, network, analysis::prevalence(*records));
  core::print_strain_ranking(std::cout, network, analysis::strain_ranking(*records));
  core::print_sources(std::cout, network, analysis::sources(*records),
                      analysis::strain_source_concentration(*records));
  core::print_category_breakdown(std::cout, network,
                                 analysis::category_breakdown(*records));
  core::print_size_analysis(std::cout, network, analysis::size_distribution(*records),
                            analysis::sizes_per_strain(*records));
  core::print_daily_series(std::cout, network, analysis::daily_series(*records));

  auto split = filter::split_at_fraction(*records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training);
  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(size_filter, split.evaluation)};
  core::print_filter_comparison(std::cout, network, evals);

  // Offline analysis has no sim clock, so --timeseries yields an empty
  // series; the flag set stays uniform across every example binary.
  if (!obs_cli.write_timeseries(obs::TimeSeries{})) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, obs::MetricsRegistry::global().snapshot());
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  return 0;
}
