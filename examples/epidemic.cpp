// Passive-worm epidemic with and without the paper's defense deployed.
//
// The study's actionable conclusion is that size-based filtering blocks
// >99% of malicious responses. This example asks the follow-up question
// the worm-propagation literature citing the paper cares about: if every
// client shipped that filter, would the worm still spread? It runs the
// same 14-day epidemic twice — unprotected and with the filter deployed —
// and prints the infection curves side by side.
//
//   ./epidemic [--days N] [--users N] [--execute-prob P] [obs flags]
#include <cstring>
#include <fstream>
#include <iostream>

#include "agents/epidemic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs_cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--days N] [--users N] [--execute-prob P]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  agents::EpidemicSimulation::Config base;
  base.corpus.num_titles = 400;
  base.users = 100;
  base.duration = sim::SimDuration::days(7);
  base.sample_interval = sim::SimDuration::hours(24);
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      base.duration = sim::SimDuration::days(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      base.users = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--execute-prob") == 0 && i + 1 < argc) {
      base.behavior.execute_prob = std::atof(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (!obs_cli.activate()) return 2;

  std::cout << "Simulating a passive-worm epidemic: " << base.users << " users, "
            << base.initial_infected << " initial worm hosts, "
            << base.duration.count_ms() / 86'400'000 << " days, execute prob "
            << base.behavior.execute_prob << "\n\n";

  auto unprotected = base;
  agents::EpidemicSimulation sim_off(unprotected);
  sim_off.run();

  auto protected_cfg = base;
  protected_cfg.deploy_size_filter = true;
  agents::EpidemicSimulation sim_on(protected_cfg);
  sim_on.run();

  util::Table t({"time", "infected (no filter)", "infected (size filter)"});
  const auto& off = sim_off.infection_curve();
  const auto& on = sim_on.infection_curve();
  for (std::size_t i = 0; i < off.size() && i < on.size(); ++i) {
    t.add_row({off[i].at.str().substr(0, 3), std::to_string(off[i].infected),
               std::to_string(on[i].infected)});
  }
  std::cout << t.render() << "\n";

  std::cout << "final prevalence without filter: "
            << util::format_pct(static_cast<double>(sim_off.infected_count()) /
                                static_cast<double>(sim_off.user_count()))
            << "\n";
  std::cout << "final prevalence with filter:    "
            << util::format_pct(static_cast<double>(sim_on.infected_count()) /
                                static_cast<double>(sim_on.user_count()))
            << " (" << util::format_count(sim_on.total_downloads_blocked())
            << " worm downloads blocked)\n";

  // The epidemic has no study loop, so --timeseries yields an empty series;
  // the flag set stays uniform across every example binary.
  if (!obs_cli.write_timeseries(obs::TimeSeries{})) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, obs::MetricsRegistry::global().snapshot());
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  return 0;
}
