// Passive instrumentation of the Gnutella overlay: join an instrumented
// ultrapeer to a network where honest leaves issue their own (organic)
// queries, and characterize the query workload passing through — the
// observational half of "we instrument two different open source P2P
// networks".
//
//   ./query_observatory [--hours N] [--leaves N]
#include <cstring>
#include <iostream>

#include "agents/churn.h"
#include "agents/population.h"
#include "crawler/observatory.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;
  int hours = 12;
  std::size_t leaves = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--leaves") == 0 && i + 1 < argc) {
      leaves = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: " << argv[0] << " [--hours N] [--leaves N]\n";
      return 2;
    }
  }

  sim::Network net(4711);
  agents::GnutellaPopulationConfig pop_cfg;
  pop_cfg.seed = 4711;
  pop_cfg.ultrapeers = 12;
  pop_cfg.leaves = leaves;
  pop_cfg.corpus.num_titles = 800;
  // Leaves behave like users: one query every ~20 minutes while online.
  pop_cfg.organic_query_interval = sim::SimDuration::minutes(20);
  auto pop = agents::build_gnutella_population(net, pop_cfg);

  crawler::QueryObservatory observatory(net, pop.host_cache, 99);

  agents::ChurnConfig churn_cfg;
  churn_cfg.seed = 5;
  agents::ChurnDriver churn(net, std::move(pop.leaf_specs), churn_cfg);
  churn.start();

  std::cout << "Observing " << leaves << " leaves for " << hours
            << " simulated hours...\n\n";
  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::hours(hours));

  std::cout << "queries observed: " << util::format_count(observatory.total_queries())
            << " (" << util::format_count(observatory.distinct_queries())
            << " distinct)\n\n";

  util::Table top({"rank", "query", "count"});
  auto ranked = observatory.top_queries(15);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    top.add_row({std::to_string(i + 1), ranked[i].text,
                 util::format_count(ranked[i].count)});
  }
  std::cout << top.render() << "\n";

  util::Table hops({"hops", "queries"});
  for (const auto& [hop, count] : observatory.hop_histogram()) {
    hops.add_row({std::to_string(hop), util::format_count(count)});
  }
  std::cout << hops.render() << "\n";

  std::cout << "log-log popularity slope: " << observatory.zipf_slope()
            << " (catalog Zipf exponent: " << -pop_cfg.corpus.zipf_exponent
            << "; an observed slope of similar magnitude validates the "
               "crawler's popularity-weighted replay workload)\n";
  return 0;
}
