// Passive instrumentation of the Gnutella overlay: join an instrumented
// ultrapeer to a network where honest leaves issue their own (organic)
// queries, and characterize the query workload passing through — the
// observational half of "we instrument two different open source P2P
// networks".
//
//   ./query_observatory [--hours N] [--leaves N] [obs flags]
#include <cstring>
#include <fstream>
#include <iostream>

#include "agents/churn.h"
#include "agents/population.h"
#include "crawler/observatory.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs_cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--hours N] [--leaves N]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  int hours = 12;
  std::size_t leaves = 200;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--leaves") == 0 && i + 1 < argc) {
      leaves = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }
  if (!obs_cli.activate()) return 2;

  sim::Network net(4711);
  agents::GnutellaPopulationConfig pop_cfg;
  pop_cfg.seed = 4711;
  pop_cfg.ultrapeers = 12;
  pop_cfg.leaves = leaves;
  pop_cfg.corpus.num_titles = 800;
  // Leaves behave like users: one query every ~20 minutes while online.
  pop_cfg.organic_query_interval = sim::SimDuration::minutes(20);
  auto pop = agents::build_gnutella_population(net, pop_cfg);

  crawler::QueryObservatory observatory(net, pop.host_cache, 99);

  agents::ChurnConfig churn_cfg;
  churn_cfg.seed = 5;
  agents::ChurnDriver churn(net, std::move(pop.leaf_specs), churn_cfg);
  churn.start();

  std::cout << "Observing " << leaves << " leaves for " << hours
            << " simulated hours...\n\n";
  net.events().run_until(sim::SimTime::zero() + sim::SimDuration::hours(hours));

  std::cout << "queries observed: " << util::format_count(observatory.total_queries())
            << " (" << util::format_count(observatory.distinct_queries())
            << " distinct)\n\n";

  util::Table top({"rank", "query", "count"});
  auto ranked = observatory.top_queries(15);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    top.add_row({std::to_string(i + 1), ranked[i].text,
                 util::format_count(ranked[i].count)});
  }
  std::cout << top.render() << "\n";

  util::Table hops({"hops", "queries"});
  for (const auto& [hop, count] : observatory.hop_histogram()) {
    hops.add_row({std::to_string(hop), util::format_count(count)});
  }
  std::cout << hops.render() << "\n";

  std::cout << "log-log popularity slope: " << observatory.zipf_slope()
            << " (catalog Zipf exponent: " << -pop_cfg.corpus.zipf_exponent
            << "; an observed slope of similar magnitude validates the "
               "crawler's popularity-weighted replay workload)\n";

  // The observatory runs the sim in one shot rather than a study loop, so
  // --timeseries yields an empty series; the flag set stays uniform.
  if (!obs_cli.write_timeseries(obs::TimeSeries{})) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, obs::MetricsRegistry::global().snapshot());
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  return 0;
}
