// Full LimeWire measurement study: runs the standard 30-day configuration
// (or --quick), prints every analysis the paper reports for this network,
// and exports the raw response log to CSV for offline analysis.
//
//   ./limewire_study [--quick] [--csv <path>] [--seed <n>]
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "core/study.h"
#include "obs/trace.h"
#include "filter/evaluation.h"
#include "filter/limewire_builtin.h"
#include "filter/size_filter.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace p2p;
  auto cfg = core::limewire_standard();
  std::string csv_path;
  std::string metrics_path, trace_path, trace_spec = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg = core::limewire_quick();
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-components") == 0 && i + 1 < argc) {
      trace_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--csv <path>] [--seed <n>] [--metrics <path>]"
                   " [--trace <path>] [--trace-components <list|all>] [--list-presets]\n";
      return 2;
    }
  }

  std::cout << "Running LimeWire study: " << cfg.population.leaves << " leaves, "
            << cfg.population.ultrapeers << " ultrapeers, "
            << cfg.crawl.duration.count_ms() / 86'400'000 << " days, seed "
            << cfg.seed << "\n";
  if (!trace_path.empty() &&
      !obs::TraceBuffer::global().enable_from_spec(trace_spec)) {
    std::cerr << "unknown trace component in: " << trace_spec << "\n";
    return 2;
  }
  auto result = core::run_limewire_study(cfg);
  std::cout << "  " << util::format_count(result.events_executed) << " events, "
            << util::format_count(result.messages_delivered) << " messages, "
            << util::format_count(result.records.size()) << " responses, "
            << util::format_count(result.churn_joins) << " peer joins\n\n";

  core::print_prevalence(std::cout, "limewire", analysis::prevalence(result.records));
  auto ranking = analysis::strain_ranking(result.records);
  core::print_strain_ranking(std::cout, "limewire", ranking);
  core::print_sources(std::cout, "limewire", analysis::sources(result.records),
                      analysis::strain_source_concentration(result.records));
  core::print_size_analysis(std::cout, "limewire",
                            analysis::size_distribution(result.records),
                            analysis::sizes_per_strain(result.records));
  core::print_daily_series(std::cout, "limewire",
                           analysis::daily_series(result.records));

  auto split = filter::split_at_fraction(result.records, 0.25);
  auto size_filter = filter::SizeFilter::learn(split.training);
  std::vector<std::string> vendor_known = {"Troj.Dropper.D", "W32.Paplin.E",
                                           "Troj.Loader.F", "W32.Bindle.G",
                                           "Troj.Spyball.H", "W32.Crater.I"};
  std::vector<std::string> vendor_partial = {"Troj.Keymaker.C"};
  auto builtin =
      filter::make_builtin_filter(split.training, vendor_known, vendor_partial);
  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(builtin, split.evaluation),
      filter::evaluate(size_filter, split.evaluation)};
  core::print_filter_comparison(std::cout, "limewire", evals);

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    analysis::write_csv(out, result.records);
    std::cout << "wrote " << util::format_count(result.records.size())
              << " records to " << csv_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, result.metrics);
    core::print_metrics(std::cout, "limewire", result.metrics);
    std::cout << "wrote metrics snapshot to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    const auto& buf = obs::TraceBuffer::global();
    buf.write_jsonl(out);
    std::cout << "wrote " << util::format_count(buf.size()) << " trace events ("
              << util::format_count(buf.dropped()) << " dropped) to "
              << trace_path << "\n";
  }
  return 0;
}
