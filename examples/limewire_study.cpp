// Full LimeWire measurement study: runs the standard 30-day configuration
// (or --quick), prints every analysis the paper reports for this network,
// and exports the raw response log to CSV for offline analysis.
//
// --record captures the crawl as a binary trace (src/trace) while it runs;
// --replay rebuilds the same report from a trace without simulating. The
// --json report is byte-identical between a recorded live run and its
// replay (see README "Recording and replaying a study").
//
// --record-dir captures the same stream to a time-sharded segment directory
// (one .p2pt segment per simulated day plus a MANIFEST); --replay-dir
// replays it out of core across --replay-jobs threads with byte-identical
// JSON at any jobs count (see README "Replaying a long capture out of
// core").
//
//   ./limewire_study [--quick] [--csv <path>] [--seed <n>] [--json <path>]
//                    [--record <trace>|--replay <trace>]
//                    [--record-dir <dir>|--replay-dir <dir>]
//                    [--replay-jobs <n>] [--windows <csv>]
//                    [--faults <preset|spec>] [--fault-seed <n>]
//                    [--shards <n>] [--soa]
//                    [obs flags — see examples/obs_cli.h]
//
// --shards N (N >= 1) runs the full-fidelity study on the sharded engine
// with N worker threads; output is byte-identical for every N (see README
// "Scaling a study across cores"). --soa swaps in the reduced SoA capacity
// model (core/shard_study) instead — the population-scaling variant.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "core/study.h"
#include "fault/fault.h"
#include "obs_cli.h"
#include "replay_dir.h"
#include "trace/segment.h"
#include "trace/writer.h"
#include "util/strings.h"

namespace {
int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--quick] [--csv <path>] [--seed <n>] [--json <path>]"
               " [--record <trace>|--replay <trace>]"
               " [--record-dir <dir>|--replay-dir <dir>] [--replay-jobs <n>]"
               " [--windows <csv>]"
               " [--faults <none|mild|moderate|severe|k=v,...>]"
               " [--fault-seed <n>] [--shards <n>] [--soa] [--list-presets]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  auto cfg = core::limewire_standard();
  bool quick = false;
  std::string csv_path, json_path, record_path, replay_path;
  std::string record_dir, replay_dir, windows_path;
  std::size_t replay_jobs = 1;
  std::string faults_spec;
  std::uint64_t fault_seed = 0;
  std::uint64_t shards = 0;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg = core::limewire_quick();
      quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      record_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--record-dir") == 0 && i + 1 < argc) {
      record_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-dir") == 0 && i + 1 < argc) {
      replay_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      replay_jobs = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || replay_jobs == 0 ||
          replay_jobs > 256) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc) {
      windows_path = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      char* end = nullptr;
      shards = std::strtoull(argv[++i], &end, 10);
      // Reject junk and wrapped negatives ("-3" parses as 2^64-3).
      if (end == argv[i] || *end != '\0' || shards == 0 || shards > 4096) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--soa") == 0) {
      cfg.soa_capacity = true;
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  cfg.timeseries = obs_cli.timeseries_config();
  cfg.shards = shards;
  if (cfg.soa_capacity && shards == 0) {
    std::cerr << "--soa requires --shards\n";
    return 2;
  }
  int capture_modes = (record_path.empty() ? 0 : 1) +
                      (replay_path.empty() ? 0 : 1) +
                      (record_dir.empty() ? 0 : 1) + (replay_dir.empty() ? 0 : 1);
  if (capture_modes > 1) {
    std::cerr << "--record, --replay, --record-dir and --replay-dir are "
                 "mutually exclusive\n";
    return 2;
  }
  if (!windows_path.empty() && replay_dir.empty()) {
    std::cerr << "--windows requires --replay-dir\n";
    return 2;
  }
  if (!replay_dir.empty() && !csv_path.empty()) {
    std::cerr << "--csv is not supported with --replay-dir (the capture is "
                 "never materialized); use trace cat on the directory\n";
    return 2;
  }
  if (!faults_spec.empty()) {
    auto parsed = fault::parse_spec(faults_spec);
    if (!parsed) {
      std::cerr << "bad --faults spec: " << faults_spec << "\n";
      return usage(argv[0]);
    }
    core::apply_faults(cfg, *parsed, fault_seed);
    if (cfg.faults.enabled()) {
      std::cout << "Fault injection: " << fault::describe(cfg.faults) << "\n";
    }
  }

  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();

  if (!replay_dir.empty()) {
    return examples::run_replay_dir(replay_dir, replay_jobs, "limewire",
                                    json_path, windows_path);
  }

  core::StudyResult result;
  if (!replay_path.empty()) {
    if (!core::load_study_trace(replay_path, result)) {
      std::cerr << "cannot replay " << replay_path
                << ": missing, corrupt, or incomplete trace\n";
      return 1;
    }
    std::cout << "Replaying LimeWire study from " << replay_path << ": "
              << util::format_count(result.records.size()) << " responses\n";
  } else {
    std::cout << "Running LimeWire study: " << cfg.population.leaves
              << " leaves, " << cfg.population.ultrapeers << " ultrapeers, "
              << cfg.crawl.duration.count_ms() / 86'400'000 << " days, seed "
              << cfg.seed << "\n";
    std::optional<obs::ProgressReporter::Scope> progress_scope;
    if (progress != nullptr) progress_scope.emplace(*progress);
    const std::string& capture_path =
        !record_dir.empty() ? record_dir : record_path;
    std::unique_ptr<trace::StorageWriter> writer;
    if (!capture_path.empty()) {
      trace::TraceHeader header;
      header.network = "limewire";
      header.config_hash = core::config_hash(cfg);
      header.seed = cfg.seed;
      header.crawl_duration_ms = cfg.crawl.duration.count_ms();
      header.meta = {{"tool", "limewire_study"},
                     {"preset", quick ? "quick" : "standard"}};
      if (!record_dir.empty()) {
        writer = std::make_unique<trace::SegmentWriter>(record_dir, header);
      } else {
        writer = std::make_unique<trace::TraceWriter>(record_path, header);
      }
      if (!writer->ok()) {
        std::cerr << "cannot write " << capture_path << "\n";
        return 1;
      }
    }
    result = core::run_limewire_study(cfg, writer.get());
    if (writer != nullptr) {
      writer->write_summary(core::study_summary(result));
      writer->close();
      if (!writer->ok()) {
        std::cerr << "failed writing trace " << capture_path << "\n";
        return 1;
      }
      std::cout << "  recorded " << util::format_count(writer->records_written())
                << " records (" << util::format_count(writer->blocks_written())
                << " blocks, " << util::format_count(writer->bytes_written())
                << " bytes";
      if (!record_dir.empty()) {
        std::cout << ", " << util::format_count(writer->segments_written())
                  << " segments";
      }
      std::cout << ") to " << capture_path << "\n";
    }
  }
  std::cout << "  " << util::format_count(result.events_executed) << " events, "
            << util::format_count(result.messages_delivered) << " messages, "
            << util::format_count(result.records.size()) << " responses, "
            << util::format_count(result.churn_joins) << " peer joins\n\n";

  auto report = core::build_report(result.records, "limewire");
  core::attach_fault_report(report, result.faults_enabled, result.fault_counters,
                            result.crawl_stats);
  report.timeseries = result.timeseries;
  core::print_prevalence(std::cout, "limewire", report.prevalence);
  core::print_strain_ranking(std::cout, "limewire", report.strain_ranking);
  core::print_sources(std::cout, "limewire", report.sources, report.strain_sources);
  core::print_size_analysis(std::cout, "limewire", report.size_buckets,
                            report.sizes_per_strain);
  core::print_daily_series(std::cout, "limewire", report.days);
  core::print_filter_comparison(std::cout, "limewire", report.filter_evals);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    core::write_report_json(out, report);
    std::cout << "wrote report JSON to " << json_path << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    analysis::write_csv(out, result.records);
    std::cout << "wrote " << util::format_count(result.records.size())
              << " records to " << csv_path << "\n";
  }
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, result.metrics);
    core::print_metrics(std::cout, "limewire", result.metrics);
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  if (!obs_cli.write_timeseries(result.timeseries)) return 1;
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  return 0;
}
