// Full OpenFT measurement study: the counterpart to limewire_study for the
// giFT/OpenFT network, highlighting the architectural contrast the paper
// measures — share registration at search nodes leaves no room for
// query-echoing worms, so prevalence is an order of magnitude lower and
// dominated by one super-spreader host.
//
//   ./openft_study [--quick] [--csv <path>] [--seed <n>] [--no-superspreader]
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "core/study.h"
#include "obs/trace.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace p2p;
  auto cfg = core::openft_standard();
  std::string csv_path;
  std::string metrics_path, trace_path, trace_spec = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg = core::openft_quick();
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-components") == 0 && i + 1 < argc) {
      trace_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--no-superspreader") == 0) {
      cfg.population.enable_superspreader = false;
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--csv <path>] [--seed <n>] [--no-superspreader]"
                   " [--metrics <path>] [--trace <path>]"
                   " [--trace-components <list|all>] [--list-presets]\n";
      return 2;
    }
  }

  std::cout << "Running OpenFT study: " << cfg.population.users << " users, "
            << cfg.population.search_nodes << " search nodes, "
            << cfg.crawl.duration.count_ms() / 86'400'000 << " days, seed "
            << cfg.seed
            << (cfg.population.enable_superspreader ? "" : " (no super-spreader)")
            << "\n";
  if (!trace_path.empty() &&
      !obs::TraceBuffer::global().enable_from_spec(trace_spec)) {
    std::cerr << "unknown trace component in: " << trace_spec << "\n";
    return 2;
  }
  auto result = core::run_openft_study(cfg);
  std::cout << "  " << util::format_count(result.events_executed) << " events, "
            << util::format_count(result.messages_delivered) << " messages, "
            << util::format_count(result.records.size()) << " responses\n\n";

  core::print_prevalence(std::cout, "openft", analysis::prevalence(result.records));
  core::print_strain_ranking(std::cout, "openft",
                             analysis::strain_ranking(result.records));
  core::print_sources(std::cout, "openft", analysis::sources(result.records),
                      analysis::strain_source_concentration(result.records));
  core::print_size_analysis(std::cout, "openft",
                            analysis::size_distribution(result.records),
                            analysis::sizes_per_strain(result.records));

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    analysis::write_csv(out, result.records);
    std::cout << "wrote " << util::format_count(result.records.size())
              << " records to " << csv_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, result.metrics);
    core::print_metrics(std::cout, "openft", result.metrics);
    std::cout << "wrote metrics snapshot to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    const auto& buf = obs::TraceBuffer::global();
    buf.write_jsonl(out);
    std::cout << "wrote " << util::format_count(buf.size()) << " trace events ("
              << util::format_count(buf.dropped()) << " dropped) to "
              << trace_path << "\n";
  }
  return 0;
}
