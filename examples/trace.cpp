// Trace-store workbench: record a study into a binary trace, inspect the
// store's header and block structure, replay it through the full analysis
// pipeline, or dump its records as CSV. A replayed report is byte-identical
// to the one the recording run produced (--json), which is what decouples
// month-scale collection from offline analysis — see the README's
// "Recording and replaying a study" and the format section in DESIGN.md.
//
// Every command accepts either a single `.p2pt` file or a `.p2ps` segment
// directory (time-sharded capture; see DESIGN.md "Segmented trace
// storage"). A directory replay can fan segments out across --jobs threads
// and emit windowed rolling analytics (--windows) while never holding the
// full record stream in memory.
//
//   ./trace record --network limewire|openft|kad [--quick|--longhaul]
//                  [--seed <n>] [--segment-hours <n>] <file|dir.p2ps>
//   ./trace inspect <file|dir>
//   ./trace replay <file|dir> [--json <path>] [--jobs <n>] [--windows <csv>]
//   ./trace cat <file|dir> [--csv <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "analysis/csv.h"
#include "core/kad_study.h"
#include "core/report.h"
#include "core/study.h"
#include "obs/metrics.h"
#include "obs_cli.h"
#include "replay_dir.h"
#include "trace/reader.h"
#include "trace/storage.h"
#include "trace/writer.h"
#include "util/strings.h"

namespace {

using namespace p2p;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <command> ...\n"
            << "  record --network limewire|openft|kad [--quick|--longhaul]"
               " [--seed <n>] [--segment-hours <n>] <file|dir.p2ps>\n"
            << "  inspect <file|dir>\n"
            << "  replay <file|dir> [--json <path>] [--jobs <n>] [--windows <csv>]\n"
            << "  cat <file|dir> [--csv <path>]\n"
            << "  --list-presets\n"
            << "every command also accepts the obs flags:\n "
            << examples::ObsCli::kUsage << "\n";
  return 2;
}

int cmd_record(int argc, char** argv, const char* argv0,
               examples::ObsCli& obs_cli) {
  std::string network = "limewire", file;
  bool quick = false, longhaul = false;
  std::uint64_t seed = 0;
  bool seed_set = false;
  trace::StorageOptions storage;
  for (int i = 0; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv0);
    } else if (std::strcmp(argv[i], "--network") == 0 && i + 1 < argc) {
      network = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--longhaul") == 0) {
      longhaul = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      seed_set = true;
    } else if (std::strcmp(argv[i], "--segment-hours") == 0 && i + 1 < argc) {
      char* end = nullptr;
      std::uint64_t hours = std::strtoull(argv[++i], &end, 10);
      // Reject junk and wrapped negatives ("-3" parses as 2^64-3).
      if (end == argv[i] || *end != '\0' || hours == 0 || hours > 24 * 365) {
        return usage(argv0);
      }
      storage.segment_window_ms = static_cast<std::int64_t>(hours) * 3'600'000ll;
    } else if (argv[i][0] != '-' && file.empty()) {
      file = argv[i];
    } else {
      return usage(argv0);
    }
  }
  if (file.empty() ||
      (network != "limewire" && network != "openft" && network != "kad")) {
    return usage(argv0);
  }
  if (quick && longhaul) {
    std::cerr << "--quick and --longhaul are mutually exclusive\n";
    return 2;
  }
  if (longhaul && network != "kad") {
    std::cerr << "--longhaul is a kad preset (ten-week honeypot capture)\n";
    return 2;
  }
  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();
  std::optional<obs::ProgressReporter::Scope> progress_scope;
  if (progress != nullptr) progress_scope.emplace(*progress);

  trace::TraceHeader header;
  header.network = network;
  header.meta = {
      {"tool", "trace record"},
      {"preset", longhaul ? "longhaul" : (quick ? "quick" : "standard")}};
  std::unique_ptr<trace::StorageWriter> writer;
  // Stamp the config-derived header fields and open the store; the backend
  // (single file vs segment directory) is picked from the path shape.
  auto open_writer = [&](auto& cfg) {
    if (seed_set) cfg.seed = seed;
    cfg.timeseries = obs_cli.timeseries_config();
    header.config_hash = core::config_hash(cfg);
    header.seed = cfg.seed;
    header.crawl_duration_ms = cfg.crawl.duration.count_ms();
    writer = trace::open_storage_writer(file, header, storage);
    return writer->ok();
  };
  core::StudyResult result;
  if (network == "limewire") {
    auto cfg = quick ? core::limewire_quick() : core::limewire_standard();
    if (!open_writer(cfg)) {
      std::cerr << "cannot write " << file << "\n";
      return 1;
    }
    result = core::run_limewire_study(cfg, writer.get());
  } else if (network == "openft") {
    auto cfg = quick ? core::openft_quick() : core::openft_standard();
    if (!open_writer(cfg)) {
      std::cerr << "cannot write " << file << "\n";
      return 1;
    }
    result = core::run_openft_study(cfg, writer.get());
  } else {
    auto cfg = longhaul ? core::kad_longhaul()
                        : (quick ? core::kad_quick() : core::kad_standard());
    if (!open_writer(cfg)) {
      std::cerr << "cannot write " << file << "\n";
      return 1;
    }
    result = core::run_kad_study(cfg, writer.get());
  }
  writer->write_summary(core::study_summary(result));
  writer->close();
  if (!writer->ok()) {
    std::cerr << "failed writing " << file << "\n";
    return 1;
  }
  std::cout << "recorded " << util::format_count(writer->records_written())
            << " records (" << util::format_count(writer->bytes_written())
            << " bytes";
  if (trace::is_segment_path(file)) {
    std::cout << ", " << util::format_count(writer->segments_written())
              << " segments";
  }
  std::cout << ") to " << file << "\n";
  if (!obs_cli.write_timeseries(result.timeseries)) return 1;
  return 0;
}

void print_header(const trace::TraceHeader& h) {
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(h.config_hash));
  std::cout << "  version:        " << h.version << "\n"
            << "  network:        " << h.network << "\n"
            << "  config hash:    " << hash << "\n"
            << "  seed:           " << h.seed << "\n"
            << "  crawl duration: " << h.crawl_duration_ms / 3'600'000.0
            << " hours\n";
  for (const auto& [key, value] : h.meta) {
    std::cout << "  meta " << key << ": " << value << "\n";
  }
}

int cmd_inspect(const std::string& file) {
  auto reader = trace::open_storage_reader(file);
  if (!reader->ok()) {
    std::cerr << file << ": " << reader->error_message() << "\n";
    return 1;
  }
  std::cout << file << ":\n";
  print_header(reader->header());
  crawler::ResponseRecord rec;
  std::uint64_t infected = 0;
  while (reader->next(rec)) {
    if (rec.infected) ++infected;
  }
  const auto& stats = reader->stats();
  std::cout << "  records:        " << util::format_count(stats.records_read)
            << " (" << util::format_count(infected) << " infected)\n"
            << "  blocks:         " << util::format_count(stats.blocks_read)
            << " ok, " << util::format_count(stats.blocks_corrupt) << " corrupt, "
            << util::format_count(stats.blocks_skipped) << " unknown kind\n"
            << "  bytes:          " << util::format_count(stats.bytes_read) << "\n";
  if (trace::is_segment_path(file)) {
    std::cout << "  segments:       " << util::format_count(stats.segments_read)
              << " ok, " << util::format_count(stats.segments_corrupt)
              << " dropped\n";
  }
  std::cout << "  summary block:  " << (reader->summary() ? "yes" : "no") << "\n";
  if (stats.truncated_tail) std::cout << "  WARNING: truncated tail\n";
  if (!stats.clean()) {
    std::cerr << file
              << ": trace is damaged (corrupt blocks, dropped segments, or "
                 "truncated tail)\n";
    return 1;
  }
  return 0;
}

int cmd_replay(const std::string& file, const std::string& json_path,
               std::size_t jobs, const std::string& windows_path,
               const examples::ObsCli& obs_cli) {
  if (trace::is_segment_path(file)) {
    // Out-of-core map-reduce replay; damage is contained per segment and
    // reported, unlike the single-file path which refuses damaged input.
    return examples::run_replay_dir(file, jobs, /*expect_network=*/"",
                                    json_path, windows_path);
  }
  if (jobs != 1) {
    std::cerr << "--jobs requires a segment directory (single-file replay is "
                 "one pass)\n";
    return 2;
  }
  if (!windows_path.empty()) {
    std::cerr << "--windows requires a segment directory\n";
    return 2;
  }
  auto start = std::chrono::steady_clock::now();
  trace::TraceData data = trace::read_trace_file(file);
  if (!data.ok()) {
    std::cerr << file << ": " << data.error_message << "\n";
    return 1;
  }
  // Replay is an analysis input, not a salvage path: any damage fails loudly
  // instead of producing a report over silently partial data.
  if (!data.stats.clean()) {
    std::cerr << file << ": refusing to replay a damaged trace ("
              << data.stats.blocks_corrupt << " corrupt blocks"
              << (data.stats.truncated_tail ? ", truncated tail" : "") << ")\n";
    return 1;
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  double rate = secs > 0.0 ? static_cast<double>(data.records.size()) / secs : 0.0;
  obs::MetricsRegistry::global()
      .gauge("trace.replay_records_per_sec")
      .set(static_cast<std::int64_t>(rate));

  std::cout << "Replaying " << data.header.network << " study from " << file
            << ": " << util::format_count(data.records.size()) << " records ("
            << util::format_count(static_cast<std::uint64_t>(rate)) << " records/s)\n\n";

  auto report = core::build_report(data.records, data.header.network);
  if (data.summary) {
    core::attach_fault_report(report, data.summary->faults_enabled,
                              data.summary->fault_counters,
                              data.summary->crawl_stats);
    core::attach_kad_coverage(report, data.records, data.summary->metrics);
    report.timeseries = data.summary->timeseries;
  }
  core::print_prevalence(std::cout, report.network, report.prevalence);
  core::print_strain_ranking(std::cout, report.network, report.strain_ranking);
  core::print_sources(std::cout, report.network, report.sources,
                      report.strain_sources);
  core::print_filter_comparison(std::cout, report.network, report.filter_evals);
  core::print_honeypot_coverage(std::cout, report.network, report.honeypots);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    core::write_report_json(out, report);
    std::cout << "wrote report JSON to " << json_path << "\n";
  }
  if (!obs_cli.write_timeseries(report.timeseries)) return 1;
  return 0;
}

int cmd_cat(const std::string& file, const std::string& csv_path) {
  if (trace::is_segment_path(file)) {
    // Stream segment by segment — the full record set is never materialized,
    // so a multi-month capture cats in constant memory. Per-segment damage
    // is contained: dropped segments are reported and the dump continues.
    auto reader = trace::open_storage_reader(file);
    if (!reader->ok()) {
      std::cerr << file << ": " << reader->error_message() << "\n";
      return 1;
    }
    std::ofstream file_out;
    bool to_stdout = csv_path.empty() || csv_path == "-";
    if (!to_stdout) {
      file_out.open(csv_path, std::ios::binary);
      if (!file_out) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
    }
    std::ostream& out = to_stdout ? std::cout : file_out;
    analysis::write_csv_header(out);
    crawler::ResponseRecord rec;
    while (reader->next(rec)) analysis::write_csv_record(out, rec);
    const auto& stats = reader->stats();
    if (!to_stdout) {
      std::cerr << "wrote " << stats.records_read << " records to " << csv_path
                << "\n";
    }
    if (!stats.clean()) {
      std::cerr << file << ": damage contained (" << stats.segments_corrupt
                << " segments dropped, " << stats.blocks_corrupt
                << " corrupt blocks)\n";
    }
    return 0;
  }
  trace::TraceData data = trace::read_trace_file(file);
  if (!data.ok()) {
    std::cerr << file << ": " << data.error_message << "\n";
    return 1;
  }
  if (!data.stats.clean()) {
    std::cerr << file << ": trace is damaged (corrupt blocks or truncated tail)\n";
    return 1;
  }
  if (csv_path.empty() || csv_path == "-") {
    analysis::write_csv(std::cout, data.records);
  } else {
    std::ofstream out(csv_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    analysis::write_csv(out, data.records);
    std::cerr << "wrote " << data.records.size() << " records to " << csv_path
              << "\n";
  }
  return 0;
}

// Obs outputs shared by every command (the timeseries export is per-command:
// record/replay have a real series to write, inspect/cat none).
int write_obs_outputs(const examples::ObsCli& obs_cli) {
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, obs::MetricsRegistry::global().snapshot());
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string cmd = argv[1];
  if (cmd == "--list-presets") {
    core::print_presets(std::cout);
    return 0;
  }
  examples::ObsCli obs_cli;
  if (cmd == "record") {
    int rc = cmd_record(argc - 2, argv + 2, argv[0], obs_cli);
    return rc != 0 ? rc : write_obs_outputs(obs_cli);
  }

  // The remaining commands take one file/directory plus optional flags.
  std::string file, json_path, csv_path, windows_path;
  std::size_t jobs = 1;
  for (int i = 2; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || jobs == 0 || jobs > 256) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc) {
      windows_path = argv[++i];
    } else if (argv[i][0] != '-' && file.empty()) {
      file = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (cmd != "replay" && (jobs != 1 || !windows_path.empty())) {
    return usage(argv[0]);
  }
  if (!obs_cli.activate()) return 2;
  int rc;
  if (cmd == "inspect" && !file.empty()) {
    rc = cmd_inspect(file);
    if (rc == 0 && !obs_cli.write_timeseries(obs::TimeSeries{})) rc = 1;
  } else if (cmd == "replay" && !file.empty()) {
    rc = cmd_replay(file, json_path, jobs, windows_path, obs_cli);
  } else if (cmd == "cat" && !file.empty()) {
    rc = cmd_cat(file, csv_path);
    if (rc == 0 && !obs_cli.write_timeseries(obs::TimeSeries{})) rc = 1;
  } else {
    return usage(argv[0]);
  }
  return rc != 0 ? rc : write_obs_outputs(obs_cli);
}
