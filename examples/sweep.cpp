// Parallel multi-seed sweep: run N replications of a study preset across a
// thread pool and report each headline metric as a distribution (mean,
// stddev, 95% bootstrap CI) instead of a single draw.
//
//   ./sweep [--network limewire|openft|kad] [--quick|--standard]
//           [--seeds A..B | --seeds N] [--base-seed <n>]
//           [--days <n> | --hours <n>] [--jobs <n>] [--shards <n>]
//           [--json <path>] [--record <dir>|--replay <dir>]
//           [--faults <preset|spec>] [--fault-seed <n>] [--list-presets]
//
// The JSON report is deterministic: identical bytes for any --jobs value
// (wall-clock fields are excluded; task seeds are a pure function of the
// plan). --record additionally saves each replication as a trace file in
// <dir>; --replay re-aggregates from those traces without simulating and
// produces the identical JSON.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/report.h"
#include "fault/fault.h"
#include "obs_cli.h"
#include "sweep/sweep.h"
#include "util/table.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--network limewire|openft|kad] [--quick|--standard]"
               " [--seeds A..B | --seeds N] [--base-seed <n>]"
               " [--days <n> | --hours <n>] [--jobs <n>] [--shards <n>]"
               " [--json <path>]"
               " [--record <dir>|--replay <dir>]"
               " [--faults <none|mild|moderate|severe|k=v,...>]"
               " [--fault-seed <n>] [--list-presets]"
            << p2p::examples::ObsCli::kUsage << "\n";
  return 2;
}

// "2006..2013" → inclusive range; "8" → count of derived seeds.
bool parse_seeds(const std::string& spec, p2p::sweep::PlanConfig& plan) {
  auto dots = spec.find("..");
  char* end = nullptr;
  if (dots == std::string::npos) {
    unsigned long long n = std::strtoull(spec.c_str(), &end, 10);
    if (end == spec.c_str() || *end != '\0' || n == 0) return false;
    plan.replications = static_cast<std::size_t>(n);
    return true;
  }
  unsigned long long lo = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() + dots) return false;
  const char* hi_str = spec.c_str() + dots + 2;
  unsigned long long hi = std::strtoull(hi_str, &end, 10);
  if (end == hi_str || *end != '\0' || hi < lo) return false;
  for (unsigned long long s = lo; s <= hi; ++s) plan.seeds.push_back(s);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  sweep::PlanConfig plan;
  sweep::SweepOptions options;
  std::string json_path, record_dir, replay_dir;
  examples::ObsCli obs_cli;
  for (int i = 1; i < argc; ++i) {
    bool obs_err = false;
    if (obs_cli.parse(argc, argv, i, &obs_err)) {
      if (obs_err) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--network") == 0 && i + 1 < argc) {
      std::string name = argv[++i];
      if (name == "limewire") {
        plan.network = sweep::NetworkKind::kLimewire;
      } else if (name == "openft") {
        plan.network = sweep::NetworkKind::kOpenFt;
      } else if (name == "kad") {
        plan.network = sweep::NetworkKind::kKad;
      } else {
        std::cerr << "unknown network: " << name << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      plan.quick = true;
    } else if (std::strcmp(argv[i], "--standard") == 0) {
      plan.quick = false;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      if (!parse_seeds(argv[++i], plan)) {
        std::cerr << "bad --seeds spec (want A..B or N): " << argv[i] << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--base-seed") == 0 && i + 1 < argc) {
      plan.base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      plan.duration = sim::SimDuration::days(
          static_cast<std::int64_t>(std::strtoull(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      plan.duration = sim::SimDuration::hours(
          static_cast<std::int64_t>(std::strtoull(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (options.jobs == 0) options.jobs = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      record_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      auto parsed = fault::parse_spec(argv[++i]);
      if (!parsed) {
        std::cerr << "bad --faults spec: " << argv[i] << "\n";
        return usage(argv[0]);
      }
      plan.faults = *parsed;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      plan.fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      char* end = nullptr;
      plan.shards =
          static_cast<std::size_t>(std::strtoull(argv[++i], &end, 10));
      // Reject junk and wrapped negatives ("-3" parses as 2^64-3).
      if (end == argv[i] || *end != '\0' || plan.shards == 0 ||
          plan.shards > 4096) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--list-presets") == 0) {
      core::print_presets(std::cout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  if (!record_dir.empty() && !replay_dir.empty()) {
    std::cerr << "--record and --replay are mutually exclusive\n";
    return 2;
  }
  plan.timeseries = obs_cli.timeseries_config();
  if (!obs_cli.activate()) return 2;
  auto progress = obs_cli.make_progress();
  options.progress = progress.get();
  if (!record_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(record_dir, ec);
    if (ec) {
      std::cerr << "cannot create " << record_dir << ": " << ec.message() << "\n";
      return 1;
    }
    options.runner = sweep::recording_runner(record_dir);
  } else if (!replay_dir.empty()) {
    options.runner = sweep::replay_runner(replay_dir);
  }

  auto tasks = sweep::plan(plan);
  std::cout << "Sweep: " << sweep::network_name(plan.network) << " "
            << (plan.quick ? "quick" : "standard") << " preset, "
            << tasks.size() << " seeds, " << options.jobs << " job(s)";
  if (!record_dir.empty()) std::cout << ", recording to " << record_dir;
  if (!replay_dir.empty()) std::cout << ", replaying from " << replay_dir;
  if (plan.faults.enabled()) {
    std::cout << ", faults: " << fault::describe(plan.faults);
  }
  std::cout << "\n";
  auto result = sweep::run(tasks, options);
  char timing[96];
  std::snprintf(timing, sizeof(timing), "%.2fs (%.2f tasks/s)",
                result.wall_seconds, result.tasks_per_second);
  std::cout << "  " << result.completed << " completed, " << result.failed
            << " failed in " << timing << "\n\n";
  for (const auto& task : result.tasks) {
    if (!task.ok) {
      std::cerr << "  task " << task.index << " (seed " << task.seed
                << ") failed: " << task.error << "\n";
    }
  }

  util::Table t({"metric", "n", "mean", "stddev", "min", "max", "ci95"});
  for (const auto& s : result.summaries) {
    char mean[32], sd[32], mn[32], mx[32], ci[64];
    std::snprintf(mean, sizeof(mean), "%.6g", s.moments.mean);
    std::snprintf(sd, sizeof(sd), "%.3g", s.moments.stddev);
    std::snprintf(mn, sizeof(mn), "%.6g", s.moments.min);
    std::snprintf(mx, sizeof(mx), "%.6g", s.moments.max);
    std::snprintf(ci, sizeof(ci), "[%.6g, %.6g]", s.ci.lo, s.ci.hi);
    t.add_row({s.name, std::to_string(s.moments.n), mean, sd, mn, mx, ci});
  }
  std::cout << t.render();

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    sweep::write_json(out, result);
    std::cout << "\nwrote " << json_path << "\n";
  }
  if (!obs_cli.metrics_path.empty()) {
    std::ofstream out(obs_cli.metrics_path);
    if (!out) {
      std::cerr << "cannot write " << obs_cli.metrics_path << "\n";
      return 1;
    }
    obs::write_json(out, obs::MetricsRegistry::global().snapshot());
    std::cout << "wrote metrics snapshot to " << obs_cli.metrics_path << "\n";
  }
  if (!obs_cli.timeseries_path.empty()) {
    // The sweep's per-task series live in the JSON report; the standalone
    // export carries the first task's series (one seed's time-resolved
    // view, same bytes for any --jobs).
    obs::TimeSeries first;
    for (const auto& task : result.tasks) {
      if (task.ok && !task.timeseries.empty()) {
        first = task.timeseries;
        break;
      }
    }
    if (!obs_cli.write_timeseries(first)) return 1;
  }
  if (!obs_cli.write_profile()) return 1;
  if (!obs_cli.write_trace()) return 1;
  return result.all_ok() ? 0 : 1;
}
