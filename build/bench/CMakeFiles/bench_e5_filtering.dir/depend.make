# Empty dependencies file for bench_e5_filtering.
# This may be replaced when dependencies are built.
