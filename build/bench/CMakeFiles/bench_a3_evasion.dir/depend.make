# Empty dependencies file for bench_a3_evasion.
# This may be replaced when dependencies are built.
