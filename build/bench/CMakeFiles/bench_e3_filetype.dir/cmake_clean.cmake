file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_filetype.dir/bench_e3_filetype.cpp.o"
  "CMakeFiles/bench_e3_filetype.dir/bench_e3_filetype.cpp.o.d"
  "bench_e3_filetype"
  "bench_e3_filetype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_filetype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
