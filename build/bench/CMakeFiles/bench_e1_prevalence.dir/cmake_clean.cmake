file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_prevalence.dir/bench_e1_prevalence.cpp.o"
  "CMakeFiles/bench_e1_prevalence.dir/bench_e1_prevalence.cpp.o.d"
  "bench_e1_prevalence"
  "bench_e1_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
