# Empty dependencies file for bench_e1_prevalence.
# This may be replaced when dependencies are built.
