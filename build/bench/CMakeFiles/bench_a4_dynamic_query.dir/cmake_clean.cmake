file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_dynamic_query.dir/bench_a4_dynamic_query.cpp.o"
  "CMakeFiles/bench_a4_dynamic_query.dir/bench_a4_dynamic_query.cpp.o.d"
  "bench_a4_dynamic_query"
  "bench_a4_dynamic_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_dynamic_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
