# Empty dependencies file for bench_a4_dynamic_query.
# This may be replaced when dependencies are built.
