file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_categories.dir/bench_e9_categories.cpp.o"
  "CMakeFiles/bench_e9_categories.dir/bench_e9_categories.cpp.o.d"
  "bench_e9_categories"
  "bench_e9_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
