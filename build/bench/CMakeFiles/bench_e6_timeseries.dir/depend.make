# Empty dependencies file for bench_e6_timeseries.
# This may be replaced when dependencies are built.
