
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e6_timeseries.cpp" "bench/CMakeFiles/bench_e6_timeseries.dir/bench_e6_timeseries.cpp.o" "gcc" "bench/CMakeFiles/bench_e6_timeseries.dir/bench_e6_timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/p2p_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/p2p_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/p2p_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/p2p_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/p2p_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/gnutella/CMakeFiles/p2p_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/openft/CMakeFiles/p2p_openft.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/p2p_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
