file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_timeseries.dir/bench_e6_timeseries.cpp.o"
  "CMakeFiles/bench_e6_timeseries.dir/bench_e6_timeseries.cpp.o.d"
  "bench_e6_timeseries"
  "bench_e6_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
