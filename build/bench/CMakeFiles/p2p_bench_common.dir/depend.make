# Empty dependencies file for p2p_bench_common.
# This may be replaced when dependencies are built.
