file(REMOVE_RECURSE
  "CMakeFiles/p2p_bench_common.dir/study_cache.cpp.o"
  "CMakeFiles/p2p_bench_common.dir/study_cache.cpp.o.d"
  "libp2p_bench_common.a"
  "libp2p_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
