file(REMOVE_RECURSE
  "libp2p_bench_common.a"
)
