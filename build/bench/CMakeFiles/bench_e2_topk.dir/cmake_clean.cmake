file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_topk.dir/bench_e2_topk.cpp.o"
  "CMakeFiles/bench_e2_topk.dir/bench_e2_topk.cpp.o.d"
  "bench_e2_topk"
  "bench_e2_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
