file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_sources.dir/bench_e4_sources.cpp.o"
  "CMakeFiles/bench_e4_sources.dir/bench_e4_sources.cpp.o.d"
  "bench_e4_sources"
  "bench_e4_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
