# Empty dependencies file for bench_e4_sources.
# This may be replaced when dependencies are built.
