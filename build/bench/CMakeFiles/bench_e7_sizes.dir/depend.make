# Empty dependencies file for bench_e7_sizes.
# This may be replaced when dependencies are built.
