file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_sizes.dir/bench_e7_sizes.cpp.o"
  "CMakeFiles/bench_e7_sizes.dir/bench_e7_sizes.cpp.o.d"
  "bench_e7_sizes"
  "bench_e7_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
