file(REMOVE_RECURSE
  "libp2p_util.a"
)
