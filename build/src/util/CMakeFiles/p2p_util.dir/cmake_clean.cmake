file(REMOVE_RECURSE
  "CMakeFiles/p2p_util.dir/bytes.cpp.o"
  "CMakeFiles/p2p_util.dir/bytes.cpp.o.d"
  "CMakeFiles/p2p_util.dir/ip.cpp.o"
  "CMakeFiles/p2p_util.dir/ip.cpp.o.d"
  "CMakeFiles/p2p_util.dir/log.cpp.o"
  "CMakeFiles/p2p_util.dir/log.cpp.o.d"
  "CMakeFiles/p2p_util.dir/rng.cpp.o"
  "CMakeFiles/p2p_util.dir/rng.cpp.o.d"
  "CMakeFiles/p2p_util.dir/strings.cpp.o"
  "CMakeFiles/p2p_util.dir/strings.cpp.o.d"
  "CMakeFiles/p2p_util.dir/table.cpp.o"
  "CMakeFiles/p2p_util.dir/table.cpp.o.d"
  "libp2p_util.a"
  "libp2p_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
