# Empty dependencies file for p2p_util.
# This may be replaced when dependencies are built.
