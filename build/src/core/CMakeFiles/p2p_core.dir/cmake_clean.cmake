file(REMOVE_RECURSE
  "CMakeFiles/p2p_core.dir/report.cpp.o"
  "CMakeFiles/p2p_core.dir/report.cpp.o.d"
  "CMakeFiles/p2p_core.dir/study.cpp.o"
  "CMakeFiles/p2p_core.dir/study.cpp.o.d"
  "libp2p_core.a"
  "libp2p_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
