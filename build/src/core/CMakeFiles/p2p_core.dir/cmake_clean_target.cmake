file(REMOVE_RECURSE
  "libp2p_core.a"
)
