# Empty dependencies file for p2p_gnutella.
# This may be replaced when dependencies are built.
