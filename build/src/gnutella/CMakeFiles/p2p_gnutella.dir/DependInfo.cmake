
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnutella/http.cpp" "src/gnutella/CMakeFiles/p2p_gnutella.dir/http.cpp.o" "gcc" "src/gnutella/CMakeFiles/p2p_gnutella.dir/http.cpp.o.d"
  "/root/repo/src/gnutella/message.cpp" "src/gnutella/CMakeFiles/p2p_gnutella.dir/message.cpp.o" "gcc" "src/gnutella/CMakeFiles/p2p_gnutella.dir/message.cpp.o.d"
  "/root/repo/src/gnutella/qrp.cpp" "src/gnutella/CMakeFiles/p2p_gnutella.dir/qrp.cpp.o" "gcc" "src/gnutella/CMakeFiles/p2p_gnutella.dir/qrp.cpp.o.d"
  "/root/repo/src/gnutella/servent.cpp" "src/gnutella/CMakeFiles/p2p_gnutella.dir/servent.cpp.o" "gcc" "src/gnutella/CMakeFiles/p2p_gnutella.dir/servent.cpp.o.d"
  "/root/repo/src/gnutella/shared_index.cpp" "src/gnutella/CMakeFiles/p2p_gnutella.dir/shared_index.cpp.o" "gcc" "src/gnutella/CMakeFiles/p2p_gnutella.dir/shared_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
