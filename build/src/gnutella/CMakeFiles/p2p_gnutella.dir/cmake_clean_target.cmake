file(REMOVE_RECURSE
  "libp2p_gnutella.a"
)
