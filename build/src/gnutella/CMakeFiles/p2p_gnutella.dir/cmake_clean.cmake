file(REMOVE_RECURSE
  "CMakeFiles/p2p_gnutella.dir/http.cpp.o"
  "CMakeFiles/p2p_gnutella.dir/http.cpp.o.d"
  "CMakeFiles/p2p_gnutella.dir/message.cpp.o"
  "CMakeFiles/p2p_gnutella.dir/message.cpp.o.d"
  "CMakeFiles/p2p_gnutella.dir/qrp.cpp.o"
  "CMakeFiles/p2p_gnutella.dir/qrp.cpp.o.d"
  "CMakeFiles/p2p_gnutella.dir/servent.cpp.o"
  "CMakeFiles/p2p_gnutella.dir/servent.cpp.o.d"
  "CMakeFiles/p2p_gnutella.dir/shared_index.cpp.o"
  "CMakeFiles/p2p_gnutella.dir/shared_index.cpp.o.d"
  "libp2p_gnutella.a"
  "libp2p_gnutella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_gnutella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
