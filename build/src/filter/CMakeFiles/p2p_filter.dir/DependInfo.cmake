
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/evaluation.cpp" "src/filter/CMakeFiles/p2p_filter.dir/evaluation.cpp.o" "gcc" "src/filter/CMakeFiles/p2p_filter.dir/evaluation.cpp.o.d"
  "/root/repo/src/filter/hash_blocklist.cpp" "src/filter/CMakeFiles/p2p_filter.dir/hash_blocklist.cpp.o" "gcc" "src/filter/CMakeFiles/p2p_filter.dir/hash_blocklist.cpp.o.d"
  "/root/repo/src/filter/limewire_builtin.cpp" "src/filter/CMakeFiles/p2p_filter.dir/limewire_builtin.cpp.o" "gcc" "src/filter/CMakeFiles/p2p_filter.dir/limewire_builtin.cpp.o.d"
  "/root/repo/src/filter/size_filter.cpp" "src/filter/CMakeFiles/p2p_filter.dir/size_filter.cpp.o" "gcc" "src/filter/CMakeFiles/p2p_filter.dir/size_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crawler/CMakeFiles/p2p_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gnutella/CMakeFiles/p2p_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/openft/CMakeFiles/p2p_openft.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/p2p_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
