file(REMOVE_RECURSE
  "libp2p_filter.a"
)
