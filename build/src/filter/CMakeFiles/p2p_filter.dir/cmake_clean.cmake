file(REMOVE_RECURSE
  "CMakeFiles/p2p_filter.dir/evaluation.cpp.o"
  "CMakeFiles/p2p_filter.dir/evaluation.cpp.o.d"
  "CMakeFiles/p2p_filter.dir/hash_blocklist.cpp.o"
  "CMakeFiles/p2p_filter.dir/hash_blocklist.cpp.o.d"
  "CMakeFiles/p2p_filter.dir/limewire_builtin.cpp.o"
  "CMakeFiles/p2p_filter.dir/limewire_builtin.cpp.o.d"
  "CMakeFiles/p2p_filter.dir/size_filter.cpp.o"
  "CMakeFiles/p2p_filter.dir/size_filter.cpp.o.d"
  "libp2p_filter.a"
  "libp2p_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
