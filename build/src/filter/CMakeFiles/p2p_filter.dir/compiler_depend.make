# Empty compiler generated dependencies file for p2p_filter.
# This may be replaced when dependencies are built.
