file(REMOVE_RECURSE
  "CMakeFiles/p2p_agents.dir/behavior.cpp.o"
  "CMakeFiles/p2p_agents.dir/behavior.cpp.o.d"
  "CMakeFiles/p2p_agents.dir/churn.cpp.o"
  "CMakeFiles/p2p_agents.dir/churn.cpp.o.d"
  "CMakeFiles/p2p_agents.dir/epidemic.cpp.o"
  "CMakeFiles/p2p_agents.dir/epidemic.cpp.o.d"
  "CMakeFiles/p2p_agents.dir/population.cpp.o"
  "CMakeFiles/p2p_agents.dir/population.cpp.o.d"
  "libp2p_agents.a"
  "libp2p_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
