# Empty compiler generated dependencies file for p2p_agents.
# This may be replaced when dependencies are built.
