file(REMOVE_RECURSE
  "libp2p_agents.a"
)
