# Empty dependencies file for p2p_analysis.
# This may be replaced when dependencies are built.
