file(REMOVE_RECURSE
  "libp2p_analysis.a"
)
