file(REMOVE_RECURSE
  "CMakeFiles/p2p_analysis.dir/csv.cpp.o"
  "CMakeFiles/p2p_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/p2p_analysis.dir/stats.cpp.o"
  "CMakeFiles/p2p_analysis.dir/stats.cpp.o.d"
  "libp2p_analysis.a"
  "libp2p_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
