file(REMOVE_RECURSE
  "CMakeFiles/p2p_crawler.dir/limewire_crawler.cpp.o"
  "CMakeFiles/p2p_crawler.dir/limewire_crawler.cpp.o.d"
  "CMakeFiles/p2p_crawler.dir/observatory.cpp.o"
  "CMakeFiles/p2p_crawler.dir/observatory.cpp.o.d"
  "CMakeFiles/p2p_crawler.dir/openft_crawler.cpp.o"
  "CMakeFiles/p2p_crawler.dir/openft_crawler.cpp.o.d"
  "CMakeFiles/p2p_crawler.dir/workload.cpp.o"
  "CMakeFiles/p2p_crawler.dir/workload.cpp.o.d"
  "libp2p_crawler.a"
  "libp2p_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
