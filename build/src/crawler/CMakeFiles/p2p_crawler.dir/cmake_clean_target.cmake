file(REMOVE_RECURSE
  "libp2p_crawler.a"
)
