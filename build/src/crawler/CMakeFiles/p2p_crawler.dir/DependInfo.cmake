
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crawler/limewire_crawler.cpp" "src/crawler/CMakeFiles/p2p_crawler.dir/limewire_crawler.cpp.o" "gcc" "src/crawler/CMakeFiles/p2p_crawler.dir/limewire_crawler.cpp.o.d"
  "/root/repo/src/crawler/observatory.cpp" "src/crawler/CMakeFiles/p2p_crawler.dir/observatory.cpp.o" "gcc" "src/crawler/CMakeFiles/p2p_crawler.dir/observatory.cpp.o.d"
  "/root/repo/src/crawler/openft_crawler.cpp" "src/crawler/CMakeFiles/p2p_crawler.dir/openft_crawler.cpp.o" "gcc" "src/crawler/CMakeFiles/p2p_crawler.dir/openft_crawler.cpp.o.d"
  "/root/repo/src/crawler/workload.cpp" "src/crawler/CMakeFiles/p2p_crawler.dir/workload.cpp.o" "gcc" "src/crawler/CMakeFiles/p2p_crawler.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnutella/CMakeFiles/p2p_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/openft/CMakeFiles/p2p_openft.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/p2p_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
