# Empty compiler generated dependencies file for p2p_crawler.
# This may be replaced when dependencies are built.
