file(REMOVE_RECURSE
  "CMakeFiles/p2p_sim.dir/event_queue.cpp.o"
  "CMakeFiles/p2p_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/p2p_sim.dir/network.cpp.o"
  "CMakeFiles/p2p_sim.dir/network.cpp.o.d"
  "libp2p_sim.a"
  "libp2p_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
