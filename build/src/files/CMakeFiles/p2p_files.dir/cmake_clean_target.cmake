file(REMOVE_RECURSE
  "libp2p_files.a"
)
