file(REMOVE_RECURSE
  "CMakeFiles/p2p_files.dir/corpus.cpp.o"
  "CMakeFiles/p2p_files.dir/corpus.cpp.o.d"
  "CMakeFiles/p2p_files.dir/file_types.cpp.o"
  "CMakeFiles/p2p_files.dir/file_types.cpp.o.d"
  "CMakeFiles/p2p_files.dir/hash.cpp.o"
  "CMakeFiles/p2p_files.dir/hash.cpp.o.d"
  "CMakeFiles/p2p_files.dir/zip.cpp.o"
  "CMakeFiles/p2p_files.dir/zip.cpp.o.d"
  "libp2p_files.a"
  "libp2p_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
