# Empty compiler generated dependencies file for p2p_files.
# This may be replaced when dependencies are built.
