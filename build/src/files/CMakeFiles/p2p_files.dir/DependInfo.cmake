
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/files/corpus.cpp" "src/files/CMakeFiles/p2p_files.dir/corpus.cpp.o" "gcc" "src/files/CMakeFiles/p2p_files.dir/corpus.cpp.o.d"
  "/root/repo/src/files/file_types.cpp" "src/files/CMakeFiles/p2p_files.dir/file_types.cpp.o" "gcc" "src/files/CMakeFiles/p2p_files.dir/file_types.cpp.o.d"
  "/root/repo/src/files/hash.cpp" "src/files/CMakeFiles/p2p_files.dir/hash.cpp.o" "gcc" "src/files/CMakeFiles/p2p_files.dir/hash.cpp.o.d"
  "/root/repo/src/files/zip.cpp" "src/files/CMakeFiles/p2p_files.dir/zip.cpp.o" "gcc" "src/files/CMakeFiles/p2p_files.dir/zip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
