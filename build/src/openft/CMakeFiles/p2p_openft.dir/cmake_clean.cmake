file(REMOVE_RECURSE
  "CMakeFiles/p2p_openft.dir/node.cpp.o"
  "CMakeFiles/p2p_openft.dir/node.cpp.o.d"
  "CMakeFiles/p2p_openft.dir/packet.cpp.o"
  "CMakeFiles/p2p_openft.dir/packet.cpp.o.d"
  "libp2p_openft.a"
  "libp2p_openft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_openft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
