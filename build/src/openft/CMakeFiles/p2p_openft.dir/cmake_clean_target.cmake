file(REMOVE_RECURSE
  "libp2p_openft.a"
)
