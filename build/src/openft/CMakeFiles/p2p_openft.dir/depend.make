# Empty dependencies file for p2p_openft.
# This may be replaced when dependencies are built.
