
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openft/node.cpp" "src/openft/CMakeFiles/p2p_openft.dir/node.cpp.o" "gcc" "src/openft/CMakeFiles/p2p_openft.dir/node.cpp.o.d"
  "/root/repo/src/openft/packet.cpp" "src/openft/CMakeFiles/p2p_openft.dir/packet.cpp.o" "gcc" "src/openft/CMakeFiles/p2p_openft.dir/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
