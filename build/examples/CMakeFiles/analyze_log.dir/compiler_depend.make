# Empty compiler generated dependencies file for analyze_log.
# This may be replaced when dependencies are built.
