# Empty compiler generated dependencies file for epidemic.
# This may be replaced when dependencies are built.
