file(REMOVE_RECURSE
  "CMakeFiles/epidemic.dir/epidemic.cpp.o"
  "CMakeFiles/epidemic.dir/epidemic.cpp.o.d"
  "epidemic"
  "epidemic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
