file(REMOVE_RECURSE
  "CMakeFiles/limewire_study.dir/limewire_study.cpp.o"
  "CMakeFiles/limewire_study.dir/limewire_study.cpp.o.d"
  "limewire_study"
  "limewire_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limewire_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
