# Empty compiler generated dependencies file for limewire_study.
# This may be replaced when dependencies are built.
