file(REMOVE_RECURSE
  "CMakeFiles/query_observatory.dir/query_observatory.cpp.o"
  "CMakeFiles/query_observatory.dir/query_observatory.cpp.o.d"
  "query_observatory"
  "query_observatory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_observatory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
