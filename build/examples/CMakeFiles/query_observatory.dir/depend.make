# Empty dependencies file for query_observatory.
# This may be replaced when dependencies are built.
