# Empty dependencies file for filter_defense.
# This may be replaced when dependencies are built.
