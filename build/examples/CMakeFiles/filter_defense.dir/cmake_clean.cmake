file(REMOVE_RECURSE
  "CMakeFiles/filter_defense.dir/filter_defense.cpp.o"
  "CMakeFiles/filter_defense.dir/filter_defense.cpp.o.d"
  "filter_defense"
  "filter_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
