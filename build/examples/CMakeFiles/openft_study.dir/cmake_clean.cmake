file(REMOVE_RECURSE
  "CMakeFiles/openft_study.dir/openft_study.cpp.o"
  "CMakeFiles/openft_study.dir/openft_study.cpp.o.d"
  "openft_study"
  "openft_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openft_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
