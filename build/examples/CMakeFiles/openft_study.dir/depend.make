# Empty dependencies file for openft_study.
# This may be replaced when dependencies are built.
