# Empty dependencies file for p2p_tests.
# This may be replaced when dependencies are built.
