
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agents.cpp" "tests/CMakeFiles/p2p_tests.dir/test_agents.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_agents.cpp.o.d"
  "/root/repo/tests/test_aho_corasick.cpp" "tests/CMakeFiles/p2p_tests.dir/test_aho_corasick.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_aho_corasick.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/p2p_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_browse_bootstrap.cpp" "tests/CMakeFiles/p2p_tests.dir/test_browse_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_browse_bootstrap.cpp.o.d"
  "/root/repo/tests/test_bye_multivantage.cpp" "tests/CMakeFiles/p2p_tests.dir/test_bye_multivantage.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_bye_multivantage.cpp.o.d"
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/p2p_tests.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_bytes.cpp.o.d"
  "/root/repo/tests/test_corpus.cpp" "tests/CMakeFiles/p2p_tests.dir/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_corpus.cpp.o.d"
  "/root/repo/tests/test_crawler.cpp" "tests/CMakeFiles/p2p_tests.dir/test_crawler.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_crawler.cpp.o.d"
  "/root/repo/tests/test_csv_roundtrip.cpp" "tests/CMakeFiles/p2p_tests.dir/test_csv_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_csv_roundtrip.cpp.o.d"
  "/root/repo/tests/test_dynamic_query.cpp" "tests/CMakeFiles/p2p_tests.dir/test_dynamic_query.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_dynamic_query.cpp.o.d"
  "/root/repo/tests/test_epidemic.cpp" "tests/CMakeFiles/p2p_tests.dir/test_epidemic.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_epidemic.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/p2p_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/p2p_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/p2p_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_file_types.cpp" "tests/CMakeFiles/p2p_tests.dir/test_file_types.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_file_types.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/p2p_tests.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_gnutella_message.cpp" "tests/CMakeFiles/p2p_tests.dir/test_gnutella_message.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_gnutella_message.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/p2p_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_http.cpp" "tests/CMakeFiles/p2p_tests.dir/test_http.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_http.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/p2p_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_ip.cpp" "tests/CMakeFiles/p2p_tests.dir/test_ip.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_ip.cpp.o.d"
  "/root/repo/tests/test_malware.cpp" "tests/CMakeFiles/p2p_tests.dir/test_malware.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_malware.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/p2p_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/p2p_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_observatory.cpp" "tests/CMakeFiles/p2p_tests.dir/test_observatory.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_observatory.cpp.o.d"
  "/root/repo/tests/test_openft_node.cpp" "tests/CMakeFiles/p2p_tests.dir/test_openft_node.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_openft_node.cpp.o.d"
  "/root/repo/tests/test_openft_packet.cpp" "tests/CMakeFiles/p2p_tests.dir/test_openft_packet.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_openft_packet.cpp.o.d"
  "/root/repo/tests/test_qrp.cpp" "tests/CMakeFiles/p2p_tests.dir/test_qrp.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_qrp.cpp.o.d"
  "/root/repo/tests/test_report_cache.cpp" "tests/CMakeFiles/p2p_tests.dir/test_report_cache.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_report_cache.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/p2p_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_servent.cpp" "tests/CMakeFiles/p2p_tests.dir/test_servent.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_servent.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/p2p_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/p2p_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/p2p_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_wire_fuzz.cpp" "tests/CMakeFiles/p2p_tests.dir/test_wire_fuzz.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_wire_fuzz.cpp.o.d"
  "/root/repo/tests/test_zip.cpp" "tests/CMakeFiles/p2p_tests.dir/test_zip.cpp.o" "gcc" "tests/CMakeFiles/p2p_tests.dir/test_zip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/p2p_core.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/p2p_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/p2p_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/p2p_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/p2p_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/p2p_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/gnutella/CMakeFiles/p2p_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/openft/CMakeFiles/p2p_openft.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/p2p_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/p2p_files.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
