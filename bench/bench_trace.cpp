// Out-of-core trace-store bench: records a deterministic twelve-week
// (84-simulated-day) response stream straight into a segment directory —
// the full record set is never materialized — then replays it through
// core::replay_segment_dir at 1 and 4 jobs. The two replayed reports must
// serialize byte-identically (that part is the determinism contract and is
// always asserted, like bench_shard's executed counts); --check additionally
// pins the replay-throughput floor and the peak-RSS ceiling that make the
// "out of core" claim falsifiable. The committed BENCH_trace.json at the
// repo root records the baseline.
//
// The stream is synthesized from splitmix64 (no simulation): ~1.26M records
// with the mix the analysis pipeline cares about — study-type responses,
// an ~8% infection rate over six strains with characteristic sizes (so the
// size filter trains), rotating categories, and a few hundred distinct
// sources.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/replay.h"
#include "core/report.h"
#include "crawler/records.h"
#include "trace/segment.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kRecords = 1'260'000;
constexpr std::int64_t kDays = 84;  // twelve simulated weeks
constexpr std::int64_t kSpanMs = kDays * 86'400'000ll;
constexpr std::int64_t kStrideMs = kSpanMs / static_cast<std::int64_t>(kRecords);

// Conservative floors for a 1-2 core CI runner; the committed baseline is
// far above both.
constexpr double kReplayRecordsPerSecFloor = 100'000.0;
constexpr double kPeakRssMibCeiling = 512.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Peak resident set in MiB (VmHWM), or 0 where /proc is unavailable.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Deterministic record i of the synthetic stream. Timestamps are
/// non-decreasing in i (monotone segment windows), everything else is a
/// pure function of splitmix64(i).
p2p::crawler::ResponseRecord make_record(std::uint64_t i) {
  using p2p::util::splitmix64;
  std::uint64_t state = i ^ 0x7261636b6e657463ull;
  std::uint64_t h = splitmix64(state);
  std::uint64_t h2 = splitmix64(state);
  std::uint64_t h3 = splitmix64(state);

  p2p::crawler::ResponseRecord r;
  r.id = i + 1;
  r.network = "limewire";
  r.at = p2p::util::SimTime::at_millis(
      static_cast<std::int64_t>(i) * kStrideMs +
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(kStrideMs)));

  static const char* kCategories[5] = {"music", "movies", "software", "images",
                                       "documents"};
  r.query_category = kCategories[h % 5];
  r.query = "q" + std::to_string(h % 40);

  std::uint64_t type_roll = h2 % 10;
  if (type_roll < 3) {
    r.type_by_name = p2p::files::FileType::kExecutable;
  } else if (type_roll < 5) {
    r.type_by_name = p2p::files::FileType::kArchive;
  } else {
    r.type_by_name = p2p::files::FileType::kAudio;
  }
  r.type_by_magic = r.type_by_name;

  std::uint64_t source = h3 % 300;
  r.source_ip = p2p::util::Ipv4(static_cast<std::uint32_t>(
      0x08'00'00'00u + source * 7919));  // public 8.x.x.x spread
  r.source_port = static_cast<std::uint16_t>(1024 + (h3 >> 32) % 50'000);
  r.source_key = r.source_ip.str() + ":" + std::to_string(r.source_port);
  r.source_firewalled = (h3 >> 16) % 5 == 0;

  bool study = r.is_study_type();
  std::uint64_t dl_roll = splitmix64(state) % 100;
  r.download_attempted = study && dl_roll < 80;
  r.downloaded = study && dl_roll < 70;
  bool infected = r.downloaded && splitmix64(state) % 100 < 8;
  if (infected) {
    std::uint64_t strain = splitmix64(state) % 6;
    r.infected = true;
    r.strain = static_cast<p2p::malware::StrainId>(1 + strain);
    r.strain_name = "bench.worm-" + std::to_string(strain);
    // Characteristic per-strain sizes so the size filter has something to
    // learn: four variants per strain.
    r.size = 90'000 + strain * 16'384 + (splitmix64(state) % 4) * 1'024;
    r.content_key = "inf-" + std::to_string(strain) + "-" +
                    std::to_string(splitmix64(state) % 50);
    r.filename = r.strain_name + ".exe";
  } else {
    r.size = 100'000 + h2 % 40'000'000;
    r.content_key = "c-" + std::to_string(h2 % 200'000);
    r.filename = "file-" + std::to_string(h2 % 5'000);
  }
  return r;
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--check] [--json <path>] [--dir <path>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  std::string dir = "bench_trace_capture.p2ps";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  std::filesystem::remove_all(dir);

  // -- Record: synthesize straight into the segment writer ------------------
  p2p::trace::TraceHeader header;
  header.network = "limewire";
  header.config_hash = 0xbe7c47ace0ull;
  header.seed = 1;
  header.crawl_duration_ms = kSpanMs;
  header.meta = {{"tool", "bench_trace"}, {"preset", "synthetic-12w"}};
  Clock::time_point start = Clock::now();
  std::uint64_t segments = 0;
  std::uint64_t bytes = 0;
  {
    p2p::trace::SegmentWriter writer(dir, header);
    if (!writer.ok()) {
      std::fprintf(stderr, "FAIL: cannot create %s\n", dir.c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < kRecords; ++i) writer.on_record(make_record(i));
    writer.close();
    if (!writer.ok()) {
      std::fprintf(stderr, "FAIL: write error in %s\n", dir.c_str());
      return 1;
    }
    segments = writer.segments_written();
    bytes = writer.bytes_written();
  }
  double record_wall = seconds_since(start);
  double record_rps = static_cast<double>(kRecords) / record_wall;
  std::printf("record: %llu records, %llu segments, %.1f MiB, %.1fs (%.0f records/s)\n",
              static_cast<unsigned long long>(kRecords),
              static_cast<unsigned long long>(segments),
              static_cast<double>(bytes) / (1024.0 * 1024.0), record_wall,
              record_rps);

  // -- Replay out of core at 1 and 4 jobs -----------------------------------
  bool ok = true;
  double replay_rps[2] = {0.0, 0.0};
  std::string reports[2];
  std::size_t windows = 0;
  for (int pass = 0; pass < 2; ++pass) {
    p2p::core::ReplayOptions options;
    options.jobs = pass == 0 ? 1 : 4;
    start = Clock::now();
    auto result = p2p::core::replay_segment_dir(dir, options);
    double wall = seconds_since(start);
    if (!result.ok) {
      std::fprintf(stderr, "FAIL: replay (%zu jobs): %s\n", options.jobs,
                   result.error.c_str());
      return 1;
    }
    if (result.stats.records_read != kRecords || !result.stats.clean()) {
      std::fprintf(stderr, "FAIL: replay (%zu jobs) read %llu/%llu records clean=%d\n",
                   options.jobs,
                   static_cast<unsigned long long>(result.stats.records_read),
                   static_cast<unsigned long long>(kRecords),
                   result.stats.clean() ? 1 : 0);
      ok = false;
    }
    replay_rps[pass] = static_cast<double>(result.stats.records_read) / wall;
    std::ostringstream json;
    p2p::core::write_report_json(json, result.report);
    reports[pass] = std::move(json).str();
    windows = result.windows.size();
    std::printf("replay: jobs=%zu  %.1fs  %.0f records/s  %zu windows\n",
                options.jobs, wall, replay_rps[pass], windows);
  }
  double rss = peak_rss_mib();
  std::printf("peak rss: %.0f MiB\n", rss);

  // Determinism contract, asserted unconditionally.
  bool identical = reports[0] == reports[1];
  if (!identical) {
    std::fprintf(stderr, "FAIL: replayed reports differ between 1 and 4 jobs\n");
    ok = false;
  }
  if (windows != static_cast<std::size_t>(kDays)) {
    std::fprintf(stderr, "FAIL: expected %lld windows, got %zu\n",
                 static_cast<long long>(kDays), windows);
    ok = false;
  }

  if (check) {
    if (replay_rps[0] < kReplayRecordsPerSecFloor) {
      std::fprintf(stderr, "FAIL: serial replay %.0f records/s < %.0f floor\n",
                   replay_rps[0], kReplayRecordsPerSecFloor);
      ok = false;
    }
    if (rss > kPeakRssMibCeiling) {
      std::fprintf(stderr, "FAIL: peak rss %.0f MiB > %.0f MiB ceiling\n", rss,
                   kPeakRssMibCeiling);
      ok = false;
    }
  }

  char buf[1024];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"format\":\"p2p-bench-trace-1\",\"records\":%llu,"
      "\"simulated_days\":%lld,\"segments\":%llu,\"bytes\":%llu,"
      "\"record_records_per_sec\":%.0f,"
      "\"replay\":[{\"jobs\":1,\"records_per_sec\":%.0f},"
      "{\"jobs\":4,\"records_per_sec\":%.0f}],"
      "\"reports_identical\":%s,\"windows\":%zu,\"peak_rss_mib\":%.0f,"
      "\"floors\":{\"replay_records_per_sec\":%.0f,\"peak_rss_mib\":%.0f}}\n",
      static_cast<unsigned long long>(kRecords),
      static_cast<long long>(kDays),
      static_cast<unsigned long long>(segments),
      static_cast<unsigned long long>(bytes), record_rps, replay_rps[0],
      replay_rps[1], identical ? "true" : "false", windows, rss,
      kReplayRecordsPerSecFloor, kPeakRssMibCeiling);
  if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) {
    std::fprintf(stderr, "json overflow\n");
    return 1;
  }
  if (json_path.empty()) {
    std::fputs(buf, stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
