// Legacy-study engine bench: the full-fidelity LimeWire study's events/sec
// serial and on the sharded engine (1 and 4 shards), plus the query
// hot-path before/after — the interned-token SharedFileIndex against a
// reference re-tokenizing scan (util::keyword_match per file per query,
// exactly what the index replaced).
//
// Emits a JSON report (stdout or --json <path>); the committed
// BENCH_legacy_engine.json at the repo root pins the baseline. --check
// enforces:
//   * interned-vs-reference query throughput ratio >= 1.3x (pure CPU ratio,
//     machine-independent — the hot-path overhaul must pay for itself),
//   * serial study events/sec above an absolute sanity floor,
//   * identical record streams at 1 and 4 shards (the determinism
//     contract, asserted unconditionally),
//   * >= 2x study events/sec at 4 shards vs 1 — only on hosts with >= 4
//     hardware threads; a smaller host prints the skip line and the report
//     records the core count so a reader can tell which regime produced it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "files/file.h"
#include "gnutella/shared_index.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Query hot path: shared corpus of multi-word names, two-word queries drawn
// from the same pool (so a realistic fraction match). The reference scan is
// what Servent::match used before interning: util::keyword_match against
// every shared name, re-tokenizing both sides per call.
// ---------------------------------------------------------------------------

std::vector<std::string> word_pool() {
  std::vector<std::string> words;
  static const char* kStems[] = {"atlas",  "motel", "light", "house", "summer",
                                 "winter", "acoustic", "remix", "deluxe",
                                 "live",   "radio", "ghost", "river", "stone",
                                 "echo",   "velvet", "neon", "paper", "crown",
                                 "ember"};
  for (const char* stem : kStems) {
    for (int i = 0; i < 20; ++i) {
      words.push_back(std::string(stem) + std::to_string(i));
    }
  }
  return words;
}

struct QueryBench {
  double ref_queries_per_sec = 0.0;
  double interned_queries_per_sec = 0.0;
  double ratio = 0.0;
  std::uint64_t ref_hits = 0;
  std::uint64_t interned_hits = 0;
};

QueryBench run_query_bench(std::size_t files, std::size_t queries) {
  std::vector<std::string> words = word_pool();
  p2p::util::Rng rng(0x9e37);
  std::vector<std::string> names;
  names.reserve(files);
  for (std::size_t i = 0; i < files; ++i) {
    std::string name = words[rng.bounded(words.size())];
    for (int w = 0; w < 3; ++w) {
      name += " " + words[rng.bounded(words.size())];
    }
    name += ".mp3";
    names.push_back(std::move(name));
  }
  std::vector<std::string> qs;
  qs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    // Two-word queries biased toward words that occur in the corpus.
    std::string q = words[rng.bounded(words.size())];
    q += " " + words[rng.bounded(words.size())];
    qs.push_back(std::move(q));
  }

  auto interner = std::make_shared<p2p::gnutella::TokenInterner>();
  p2p::gnutella::SharedFileIndex index(interner);
  for (const std::string& name : names) {
    index.add(std::make_shared<p2p::files::FileContent>(name,
                                                        p2p::util::Bytes{}));
  }

  QueryBench out;
  Clock::time_point start = Clock::now();
  for (const std::string& q : qs) {
    for (const std::string& name : names) {
      if (p2p::util::keyword_match(q, name)) ++out.ref_hits;
    }
  }
  double ref_wall = seconds_since(start);

  start = Clock::now();
  for (const std::string& q : qs) {
    out.interned_hits += index.match(q).size();
  }
  double interned_wall = seconds_since(start);

  out.ref_queries_per_sec =
      ref_wall > 0.0 ? static_cast<double>(queries) / ref_wall : 0.0;
  out.interned_queries_per_sec =
      interned_wall > 0.0 ? static_cast<double>(queries) / interned_wall : 0.0;
  out.ratio = ref_wall > 0.0 && interned_wall > 0.0
                  ? ref_wall / interned_wall
                  : 0.0;
  return out;
}

// ---------------------------------------------------------------------------
// Study throughput: the --quick LimeWire study, serial and sharded.
// ---------------------------------------------------------------------------

struct StudyRun {
  std::size_t shards = 0;  // 0 = serial EventQueue model
  std::uint64_t events = 0;
  std::size_t responses = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

StudyRun run_study(std::size_t shards) {
  p2p::core::LimewireStudyConfig cfg = p2p::core::limewire_quick();
  cfg.seed = 2006;
  cfg.shards = shards;
  Clock::time_point start = Clock::now();
  p2p::core::StudyResult result = p2p::core::run_limewire_study(cfg);
  StudyRun run;
  run.shards = shards;
  run.wall_seconds = seconds_since(start);
  run.events = result.events_executed;
  run.responses = result.records.size();
  run.events_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(run.events) / run.wall_seconds
          : 0.0;
  return run;
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--check] [--json <path>]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  unsigned cores = std::thread::hardware_concurrency();
  constexpr std::size_t kFiles = 2000;
  constexpr std::size_t kQueries = 2000;
  // Absolute sanity floor for the serial study: a debug build or an
  // accidental O(n^2) regression lands an order of magnitude below this; CI
  // runners and dev machines sit comfortably above it.
  constexpr double kSerialFloorEventsPerSec = 20'000.0;

  QueryBench qb = run_query_bench(kFiles, kQueries);
  std::printf(
      "query: reference %.0f q/s, interned %.0f q/s — %.1fx (%llu vs %llu hits)\n",
      qb.ref_queries_per_sec, qb.interned_queries_per_sec, qb.ratio,
      static_cast<unsigned long long>(qb.ref_hits),
      static_cast<unsigned long long>(qb.interned_hits));

  std::vector<StudyRun> runs;
  for (std::size_t shards : {0u, 1u, 4u}) {
    StudyRun run = run_study(shards);
    std::printf(
        "study: shards=%zu%s  events=%llu  responses=%zu  wall=%.2fs  "
        "%.0f events/s\n",
        run.shards, run.shards == 0 ? " (serial)" : "",
        static_cast<unsigned long long>(run.events), run.responses,
        run.wall_seconds, run.events_per_sec);
    runs.push_back(run);
  }
  double speedup4 = runs[1].events_per_sec > 0.0
                        ? runs[2].events_per_sec / runs[1].events_per_sec
                        : 0.0;
  std::printf("study: 4-shard speedup %.2fx on %u hardware thread(s)\n",
              speedup4, cores);

  bool ok = true;
  if (qb.ref_hits != qb.interned_hits) {
    std::fprintf(stderr,
                 "FAIL: interned index disagrees with reference scan "
                 "(%llu vs %llu hits)\n",
                 static_cast<unsigned long long>(qb.interned_hits),
                 static_cast<unsigned long long>(qb.ref_hits));
    ok = false;
  }
  if (runs[1].events != runs[2].events ||
      runs[1].responses != runs[2].responses) {
    std::fprintf(stderr,
                 "FAIL: sharded runs diverged between 1 and 4 shards\n");
    ok = false;
  }
  for (const StudyRun& run : runs) {
    if (run.responses == 0) {
      std::fprintf(stderr, "FAIL: study at shards=%zu produced no responses\n",
                   run.shards);
      ok = false;
    }
  }

  if (check) {
    if (qb.ratio < 1.3) {
      std::fprintf(stderr,
                   "FAIL: interned query path only %.2fx over the reference "
                   "scan (floor 1.3x)\n",
                   qb.ratio);
      ok = false;
    }
    if (runs[0].events_per_sec < kSerialFloorEventsPerSec) {
      std::fprintf(stderr,
                   "FAIL: serial study %.0f events/s below the %.0f floor\n",
                   runs[0].events_per_sec, kSerialFloorEventsPerSec);
      ok = false;
    }
    if (cores >= 4) {
      if (speedup4 < 2.0) {
        std::fprintf(stderr,
                     "FAIL: 4-shard study speedup %.2fx < 2.0x floor "
                     "(%u cores)\n",
                     speedup4, cores);
        ok = false;
      }
    } else {
      std::printf("1-core host: parallel speedup floor skipped\n");
    }
  }

  char buf[1024];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"format\":\"p2p-bench-legacy-engine-1\",\"cores\":%u,"
      "\"query\":{\"files\":%zu,\"queries\":%zu,"
      "\"reference_qps\":%.0f,\"interned_qps\":%.0f,\"ratio\":%.2f},"
      "\"study\":{\"serial_events_per_sec\":%.0f,"
      "\"shard1_events_per_sec\":%.0f,\"shard4_events_per_sec\":%.0f,"
      "\"speedup_4_shards\":%.2f,\"events\":%llu,\"responses\":%zu}}\n",
      cores, kFiles, kQueries, qb.ref_queries_per_sec,
      qb.interned_queries_per_sec, qb.ratio, runs[0].events_per_sec,
      runs[1].events_per_sec, runs[2].events_per_sec, speedup4,
      static_cast<unsigned long long>(runs[1].events), runs[1].responses);
  if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) {
    std::fprintf(stderr, "json overflow\n");
    return 1;
  }
  if (json_path.empty()) {
    std::fputs(buf, stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
