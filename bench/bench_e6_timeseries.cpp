// E6 — Daily time series over the month of crawling: response volume and
// malicious fraction per day (the paper's "over a month of data" figure).
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "util/strings.h"

namespace {

void ascii_series(const std::vector<p2p::analysis::DayBin>& series) {
  // Malicious-fraction sparkline, one row per day.
  for (const auto& d : series) {
    int bars = static_cast<int>(d.malicious_fraction() * 50.0);
    std::cout << "day " << (d.day < 10 ? " " : "") << d.day << " |"
              << std::string(static_cast<std::size_t>(bars), '#')
              << std::string(static_cast<std::size_t>(50 - bars), ' ') << "| "
              << p2p::util::format_pct(d.malicious_fraction()) << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace p2p;
  std::cout << "=== E6: daily malicious-fraction time series ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto lw_series = analysis::daily_series(lw.records);
  core::print_daily_series(std::cout, "limewire", lw_series);
  ascii_series(lw_series);

  auto ft = bench::openft_study_cached();
  auto ft_series = analysis::daily_series(ft.records);
  core::print_daily_series(std::cout, "openft", ft_series);

  // Shape check: the malicious fraction should be stable across the month
  // (the paper's conclusion held over the whole crawl).
  double min_f = 1.0, max_f = 0.0;
  for (const auto& d : lw_series) {
    if (d.labeled < 100) continue;
    min_f = std::min(min_f, d.malicious_fraction());
    max_f = std::max(max_f, d.malicious_fraction());
  }
  std::cout << "limewire daily malicious fraction range: "
            << util::format_pct(min_f) << " .. " << util::format_pct(max_f) << "\n";
  bench::dump_metrics_json("e6_limewire", lw);
  bench::dump_metrics_json("e6_openft", ft);
  return 0;
}
