// E6 — Daily time series over the month of crawling: response volume and
// malicious fraction per day (the paper's "over a month of data" figure).
//
// The daily curves come from the obs::TimeSeriesRecorder that the cached
// standard studies run with (window = 1 day): each window holds the
// per-day deltas of every crawler counter, so the bench reads volume,
// downloads, and scan-time detections straight from the recorder instead
// of re-bucketing the response log. The record-derived labeled malicious
// fraction is kept alongside as the paper's headline metric and as a
// cross-check that the recorder totals match the log.
#include <iostream>
#include <string>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "obs/timeseries.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace p2p;

std::uint64_t window_counter(const obs::TimeSeries::Window& w,
                             std::string_view name) {
  for (const auto& [counter, delta] : w.counters) {
    if (counter == name) return delta;
  }
  return 0;
}

void recorder_table(const std::string& network, const obs::TimeSeries& series) {
  util::Table t({"day", "responses", "study", "downloads", "infected", "events"});
  for (std::size_t i = 0; i < series.windows.size(); ++i) {
    const auto& w = series.windows[i];
    t.add_row({std::to_string(i + 1),
               util::format_count(window_counter(w, "crawler.responses_logged")),
               util::format_count(window_counter(w, "crawler.study_responses")),
               util::format_count(window_counter(w, "crawler.downloads_ok")),
               util::format_count(window_counter(w, "crawler.infected_detected")),
               util::format_count(window_counter(w, "sim.events_executed"))});
  }
  std::cout << network << " recorder windows (" << series.window_ms / 86'400'000
            << "d each, " << series.windows.size() << " windows, "
            << series.windows_dropped << " dropped):\n"
            << t.render() << "\n";
}

void ascii_series(const std::vector<analysis::DayBin>& series) {
  // Malicious-fraction sparkline, one row per day.
  for (const auto& d : series) {
    int bars = static_cast<int>(d.malicious_fraction() * 50.0);
    std::cout << "day " << (d.day < 10 ? " " : "") << d.day << " |"
              << std::string(static_cast<std::size_t>(bars), '#')
              << std::string(static_cast<std::size_t>(50 - bars), ' ') << "| "
              << util::format_pct(d.malicious_fraction()) << "\n";
  }
  std::cout << "\n";
}

std::uint64_t series_total(const obs::TimeSeries& series, std::string_view name) {
  std::uint64_t total = 0;
  for (const auto& w : series.windows) total += window_counter(w, name);
  return total;
}

}  // namespace

int main() {
  std::cout << "=== E6: daily malicious-fraction time series ===\n\n";

  auto lw = bench::limewire_study_cached();
  recorder_table("limewire", lw.timeseries);
  auto lw_series = analysis::daily_series(lw.records);
  core::print_daily_series(std::cout, "limewire", lw_series);
  ascii_series(lw_series);

  auto ft = bench::openft_study_cached();
  recorder_table("openft", ft.timeseries);
  auto ft_series = analysis::daily_series(ft.records);
  core::print_daily_series(std::cout, "openft", ft_series);

  // Cross-check: the recorder's summed responses_logged must equal the
  // response log's record count — same crawl, two observation paths.
  std::uint64_t recorded = series_total(lw.timeseries, "crawler.responses_logged");
  std::cout << "limewire recorder total responses: "
            << util::format_count(recorded) << " (log has "
            << util::format_count(lw.records.size()) << ")\n";
  if (!lw.timeseries.empty() && recorded != lw.records.size()) {
    std::cout << "MISMATCH: recorder and response log disagree\n";
    return 1;
  }

  // Shape check: the malicious fraction should be stable across the month
  // (the paper's conclusion held over the whole crawl).
  double min_f = 1.0, max_f = 0.0;
  for (const auto& d : lw_series) {
    if (d.labeled < 100) continue;
    min_f = std::min(min_f, d.malicious_fraction());
    max_f = std::max(max_f, d.malicious_fraction());
  }
  std::cout << "limewire daily malicious fraction range: "
            << util::format_pct(min_f) << " .. " << util::format_pct(max_f) << "\n";
  bench::dump_metrics_json("e6_limewire", lw);
  bench::dump_metrics_json("e6_openft", ft);
  return 0;
}
