// E1 — Malware prevalence among downloadable (exe/archive) responses.
//
// Paper (abstract): 68% of downloadable exe/archive responses in LimeWire
// contain malware; 3% in OpenFT.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::SweepCli cli;
  if (!bench::parse_sweep_cli(argc, argv, cli)) return 2;
  std::cout << "=== E1: malware prevalence among downloadable responses ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto ft = bench::openft_study_cached();

  auto lw_summary = analysis::prevalence(lw.records);
  auto ft_summary = analysis::prevalence(ft.records);
  core::print_prevalence(std::cout, "limewire", lw_summary);
  core::print_prevalence(std::cout, "openft", ft_summary);

  auto lw_ci = analysis::bootstrap_malicious_fraction(lw.records);
  auto ft_ci = analysis::bootstrap_malicious_fraction(ft.records);

  util::Table cmp({"network", "paper", "measured", "95% CI (day bootstrap)"});
  cmp.add_row({"limewire", "68%", util::format_pct(lw_summary.malicious_fraction()),
               "[" + util::format_pct(lw_ci.lo) + ", " + util::format_pct(lw_ci.hi) +
                   "]"});
  cmp.add_row({"openft", "3%", util::format_pct(ft_summary.malicious_fraction()),
               "[" + util::format_pct(ft_ci.lo) + ", " + util::format_pct(ft_ci.hi) +
                   "]"});
  std::cout << "-- paper vs measured --\n" << cmp.render() << "\n";

  if (cli.replications > 0) {
    auto lw_sweep = bench::run_cached_sweep(sweep::NetworkKind::kLimewire,
                                            cli.replications, cli.jobs);
    auto ft_sweep = bench::run_cached_sweep(sweep::NetworkKind::kOpenFt,
                                            cli.replications, cli.jobs);
    util::Table bands({"network", "paper", "malicious fraction over seeds"});
    bands.add_row({"limewire", "68%",
                   bench::format_band(lw_sweep, "prevalence.malicious_fraction")});
    bands.add_row({"openft", "3%",
                   bench::format_band(ft_sweep, "prevalence.malicious_fraction")});
    std::cout << "-- seed sweep (" << cli.replications << " replications) --\n"
              << bands.render() << "\n";
  }

  bench::dump_metrics_json("e1_limewire", lw);
  bench::dump_metrics_json("e1_openft", ft);
  return 0;
}
