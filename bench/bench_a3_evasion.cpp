// A3 — Evasion ablation: what happens to each defense when the dominant
// query-echo worms repack themselves per copy (unique size and hash per
// response)? The paper's size-based filter relies on malware shipping a
// handful of fixed-size variants; this bench quantifies how the defense
// landscape shifts when that assumption is attacked.
//
//   base        — calibrated 2006 behaviour (fixed variant sizes)
//   polymorphic — echo strains pad every served copy (up to 4 KiB jitter)
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/study.h"
#include "filter/evaluation.h"
#include "filter/hash_blocklist.h"
#include "filter/size_filter.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

p2p::core::LimewireStudyConfig ablation_config(std::uint32_t jitter) {
  auto cfg = p2p::core::limewire_quick();
  cfg.population.leaves = 240;
  cfg.population.ultrapeers = 12;
  cfg.crawl.duration = p2p::sim::SimDuration::hours(24);
  cfg.crawl.query_interval = p2p::sim::SimDuration::seconds(120);
  cfg.population.polymorphic_jitter = jitter;
  return cfg;
}

}  // namespace

int main() {
  using namespace p2p;
  std::cout << "=== A3: polymorphic-repacking evasion (24h crawls) ===\n\n";

  util::Table t({"population", "distinct mal. contents", "size-filter det.",
                 "hash-blocklist det.", "FP rate (size)"});
  for (std::uint32_t jitter : {0u, 4096u}) {
    auto result = core::run_limewire_study(ablation_config(jitter));
    bench::dump_metrics_json(jitter == 0 ? "a3_evasion_base" : "a3_evasion_poly",
                             result);
    auto split = filter::split_at_fraction(result.records, 0.4);
    auto size_f = filter::SizeFilter::learn(split.training);
    auto hash_f = filter::HashBlocklistFilter::learn(split.training, 3);
    auto size_e = filter::evaluate(size_f, split.evaluation);
    auto hash_e = filter::evaluate(hash_f, split.evaluation);

    auto ranking = analysis::strain_ranking(result.records);
    std::uint64_t contents = 0;
    for (const auto& s : ranking) contents += s.distinct_contents;

    t.add_row({jitter == 0 ? "base (fixed variants)" : "polymorphic (4KiB jitter)",
               util::format_count(contents), util::format_pct(size_e.detection_rate()),
               util::format_pct(hash_e.detection_rate()),
               util::format_pct(size_e.false_positive_rate(), 3)});
  }
  std::cout << t.render() << "\n";
  std::cout << "Expected shape: both size and hash defenses collapse against "
               "per-copy repacking; only content (signature) scanning holds. "
               "The paper's filter works because 2006-era P2P malware did not "
               "repack per response.\n";
  return 0;
}
