// Sharded-engine scaling bench: events/sec of a cross-shard message storm
// at 1/2/4/8 shards, plus the wall time of a million-peer LimeWire --quick
// study — the capacity claim the struct-of-arrays peer table and per-shard
// arenas exist to back.
//
// Emits a JSON report (stdout or --json <path>); the committed
// BENCH_shard.json at the repo root pins the baseline. --check enforces the
// acceptance floor (>= 2x events/sec at 4 shards vs 1) only when the
// machine actually has >= 4 hardware threads — the ratio is meaningless on
// a 1-2 core runner, and the report records the core count so a reader can
// tell which regime produced it. The executed-event counts must match
// across shard counts unconditionally: that part is the determinism
// contract, not a perf number, and --check always asserts it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "sim/sharded_engine.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Engine workload: a fixed population of entities relaying messages to
// hashed destinations at lookahead-plus-jitter delays. Every event posts
// exactly one successor, so the in-flight population stays constant and the
// executed count is a pure function of (entities, horizon) — identical at
// every shard count.
// ---------------------------------------------------------------------------

p2p::sim::ShardedEngine* g_engine = nullptr;
std::int64_t g_horizon_ms = 0;
std::size_t g_entities = 0;

void pump(std::uint32_t id, std::uint32_t step) {
  std::uint64_t state = (std::uint64_t{id} << 32) | step;
  std::uint64_t h = p2p::util::splitmix64(state);
  auto dst = static_cast<p2p::sim::ShardedEngine::EntityId>(h % g_entities);
  std::int64_t delay = 20 + static_cast<std::int64_t>((h >> 32) % 200);
  p2p::sim::SimTime at =
      g_engine->now() + p2p::sim::SimDuration::millis(delay);
  if (at.millis() > g_horizon_ms) return;
  g_engine->post(dst, at, [dst, step] { pump(dst, step + 1); });
}

struct EngineRun {
  std::size_t shards = 0;
  std::uint64_t executed = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

EngineRun run_engine_workload(std::size_t shards, std::size_t entities,
                              std::int64_t horizon_ms) {
  p2p::sim::ShardedEngine::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = p2p::sim::SimDuration::millis(20);
  p2p::sim::ShardedEngine engine(cfg);
  for (std::size_t i = 0; i < entities; ++i) {
    engine.add_entity(/*stable_key=*/0x9e3779b97f4a7c15ull ^ i);
  }
  g_engine = &engine;
  g_entities = entities;
  g_horizon_ms = horizon_ms;
  for (std::size_t i = 0; i < entities; ++i) {
    auto id = static_cast<std::uint32_t>(i);
    engine.post(id, p2p::sim::SimTime::at_millis(static_cast<std::int64_t>(i % 20)),
                [id] { pump(id, 0); });
  }
  Clock::time_point start = Clock::now();
  engine.run_until(p2p::sim::SimTime::at_millis(horizon_ms));
  EngineRun run;
  run.shards = shards;
  run.wall_seconds = seconds_since(start);
  run.executed = engine.executed();
  run.events_per_sec =
      run.wall_seconds > 0.0 ? static_cast<double>(run.executed) / run.wall_seconds
                             : 0.0;
  g_engine = nullptr;
  return run;
}

// Peak resident set in MiB (VmHWM), or 0 where /proc is unavailable.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--json <path>] [--skip-million]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool skip_million = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--skip-million") == 0) {
      skip_million = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  unsigned cores = std::thread::hardware_concurrency();
  constexpr std::size_t kEntities = 4096;
  constexpr std::int64_t kHorizonMs = 60'000;

  std::vector<EngineRun> runs;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    EngineRun run = run_engine_workload(shards, kEntities, kHorizonMs);
    std::printf("engine: shards=%zu  events=%llu  wall=%.3fs  %.0f events/s\n",
                run.shards, static_cast<unsigned long long>(run.executed),
                run.wall_seconds, run.events_per_sec);
    runs.push_back(run);
  }
  double speedup4 = runs[2].events_per_sec / runs[0].events_per_sec;
  std::printf("engine: 4-shard speedup %.2fx on %u hardware thread(s)\n",
              speedup4, cores);

  bool ok = true;
  for (const EngineRun& run : runs) {
    if (run.executed != runs[0].executed) {
      std::fprintf(stderr,
                   "FAIL: executed count diverged at %zu shards (%llu vs %llu)\n",
                   run.shards, static_cast<unsigned long long>(run.executed),
                   static_cast<unsigned long long>(runs[0].executed));
      ok = false;
    }
  }

  double million_wall = 0.0;
  double million_rss = 0.0;
  std::uint64_t million_events = 0;
  std::size_t million_responses = 0;
  if (!skip_million) {
    p2p::core::LimewireStudyConfig cfg = p2p::core::limewire_quick();
    cfg.population.leaves = 1'000'000;
    cfg.shards = 4;
    Clock::time_point start = Clock::now();
    p2p::core::StudyResult result = p2p::core::run_limewire_study(cfg);
    million_wall = seconds_since(start);
    million_events = result.events_executed;
    million_responses = result.records.size();
    million_rss = peak_rss_mib();
    std::printf(
        "million-peer --quick: wall=%.1fs  events=%llu  responses=%zu  "
        "peak_rss=%.0f MiB\n",
        million_wall, static_cast<unsigned long long>(million_events),
        million_responses, million_rss);
  }

  if (check) {
    if (cores >= 4 && speedup4 < 2.0) {
      std::fprintf(stderr,
                   "FAIL: 4-shard speedup %.2fx < 2.0x floor (%u cores)\n",
                   speedup4, cores);
      ok = false;
    } else if (cores < 4) {
      std::printf(
          "check: %u hardware thread(s) < 4 — speedup floor not enforced\n",
          cores);
    }
    if (!skip_million && million_responses == 0) {
      std::fprintf(stderr, "FAIL: million-peer study produced no responses\n");
      ok = false;
    }
  }

  char buf[2048];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"format\":\"p2p-bench-shard-1\",\"cores\":%u,"
      "\"engine\":{\"entities\":%zu,\"horizon_ms\":%lld,\"events\":%llu,"
      "\"per_shards\":["
      "{\"shards\":1,\"events_per_sec\":%.0f},"
      "{\"shards\":2,\"events_per_sec\":%.0f},"
      "{\"shards\":4,\"events_per_sec\":%.0f},"
      "{\"shards\":8,\"events_per_sec\":%.0f}],"
      "\"speedup_4_shards\":%.2f},"
      "\"million_peer\":{\"peers\":1000000,\"shards\":4,"
      "\"wall_seconds\":%.1f,\"events\":%llu,\"responses\":%zu,"
      "\"peak_rss_mib\":%.0f}}\n",
      cores, kEntities, static_cast<long long>(kHorizonMs),
      static_cast<unsigned long long>(runs[0].executed),
      runs[0].events_per_sec, runs[1].events_per_sec, runs[2].events_per_sec,
      runs[3].events_per_sec, speedup4, million_wall,
      static_cast<unsigned long long>(million_events), million_responses,
      million_rss);
  if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) {
    std::fprintf(stderr, "json overflow\n");
    return 1;
  }
  if (json_path.empty()) {
    std::fputs(buf, stdout);
  } else {
    std::ofstream out(json_path, std::ios::binary);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
