// E2 — Concentration of malicious responses among few strains.
//
// Paper (abstract): in LimeWire the top-3 strains account for 99% of
// malicious responses; in OpenFT, 75% (top strain alone: 67%).
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::SweepCli cli;
  if (!bench::parse_sweep_cli(argc, argv, cli)) return 2;
  std::cout << "=== E2: top-k malware concentration ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto ft = bench::openft_study_cached();

  auto lw_rank = analysis::strain_ranking(lw.records);
  auto ft_rank = analysis::strain_ranking(ft.records);
  core::print_strain_ranking(std::cout, "limewire", lw_rank);
  core::print_strain_ranking(std::cout, "openft", ft_rank);

  util::Table cmp({"metric", "paper", "measured"});
  cmp.add_row({"limewire top-3 share", "99%",
               util::format_pct(analysis::topk_share(lw_rank, 3))});
  cmp.add_row({"openft top-1 share", "67%",
               util::format_pct(analysis::topk_share(ft_rank, 1))});
  cmp.add_row({"openft top-3 share", "75%",
               util::format_pct(analysis::topk_share(ft_rank, 3))});
  std::cout << "-- paper vs measured --\n" << cmp.render() << "\n";

  if (cli.replications > 0) {
    auto lw_sweep = bench::run_cached_sweep(sweep::NetworkKind::kLimewire,
                                            cli.replications, cli.jobs);
    auto ft_sweep = bench::run_cached_sweep(sweep::NetworkKind::kOpenFt,
                                            cli.replications, cli.jobs);
    util::Table bands({"metric", "paper", "over seeds"});
    bands.add_row({"limewire top-3 share", "99%",
                   bench::format_band(lw_sweep, "strains.top3_share")});
    bands.add_row({"openft top-1 share", "67%",
                   bench::format_band(ft_sweep, "strains.top1_share")});
    bands.add_row({"openft top-3 share", "75%",
                   bench::format_band(ft_sweep, "strains.top3_share")});
    std::cout << "-- seed sweep (" << cli.replications << " replications) --\n"
              << bands.render() << "\n";
  }

  bench::dump_metrics_json("e2_limewire", lw);
  bench::dump_metrics_json("e2_openft", ft);
  return 0;
}
