// A2 — Gnutella protocol ablation: query-routing (QRP) on/off and query-TTL
// sweep. Measures the overlay cost (messages delivered per query) against
// the crawler's yield (responses per query) — the design trade-offs that
// shape what a measurement client can see.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/study.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

p2p::core::LimewireStudyConfig ablation_base() {
  auto cfg = p2p::core::limewire_quick();
  cfg.population.ultrapeers = 12;
  cfg.population.leaves = 240;
  cfg.crawl.duration = p2p::sim::SimDuration::hours(6);
  cfg.crawl.query_interval = p2p::sim::SimDuration::seconds(120);
  return cfg;
}

struct Row {
  std::string label;
  p2p::core::StudyResult result;
};

}  // namespace

int main() {
  using namespace p2p;
  std::cout << "=== A2: Gnutella QRP / TTL ablation (6h crawls, 240 leaves) ===\n\n";

  std::vector<Row> rows;

  for (bool qrp : {true, false}) {
    auto cfg = ablation_base();
    cfg.population.ultrapeer_config.use_qrp = qrp;
    rows.push_back({std::string("qrp=") + (qrp ? "on " : "off") + " ttl=4",
                    core::run_limewire_study(cfg)});
  }
  for (std::uint8_t ttl : {2, 3, 5, 7}) {
    auto cfg = ablation_base();
    cfg.crawl.query_ttl = ttl;
    rows.push_back({"qrp=on  ttl=" + std::to_string(ttl),
                    core::run_limewire_study(cfg)});
  }

  util::Table t({"config", "messages", "msgs/query", "responses/query",
                 "mal. fraction"});
  for (const auto& row : rows) {
    const auto& r = row.result;
    auto s = analysis::prevalence(r.records);
    double queries = static_cast<double>(r.crawl_stats.queries_sent);
    t.add_row({row.label, util::format_count(r.messages_delivered),
               queries > 0 ? std::to_string(static_cast<int>(
                                 static_cast<double>(r.messages_delivered) / queries))
                           : "-",
               queries > 0 ? std::to_string(static_cast<int>(
                                 static_cast<double>(r.crawl_stats.responses) / queries))
                           : "-",
               util::format_pct(s.malicious_fraction())});
  }
  std::cout << t.render() << "\n";
  bench::dump_metrics_json("a2_gnutella_ablation", rows.back().result);
  std::cout << "Expected shape: disabling QRP floods every leaf with every "
               "query (more messages, same yield); raising TTL adds overlay "
               "cost with diminishing reach in a 12-UP mesh.\n";
  return 0;
}
