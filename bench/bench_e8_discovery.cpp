// E8 — Strain discovery curve: cumulative distinct malware strains observed
// per day of crawling. The paper's "most infections are from a very small
// number of distinct malware" implies the curve saturates early.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

void report(const std::string& network, const p2p::core::StudyResult& study) {
  using namespace p2p;
  auto series = analysis::daily_series(study.records);
  util::Table t({"day", "new labeled responses", "cumulative distinct strains"});
  std::uint64_t prev = 0;
  int saturation_day = -1;
  std::uint64_t final_count = series.empty() ? 0 : series.back().cumulative_strains;
  for (const auto& d : series) {
    t.add_row({std::to_string(d.day), util::format_count(d.labeled),
               std::to_string(d.cumulative_strains)});
    if (saturation_day < 0 && d.cumulative_strains == final_count) {
      saturation_day = d.day;
    }
    prev = d.cumulative_strains;
  }
  (void)prev;
  std::cout << "== strain discovery (" << network << ") ==\n" << t.render();
  std::cout << "distinct strains at month end: " << final_count
            << "; discovery saturated on day " << saturation_day << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== E8: cumulative strain discovery ===\n\n";
  auto lw = p2p::bench::limewire_study_cached();
  auto ft = p2p::bench::openft_study_cached();
  report("limewire", lw);
  report("openft", ft);
  p2p::bench::dump_metrics_json("e8_limewire", lw);
  p2p::bench::dump_metrics_json("e8_openft", ft);
  return 0;
}
