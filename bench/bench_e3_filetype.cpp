// E3 — Malware prevalence split by container type (executables vs
// archives), per network. The paper's study set is "archives and
// executables"; this table breaks the headline number down by type and
// adds the magic-vs-extension cross-check (renamed payloads).
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

void report(const std::string& network, const p2p::core::StudyResult& study) {
  using namespace p2p;
  auto s = analysis::prevalence(study.records);
  util::Table t({"type", "labeled", "malicious", "fraction"});
  t.add_row({"executable", util::format_count(s.exe_labeled),
             util::format_count(s.exe_infected), util::format_pct(s.exe_fraction())});
  t.add_row({"archive", util::format_count(s.archive_labeled),
             util::format_count(s.archive_infected),
             util::format_pct(s.archive_fraction())});
  t.add_row({"combined", util::format_count(s.labeled), util::format_count(s.infected),
             util::format_pct(s.malicious_fraction())});
  std::cout << "== by container type (" << network << ") ==\n" << t.render() << "\n";

  // Cross-check: advertised extension vs content magic for labeled
  // malicious responses (zip-wrapped payloads show up as archives both
  // ways; bare worms as executables).
  std::map<std::pair<std::string, std::string>, std::uint64_t> cross;
  for (const auto& r : study.records) {
    if (!r.downloaded || !r.infected) continue;
    cross[{std::string(files::to_string(r.type_by_name)),
           std::string(files::to_string(r.type_by_magic))}]++;
  }
  util::Table x({"advertised", "content magic", "malicious responses"});
  for (const auto& [key, count] : cross) {
    x.add_row({key.first, key.second, util::format_count(count)});
  }
  std::cout << "== advertised vs actual type (" << network << ", malicious) ==\n"
            << x.render() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== E3: malware by container type ===\n\n";
  auto lw = p2p::bench::limewire_study_cached();
  auto ft = p2p::bench::openft_study_cached();
  report("limewire", lw);
  report("openft", ft);
  p2p::bench::dump_metrics_json("e3_limewire", lw);
  p2p::bench::dump_metrics_json("e3_openft", ft);
  return 0;
}
