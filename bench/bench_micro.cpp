// Micro-benchmarks (google-benchmark) for the hot inner loops: signature
// scanning, archive-aware scanning, hashing, wire serialization/parsing,
// QRP hashing/matching, and keyword matching. These bound the throughput
// of the measurement pipeline itself.
#include <benchmark/benchmark.h>

#include <fstream>

#include "files/hash.h"
#include "files/zip.h"
#include "gnutella/message.h"
#include "gnutella/qrp.h"
#include "malware/builder.h"
#include "malware/catalogs.h"
#include "malware/scanner.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace p2p;

util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

void BM_Sha1(benchmark::State& state) {
  auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(files::sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Md5(benchmark::State& state) {
  auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(files::md5(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScanClean(benchmark::State& state) {
  auto catalog = malware::limewire_catalog();
  malware::Scanner scanner(catalog.strains);
  auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScanClean)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScanInfectedZip(benchmark::State& state) {
  auto catalog = malware::limewire_catalog();
  malware::Scanner scanner(catalog.strains);
  malware::ArtifactStore store(catalog.strains, 7);
  // Troj.Keymaker.C ships zip-wrapped (strain id 2).
  auto artifact = store.artifacts(2).front();
  for (auto _ : state) {
    auto result = scanner.scan(artifact->bytes());
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(artifact->size()));
}
BENCHMARK(BM_ScanInfectedZip);

void BM_ZipPackUnpack(benchmark::State& state) {
  std::vector<files::ZipMember> members;
  members.push_back({"payload.exe", random_bytes(50'000, 4)});
  for (auto _ : state) {
    auto archive = files::zip_pack(members);
    auto out = files::zip_unpack(archive);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ZipPackUnpack);

void BM_QueryHitSerialize(benchmark::State& state) {
  util::Rng rng(5);
  gnutella::QueryHit hit;
  hit.addr = {util::Ipv4(1, 2, 3, 4), 6346};
  hit.servent_guid = gnutella::Guid::random(rng);
  for (int i = 0; i < state.range(0); ++i) {
    gnutella::QueryHitResult r;
    r.index = static_cast<std::uint32_t>(i);
    r.size = 58'368;
    r.filename = "some shared file number " + std::to_string(i) + ".exe";
    hit.results.push_back(std::move(r));
  }
  auto msg = gnutella::make_query_hit(gnutella::Guid::random(rng), 4, hit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnutella::serialize(msg));
  }
}
BENCHMARK(BM_QueryHitSerialize)->Arg(1)->Arg(10)->Arg(100);

void BM_QueryHitParse(benchmark::State& state) {
  util::Rng rng(5);
  gnutella::QueryHit hit;
  hit.servent_guid = gnutella::Guid::random(rng);
  for (int i = 0; i < state.range(0); ++i) {
    gnutella::QueryHitResult r;
    r.filename = "file " + std::to_string(i) + ".exe";
    hit.results.push_back(std::move(r));
  }
  auto wire = gnutella::serialize(
      gnutella::make_query_hit(gnutella::Guid::random(rng), 4, hit));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnutella::parse(wire));
  }
}
BENCHMARK(BM_QueryHitParse)->Arg(1)->Arg(10)->Arg(100);

void BM_QrpHash(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnutella::qrp_hash("somekeyword", 13));
  }
}
BENCHMARK(BM_QrpHash);

void BM_QrtMatch(benchmark::State& state) {
  gnutella::QueryRouteTable qrt(13);
  for (int i = 0; i < 500; ++i) {
    qrt.add_keywords("file number " + std::to_string(i) + " content");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qrt.matches("file number 250 content"));
  }
}
BENCHMARK(BM_QrtMatch);

void BM_KeywordMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::keyword_match("blue horizon", "blue horizon - midnight rain (live).mp3"));
  }
}
BENCHMARK(BM_KeywordMatch);

// -- Observability overhead: the cost of one record on the hot path --------

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::MetricsRegistry::global().counter("micro.counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "micro.histogram", obs::HistogramSpec::exponential(obs::Unit::kBytes));
  std::int64_t v = 0;
  for (auto _ : state) {
    h.record(v++);
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsTraceDisabled(benchmark::State& state) {
  // The common case: macro hits the component-enable check and bails before
  // materializing any field.
  obs::TraceBuffer::global().disable_all();
  for (auto _ : state) {
    P2P_TRACE(obs::Component::kCore, "noop", util::SimTime::zero(),
              obs::tf("k", 1));
    benchmark::DoNotOptimize(&obs::TraceBuffer::global());
  }
}
BENCHMARK(BM_ObsTraceDisabled);

}  // namespace

// Expanded BENCHMARK_MAIN so the run also leaves a metrics artifact (the
// BM_Scan* fixtures feed scanner.* counters through the normal call sites).
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::ofstream out("bench_metrics_micro.json");
  if (out) {
    p2p::obs::write_json(out, p2p::obs::MetricsRegistry::global().snapshot());
  }
  return 0;
}
