// Shared infrastructure for the experiment benches: run a standard study
// once and cache its response log on disk, so each of the E1..E8 binaries
// regenerating a different paper table doesn't redo the same month-long
// crawl. The cache key includes the config seed and duration; delete
// bench_cache_*.bin to force a fresh crawl.
#pragma once

#include <string>

#include "core/study.h"

namespace p2p::bench {

/// Run (or load) the standard LimeWire study.
core::StudyResult limewire_study_cached();

/// Run (or load) the standard OpenFT study.
core::StudyResult openft_study_cached();

/// Cache file path for a study name + seed (in the current directory).
std::string cache_path(const std::string& name, std::uint64_t seed);

/// Serialize / deserialize a StudyResult's records + counters + metrics
/// snapshot.
bool save_study(const std::string& path, const core::StudyResult& result);
bool load_study(const std::string& path, core::StudyResult& result);

/// Write the study's metrics snapshot to `bench_metrics_<bench>.json` in the
/// current directory (deterministic: wall-clock histograms excluded). Every
/// bench binary calls this so each run leaves a machine-readable metrics
/// artifact beside its table output. Returns the path written, or "" on
/// failure.
std::string dump_metrics_json(const std::string& bench,
                              const core::StudyResult& result);

}  // namespace p2p::bench
