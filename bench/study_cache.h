// Shared infrastructure for the experiment benches: run a standard study
// once and cache its response log on disk, so each of the E1..E8 binaries
// regenerating a different paper table doesn't redo the same month-long
// crawl. Cache files are ordinary trace files (src/trace, see DESIGN.md):
// the header embeds the core::config_hash of the study that produced them,
// and loads validate it — so an edited preset can never silently serve a
// stale crawl. Delete bench_cache_*.p2pt to force a fresh crawl.
#pragma once

#include <string>

#include "core/study.h"
#include "sweep/sweep.h"

namespace p2p::bench {

/// Run (or load) the standard LimeWire study.
core::StudyResult limewire_study_cached();

/// Run (or load) the standard OpenFT study.
core::StudyResult openft_study_cached();

/// Run (or load) one sweep replication, cached by its config hash. Safe to
/// call concurrently for distinct tasks (distinct files); plug into
/// sweep::SweepOptions::runner to make bench sweeps resumable.
core::StudyResult sweep_task_cached(const sweep::StudyTask& task);

/// Cache file path for a study name + seed (in the current directory).
std::string cache_path(const std::string& name, std::uint64_t seed);

/// Cache file path for a sweep replication, keyed by config hash.
std::string sweep_cache_path(std::uint64_t config_hash);

/// Serialize / deserialize a StudyResult's records + counters + metrics
/// snapshot as a trace file (thin wrappers over core::save_study_trace /
/// load_study_trace). `config_hash` is embedded on save; a load with a
/// non-zero `expected_config_hash` fails (cache miss) when the file was
/// produced by a different configuration.
bool save_study(const std::string& path, const core::StudyResult& result,
                std::uint64_t config_hash = 0);
bool load_study(const std::string& path, core::StudyResult& result,
                std::uint64_t expected_config_hash = 0);

/// `--sweep N [--jobs J]` arguments shared by the experiment benches: when
/// `replications > 0` the bench runs an N-seed sweep of the standard preset
/// (cached per seed) and reports CI bands instead of a single draw.
struct SweepCli {
  std::size_t replications = 0;
  std::size_t jobs = 1;
};

/// Parses the bench sweep flags. Returns false (after printing usage to
/// stderr) on an unknown flag or malformed value — callers exit 2.
bool parse_sweep_cli(int argc, char** argv, SweepCli& cli);

/// N-seed sweep of the standard preset (seeds base, base+1, ...), every
/// replication cached by config hash via sweep_task_cached.
sweep::SweepResult run_cached_sweep(sweep::NetworkKind network,
                                    std::size_t replications, std::size_t jobs);

/// One "metric: mean ± CI [min, max]" band row for the bench tables; empty
/// string when the sweep has no such metric.
std::string format_band(const sweep::SweepResult& result, std::string_view metric);

/// Write the study's metrics snapshot to `bench_metrics_<bench>.json` in the
/// current directory (deterministic: wall-clock histograms excluded). Every
/// bench binary calls this so each run leaves a machine-readable metrics
/// artifact beside its table output. Returns the path written, or "" on
/// failure.
std::string dump_metrics_json(const std::string& bench,
                              const core::StudyResult& result);

}  // namespace p2p::bench
