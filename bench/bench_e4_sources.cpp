// E4 — Sources of malicious responses.
//
// Paper (abstract): 28% of malicious LimeWire responses come from private
// address ranges; OpenFT's top strain (67% of malicious responses) is
// served by a single host.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace p2p;
  std::cout << "=== E4: sources of malicious responses ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto ft = bench::openft_study_cached();

  auto lw_src = analysis::sources(lw.records);
  auto lw_conc = analysis::strain_source_concentration(lw.records);
  core::print_sources(std::cout, "limewire", lw_src, lw_conc);

  auto ft_src = analysis::sources(ft.records);
  auto ft_conc = analysis::strain_source_concentration(ft.records);
  core::print_sources(std::cout, "openft", ft_src, ft_conc);

  util::Table cmp({"metric", "paper", "measured"});
  cmp.add_row({"limewire private-range share", "28%",
               util::format_pct(lw_src.private_fraction)});
  std::string top_hosts = ft_conc.empty()
                              ? "n/a"
                              : util::format_count(ft_conc[0].distinct_sources) +
                                    " host(s), top-host share " +
                                    util::format_pct(ft_conc[0].top_source_share);
  cmp.add_row({"openft top strain served by", "a single host", top_hosts});
  std::cout << "-- paper vs measured --\n" << cmp.render() << "\n";
  bench::dump_metrics_json("e4_limewire", lw);
  bench::dump_metrics_json("e4_openft", ft);
  return 0;
}
