// A1 — Ablation of the size filter's two knobs: how many top strains it
// learns sizes from, and how many sizes it keeps per strain. Explores the
// detection/false-positive trade-off behind the paper's ">99% detection,
// very low false positives" operating point.
#include <iostream>

#include "bench/study_cache.h"
#include "filter/evaluation.h"
#include "filter/size_filter.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace p2p;
  std::cout << "=== A1: size-filter parameter sweep (LimeWire crawl) ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto split = filter::split_at_fraction(lw.records, 0.25);

  util::Table t({"top strains", "sizes/strain", "blocked sizes", "detection",
                 "FP rate"});
  for (std::size_t top : {1, 2, 3, 5, 10}) {
    for (std::size_t per : {1, 2, 3, 5}) {
      filter::SizeFilterConfig cfg;
      cfg.top_strains = top;
      cfg.sizes_per_strain = per;
      auto f = filter::SizeFilter::learn(split.training, cfg);
      auto e = filter::evaluate(f, split.evaluation);
      t.add_row({std::to_string(top), std::to_string(per),
                 std::to_string(f.blocked_sizes().size()),
                 util::format_pct(e.detection_rate()),
                 util::format_pct(e.false_positive_rate(), 3)});
    }
  }
  std::cout << t.render() << "\n";
  std::cout << "(paper operating point: top-3 strains — >99% detection, very "
               "low FP)\n";
  bench::dump_metrics_json("a1_sizefilter_ablation", lw);
  return 0;
}
