#include "bench/study_cache.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/export.h"
#include "util/bytes.h"

namespace p2p::bench {

namespace {

constexpr std::uint32_t kMagic = 0x50324243;  // "P2BC"
constexpr std::uint32_t kVersion = 5;  // v5: + config hash (staleness check)

void write_string(util::ByteWriter& w, const std::string& s) {
  w.u32le(static_cast<std::uint32_t>(s.size()));
  w.str(s);
}

std::string read_string(util::ByteReader& r) {
  std::uint32_t n = r.u32le();
  return r.str(n);
}

void write_record(util::ByteWriter& w, const crawler::ResponseRecord& rec) {
  w.u64le(rec.id);
  write_string(w, rec.network);
  w.u64le(static_cast<std::uint64_t>(rec.at.millis()));
  write_string(w, rec.query);
  write_string(w, rec.query_category);
  write_string(w, rec.filename);
  w.u64le(rec.size);
  w.u32le(rec.source_ip.value());
  w.u16le(rec.source_port);
  write_string(w, rec.source_key);
  w.u8(rec.source_firewalled ? 1 : 0);
  write_string(w, rec.content_key);
  w.u8(rec.download_attempted ? 1 : 0);
  w.u8(rec.downloaded ? 1 : 0);
  w.u8(rec.infected ? 1 : 0);
  w.u32le(rec.strain);
  write_string(w, rec.strain_name);
  w.u8(static_cast<std::uint8_t>(rec.type_by_magic));
}

crawler::ResponseRecord read_record(util::ByteReader& r) {
  crawler::ResponseRecord rec;
  rec.id = r.u64le();
  rec.network = read_string(r);
  rec.at = util::SimTime::at_millis(static_cast<std::int64_t>(r.u64le()));
  rec.query = read_string(r);
  rec.query_category = read_string(r);
  rec.filename = read_string(r);
  rec.type_by_name = files::classify_extension(rec.filename);
  rec.size = r.u64le();
  rec.source_ip = util::Ipv4{r.u32le()};
  rec.source_port = r.u16le();
  rec.source_key = read_string(r);
  rec.source_firewalled = r.u8() != 0;
  rec.content_key = read_string(r);
  rec.download_attempted = r.u8() != 0;
  rec.downloaded = r.u8() != 0;
  rec.infected = r.u8() != 0;
  rec.strain = r.u32le();
  rec.strain_name = read_string(r);
  rec.type_by_magic = static_cast<files::FileType>(r.u8());
  return rec;
}

void write_i64(util::ByteWriter& w, std::int64_t v) {
  w.u64le(static_cast<std::uint64_t>(v));
}

std::int64_t read_i64(util::ByteReader& r) {
  return static_cast<std::int64_t>(r.u64le());
}

void write_double(util::ByteWriter& w, double v) {
  w.u64le(std::bit_cast<std::uint64_t>(v));
}

double read_double(util::ByteReader& r) { return std::bit_cast<double>(r.u64le()); }

void write_snapshot(util::ByteWriter& w, const obs::MetricsSnapshot& snap) {
  w.u64le(snap.counters.size());
  for (const auto& c : snap.counters) {
    write_string(w, c.name);
    w.u64le(c.value);
  }
  w.u64le(snap.gauges.size());
  for (const auto& g : snap.gauges) {
    write_string(w, g.name);
    write_i64(w, g.value);
    write_i64(w, g.max);
  }
  w.u64le(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    write_string(w, h.name);
    w.u8(static_cast<std::uint8_t>(h.unit));
    w.u8(h.wall_clock ? 1 : 0);
    w.u64le(h.count);
    write_i64(w, h.sum);
    write_i64(w, h.min);
    write_i64(w, h.max);
    write_double(w, h.p50);
    write_double(w, h.p90);
    write_double(w, h.p99);
    w.u64le(h.buckets.size());
    for (const auto& [lower, count] : h.buckets) {
      write_i64(w, lower);
      w.u64le(count);
    }
  }
}

obs::MetricsSnapshot read_snapshot(util::ByteReader& r) {
  obs::MetricsSnapshot snap;
  std::uint64_t nc = r.u64le();
  snap.counters.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) {
    obs::MetricsSnapshot::CounterSample c;
    c.name = read_string(r);
    c.value = r.u64le();
    snap.counters.push_back(std::move(c));
  }
  std::uint64_t ng = r.u64le();
  snap.gauges.reserve(ng);
  for (std::uint64_t i = 0; i < ng; ++i) {
    obs::MetricsSnapshot::GaugeSample g;
    g.name = read_string(r);
    g.value = read_i64(r);
    g.max = read_i64(r);
    snap.gauges.push_back(std::move(g));
  }
  std::uint64_t nh = r.u64le();
  snap.histograms.reserve(nh);
  for (std::uint64_t i = 0; i < nh; ++i) {
    obs::MetricsSnapshot::HistogramSample h;
    h.name = read_string(r);
    h.unit = static_cast<obs::Unit>(r.u8());
    h.wall_clock = r.u8() != 0;
    h.count = r.u64le();
    h.sum = read_i64(r);
    h.min = read_i64(r);
    h.max = read_i64(r);
    h.p50 = read_double(r);
    h.p90 = read_double(r);
    h.p99 = read_double(r);
    std::uint64_t nb = r.u64le();
    h.buckets.reserve(nb);
    for (std::uint64_t j = 0; j < nb; ++j) {
      std::int64_t lower = read_i64(r);
      std::uint64_t count = r.u64le();
      h.buckets.emplace_back(lower, count);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace

std::string cache_path(const std::string& name, std::uint64_t seed) {
  return "bench_cache_" + name + "_" + std::to_string(seed) + ".bin";
}

std::string sweep_cache_path(std::uint64_t config_hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(config_hash));
  return std::string("bench_cache_sweep_") + buf + ".bin";
}

bool save_study(const std::string& path, const core::StudyResult& result,
                std::uint64_t config_hash) {
  util::ByteWriter w;
  w.u32le(kMagic);
  w.u32le(kVersion);
  w.u64le(config_hash);
  w.u64le(result.events_executed);
  w.u64le(result.messages_delivered);
  w.u64le(result.bytes_delivered);
  w.u64le(result.churn_joins);
  w.u64le(result.churn_leaves);
  w.u64le(result.crawl_stats.queries_sent);
  w.u64le(result.crawl_stats.responses);
  w.u64le(result.crawl_stats.study_responses);
  w.u64le(result.crawl_stats.downloads_ok);
  w.u64le(result.crawl_stats.downloads_failed);
  write_snapshot(w, result.metrics);
  w.u64le(static_cast<std::uint64_t>(result.records.size()));
  for (const auto& rec : result.records) write_record(w, rec);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
  return static_cast<bool>(out);
}

bool load_study(const std::string& path, core::StudyResult& result,
                std::uint64_t expected_config_hash) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  util::Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    util::ByteReader r(data);
    if (r.u32le() != kMagic || r.u32le() != kVersion) return false;
    std::uint64_t stored_hash = r.u64le();
    if (expected_config_hash != 0 && stored_hash != expected_config_hash) {
      return false;  // produced by a different config: stale
    }
    result.events_executed = r.u64le();
    result.messages_delivered = r.u64le();
    result.bytes_delivered = r.u64le();
    result.churn_joins = r.u64le();
    result.churn_leaves = r.u64le();
    result.crawl_stats.queries_sent = r.u64le();
    result.crawl_stats.responses = r.u64le();
    result.crawl_stats.study_responses = r.u64le();
    result.crawl_stats.downloads_ok = r.u64le();
    result.crawl_stats.downloads_failed = r.u64le();
    result.metrics = read_snapshot(r);
    std::uint64_t n = r.u64le();
    result.records.clear();
    result.records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) result.records.push_back(read_record(r));
    return r.empty();
  } catch (const util::BufferUnderflow&) {
    return false;
  }
}

std::string dump_metrics_json(const std::string& bench,
                              const core::StudyResult& result) {
  std::string path = "bench_metrics_" + bench + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  obs::write_json(out, result.metrics);
  if (out) std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
  return out ? path : "";
}

core::StudyResult limewire_study_cached() {
  auto cfg = core::limewire_standard();
  std::string path = cache_path("limewire", cfg.seed);
  std::uint64_t hash = core::config_hash(cfg);
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] loaded %zu LimeWire records from %s\n",
                 result.records.size(), path.c_str());
    result.strain_catalog = malware::limewire_catalog();
    return result;
  }
  std::fprintf(stderr,
               "[study-cache] running standard LimeWire study (30 simulated "
               "days; ~1 minute)...\n");
  result = core::run_limewire_study(cfg);
  result.strain_catalog = malware::limewire_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved to %s\n", path.c_str());
  }
  return result;
}

core::StudyResult openft_study_cached() {
  auto cfg = core::openft_standard();
  std::string path = cache_path("openft", cfg.seed);
  std::uint64_t hash = core::config_hash(cfg);
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] loaded %zu OpenFT records from %s\n",
                 result.records.size(), path.c_str());
    result.strain_catalog = malware::openft_catalog();
    return result;
  }
  std::fprintf(stderr,
               "[study-cache] running standard OpenFT study (30 simulated "
               "days; ~15 seconds)...\n");
  result = core::run_openft_study(cfg);
  result.strain_catalog = malware::openft_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved to %s\n", path.c_str());
  }
  return result;
}

core::StudyResult sweep_task_cached(const sweep::StudyTask& task) {
  std::uint64_t hash = task.config_hash();
  std::string path = sweep_cache_path(hash);
  bool limewire = task.network == sweep::NetworkKind::kLimewire;
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    result.strain_catalog =
        limewire ? malware::limewire_catalog() : malware::openft_catalog();
    return result;
  }
  result = limewire ? core::run_limewire_study(task.limewire)
                    : core::run_openft_study(task.openft);
  result.strain_catalog =
      limewire ? malware::limewire_catalog() : malware::openft_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved sweep task %zu to %s\n",
                 task.index, path.c_str());
  }
  return result;
}

bool parse_sweep_cli(int argc, char** argv, SweepCli& cli) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      cli.replications =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (cli.replications == 0) {
        std::fprintf(stderr, "--sweep wants a positive replication count\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cli.jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (cli.jobs == 0) cli.jobs = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--sweep <n> [--jobs <j>]]\n", argv[0]);
      return false;
    }
  }
  return true;
}

sweep::SweepResult run_cached_sweep(sweep::NetworkKind network,
                                    std::size_t replications, std::size_t jobs) {
  sweep::PlanConfig plan;
  plan.network = network;
  plan.quick = false;
  std::uint64_t base = network == sweep::NetworkKind::kLimewire
                           ? core::limewire_standard().seed
                           : core::openft_standard().seed;
  for (std::size_t i = 0; i < replications; ++i) {
    plan.seeds.push_back(base + i);
  }
  std::fprintf(stderr,
               "[sweep] %zu x standard %s study, %zu job(s) (cached per seed)\n",
               replications, std::string(sweep::network_name(network)).c_str(),
               jobs);
  sweep::SweepOptions options;
  options.jobs = jobs;
  options.runner = sweep_task_cached;
  return sweep::run(sweep::plan(plan), options);
}

std::string format_band(const sweep::SweepResult& result, std::string_view metric) {
  const sweep::MetricSummary* s = result.summary(metric);
  if (s == nullptr) return "";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.4g ci95=[%.4g, %.4g] range=[%.4g, %.4g] n=%zu",
                s->moments.mean, s->ci.lo, s->ci.hi, s->moments.min,
                s->moments.max, s->moments.n);
  return buf;
}

}  // namespace p2p::bench
