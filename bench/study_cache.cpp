#include "bench/study_cache.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/export.h"

namespace p2p::bench {

std::string cache_path(const std::string& name, std::uint64_t seed) {
  return "bench_cache_" + name + "_" + std::to_string(seed) + ".p2pt";
}

std::string sweep_cache_path(std::uint64_t config_hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(config_hash));
  return std::string("bench_cache_sweep_") + buf + ".p2pt";
}

bool save_study(const std::string& path, const core::StudyResult& result,
                std::uint64_t config_hash) {
  trace::TraceHeader header;
  if (!result.records.empty()) header.network = result.records.front().network;
  header.config_hash = config_hash;
  return core::save_study_trace(path, result, header);
}

bool load_study(const std::string& path, core::StudyResult& result,
                std::uint64_t expected_config_hash) {
  return core::load_study_trace(path, result, expected_config_hash);
}

std::string dump_metrics_json(const std::string& bench,
                              const core::StudyResult& result) {
  std::string path = "bench_metrics_" + bench + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  obs::write_json(out, result.metrics);
  if (out) std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
  return out ? path : "";
}

core::StudyResult limewire_study_cached() {
  auto cfg = core::limewire_standard();
  // The cached standard studies record a daily time series so E6 can render
  // time-resolved curves straight from the recorder. Part of config_hash, so
  // pre-recorder caches are invalidated once and re-recorded.
  cfg.timeseries.window = sim::SimDuration::days(1);
  std::string path = cache_path("limewire", cfg.seed);
  std::uint64_t hash = core::config_hash(cfg);
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] loaded %zu LimeWire records from %s\n",
                 result.records.size(), path.c_str());
    result.strain_catalog = malware::limewire_catalog();
    return result;
  }
  std::fprintf(stderr,
               "[study-cache] running standard LimeWire study (30 simulated "
               "days; ~1 minute)...\n");
  result = core::run_limewire_study(cfg);
  result.strain_catalog = malware::limewire_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved to %s\n", path.c_str());
  }
  return result;
}

core::StudyResult openft_study_cached() {
  auto cfg = core::openft_standard();
  cfg.timeseries.window = sim::SimDuration::days(1);
  std::string path = cache_path("openft", cfg.seed);
  std::uint64_t hash = core::config_hash(cfg);
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] loaded %zu OpenFT records from %s\n",
                 result.records.size(), path.c_str());
    result.strain_catalog = malware::openft_catalog();
    return result;
  }
  std::fprintf(stderr,
               "[study-cache] running standard OpenFT study (30 simulated "
               "days; ~15 seconds)...\n");
  result = core::run_openft_study(cfg);
  result.strain_catalog = malware::openft_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved to %s\n", path.c_str());
  }
  return result;
}

core::StudyResult sweep_task_cached(const sweep::StudyTask& task) {
  std::uint64_t hash = task.config_hash();
  std::string path = sweep_cache_path(hash);
  bool limewire = task.network == sweep::NetworkKind::kLimewire;
  core::StudyResult result;
  if (load_study(path, result, hash)) {
    result.strain_catalog =
        limewire ? malware::limewire_catalog() : malware::openft_catalog();
    return result;
  }
  result = limewire ? core::run_limewire_study(task.limewire)
                    : core::run_openft_study(task.openft);
  result.strain_catalog =
      limewire ? malware::limewire_catalog() : malware::openft_catalog();
  if (save_study(path, result, hash)) {
    std::fprintf(stderr, "[study-cache] saved sweep task %zu to %s\n",
                 task.index, path.c_str());
  }
  return result;
}

bool parse_sweep_cli(int argc, char** argv, SweepCli& cli) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      cli.replications =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (cli.replications == 0) {
        std::fprintf(stderr, "--sweep wants a positive replication count\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cli.jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (cli.jobs == 0) cli.jobs = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--sweep <n> [--jobs <j>]]\n", argv[0]);
      return false;
    }
  }
  return true;
}

sweep::SweepResult run_cached_sweep(sweep::NetworkKind network,
                                    std::size_t replications, std::size_t jobs) {
  sweep::PlanConfig plan;
  plan.network = network;
  plan.quick = false;
  std::uint64_t base = network == sweep::NetworkKind::kLimewire
                           ? core::limewire_standard().seed
                           : core::openft_standard().seed;
  for (std::size_t i = 0; i < replications; ++i) {
    plan.seeds.push_back(base + i);
  }
  std::fprintf(stderr,
               "[sweep] %zu x standard %s study, %zu job(s) (cached per seed)\n",
               replications, std::string(sweep::network_name(network)).c_str(),
               jobs);
  sweep::SweepOptions options;
  options.jobs = jobs;
  options.runner = sweep_task_cached;
  return sweep::run(sweep::plan(plan), options);
}

std::string format_band(const sweep::SweepResult& result, std::string_view metric) {
  const sweep::MetricSummary* s = result.summary(metric);
  if (s == nullptr) return "";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.4g ci95=[%.4g, %.4g] range=[%.4g, %.4g] n=%zu",
                s->moments.mean, s->ci.lo, s->ci.hi, s->moments.min,
                s->moments.max, s->moments.n);
  return buf;
}

}  // namespace p2p::bench
