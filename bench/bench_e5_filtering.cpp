// E5 — Filtering comparison: LimeWire's built-in mechanisms vs the paper's
// size-based filtering.
//
// Paper (abstract): current LimeWire mechanisms detect only about 6% of
// malware-containing responses; size-based filtering detects over 99% with
// a very low false-positive rate.
//
// Protocol: train both filters on the first quarter of the crawl, evaluate
// on the remaining three quarters.
#include <iostream>

#include "bench/study_cache.h"
#include "core/report.h"
#include "filter/evaluation.h"
#include "filter/limewire_builtin.h"
#include "filter/size_filter.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::SweepCli cli;
  if (!bench::parse_sweep_cli(argc, argv, cli)) return 2;
  std::cout << "=== E5: filtering comparison ===\n\n";

  auto lw = bench::limewire_study_cached();
  auto split = filter::split_at_fraction(lw.records, 0.25);

  auto size_filter = filter::SizeFilter::learn(split.training);
  // The vendor list fully knows the reported long-tail trojans and holds
  // stale variants of the zip-wrapped head strain.
  std::vector<std::string> vendor_known = {"Troj.Dropper.D", "W32.Paplin.E",
                                           "Troj.Loader.F", "W32.Bindle.G",
                                           "Troj.Spyball.H", "W32.Crater.I"};
  std::vector<std::string> vendor_partial = {"Troj.Keymaker.C"};
  auto builtin = filter::make_builtin_filter(split.training, vendor_known,
                                             vendor_partial);

  std::vector<filter::FilterEvaluation> evals = {
      filter::evaluate(builtin, split.evaluation),
      filter::evaluate(size_filter, split.evaluation),
  };
  core::print_filter_comparison(std::cout, "limewire", evals);

  std::cout << "size filter blocks " << size_filter.blocked_sizes().size()
            << " exact sizes:";
  for (auto s : size_filter.blocked_sizes()) std::cout << " " << s;
  std::cout << "\n\n";

  // The same defense applied to the OpenFT crawl.
  auto ft = bench::openft_study_cached();
  auto ft_split = filter::split_at_fraction(ft.records, 0.25);
  auto ft_filter = filter::SizeFilter::learn(ft_split.training);
  std::vector<filter::FilterEvaluation> ft_evals = {
      filter::evaluate(ft_filter, ft_split.evaluation)};
  core::print_filter_comparison(std::cout, "openft", ft_evals);

  util::Table cmp({"metric", "paper", "measured"});
  cmp.add_row({"limewire builtin detection", "~6%",
               util::format_pct(evals[0].detection_rate())});
  cmp.add_row({"limewire size-based detection", ">99%",
               util::format_pct(evals[1].detection_rate())});
  cmp.add_row({"size-based false positives", "very low",
               util::format_pct(evals[1].false_positive_rate(), 3)});
  std::cout << "-- paper vs measured --\n" << cmp.render() << "\n";

  if (cli.replications > 0) {
    auto lw_sweep = bench::run_cached_sweep(sweep::NetworkKind::kLimewire,
                                            cli.replications, cli.jobs);
    util::Table bands({"metric", "paper", "over seeds"});
    bands.add_row({"limewire builtin detection", "~6%",
                   bench::format_band(lw_sweep, "filter.builtin_detection")});
    bands.add_row({"limewire size-based detection", ">99%",
                   bench::format_band(lw_sweep, "filter.size_detection")});
    bands.add_row({"size-based false positives", "very low",
                   bench::format_band(lw_sweep, "filter.size_false_positives")});
    std::cout << "-- seed sweep (" << cli.replications << " replications) --\n"
              << bands.render() << "\n";
  }

  bench::dump_metrics_json("e5_limewire", lw);
  bench::dump_metrics_json("e5_openft", ft);
  return 0;
}
