// Simulation-core microbench: the before/after evidence for the hot-path
// rework (sim::Task + 4-ary heap, shared util::Payload buffers). The
// "legacy" side is a faithful in-binary replica of the pre-optimization
// core — std::function actions in a binary std::priority_queue with the
// then-default per-event wall timing — so both sides run in the same
// process, same compiler, same allocator.
//
// Emits a JSON report (stdout or --json <path>) that ci/run_tiers.sh's
// bench tier uploads as an artifact; the committed BENCH_sim_core.json at
// the repo root pins the first baseline. --check additionally enforces the
// acceptance thresholds (>= 2x events/sec, >= 5x payload-copy-byte
// reduction) for local verification; CI runs without it so a loaded runner
// cannot flake the build.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/task.h"
#include "util/bytes.h"
#include "util/payload.h"
#include "util/sim_time.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: global operator new/delete so every heap byte the
// measured loops touch is visible (std::function control blocks, vector
// buffers, Payload reps). Aggregates only; never throws off hot paths.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
};

AllocSnapshot alloc_now() {
  return {g_alloc_calls.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

AllocSnapshot alloc_since(const AllocSnapshot& start) {
  AllocSnapshot now = alloc_now();
  return {now.calls - start.calls, now.bytes - start.bytes};
}
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace p2p {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Legacy event queue replica: std::function actions, binary heap, wall
// timing on (the pre-optimization defaults). Mirrors the old step()'s
// metric traffic so the comparison isolates the queue/closure machinery.
// ---------------------------------------------------------------------------

class LegacyQueue {
 public:
  using Action = std::function<void()>;

  LegacyQueue()
      : m_executed_(obs::MetricsRegistry::global().counter("bench.legacy_executed")),
        m_depth_(obs::MetricsRegistry::global().gauge("bench.legacy_depth")),
        m_event_wall_ns_(obs::MetricsRegistry::global().histogram(
            "bench.legacy_event_wall_ns",
            obs::HistogramSpec::exponential(obs::Unit::kNanosWall,
                                            /*wall_clock=*/true))) {}

  void set_wall_timing(bool on) { wall_timing_ = on; }

  void schedule_at(util::SimTime at, Action action) {
    heap_.push(Entry{at, next_seq_++, std::move(action)});
    m_depth_.set(static_cast<std::int64_t>(heap_.size()));
  }

  void schedule_in(util::SimDuration delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  [[nodiscard]] util::SimTime now() const { return now_; }

  bool step() {
    if (heap_.empty()) return false;
    Entry& top = const_cast<Entry&>(heap_.top());
    util::SimTime at = top.at;
    Action action = std::move(top.action);
    heap_.pop();
    now_ = at;
    m_executed_.add(1);
    m_depth_.set(static_cast<std::int64_t>(heap_.size()));
    if (wall_timing_) {
      auto start = Clock::now();
      action();
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - start)
                    .count();
      m_event_wall_ns_.record(static_cast<std::int64_t>(ns));
      return true;
    }
    action();
    return true;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  bool wall_timing_ = true;  // the pre-optimization default

  obs::Counter& m_executed_;
  obs::Gauge& m_depth_;
  obs::Histogram& m_event_wall_ns_;
};

// ---------------------------------------------------------------------------
// Scheduling microbench: the classic hold model. A fixed population of
// self-rescheduling events churns through the queue; each closure captures
// the shape of the simulator's delivery events (~40 bytes — past
// std::function's 16-byte SBO, inside sim::Task's 64).
// ---------------------------------------------------------------------------

constexpr std::size_t kHoldPopulation = 64;
constexpr std::uint64_t kHoldEvents = 1'500'000;

struct SchedResult {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

// Deterministic per-event delay spread so both queues see identical stamp
// sequences; splitmix-style mixing, no global RNG state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Queue>
SchedResult run_hold(Queue& q) {
  std::uint64_t remaining = kHoldEvents;
  std::uint64_t sink = 0;
  // The capture mimics a delivery event: queue ptr + "conn"/"receiver" ids +
  // a payload-handle-sized word + the countdown.
  struct Reschedule {
    Queue* q;
    std::uint64_t* remaining;
    std::uint64_t* sink;
    std::uint64_t conn;
    std::uint64_t state;
    void operator()() const {
      *sink ^= state;
      if (*remaining == 0) return;
      --*remaining;
      Reschedule next = *this;
      next.state = mix(state);
      q->schedule_in(util::SimDuration::millis(1 + (next.state & 7)),
                     std::move(next));
    }
  };
  AllocSnapshot before = alloc_now();
  auto start = Clock::now();
  for (std::size_t i = 0; i < kHoldPopulation; ++i) {
    q.schedule_in(util::SimDuration::millis(1),
                  Reschedule{&q, &remaining, &sink, i, mix(i)});
  }
  q.run_all();
  double elapsed = seconds_since(start);
  AllocSnapshot used = alloc_since(before);
  if (sink == 0xdeadbeef) std::puts("");  // defeat whole-loop elision
  SchedResult r;
  r.events_per_sec = static_cast<double>(kHoldEvents) / elapsed;
  r.allocs_per_event =
      static_cast<double>(used.calls) / static_cast<double>(kHoldEvents);
  return r;
}

// ---------------------------------------------------------------------------
// Payload fan-out: one serialized message broadcast to 30 neighbors, the
// paper-study hot pattern (query/search floods). Legacy materialized one
// Bytes copy per neighbor and moved it into the scheduled delivery closure;
// the optimized path serializes once and every hop shares the buffer.
// ---------------------------------------------------------------------------

constexpr std::size_t kNeighbors = 30;
constexpr std::size_t kMessageBytes = 600;  // a well-filled query-hit frame
constexpr std::size_t kBroadcasts = 40'000;

struct FanoutResult {
  double broadcasts_per_sec = 0.0;
  double copy_bytes_per_broadcast = 0.0;
  double allocs_per_broadcast = 0.0;
};

FanoutResult run_fanout_legacy(const util::Bytes& base) {
  std::uint64_t sink = 0;
  AllocSnapshot before = alloc_now();
  auto start = Clock::now();
  for (std::size_t b = 0; b < kBroadcasts; ++b) {
    for (std::size_t n = 0; n < kNeighbors; ++n) {
      util::Bytes wire(base);  // per-neighbor serialize -> fresh buffer
      // The old Network::send captured the vector by value in the delivery
      // event; model that capture + invoke + destroy with a real Task.
      sim::Task delivery([payload = std::move(wire), &sink] {
        sink += payload.size() + payload[0];
      });
      delivery();
    }
  }
  double elapsed = seconds_since(start);
  AllocSnapshot used = alloc_since(before);
  if (sink == 1) std::puts("");
  FanoutResult r;
  r.broadcasts_per_sec = static_cast<double>(kBroadcasts) / elapsed;
  r.copy_bytes_per_broadcast =
      static_cast<double>(used.bytes) / static_cast<double>(kBroadcasts);
  r.allocs_per_broadcast =
      static_cast<double>(used.calls) / static_cast<double>(kBroadcasts);
  return r;
}

FanoutResult run_fanout_payload(const util::Bytes& base) {
  std::uint64_t sink = 0;
  AllocSnapshot before = alloc_now();
  auto start = Clock::now();
  for (std::size_t b = 0; b < kBroadcasts; ++b) {
    util::Payload wire{util::Bytes(base)};  // serialize once per broadcast
    for (std::size_t n = 0; n < kNeighbors; ++n) {
      sim::Task delivery([payload = wire, &sink] {  // refcount bump per hop
        sink += payload.size() + payload[0];
      });
      delivery();
    }
  }
  double elapsed = seconds_since(start);
  AllocSnapshot used = alloc_since(before);
  if (sink == 1) std::puts("");
  FanoutResult r;
  r.broadcasts_per_sec = static_cast<double>(kBroadcasts) / elapsed;
  r.copy_bytes_per_broadcast =
      static_cast<double>(used.bytes) / static_cast<double>(kBroadcasts);
  r.allocs_per_broadcast =
      static_cast<double>(used.calls) / static_cast<double>(kBroadcasts);
  return r;
}

int run(int argc, char** argv) {
  std::string json_path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--check]\n", argv[0]);
      return 2;
    }
  }

  // Scheduling: legacy defaults (wall timing on), legacy minus timing (to
  // separate the clock-read cost from the closure/heap cost), optimized.
  // Interleaved best-of-N: each configuration's fastest repetition is the
  // least noise-polluted estimate, and interleaving keeps a transient CPU
  // hiccup from biasing one side of the comparison.
  constexpr int kRepeats = 5;
  auto best = [](SchedResult& acc, SchedResult sample) {
    if (sample.events_per_sec > acc.events_per_sec) {
      acc.events_per_sec = sample.events_per_sec;
    }
    acc.allocs_per_event = sample.allocs_per_event;  // deterministic
  };
  SchedResult legacy{};
  SchedResult legacy_notiming{};
  SchedResult optimized{};
  for (int rep = 0; rep < kRepeats; ++rep) {
    {
      LegacyQueue q;
      best(legacy, run_hold(q));
    }
    {
      LegacyQueue q;
      q.set_wall_timing(false);
      best(legacy_notiming, run_hold(q));
    }
    {
      sim::EventQueue q;
      best(optimized, run_hold(q));
    }
  }

  util::Bytes base(kMessageBytes);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(mix(i) & 0xff);
  }
  auto best_fan = [](FanoutResult& acc, FanoutResult sample) {
    if (sample.broadcasts_per_sec > acc.broadcasts_per_sec) {
      acc.broadcasts_per_sec = sample.broadcasts_per_sec;
    }
    acc.copy_bytes_per_broadcast = sample.copy_bytes_per_broadcast;
    acc.allocs_per_broadcast = sample.allocs_per_broadcast;
  };
  FanoutResult fan_legacy{};
  FanoutResult fan_payload{};
  for (int rep = 0; rep < kRepeats; ++rep) {
    best_fan(fan_legacy, run_fanout_legacy(base));
    best_fan(fan_payload, run_fanout_payload(base));
  }

  double sched_speedup = optimized.events_per_sec / legacy.events_per_sec;
  double sched_speedup_notiming =
      optimized.events_per_sec / legacy_notiming.events_per_sec;
  double copy_reduction =
      fan_legacy.copy_bytes_per_broadcast /
      std::max(1.0, fan_payload.copy_bytes_per_broadcast);

  char buf[2048];
  int len = std::snprintf(
      buf, sizeof(buf),
      "{\"format\":\"p2p-bench-sim-core-1\","
      "\"scheduling\":{"
      "\"events\":%llu,\"capture_bytes\":%zu,"
      "\"legacy_events_per_sec\":%.0f,"
      "\"legacy_notiming_events_per_sec\":%.0f,"
      "\"optimized_events_per_sec\":%.0f,"
      "\"speedup\":%.2f,\"speedup_vs_notiming\":%.2f,"
      "\"legacy_allocs_per_event\":%.3f,"
      "\"optimized_allocs_per_event\":%.3f},"
      "\"payload_fanout\":{"
      "\"neighbors\":%zu,\"message_bytes\":%zu,\"broadcasts\":%zu,"
      "\"legacy_broadcasts_per_sec\":%.0f,"
      "\"optimized_broadcasts_per_sec\":%.0f,"
      "\"legacy_copy_bytes_per_broadcast\":%.0f,"
      "\"optimized_copy_bytes_per_broadcast\":%.0f,"
      "\"copy_reduction\":%.1f,"
      "\"legacy_allocs_per_broadcast\":%.2f,"
      "\"optimized_allocs_per_broadcast\":%.2f}}\n",
      static_cast<unsigned long long>(kHoldEvents), sizeof(void*) * 5,
      legacy.events_per_sec, legacy_notiming.events_per_sec,
      optimized.events_per_sec, sched_speedup, sched_speedup_notiming,
      legacy.allocs_per_event, optimized.allocs_per_event, kNeighbors,
      kMessageBytes, kBroadcasts, fan_legacy.broadcasts_per_sec,
      fan_payload.broadcasts_per_sec, fan_legacy.copy_bytes_per_broadcast,
      fan_payload.copy_bytes_per_broadcast, copy_reduction,
      fan_legacy.allocs_per_broadcast, fan_payload.allocs_per_broadcast);
  if (len < 0 || static_cast<std::size_t>(len) >= sizeof(buf)) {
    std::fprintf(stderr, "bench_sim_core: report formatting failed\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_sim_core: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(buf, f);
    std::fclose(f);
  }
  std::fputs(buf, stdout);

  if (check) {
    bool ok = true;
    if (sched_speedup < 2.0) {
      std::fprintf(stderr, "CHECK FAILED: scheduling speedup %.2fx < 2x\n",
                   sched_speedup);
      ok = false;
    }
    if (copy_reduction < 5.0) {
      std::fprintf(stderr, "CHECK FAILED: copy reduction %.1fx < 5x\n",
                   copy_reduction);
      ok = false;
    }
    if (!ok) return 1;
    std::fprintf(stderr, "checks passed: %.2fx events/sec, %.1fx fewer copy bytes\n",
                 sched_speedup, copy_reduction);
  }
  return 0;
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) { return p2p::run(argc, argv); }
