// E11 (formerly E9) — Exposure by query category: which kinds of queries draw malicious
// responses. Query-echoing worms answer everything, so on LimeWire every
// category is saturated; lure-style queries additionally surface the
// long-tail trojans. On OpenFT only software-flavored and lure queries are
// meaningfully exposed.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"

int main() {
  using namespace p2p;
  std::cout << "=== E11: exposure by query category ===\n\n";

  auto lw = bench::limewire_study_cached();
  core::print_category_breakdown(std::cout, "limewire",
                                 analysis::category_breakdown(lw.records));

  auto ft = bench::openft_study_cached();
  core::print_category_breakdown(std::cout, "openft",
                                 analysis::category_breakdown(ft.records));
  bench::dump_metrics_json("e9_limewire", lw);
  bench::dump_metrics_json("e9_openft", ft);
  return 0;
}
