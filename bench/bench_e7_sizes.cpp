// E7 — Size distribution of exe/archive responses: the observation behind
// the paper's filtering insight. Malicious responses pile up on a handful
// of exact byte sizes (few variants per strain); clean sizes are diverse.
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/report.h"
#include "util/strings.h"

namespace {

void report(const std::string& network, const p2p::core::StudyResult& study) {
  using namespace p2p;
  auto buckets = analysis::size_distribution(study.records);
  auto per_strain = analysis::sizes_per_strain(study.records);
  core::print_size_analysis(std::cout, network, buckets, per_strain);

  // Concentration metric: how much of the malicious volume do the top-10
  // sizes carry, vs the same for clean traffic?
  std::uint64_t mal_total = 0, clean_total = 0;
  for (const auto& b : buckets) {
    mal_total += b.malicious;
    clean_total += b.clean;
  }
  std::vector<std::uint64_t> mal_sizes, clean_sizes;
  for (const auto& b : buckets) {
    if (b.malicious > 0) mal_sizes.push_back(b.malicious);
    if (b.clean > 0) clean_sizes.push_back(b.clean);
  }
  std::sort(mal_sizes.rbegin(), mal_sizes.rend());
  std::sort(clean_sizes.rbegin(), clean_sizes.rend());
  auto topk = [](const std::vector<std::uint64_t>& v, std::size_t k) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < v.size() && i < k; ++i) sum += v[i];
    return sum;
  };
  if (mal_total > 0 && clean_total > 0) {
    std::cout << network << ": top-10 exact sizes carry "
              << util::format_pct(static_cast<double>(topk(mal_sizes, 10)) /
                                  static_cast<double>(mal_total))
              << " of malicious responses vs "
              << util::format_pct(static_cast<double>(topk(clean_sizes, 10)) /
                                  static_cast<double>(clean_total))
              << " of clean ones (" << mal_sizes.size() << " vs "
              << clean_sizes.size() << " distinct sizes)\n\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== E7: size distribution of exe/zip responses ===\n\n";
  auto lw = p2p::bench::limewire_study_cached();
  auto ft = p2p::bench::openft_study_cached();
  report("limewire", lw);
  report("openft", ft);
  p2p::bench::dump_metrics_json("e7_limewire", lw);
  p2p::bench::dump_metrics_json("e7_openft", ft);
  return 0;
}
