// Obs-overhead microbench: the per-call cost of every observability
// primitive on its hot path, in whichever build flavor this binary was
// compiled (normal, or -DP2P_OBS_DISABLED=ON where the primitives compile
// out). CI runs it in both flavors with --check, which enforces pinned
// per-op ceilings so an accidental regression (say, a mutex sneaking onto
// the span fast path) fails the tier instead of silently taxing every
// simulation event.
//
//   ./bench_obs_overhead [--check]
//
// Output is one line per op: "op=<name> ns_per_op=<x> ceiling=<y>". The
// ceilings are deliberately loose (10-50x typical) — they catch order-of-
// magnitude regressions, not scheduler noise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/timeseries.h"
#include "util/sim_time.h"

namespace {

using namespace p2p;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kIters = 1'000'000;

double time_ns_per_op(std::size_t iters, void (*op)(std::size_t)) {
  // One warmup pass populates thread-local caches (registry, span buffer)
  // so the measured pass sees the steady-state path.
  op(64);
  auto start = Clock::now();
  op(iters);
  auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

volatile std::uint64_t sink;

void op_counter_add(std::size_t n) {
  auto& counter = obs::MetricsRegistry::global().counter("bench.overhead");
  for (std::size_t i = 0; i < n; ++i) counter.add(1);
  sink = counter.value();
}

void op_gauge_set(std::size_t n) {
  auto& gauge = obs::MetricsRegistry::global().gauge("bench.overhead_gauge");
  for (std::size_t i = 0; i < n; ++i) gauge.set(static_cast<std::int64_t>(i));
  sink = static_cast<std::uint64_t>(gauge.value());
}

void op_span_disabled(std::size_t n) {
  // The common case: OBS_SPAN at a call site while no --profile is active.
  for (std::size_t i = 0; i < n; ++i) {
    OBS_SPAN("bench.span");
    sink = i;
  }
}

void op_span_enabled(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    OBS_SPAN("bench.span");
    sink = i;
  }
}

void op_progress_suppressed(std::size_t n) {
  // A throttled reporter drops every tick after the first: the hot path a
  // study loop pays once per window when --progress is on.
  static obs::ProgressReporter* reporter = [] {
    obs::ProgressConfig cfg;
    cfg.human = true;
    cfg.throttle = std::chrono::hours(24);
    static std::ostringstream null_out;
    static obs::ProgressReporter r(cfg, &null_out);
    return &r;
  }();
  obs::StudyProgress p;
  p.network = "bench";
  p.sim_end = util::SimTime::zero() + util::SimDuration::days(30);
  for (std::size_t i = 0; i < n; ++i) {
    p.sim_now = util::SimTime::zero() + util::SimDuration::millis(
                                            static_cast<std::int64_t>(i));
    p.events_executed = i;
    reporter->study_tick(p);
  }
  sink = reporter->suppressed();
}

struct Op {
  const char* name;
  void (*fn)(std::size_t);
  double ceiling_ns;
};

}  // namespace

int main(int argc, char** argv) {
  bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

#ifdef P2P_OBS_DISABLED
  // Compiled out: everything must cost no more than the loop itself.
  constexpr double kCounterCeil = 5.0;
  constexpr double kGaugeCeil = 5.0;
  constexpr double kSpanOffCeil = 5.0;
  constexpr double kSpanOnCeil = 5.0;
  constexpr double kProgressCeil = 10.0;
#else
  constexpr double kCounterCeil = 50.0;
  constexpr double kGaugeCeil = 50.0;
  constexpr double kSpanOffCeil = 25.0;
  constexpr double kSpanOnCeil = 2000.0;
  constexpr double kProgressCeil = 2000.0;
#endif

  obs::SpanProfiler::global().disable();
  const Op ops_pre[] = {
      {"counter_add", op_counter_add, kCounterCeil},
      {"gauge_set", op_gauge_set, kGaugeCeil},
      {"span_profiler_off", op_span_disabled, kSpanOffCeil},
      {"progress_suppressed", op_progress_suppressed, kProgressCeil},
  };

  bool ok = true;
  auto run = [&](const Op& op) {
    double ns = time_ns_per_op(kIters, op.fn);
    bool pass = ns <= op.ceiling_ns;
    std::printf("op=%s ns_per_op=%.2f ceiling=%.0f%s\n", op.name, ns,
                op.ceiling_ns, pass ? "" : " FAIL");
    if (!pass) ok = false;
  };
  for (const auto& op : ops_pre) run(op);

  obs::SpanProfiler::global().enable();
  run(Op{"span_profiler_on", op_span_enabled, kSpanOnCeil});
  obs::SpanProfiler::global().disable();

#ifdef P2P_OBS_DISABLED
  std::printf("flavor=disabled\n");
#else
  std::printf("flavor=enabled\n");
#endif

  if (check && !ok) {
    std::fprintf(stderr, "obs overhead ceiling exceeded\n");
    return 1;
  }
  return 0;
}
