// A4 — Dynamic querying vs flooding: LimeWire's 2006 bandwidth saver from
// the measurement client's seat. Dynamic querying probes ultrapeers one at
// a time with growing TTLs and stops once it has enough results; flooding
// asks everyone at once. Compares overlay cost against crawl yield, and
// checks that the headline malware statistic is insensitive to the query
// strategy (the paper's numbers do not depend on how hard the client asks).
#include <iostream>

#include "analysis/stats.h"
#include "bench/study_cache.h"
#include "core/study.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

p2p::core::LimewireStudyConfig base_config() {
  auto cfg = p2p::core::limewire_quick();
  cfg.population.ultrapeers = 12;
  cfg.population.leaves = 240;
  cfg.crawl.duration = p2p::sim::SimDuration::hours(12);
  cfg.crawl.query_interval = p2p::sim::SimDuration::seconds(180);
  return cfg;
}

}  // namespace

int main() {
  using namespace p2p;
  std::cout << "=== A4: dynamic querying vs flooding (12h crawls) ===\n\n";

  util::Table t({"strategy", "messages", "msgs/query", "responses/query",
                 "labeled", "mal. fraction"});
  for (bool dynamic : {false, true}) {
    auto cfg = base_config();
    cfg.crawl.dynamic_querying = dynamic;
    auto result = core::run_limewire_study(cfg);
    bench::dump_metrics_json(dynamic ? "a4_dynamic" : "a4_flood", result);
    auto s = analysis::prevalence(result.records);
    double queries = static_cast<double>(result.crawl_stats.queries_sent);
    t.add_row({dynamic ? "dynamic (target 60)" : "flood all ultrapeers",
               util::format_count(result.messages_delivered),
               std::to_string(static_cast<int>(
                   static_cast<double>(result.messages_delivered) / queries)),
               std::to_string(static_cast<int>(
                   static_cast<double>(result.crawl_stats.responses) / queries)),
               util::format_count(s.labeled), util::format_pct(s.malicious_fraction())});
  }
  std::cout << t.render() << "\n";
  std::cout << "Expected shape: dynamic querying cuts per-query overlay cost "
               "while the malicious fraction of what it sees stays unchanged "
               "— the prevalence result is a property of the network, not of "
               "the crawler's aggressiveness.\n";
  return 0;
}
