#include "gnutella/qrp.h"

#include <cctype>
#include <stdexcept>

#include "util/strings.h"

namespace p2p::gnutella {

std::uint32_t qrp_hash(std::string_view keyword, unsigned bits) {
  if (bits == 0 || bits > 31) throw std::invalid_argument("qrp_hash: bad bits");
  std::uint32_t xor_acc = 0;
  unsigned j = 0;
  for (char c : keyword) {
    auto lower = static_cast<std::uint32_t>(
        std::tolower(static_cast<unsigned char>(c)) & 0xFF);
    xor_acc ^= lower << (j * 8);
    j = (j + 1) % 4;
  }
  std::uint64_t prod = static_cast<std::uint64_t>(xor_acc) * 0x4F1BBCDCull;
  return static_cast<std::uint32_t>((prod & 0xFFFFFFFFull) >> (32 - bits));
}

QueryRouteTable::QueryRouteTable(unsigned table_bits) : bits_(table_bits) {
  if (bits_ < 4 || bits_ > 24) {
    throw std::invalid_argument("QueryRouteTable: table_bits out of range");
  }
  slots_.assign(std::size_t{1} << bits_, false);
}

void QueryRouteTable::clear() { slots_.assign(slots_.size(), false); }

void QueryRouteTable::fill_all() { slots_.assign(slots_.size(), true); }

void QueryRouteTable::add_keywords(std::string_view text) {
  for (const auto& kw : util::keywords(text)) {
    slots_[qrp_hash(kw, bits_)] = true;
  }
}

QueryHashes hash_query(std::string_view query, unsigned bits) {
  QueryHashes out;
  out.bits = bits;
  auto kws = util::keywords(query);
  out.no_keywords = kws.empty();
  out.slots.reserve(kws.size());
  for (const auto& kw : kws) out.slots.push_back(qrp_hash(kw, bits));
  return out;
}

bool QueryRouteTable::matches_hashed(const QueryHashes& q) const {
  if (q.no_keywords) return false;
  for (std::uint32_t slot : q.slots) {
    if (!slots_[slot]) return false;
  }
  return true;
}

bool QueryRouteTable::matches(std::string_view query) const {
  auto kws = util::keywords(query);
  if (kws.empty()) return false;
  for (const auto& kw : kws) {
    if (!slots_[qrp_hash(kw, bits_)]) return false;
  }
  return true;
}

double QueryRouteTable::fill_ratio() const {
  std::size_t set = 0;
  for (bool b : slots_) set += b ? 1 : 0;
  return static_cast<double>(set) / static_cast<double>(slots_.size());
}

util::Bytes QueryRouteTable::to_patch_bytes() const {
  util::Bytes out(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) out[i] = slots_[i] ? 1 : 0;
  return out;
}

bool QueryRouteTable::from_patch_bytes(const util::Bytes& bytes) {
  std::size_t n = bytes.size();
  if (n < 16 || (n & (n - 1)) != 0) return false;
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  if (bits < 4 || bits > 24) return false;
  bits_ = bits;
  slots_.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) slots_[i] = bytes[i] != 0;
  return true;
}

}  // namespace p2p::gnutella
