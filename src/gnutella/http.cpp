#include "gnutella/http.h"

#include <charconv>

#include "util/strings.h"

namespace p2p::gnutella {

namespace {

std::string_view as_view(util::ByteView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Split "HEAD\r\nName: Value\r\n...\r\n\r\n<rest>" into (head lines, body).
struct SplitMessage {
  std::vector<std::string> lines;
  util::Bytes body;
};

std::optional<SplitMessage> split_head(util::ByteView wire) {
  std::string_view text = as_view(wire);
  std::size_t sep = text.find("\r\n\r\n");
  if (sep == std::string_view::npos) return std::nullopt;
  SplitMessage out;
  std::string_view head = text.substr(0, sep);
  std::size_t start = 0;
  while (start <= head.size()) {
    std::size_t end = head.find("\r\n", start);
    if (end == std::string_view::npos) end = head.size();
    if (end > start) out.lines.emplace_back(head.substr(start, end - start));
    if (end == head.size()) break;
    start = end + 2;
  }
  out.body.assign(wire.begin() + static_cast<std::ptrdiff_t>(sep + 4), wire.end());
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_headers(
    const std::vector<std::string>& lines) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    std::string name = lines[i].substr(0, colon);
    std::size_t vstart = colon + 1;
    while (vstart < lines[i].size() && lines[i][vstart] == ' ') ++vstart;
    out.emplace_back(std::move(name), lines[i].substr(vstart));
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
                c == '~' || c == '/';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

std::string url_decode(std::string_view s) {
  auto hex_val = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = hex_val(s[i + 1]);
      int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

util::Bytes HttpRequest::serialize() const {
  util::ByteWriter w;
  w.str(method + " " + path + " HTTP/1.1\r\n");
  for (const auto& [name, value] : headers) w.str(name + ": " + value + "\r\n");
  w.str("\r\n");
  return std::move(w).take();
}

std::optional<HttpRequest> HttpRequest::parse(util::ByteView wire) {
  auto split = split_head(wire);
  if (!split || split->lines.empty()) return std::nullopt;
  auto parts = util::split(split->lines[0], " ");
  if (parts.size() != 3 || !parts[2].starts_with("HTTP/")) return std::nullopt;
  HttpRequest req;
  req.method = parts[0];
  req.path = parts[1];
  req.headers = parse_headers(split->lines);
  return req;
}

util::Bytes HttpResponse::serialize() const {
  util::ByteWriter w;
  w.str("HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n");
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    w.str(name + ": " + value + "\r\n");
    if (name == "Content-Length") has_length = true;
  }
  if (!has_length) {
    w.str("Content-Length: " + std::to_string(body.size()) + "\r\n");
  }
  w.str("\r\n");
  w.bytes(body);
  return std::move(w).take();
}

std::optional<HttpResponse> HttpResponse::parse(util::ByteView wire) {
  auto split = split_head(wire);
  if (!split || split->lines.empty()) return std::nullopt;
  const std::string& status_line = split->lines[0];
  if (!status_line.starts_with("HTTP/")) return std::nullopt;
  auto parts = util::split(status_line, " ");
  if (parts.size() < 2) return std::nullopt;
  HttpResponse resp;
  auto [ptr, ec] = std::from_chars(parts[1].data(), parts[1].data() + parts[1].size(),
                                   resp.status);
  if (ec != std::errc{}) return std::nullopt;
  resp.reason = parts.size() > 2 ? parts[2] : "";
  resp.headers = parse_headers(split->lines);
  resp.body = std::move(split->body);
  // Enforce Content-Length framing when present.
  for (const auto& [name, value] : resp.headers) {
    if (name == "Content-Length") {
      std::uint64_t len = 0;
      auto [p2, ec2] = std::from_chars(value.data(), value.data() + value.size(), len);
      if (ec2 != std::errc{} || len != resp.body.size()) return std::nullopt;
    }
  }
  return resp;
}

std::optional<std::pair<std::uint32_t, std::string>> parse_get_path(
    const std::string& path) {
  constexpr std::string_view kPrefix = "/get/";
  if (!path.starts_with(kPrefix)) return std::nullopt;
  std::size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos || slash + 1 >= path.size()) return std::nullopt;
  std::uint32_t index = 0;
  const char* begin = path.data() + kPrefix.size();
  const char* end = path.data() + slash;
  auto [ptr, ec] = std::from_chars(begin, end, index);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return std::make_pair(index, url_decode(path.substr(slash + 1)));
}

HttpRequest make_get_request(std::uint32_t index, const std::string& filename) {
  HttpRequest req;
  req.path = "/get/" + std::to_string(index) + "/" + url_encode(filename);
  req.headers = {{"User-Agent", "P2PMAL/1.0"}, {"Connection", "close"}};
  return req;
}

util::Bytes GivLine::serialize() const {
  util::ByteWriter w;
  w.str("GIV " + std::to_string(index) + ":" + servent_guid.hex() + "/" + filename +
        "\n\n");
  return std::move(w).take();
}

std::optional<GivLine> GivLine::parse(util::ByteView wire) {
  std::string_view text = as_view(wire);
  if (!text.starts_with("GIV ")) return std::nullopt;
  std::size_t nl = text.find("\n\n");
  if (nl == std::string_view::npos) return std::nullopt;
  std::string_view line = text.substr(4, nl - 4);
  std::size_t colon = line.find(':');
  std::size_t slash = line.find('/', colon == std::string_view::npos ? 0 : colon);
  if (colon == std::string_view::npos || slash == std::string_view::npos) {
    return std::nullopt;
  }
  GivLine giv;
  auto idx_str = line.substr(0, colon);
  auto [ptr, ec] =
      std::from_chars(idx_str.data(), idx_str.data() + idx_str.size(), giv.index);
  if (ec != std::errc{}) return std::nullopt;
  auto guid_hex = line.substr(colon + 1, slash - colon - 1);
  auto guid_bytes = util::from_hex(guid_hex);
  if (!guid_bytes || guid_bytes->size() != 16) return std::nullopt;
  std::copy(guid_bytes->begin(), guid_bytes->end(), giv.servent_guid.bytes.begin());
  giv.filename = std::string(line.substr(slash + 1));
  return giv;
}

bool looks_like_http_request(util::ByteView wire) {
  return as_view(wire).starts_with("GET ");
}

bool looks_like_giv(util::ByteView wire) {
  return as_view(wire).starts_with("GIV ");
}

bool looks_like_handshake(util::ByteView wire) {
  return as_view(wire).starts_with("GNUTELLA");
}

}  // namespace p2p::gnutella
