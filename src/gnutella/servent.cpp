#include "gnutella/servent.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace p2p::gnutella {

namespace {

// Network-wide counters shared by every servent (per-instance numbers stay
// in ServentStats); see DESIGN.md "Observability" for the metric families.
struct GnutellaMetrics {
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Counter& queries_received = r.counter("gnutella.queries_received");
  obs::Counter& queries_routed = r.counter("gnutella.queries_routed");
  obs::Counter& qrp_suppressed = r.counter("gnutella.qrp_suppressed");
  obs::Counter& hits_sent = r.counter("gnutella.hits_sent");
  obs::Counter& hits_routed = r.counter("gnutella.hits_routed");
  obs::Counter& hits_received = r.counter("gnutella.hits_received");
  obs::Counter& pushes_routed = r.counter("gnutella.pushes_routed");
  obs::Counter& uploads_served = r.counter("gnutella.uploads_served");
  obs::Counter& dropped_duplicate = r.counter("gnutella.dropped_duplicate");
  obs::Counter& dropped_ttl = r.counter("gnutella.dropped_ttl");
  obs::Counter& dropped_malformed = r.counter("gnutella.dropped_malformed");
  obs::Counter& links_established = r.counter("gnutella.links_established");
  obs::Counter& links_closed = r.counter("gnutella.links_closed");
  obs::Counter& recv_ping = r.counter("gnutella.recv_ping");
  obs::Counter& recv_pong = r.counter("gnutella.recv_pong");
  obs::Counter& recv_bye = r.counter("gnutella.recv_bye");
  obs::Counter& recv_qrp = r.counter("gnutella.recv_qrp");
  obs::Counter& recv_push = r.counter("gnutella.recv_push");
  obs::Counter& recv_query = r.counter("gnutella.recv_query");
  obs::Counter& recv_query_hit = r.counter("gnutella.recv_query_hit");
  obs::Histogram& hit_hops = r.histogram(
      "gnutella.hit_hops", obs::HistogramSpec::linear(0, 1, 16, obs::Unit::kHops));

  obs::Counter& recv_counter(MsgType type) {
    switch (type) {
      case MsgType::kPing: return recv_ping;
      case MsgType::kPong: return recv_pong;
      case MsgType::kBye: return recv_bye;
      case MsgType::kQrp: return recv_qrp;
      case MsgType::kPush: return recv_push;
      case MsgType::kQuery: return recv_query;
      case MsgType::kQueryHit: return recv_query_hit;
    }
    return recv_ping;
  }

  static GnutellaMetrics& get() { return obs::bound_metrics<GnutellaMetrics>(); }
};

std::string_view as_view(util::ByteView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

util::Bytes text_bytes(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

std::string header_value(std::string_view text, std::string_view name) {
  // Case-sensitive match is fine: we emit our own handshakes.
  std::size_t pos = text.find(name);
  if (pos == std::string_view::npos) return {};
  std::size_t colon = text.find(':', pos);
  if (colon == std::string_view::npos) return {};
  std::size_t val = text.find_first_not_of(" ", colon + 1);
  if (val == std::string_view::npos) return {};
  std::size_t end = text.find("\r\n", val);
  if (end == std::string_view::npos) end = text.size();
  return std::string(text.substr(val, end - val));
}

bool header_flag(std::string_view text, std::string_view name) {
  std::string v = header_value(text, name);
  return !v.empty() && (v[0] == 'T' || v[0] == 't');
}

std::optional<util::Endpoint> listen_endpoint_of(std::string_view text) {
  auto ip = util::Ipv4::parse(header_value(text, "Listen-IP"));
  if (!ip) return std::nullopt;
  unsigned long port = std::strtoul(header_value(text, "Listen-Port").c_str(),
                                    nullptr, 10);
  if (port == 0 || port > 65535) return std::nullopt;
  return util::Endpoint{*ip, static_cast<std::uint16_t>(port)};
}

}  // namespace

// ---------------------------------------------------------------------------
// IndexAnswerer
// ---------------------------------------------------------------------------

std::vector<QueryHitResult> IndexAnswerer::answer(const std::string& criteria) {
  std::vector<QueryHitResult> out;
  for (const auto& m : index_.match(criteria)) {
    QueryHitResult r;
    r.index = m.index;
    r.size = static_cast<std::uint32_t>(m.file->size());
    r.filename = m.file->name();
    r.sha1 = m.file->sha1();
    out.push_back(std::move(r));
  }
  return out;
}

std::shared_ptr<const files::FileContent> IndexAnswerer::resolve(std::uint32_t index) {
  return index_.get(index);
}

void IndexAnswerer::populate_qrt(QueryRouteTable& qrt) const {
  QueryRouteTable built = index_.build_qrt(qrt.table_bits());
  qrt.from_patch_bytes(built.to_patch_bytes());
}

// ---------------------------------------------------------------------------
// Servent: lifecycle and topology
// ---------------------------------------------------------------------------

Servent::Servent(ServentConfig config, std::shared_ptr<QueryAnswerer> answerer,
                 std::shared_ptr<HostCache> host_cache, std::uint64_t rng_seed)
    : config_(config),
      answerer_(std::move(answerer)),
      host_cache_(std::move(host_cache)),
      rng_(rng_seed),
      servent_guid_(Guid::random(rng_)) {}

void Servent::start() { ensure_overlay_links(); }

util::Endpoint Servent::self_endpoint() const {
  const auto& p = network().profile(id());
  return util::Endpoint{p.ip, p.port};
}

bool Servent::self_firewalled() const { return network().profile(id()).behind_nat; }

std::size_t Servent::overlay_link_count() const {
  std::size_t n = 0;
  for (const auto& [cid, st] : conns_) {
    if ((st.kind == ConnKind::kOverlayOut || st.kind == ConnKind::kOverlayIn) &&
        st.hs == HsState::kEstablished) {
      ++n;
    }
  }
  return n;
}

std::size_t Servent::leaf_count() const {
  std::size_t n = 0;
  for (const auto& [cid, st] : conns_) {
    if (st.kind == ConnKind::kOverlayIn && st.hs == HsState::kEstablished &&
        !st.peer_ultrapeer) {
      ++n;
    }
  }
  return n;
}

void Servent::ensure_overlay_links() {
  std::size_t target = config_.ultrapeer ? config_.up_degree : config_.leaf_up_count;
  std::size_t have = pending_overlay_connects_;
  std::vector<sim::NodeId> connected_peers;
  for (const auto& [cid, st] : conns_) {
    if (st.kind == ConnKind::kOverlayOut) {
      // Pending (pre-open) links are already counted via
      // pending_overlay_connects_; just record the peer for dedup.
      if (st.hs == HsState::kNone) {
        connected_peers.push_back(st.peer);
      } else {
        ++have;
        connected_peers.push_back(st.peer);
      }
    }
    if (st.kind == ConnKind::kOverlayIn && st.hs == HsState::kEstablished &&
        st.peer_ultrapeer && config_.ultrapeer) {
      // Incoming UP links count toward degree so the mesh doesn't densify
      // unboundedly.
      ++have;
      connected_peers.push_back(st.peer);
    }
  }
  if (have >= target) return;

  auto candidates = host_cache_->sample(rng_, (target - have) * 3 + 2);
  // Mix in endpoints learned from pong caching: discovery beyond the
  // bootstrap cache (and the only path to ultrapeers the cache missed).
  for (const auto& ep : learned_hosts_) {
    if (std::find(candidates.begin(), candidates.end(), ep) == candidates.end()) {
      candidates.push_back(ep);
    }
  }
  util::Endpoint self = self_endpoint();
  for (const auto& ep : candidates) {
    if (have >= target) break;
    if (ep == self) continue;
    auto node_id = network().lookup(ep);
    if (!node_id || *node_id == id()) continue;
    if (std::find(connected_peers.begin(), connected_peers.end(), *node_id) !=
        connected_peers.end()) {
      continue;
    }
    sim::ConnId cid = network().connect(id(), *node_id);
    ConnState st;
    st.kind = ConnKind::kOverlayOut;
    st.peer = *node_id;
    conns_[cid] = st;
    ++pending_overlay_connects_;
    connected_peers.push_back(*node_id);
    ++have;
  }
  if (have < target) {
    // Host cache could not fill our slots; retry later.
    network().schedule_node(id(), config_.reconnect_delay * 4,
                            [this] { ensure_overlay_links(); });
  }
}

bool Servent::accept_connection(sim::NodeId from) {
  (void)from;
  // Admission is decided at handshake time (we cannot yet distinguish an
  // overlay link from a transfer connection); transfers are always welcome.
  return true;
}

void Servent::on_connection_open(sim::ConnId conn, sim::NodeId peer, bool initiated) {
  if (!initiated) {
    // Inbound: could be overlay handshake, HTTP GET, or GIV. Wait for the
    // first message to classify.
    ConnState st;
    st.kind = ConnKind::kUnknown;
    st.peer = peer;
    conns_[conn] = st;
    return;
  }
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState& st = it->second;
  switch (st.kind) {
    case ConnKind::kOverlayOut:
      if (pending_overlay_connects_ > 0) --pending_overlay_connects_;
      send_handshake_connect(conn);
      break;
    case ConnKind::kTransferOut: {
      auto pending = pending_downloads_.find(st.download_id);
      if (pending == pending_downloads_.end()) {
        network().close(conn, id());
        conns_.erase(conn);
        return;
      }
      pending->second.transfer_started = true;
      HttpRequest req = make_get_request(pending->second.result.index,
                                         pending->second.result.filename);
      network().send(conn, id(), req.serialize());
      break;
    }
    case ConnKind::kPushOut: {
      // We are the firewalled server connecting back: announce with GIV.
      auto file = answerer_->resolve(st.download_id > 0
                                         ? static_cast<std::uint32_t>(st.download_id - 1)
                                         : 0);
      GivLine giv;
      giv.index = st.download_id > 0 ? static_cast<std::uint32_t>(st.download_id - 1) : 0;
      giv.servent_guid = servent_guid_;
      giv.filename = file ? file->name() : "unknown";
      network().send(conn, id(), giv.serialize());
      // Conversation continues as an upload: requester sends GET next.
      st.kind = ConnKind::kTransferIn;
      break;
    }
    default:
      break;
  }
}

void Servent::on_connection_failed(sim::ConnId conn, sim::NodeId target) {
  (void)target;
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState st = it->second;
  conns_.erase(it);
  switch (st.kind) {
    case ConnKind::kOverlayOut:
      if (pending_overlay_connects_ > 0) --pending_overlay_connects_;
      network().schedule_node(id(), config_.reconnect_delay,
                              [this] { ensure_overlay_links(); });
      break;
    case ConnKind::kTransferOut:
      fail_download(st.download_id, "connect failed");
      break;
    default:
      break;
  }
}

void Servent::on_connection_closed(sim::ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState st = it->second;
  conns_.erase(it);
  if (st.kind == ConnKind::kOverlayOut ||
      (st.kind == ConnKind::kOverlayIn && st.hs == HsState::kEstablished)) {
    if (st.hs == HsState::kEstablished) GnutellaMetrics::get().links_closed.add(1);
    network().schedule_node(id(), config_.reconnect_delay,
                            [this] { ensure_overlay_links(); });
  }
  if (st.kind == ConnKind::kTransferOut && st.download_id != 0) {
    auto pending = pending_downloads_.find(st.download_id);
    if (pending != pending_downloads_.end()) {
      fail_download(st.download_id, "connection closed mid-transfer");
    }
  }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

void Servent::send_handshake_connect(sim::ConnId conn) {
  util::Endpoint self = self_endpoint();
  std::string hs = "GNUTELLA CONNECT/0.6\r\n";
  hs += std::string("X-Ultrapeer: ") + (config_.ultrapeer ? "True" : "False") + "\r\n";
  hs += "Listen-IP: " + self.ip.str() + "\r\n";
  hs += "Listen-Port: " + std::to_string(self.port) + "\r\n";
  hs += "User-Agent: P2PMAL/1.0\r\n\r\n";
  network().send(conn, id(), text_bytes(hs));
  conns_[conn].hs = HsState::kSentConnect;
}

void Servent::handle_handshake(sim::ConnId conn, ConnState& state,
                               util::ByteView wire) {
  std::string_view text = as_view(wire);
  if (text.starts_with("GNUTELLA CONNECT/0.6")) {
    // We are the acceptor.
    state.kind = ConnKind::kOverlayIn;
    state.peer_ultrapeer = header_flag(text, "X-Ultrapeer");
    if (auto ep = listen_endpoint_of(text)) {
      state.peer_listen = *ep;
      state.has_peer_listen = true;
    }
    bool refuse = false;
    if (!config_.ultrapeer) {
      refuse = true;  // leaves do not accept overlay links
    } else if (!state.peer_ultrapeer && leaf_count() >= config_.leaf_slots) {
      refuse = true;
    } else if (state.peer_ultrapeer) {
      std::size_t up_links = 0;
      for (const auto& [cid, st] : conns_) {
        if ((st.kind == ConnKind::kOverlayIn || st.kind == ConnKind::kOverlayOut) &&
            st.hs == HsState::kEstablished && st.peer_ultrapeer) {
          ++up_links;
        }
      }
      refuse = up_links >= config_.up_degree * 2;
    }
    if (refuse) {
      network().send(conn, id(),
                     text_bytes("GNUTELLA/0.6 503 Service Unavailable\r\n\r\n"));
      network().close(conn, id());
      conns_.erase(conn);
      return;
    }
    util::Endpoint self = self_endpoint();
    std::string ok = "GNUTELLA/0.6 200 OK\r\n";
    ok += std::string("X-Ultrapeer: ") + (config_.ultrapeer ? "True" : "False") +
          "\r\n";
    ok += "Listen-IP: " + self.ip.str() + "\r\n";
    ok += "Listen-Port: " + std::to_string(self.port) + "\r\n\r\n";
    network().send(conn, id(), text_bytes(ok));
    state.hs = HsState::kSentOk;
    return;
  }
  if (text.starts_with("GNUTELLA/0.6 200")) {
    if (state.hs == HsState::kSentConnect) {
      // Initiator: got acceptor's OK, send the final OK.
      state.peer_ultrapeer = header_flag(text, "X-Ultrapeer");
      if (auto ep = listen_endpoint_of(text)) {
        state.peer_listen = *ep;
        state.has_peer_listen = true;
      }
      network().send(conn, id(), text_bytes("GNUTELLA/0.6 200 OK\r\n\r\n"));
      established(conn, state);
      return;
    }
    if (state.hs == HsState::kSentOk) {
      // Acceptor: final OK received.
      established(conn, state);
      return;
    }
  }
  // Refusal or garbage: drop the link.
  if (state.kind == ConnKind::kOverlayOut) {
    network().schedule_node(id(), config_.reconnect_delay,
                            [this] { ensure_overlay_links(); });
  }
  network().close(conn, id());
  conns_.erase(conn);
}

void Servent::established(sim::ConnId conn, ConnState& state) {
  state.hs = HsState::kEstablished;
  GnutellaMetrics::get().links_established.add(1);
  P2P_TRACE(obs::Component::kGnutella, "link_established", network().now(),
            obs::tf("node", id()), obs::tf("peer", state.peer),
            obs::tf("peer_ultrapeer", state.peer_ultrapeer));
  // Leaves summarize their shares to ultrapeers via QRP.
  if (!config_.ultrapeer && state.peer_ultrapeer) send_qrt(conn);
  // Harvest the neighbour's pong cache for host discovery.
  send_msg(conn, make_ping(Guid::random(rng_), 1));
}

void Servent::refresh_qrt() {
  if (config_.ultrapeer) return;
  for (auto& [cid, st] : conns_) {
    if (st.kind == ConnKind::kOverlayOut && st.hs == HsState::kEstablished &&
        st.peer_ultrapeer) {
      send_qrt(cid);
    }
  }
}

void Servent::send_qrt(sim::ConnId conn) {
  QueryRouteTable qrt(config_.qrt_bits);
  answerer_->populate_qrt(qrt);
  Guid g = Guid::random(rng_);
  send_msg(conn, make_qrp_reset(g, config_.qrt_bits));
  send_msg(conn, make_qrp_patch(Guid::random(rng_), qrt.to_patch_bytes()));
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void Servent::on_message(sim::ConnId conn, const util::Payload& payload) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState& state = it->second;

  switch (state.kind) {
    case ConnKind::kUnknown:
      if (looks_like_handshake(payload)) {
        handle_handshake(conn, state, payload);
      } else if (looks_like_http_request(payload)) {
        handle_http_request(conn, payload);
      } else if (looks_like_giv(payload)) {
        handle_giv(conn, state, payload);
      } else {
        ++stats_.dropped_malformed;
        GnutellaMetrics::get().dropped_malformed.add(1);
        network().close(conn, id());
        conns_.erase(conn);
      }
      return;
    case ConnKind::kOverlayOut:
    case ConnKind::kOverlayIn:
      if (state.hs != HsState::kEstablished) {
        handle_handshake(conn, state, payload);
      } else {
        handle_descriptor(conn, state, payload);
      }
      return;
    case ConnKind::kTransferOut:
      if (looks_like_giv(payload)) {
        handle_giv(conn, state, payload);
      } else {
        handle_http_response(conn, state, payload);
      }
      return;
    case ConnKind::kTransferIn:
      if (looks_like_http_request(payload)) {
        handle_http_request(conn, payload);
      }
      return;
    case ConnKind::kPushOut:
      // Not expected before open-callback converts it; ignore.
      return;
  }
}

void Servent::handle_descriptor(sim::ConnId conn, ConnState& state,
                                util::ByteView wire) {
  auto msg = parse(wire);
  if (!msg) {
    ++stats_.dropped_malformed;
    GnutellaMetrics::get().dropped_malformed.add(1);
    return;
  }
  GnutellaMetrics::get().recv_counter(msg->type()).add(1);
  switch (msg->type()) {
    case MsgType::kPing:
      handle_ping(conn, *msg);
      break;
    case MsgType::kPong:
      handle_pong(*msg);
      break;
    case MsgType::kBye: {
      // Peer is leaving: tear the link down immediately and refill slots.
      network().close(conn, id());
      bool was_overlay = state.kind == ConnKind::kOverlayOut ||
                         (state.kind == ConnKind::kOverlayIn &&
                          state.hs == HsState::kEstablished);
      conns_.erase(conn);
      if (was_overlay) {
        network().schedule_node(id(), config_.reconnect_delay,
                                [this] { ensure_overlay_links(); });
      }
      return;  // `state` is dangling after the erase
    }
    case MsgType::kQuery:
      handle_query(conn, state, *msg);
      break;
    case MsgType::kQueryHit:
      handle_query_hit(conn, *msg);
      break;
    case MsgType::kPush:
      handle_push(conn, *msg);
      break;
    case MsgType::kQrp:
      handle_qrp(state, *msg);
      break;
  }
}

void Servent::note_seen(const Guid& guid) {
  seen_.insert(guid);
  seen_order_.push_back(guid);
  if (seen_.size() > kSeenCacheMax) {
    // Evict the oldest half; stale route entries go with them.
    std::size_t evict = seen_order_.size() / 2;
    for (std::size_t i = 0; i < evict; ++i) {
      seen_.erase(seen_order_[i]);
      query_routes_.erase(seen_order_[i]);
    }
    seen_order_.erase(seen_order_.begin(),
                      seen_order_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
}

bool Servent::already_seen(const Guid& guid) const { return seen_.contains(guid); }

void Servent::handle_ping(sim::ConnId conn, const Message& msg) {
  if (already_seen(msg.header.guid)) {
    ++stats_.dropped_duplicate;
    GnutellaMetrics::get().dropped_duplicate.add(1);
    return;
  }
  note_seen(msg.header.guid);
  Pong pong;
  pong.addr = self_endpoint();
  pong.file_count = answerer_->shared_file_count();
  pong.kb_shared = answerer_->shared_kb();
  send_msg(conn, make_pong(msg.header.guid,
                           static_cast<std::uint8_t>(msg.header.hops + 1), pong));
  // Pong caching: advertise up to pong_fanout ultrapeer neighbours whose
  // listen endpoints we learned during their handshakes.
  std::size_t advertised = 0;
  for (const auto& [cid, st] : conns_) {
    if (advertised >= config_.pong_fanout) break;
    if (cid == conn) continue;
    if ((st.kind != ConnKind::kOverlayIn && st.kind != ConnKind::kOverlayOut) ||
        st.hs != HsState::kEstablished || !st.peer_ultrapeer || !st.has_peer_listen) {
      continue;
    }
    Pong neighbour;
    neighbour.addr = st.peer_listen;
    send_msg(conn, make_pong(msg.header.guid,
                             static_cast<std::uint8_t>(msg.header.hops + 2), neighbour));
    ++advertised;
  }
}

void Servent::handle_pong(const Message& msg) {
  const auto& pong = std::get<Pong>(msg.payload);
  if (pong.addr == self_endpoint()) return;
  if (!pong.addr.ip.is_publicly_routable() || pong.addr.port == 0) return;
  if (std::find(learned_hosts_.begin(), learned_hosts_.end(), pong.addr) !=
      learned_hosts_.end()) {
    return;
  }
  if (learned_hosts_.size() >= config_.learned_host_max) {
    learned_hosts_.erase(learned_hosts_.begin());
  }
  learned_hosts_.push_back(pong.addr);
}

void Servent::handle_query(sim::ConnId conn, ConnState& state, const Message& msg) {
  OBS_SPAN("gnutella.handle_query");
  (void)state;
  auto& m = GnutellaMetrics::get();
  if (already_seen(msg.header.guid)) {
    ++stats_.dropped_duplicate;
    m.dropped_duplicate.add(1);
    return;
  }
  note_seen(msg.header.guid);
  ++stats_.queries_received;
  m.queries_received.add(1);
  query_routes_[msg.header.guid] = conn;

  const auto& query = std::get<Query>(msg.payload);
  if (query_callback_) query_callback_(query, msg.header.hops);

  answer_query(conn, msg);

  if (!config_.ultrapeer) return;  // leaves are the last hop

  Message fwd = msg;
  fwd.header.ttl = static_cast<std::uint8_t>(msg.header.ttl > 0 ? msg.header.ttl - 1 : 0);
  fwd.header.hops = static_cast<std::uint8_t>(msg.header.hops + 1);
  bool ttl_ok = msg.header.ttl > 1 && fwd.header.hops < config_.max_ttl;
  if (!ttl_ok) {
    ++stats_.dropped_ttl;
    m.dropped_ttl.add(1);
  }

  // Serialize each forwarded form once, lazily; every neighbor that takes
  // it shares the same buffer (a Payload refcount bump per hop, no copies).
  // The query's QRP hashes are likewise computed once and tested against
  // every leaf table (recomputed only if a leaf advertised a different
  // table size).
  util::Payload fwd_wire;
  util::Payload leaf_wire;
  QueryHashes qhash;
  for (auto& [cid, st] : conns_) {
    if (cid == conn) continue;
    if ((st.kind != ConnKind::kOverlayIn && st.kind != ConnKind::kOverlayOut) ||
        st.hs != HsState::kEstablished) {
      continue;
    }
    if (st.peer_ultrapeer) {
      if (ttl_ok) {
        if (fwd_wire.empty()) fwd_wire = serialize(fwd);
        network().send(cid, id(), fwd_wire);
        ++stats_.queries_forwarded_up;
        m.queries_routed.add(1);
      }
    } else {
      // Last hop to a leaf: QRP gate (always forwarded when QRP disabled —
      // the A2 ablation measures exactly this difference).
      if (config_.use_qrp && st.has_qrt) {
        if (qhash.bits != st.qrt.table_bits()) {
          qhash = hash_query(query.criteria, st.qrt.table_bits());
        }
        if (!st.qrt.matches_hashed(qhash)) {
          ++stats_.qrp_suppressed;
          m.qrp_suppressed.add(1);
          continue;
        }
      }
      if (leaf_wire.empty()) {
        Message leaf_fwd = fwd;
        leaf_fwd.header.ttl = std::max<std::uint8_t>(leaf_fwd.header.ttl, 1);
        leaf_wire = serialize(leaf_fwd);
      }
      network().send(cid, id(), leaf_wire);
      ++stats_.queries_forwarded_leaf;
      m.queries_routed.add(1);
    }
  }
}

void Servent::answer_query(sim::ConnId conn, const Message& msg) {
  const auto& query = std::get<Query>(msg.payload);
  auto results = answerer_->answer(query.criteria);
  if (results.empty()) return;
  if (results.size() > 255) results.resize(255);

  QueryHit hit;
  hit.addr = self_endpoint();
  hit.speed = static_cast<std::uint32_t>(network().profile(id()).uplink_bps * 8 / 1000);
  hit.results = std::move(results);
  hit.needs_push = self_firewalled();
  hit.servent_guid = servent_guid_;
  // QueryHits reuse the query's GUID and travel back along its path.
  auto ttl = static_cast<std::uint8_t>(msg.header.hops + 2);
  send_msg(conn, make_query_hit(msg.header.guid, ttl, std::move(hit)));
  ++stats_.hits_sent;
  GnutellaMetrics::get().hits_sent.add(1);
}

void Servent::handle_query_hit(sim::ConnId conn, const Message& msg) {
  const auto& hit = std::get<QueryHit>(msg.payload);
  // Remember how to reach the responder for later PUSH routing.
  push_routes_[hit.servent_guid] = conn;
  if (push_routes_.size() > kSeenCacheMax) push_routes_.clear();

  auto& m = GnutellaMetrics::get();
  if (our_queries_.contains(msg.header.guid)) {
    ++stats_.hits_received;
    m.hits_received.add(1);
    m.hit_hops.record(static_cast<std::int64_t>(msg.header.hops));
    P2P_TRACE(obs::Component::kGnutella, "hit_received", network().now(),
              obs::tf("node", id()), obs::tf("hops", int(msg.header.hops)),
              obs::tf("results", hit.results.size()));
    if (auto dq = dynamic_queries_.find(msg.header.guid); dq != dynamic_queries_.end()) {
      dq->second.results_seen += hit.results.size();
    }
    if (hit_callback_) {
      hit_callback_(HitEvent{msg.header.guid, hit, msg.header.hops, network().now()});
    }
    return;
  }
  auto route = query_routes_.find(msg.header.guid);
  if (route == query_routes_.end()) return;
  if (msg.header.ttl <= 1) {
    ++stats_.dropped_ttl;
    m.dropped_ttl.add(1);
    return;
  }
  Message fwd = msg;
  fwd.header.ttl = static_cast<std::uint8_t>(msg.header.ttl - 1);
  fwd.header.hops = static_cast<std::uint8_t>(msg.header.hops + 1);
  send_msg(route->second, fwd);
  ++stats_.hits_routed;
  m.hits_routed.add(1);
}

void Servent::handle_qrp(ConnState& state, const Message& msg) {
  const auto& qrp = std::get<Qrp>(msg.payload);
  if (std::holds_alternative<QrpReset>(qrp.op)) {
    const auto& reset = std::get<QrpReset>(qrp.op);
    if (reset.table_bits >= 4 && reset.table_bits <= 24) {
      state.qrt = QueryRouteTable(reset.table_bits);
      state.has_qrt = false;  // armed by the PATCH that follows
    }
  } else {
    const auto& patch = std::get<QrpPatch>(qrp.op);
    if (state.qrt.from_patch_bytes(patch.bits)) state.has_qrt = true;
  }
}

// ---------------------------------------------------------------------------
// Query origination and downloads
// ---------------------------------------------------------------------------

Guid Servent::send_query(const std::string& criteria) {
  Guid guid = Guid::random(rng_);
  our_queries_.insert(guid);
  note_seen(guid);
  // One serialization for the whole broadcast; every neighbor shares the
  // buffer.
  util::Payload wire{serialize(make_query(guid, config_.query_ttl, criteria))};
  for (auto& [cid, st] : conns_) {
    if ((st.kind == ConnKind::kOverlayOut || st.kind == ConnKind::kOverlayIn) &&
        st.hs == HsState::kEstablished) {
      network().send(cid, id(), wire);
    }
  }
  ++stats_.queries_originated;
  P2P_TRACE(obs::Component::kGnutella, "query_originated", network().now(),
            obs::tf("node", id()), obs::tf("criteria", criteria),
            obs::tf("ttl", int(config_.query_ttl)));
  return guid;
}

Guid Servent::send_query_dynamic(const std::string& criteria,
                                 std::size_t target_results,
                                 sim::SimDuration probe_interval) {
  Guid guid = Guid::random(rng_);
  our_queries_.insert(guid);
  note_seen(guid);
  ++stats_.queries_originated;

  DynamicQueryState state;
  state.criteria = criteria;
  state.target_results = target_results;
  state.probe_interval = probe_interval;
  for (const auto& [cid, st] : conns_) {
    if ((st.kind == ConnKind::kOverlayOut || st.kind == ConnKind::kOverlayIn) &&
        st.hs == HsState::kEstablished) {
      state.remaining_conns.push_back(cid);
    }
  }
  dynamic_queries_[guid] = std::move(state);
  dynamic_query_probe(guid);
  return guid;
}

void Servent::dynamic_query_probe(Guid guid) {
  auto it = dynamic_queries_.find(guid);
  if (it == dynamic_queries_.end()) return;
  DynamicQueryState& dq = it->second;
  if (dq.results_seen >= dq.target_results || dq.remaining_conns.empty()) {
    dynamic_queries_.erase(it);
    return;
  }
  // Probe the next ultrapeer; re-used GUID means already-visited overlay
  // territory drops the copy as a duplicate.
  sim::ConnId next = dq.remaining_conns.back();
  dq.remaining_conns.pop_back();
  std::uint8_t ttl = std::min<std::uint8_t>(dq.next_ttl, config_.query_ttl);
  if (dq.next_ttl < config_.query_ttl) ++dq.next_ttl;
  if (conns_.contains(next)) {
    send_msg(next, make_query(guid, ttl, dq.criteria));
  }
  network().schedule_node(id(), dq.probe_interval,
                          [this, guid] { dynamic_query_probe(guid); });
}

std::uint64_t Servent::download(const QueryHit& source_hit,
                                const QueryHitResult& result) {
  std::uint64_t id_ = next_download_id_++;
  PendingDownload pending;
  pending.id = id_;
  pending.result = result;
  pending.source = source_hit.addr;
  pending.servent_guid = source_hit.servent_guid;

  bool direct_possible = !source_hit.needs_push &&
                         source_hit.addr.ip.is_publicly_routable();
  std::optional<sim::NodeId> target;
  if (direct_possible) target = network().lookup(source_hit.addr);

  if (target) {
    sim::ConnId cid = network().connect(id(), *target);
    ConnState st;
    st.kind = ConnKind::kTransferOut;
    st.peer = *target;
    st.download_id = id_;
    conns_[cid] = st;
    pending_downloads_[id_] = std::move(pending);
  } else {
    pending.via_push = true;
    pending_downloads_[id_] = std::move(pending);
    start_push(pending_downloads_[id_]);
  }

  network().schedule_node(id(), config_.download_timeout, [this, id_] {
    if (pending_downloads_.contains(id_)) fail_download(id_, "timeout");
  });
  return id_;
}

void Servent::start_push(PendingDownload& pending) {
  Push push;
  push.servent_guid = pending.servent_guid;
  push.file_index = pending.result.index;
  push.requester = self_endpoint();
  Guid guid = Guid::random(rng_);
  Message msg = make_push(guid, config_.query_ttl, push);

  // Prefer the connection that delivered the hit; fall back to flooding our
  // overlay links.
  auto route = push_routes_.find(pending.servent_guid);
  if (route != push_routes_.end() && conns_.contains(route->second)) {
    send_msg(route->second, msg);
    ++stats_.pushes_sent;
    return;
  }
  for (auto& [cid, st] : conns_) {
    if ((st.kind == ConnKind::kOverlayOut || st.kind == ConnKind::kOverlayIn) &&
        st.hs == HsState::kEstablished) {
      send_msg(cid, msg);
      ++stats_.pushes_sent;
    }
  }
}

void Servent::handle_push(sim::ConnId conn, const Message& msg) {
  (void)conn;
  const auto& push = std::get<Push>(msg.payload);
  if (push.servent_guid == servent_guid_) {
    // We are the (possibly firewalled) server: connect back and GIV.
    auto requester = network().lookup(push.requester);
    if (!requester) return;  // requester itself unreachable: give up
    sim::ConnId cid = network().connect(id(), *requester);
    ConnState st;
    st.kind = ConnKind::kPushOut;
    st.peer = *requester;
    // Encode the pushed file index (+1 so 0 stays distinguishable).
    st.download_id = static_cast<std::uint64_t>(push.file_index) + 1;
    conns_[cid] = st;
    return;
  }
  if (already_seen(msg.header.guid)) {
    ++stats_.dropped_duplicate;
    return;
  }
  note_seen(msg.header.guid);
  auto route = push_routes_.find(push.servent_guid);
  if (route == push_routes_.end() || msg.header.ttl <= 1) return;
  Message fwd = msg;
  fwd.header.ttl = static_cast<std::uint8_t>(msg.header.ttl - 1);
  fwd.header.hops = static_cast<std::uint8_t>(msg.header.hops + 1);
  send_msg(route->second, fwd);
  ++stats_.pushes_routed;
  GnutellaMetrics::get().pushes_routed.add(1);
}

void Servent::handle_giv(sim::ConnId conn, ConnState& state, util::ByteView wire) {
  auto giv = GivLine::parse(wire);
  if (!giv) {
    network().close(conn, id());
    conns_.erase(conn);
    return;
  }
  // Find the pending push download this connect-back satisfies.
  for (auto& [did, pending] : pending_downloads_) {
    if (pending.via_push && pending.servent_guid == giv->servent_guid &&
        pending.result.index == giv->index && !pending.transfer_started) {
      pending.transfer_started = true;
      state.kind = ConnKind::kTransferOut;
      state.download_id = did;
      HttpRequest req = make_get_request(pending.result.index, pending.result.filename);
      network().send(conn, id(), req.serialize());
      return;
    }
  }
  // No matching request: close.
  network().close(conn, id());
  conns_.erase(conn);
}

void Servent::handle_http_request(sim::ConnId conn, util::ByteView wire) {
  auto req = HttpRequest::parse(wire);
  HttpResponse resp;

  // Upload-slot admission: a host saturating its slots answers 503 Busy.
  if (config_.upload_slots > 0) {
    sim::SimTime cutoff_base = network().now();
    recent_upload_starts_.erase(
        std::remove_if(recent_upload_starts_.begin(), recent_upload_starts_.end(),
                       [&](sim::SimTime t) {
                         return cutoff_base - t > config_.upload_window;
                       }),
        recent_upload_starts_.end());
    if (recent_upload_starts_.size() >= config_.upload_slots) {
      ++stats_.uploads_refused_busy;
      resp.status = 503;
      resp.reason = "Busy";
      network().send(conn, id(), resp.serialize());
      return;
    }
  }

  std::shared_ptr<const files::FileContent> file;
  if (req) {
    if (auto get = parse_get_path(req->path)) file = answerer_->resolve(get->first);
  }
  if (file) {
    recent_upload_starts_.push_back(network().now());
    resp.status = 200;
    resp.reason = "OK";
    resp.headers = {{"Server", "P2PMAL/1.0"},
                    {"Content-Type", "application/binary"}};
    resp.body = file->bytes();
    ++stats_.uploads_served;
    GnutellaMetrics::get().uploads_served.add(1);
  } else {
    resp.status = 404;
    resp.reason = "Not Found";
  }
  network().send(conn, id(), resp.serialize());
  // The requester closes after reading the body (closing here would race
  // the in-flight response in a real stack too).
}

void Servent::handle_http_response(sim::ConnId conn, ConnState& state,
                                   util::ByteView wire) {
  std::uint64_t did = state.download_id;
  auto pending_it = pending_downloads_.find(did);
  network().close(conn, id());
  conns_.erase(conn);
  if (pending_it == pending_downloads_.end()) return;
  PendingDownload pending = std::move(pending_it->second);
  pending_downloads_.erase(pending_it);

  auto resp = HttpResponse::parse(wire);
  DownloadOutcome outcome;
  outcome.request_id = did;
  outcome.filename = pending.result.filename;
  outcome.source = pending.source;
  outcome.servent_guid = pending.servent_guid;
  if (resp && resp->status == 200) {
    outcome.success = true;
    outcome.content = std::move(resp->body);
    ++stats_.downloads_ok;
  } else {
    outcome.success = false;
    outcome.error = resp ? ("http " + std::to_string(resp->status)) : "malformed response";
    ++stats_.downloads_failed;
  }
  if (download_callback_) download_callback_(outcome);
}

void Servent::fail_download(std::uint64_t id_, const std::string& error) {
  auto it = pending_downloads_.find(id_);
  if (it == pending_downloads_.end()) return;
  DownloadOutcome outcome;
  outcome.request_id = id_;
  outcome.success = false;
  outcome.filename = it->second.result.filename;
  outcome.source = it->second.source;
  outcome.servent_guid = it->second.servent_guid;
  outcome.error = error;
  pending_downloads_.erase(it);
  ++stats_.downloads_failed;
  if (download_callback_) download_callback_(outcome);
}

void Servent::shutdown(std::uint16_t code, const std::string& reason) {
  for (auto& [cid, st] : conns_) {
    if ((st.kind == ConnKind::kOverlayOut || st.kind == ConnKind::kOverlayIn) &&
        st.hs == HsState::kEstablished) {
      send_msg(cid, make_bye(Guid::random(rng_), code, reason));
    }
    network().close(cid, id());
  }
  conns_.clear();
}

void Servent::send_msg(sim::ConnId conn, const Message& msg) {
  network().send(conn, id(), serialize(msg));
}

}  // namespace p2p::gnutella
