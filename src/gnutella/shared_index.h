// A servent's shared-file index: stable file indices (used in QueryHit and
// download URLs), keyword matching, and QRP table construction.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "files/file.h"
#include "gnutella/qrp.h"

namespace p2p::gnutella {

class SharedFileIndex {
 public:
  /// Add a file; returns its stable index.
  std::uint32_t add(std::shared_ptr<const files::FileContent> file);

  [[nodiscard]] std::size_t count() const { return files_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Files whose names contain every keyword of the query.
  struct Match {
    std::uint32_t index;
    const files::FileContent* file;
  };
  [[nodiscard]] std::vector<Match> match(std::string_view query) const;

  /// Lookup by index for upload serving; nullptr if out of range.
  [[nodiscard]] std::shared_ptr<const files::FileContent> get(std::uint32_t index) const;

  /// Build the QRP table summarizing all shared names.
  [[nodiscard]] QueryRouteTable build_qrt(unsigned table_bits = 13) const;

 private:
  std::vector<std::shared_ptr<const files::FileContent>> files_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace p2p::gnutella
