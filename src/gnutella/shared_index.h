// A servent's shared-file index: stable file indices (used in QueryHit and
// download URLs), keyword matching, and QRP table construction.
//
// Matching is interned: every distinct keyword gets a small integer id from
// a TokenInterner (one per population, shared by every peer's index), each
// file's name is tokenized exactly once at add() time into a sorted id set,
// and match() tokenizes the query once and runs a sorted-subset test per
// file. This replaces the old per-call re-tokenization of every file name
// (util::keyword_match per file per query) on the hottest study path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "files/file.h"
#include "gnutella/qrp.h"

namespace p2p::gnutella {

/// Keyword -> dense id table shared across every shared-file index of a
/// population ("the corpus"). Interning happens at population-build time
/// (single-threaded); during a run only the const lookup path is used, so
/// concurrent match() calls from sharded-engine workers are safe. Token id
/// values are an internal detail — nothing observable depends on them.
class TokenInterner {
 public:
  /// Sorted unique ids for every keyword of `text` (a filename), interning
  /// tokens not seen before. Tokenization matches util::keywords: split on
  /// non-alphanumeric, lowercase, drop tokens shorter than 2 chars.
  std::vector<std::uint32_t> intern_keywords(std::string_view text);

  /// Sorted unique ids for a query's keywords; nullopt when the query has
  /// no keywords or contains a keyword never interned — either way no
  /// shared file can match. Read-only.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> lookup_keywords(
      std::string_view text) const;

  [[nodiscard]] std::size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
};

class SharedFileIndex {
 public:
  SharedFileIndex() = default;
  /// Share one interner across every index of a population so each distinct
  /// name is tokenized once corpus-wide.
  explicit SharedFileIndex(std::shared_ptr<TokenInterner> interner)
      : interner_(std::move(interner)) {}

  /// Add a file; returns its stable index.
  std::uint32_t add(std::shared_ptr<const files::FileContent> file);

  [[nodiscard]] std::size_t count() const { return files_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Files whose names contain every keyword of the query.
  struct Match {
    std::uint32_t index;
    const files::FileContent* file;
  };
  [[nodiscard]] std::vector<Match> match(std::string_view query) const;

  /// Lookup by index for upload serving; nullptr if out of range.
  [[nodiscard]] std::shared_ptr<const files::FileContent> get(std::uint32_t index) const;

  /// Build the QRP table summarizing all shared names.
  [[nodiscard]] QueryRouteTable build_qrt(unsigned table_bits = 13) const;

 private:
  std::shared_ptr<TokenInterner> interner_;
  std::vector<std::shared_ptr<const files::FileContent>> files_;
  /// Per-file sorted unique token ids, flattened; file i owns
  /// [offsets_[i], offsets_[i+1]).
  std::vector<std::uint32_t> token_ids_;
  std::vector<std::uint32_t> offsets_{0};
  std::uint64_t total_bytes_ = 0;
};

}  // namespace p2p::gnutella
