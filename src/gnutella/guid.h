// Gnutella message GUIDs: 16 opaque bytes identifying a descriptor for
// routing (duplicate suppression, route-back tables) and identifying
// servents (QueryHit trailers, Push targets).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.h"
#include "util/rng.h"

namespace p2p::gnutella {

struct Guid {
  std::array<std::uint8_t, 16> bytes{};

  static Guid random(util::Rng& rng) {
    Guid g;
    rng.fill(g.bytes);
    // Modern-servent convention: byte 8 = 0xff, byte 15 = 0x00.
    g.bytes[8] = 0xff;
    g.bytes[15] = 0x00;
    return g;
  }

  [[nodiscard]] std::string hex() const { return util::to_hex(bytes); }

  auto operator<=>(const Guid&) const = default;
};

struct GuidHash {
  std::size_t operator()(const Guid& g) const {
    // FNV-1a over the 16 bytes.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : g.bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace p2p::gnutella
