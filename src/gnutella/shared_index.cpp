#include "gnutella/shared_index.h"

#include <algorithm>

#include "util/strings.h"

namespace p2p::gnutella {

std::vector<std::uint32_t> TokenInterner::intern_keywords(std::string_view text) {
  std::vector<std::uint32_t> out;
  for (auto& kw : util::keywords(text)) {
    auto [it, inserted] =
        ids_.emplace(std::move(kw), static_cast<std::uint32_t>(ids_.size()));
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::vector<std::uint32_t>> TokenInterner::lookup_keywords(
    std::string_view text) const {
  auto kws = util::keywords(text);
  if (kws.empty()) return std::nullopt;
  std::vector<std::uint32_t> out;
  out.reserve(kws.size());
  for (const auto& kw : kws) {
    auto it = ids_.find(kw);
    if (it == ids_.end()) return std::nullopt;
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint32_t SharedFileIndex::add(std::shared_ptr<const files::FileContent> file) {
  if (!interner_) interner_ = std::make_shared<TokenInterner>();
  total_bytes_ += file->size();
  auto ids = interner_->intern_keywords(file->name());
  token_ids_.insert(token_ids_.end(), ids.begin(), ids.end());
  offsets_.push_back(static_cast<std::uint32_t>(token_ids_.size()));
  files_.push_back(std::move(file));
  return static_cast<std::uint32_t>(files_.size() - 1);
}

std::vector<SharedFileIndex::Match> SharedFileIndex::match(std::string_view query) const {
  std::vector<Match> out;
  if (files_.empty()) return out;
  auto q = interner_->lookup_keywords(query);
  if (!q) return out;  // no keywords, or one no shared file anywhere contains
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const auto* begin = token_ids_.data() + offsets_[i];
    const auto* end = token_ids_.data() + offsets_[i + 1];
    if (std::includes(begin, end, q->begin(), q->end())) {
      out.push_back(Match{static_cast<std::uint32_t>(i), files_[i].get()});
    }
  }
  return out;
}

std::shared_ptr<const files::FileContent> SharedFileIndex::get(std::uint32_t index) const {
  if (index >= files_.size()) return nullptr;
  return files_[index];
}

QueryRouteTable SharedFileIndex::build_qrt(unsigned table_bits) const {
  QueryRouteTable qrt(table_bits);
  for (const auto& f : files_) qrt.add_keywords(f->name());
  return qrt;
}

}  // namespace p2p::gnutella
