#include "gnutella/shared_index.h"

#include "util/strings.h"

namespace p2p::gnutella {

std::uint32_t SharedFileIndex::add(std::shared_ptr<const files::FileContent> file) {
  total_bytes_ += file->size();
  files_.push_back(std::move(file));
  return static_cast<std::uint32_t>(files_.size() - 1);
}

std::vector<SharedFileIndex::Match> SharedFileIndex::match(std::string_view query) const {
  std::vector<Match> out;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (util::keyword_match(query, files_[i]->name())) {
      out.push_back(Match{static_cast<std::uint32_t>(i), files_[i].get()});
    }
  }
  return out;
}

std::shared_ptr<const files::FileContent> SharedFileIndex::get(std::uint32_t index) const {
  if (index >= files_.size()) return nullptr;
  return files_[index];
}

QueryRouteTable SharedFileIndex::build_qrt(unsigned table_bits) const {
  QueryRouteTable qrt(table_bits);
  for (const auto& f : files_) qrt.add_keywords(f->name());
  return qrt;
}

}  // namespace p2p::gnutella
