// Query Routing Protocol (QRP) tables.
//
// Leaves summarize their shared keywords into a hash bitmap and ship it to
// their ultrapeers; an ultrapeer forwards a query to a leaf only if every
// query keyword hashes to a set slot. This is the mechanism that keeps
// last-hop query traffic proportional to matching leaves — and the thing
// a query-echoing worm defeats by advertising an all-ones table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace p2p::gnutella {

/// The standard QRP keyword hash (GDF spec): pack the lowercased bytes into
/// little-endian 32-bit words XORed together, multiply by 0x4F1BBCDC, and
/// keep the top `bits` bits of the low 32-bit product.
[[nodiscard]] std::uint32_t qrp_hash(std::string_view keyword, unsigned bits);

/// A query's keywords tokenized and QRP-hashed once for one table size, so
/// an ultrapeer can gate the same query against many leaf tables without
/// re-parsing the criteria string per leaf (the last-hop hot path).
struct QueryHashes {
  unsigned bits = 0;  // 0 = not yet computed
  bool no_keywords = true;
  std::vector<std::uint32_t> slots;
};
[[nodiscard]] QueryHashes hash_query(std::string_view query, unsigned bits);

class QueryRouteTable {
 public:
  /// table_bits in [4, 24]; table has 2^table_bits slots.
  explicit QueryRouteTable(unsigned table_bits = 13);

  [[nodiscard]] unsigned table_bits() const { return bits_; }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  void clear();
  /// Mark all slots present (what a worm that wants every query would send).
  void fill_all();

  /// Insert every keyword of a filename/title.
  void add_keywords(std::string_view text);

  /// Would this table admit the query? (every query keyword present).
  [[nodiscard]] bool matches(std::string_view query) const;

  /// Same decision from precomputed hashes; `q.bits` must equal
  /// table_bits(). Byte-identical to matches() on the same query.
  [[nodiscard]] bool matches_hashed(const QueryHashes& q) const;

  /// Fraction of slots set — used by ultrapeers to spot degenerate tables.
  [[nodiscard]] double fill_ratio() const;

  /// Serialize slots as one byte per slot (PATCH payload).
  [[nodiscard]] util::Bytes to_patch_bytes() const;
  /// Rebuild from PATCH bytes; returns false if the size is not a power of
  /// two in the supported range.
  bool from_patch_bytes(const util::Bytes& bytes);

 private:
  unsigned bits_;
  std::vector<bool> slots_;
};

}  // namespace p2p::gnutella
