// Gnutella 0.6 binary descriptors, serialized in the real wire format:
//
//   header: GUID(16) | type(1) | TTL(1) | hops(1) | payload_length(4 LE)
//
// Payload types implemented: Ping (0x00), Pong (0x01), Push (0x40),
// Query (0x80), QueryHit (0x81), plus the QRP route-table update (0x30)
// ultrapeers exchange with leaves. QueryHit result entries carry a
// urn:sha1 extension string, as LimeWire emitted (HUGE).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "files/hash.h"
#include "gnutella/guid.h"
#include "util/bytes.h"
#include "util/ip.h"

namespace p2p::gnutella {

enum class MsgType : std::uint8_t {
  kPing = 0x00,
  kPong = 0x01,
  kBye = 0x02,
  kQrp = 0x30,
  kPush = 0x40,
  kQuery = 0x80,
  kQueryHit = 0x81,
};

struct Header {
  Guid guid;
  MsgType type = MsgType::kPing;
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
};

struct Ping {};

/// Graceful disconnect (BYE, GDF extension): code + human-readable reason.
/// A peer receiving BYE treats the link as closed without waiting for the
/// transport-level teardown.
struct Bye {
  std::uint16_t code = 200;
  std::string reason;
};

struct Pong {
  util::Endpoint addr;
  std::uint32_t file_count = 0;
  std::uint32_t kb_shared = 0;
};

struct Query {
  std::uint16_t min_speed = 0;
  std::string criteria;
};

struct QueryHitResult {
  std::uint32_t index = 0;
  std::uint32_t size = 0;
  std::string filename;
  files::Digest20 sha1{};  // carried as a urn:sha1 extension
};

struct QueryHit {
  util::Endpoint addr;
  std::uint32_t speed = 0;
  std::vector<QueryHitResult> results;
  /// True if the responder cannot accept incoming connections and needs a
  /// PUSH (the trailer's busy/push flag).
  bool needs_push = false;
  Guid servent_guid;
};

struct Push {
  Guid servent_guid;
  std::uint32_t file_index = 0;
  util::Endpoint requester;
};

/// QRP route-table update. Real servents send RESET then zlib-compressed
/// PATCH sequences; we implement RESET and a single uncompressed PATCH
/// carrying the whole bit table, preserving message structure and size
/// order-of-magnitude without a compressor dependency.
struct QrpReset {
  std::uint32_t table_bits = 0;  // table size = 2^table_bits entries
};
struct QrpPatch {
  util::Bytes bits;  // one byte per table slot (0/1)
};
struct Qrp {
  std::variant<QrpReset, QrpPatch> op;
};

using Payload = std::variant<Ping, Pong, Query, QueryHit, Push, Qrp, Bye>;

struct Message {
  Header header;
  Payload payload;

  [[nodiscard]] MsgType type() const { return header.type; }
};

/// Serialize to the wire format.
[[nodiscard]] util::Bytes serialize(const Message& msg);

/// Parse one descriptor. Returns nullopt on malformed input (bad lengths,
/// unknown type, truncation) — the servent drops such traffic.
[[nodiscard]] std::optional<Message> parse(util::ByteView wire);

/// Helper constructors that fill in type tags consistently.
[[nodiscard]] Message make_ping(Guid guid, std::uint8_t ttl);
[[nodiscard]] Message make_pong(Guid guid, std::uint8_t ttl, const Pong& pong);
[[nodiscard]] Message make_query(Guid guid, std::uint8_t ttl, std::string criteria,
                                 std::uint16_t min_speed = 0);
[[nodiscard]] Message make_query_hit(Guid guid, std::uint8_t ttl, QueryHit hit);
[[nodiscard]] Message make_push(Guid guid, std::uint8_t ttl, const Push& push);
[[nodiscard]] Message make_qrp_reset(Guid guid, std::uint32_t table_bits);
[[nodiscard]] Message make_qrp_patch(Guid guid, util::Bytes bits);
[[nodiscard]] Message make_bye(Guid guid, std::uint16_t code, std::string reason);

}  // namespace p2p::gnutella
