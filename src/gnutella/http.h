// Minimal HTTP/1.1 subset for Gnutella file transfers.
//
// Uploads are served over dedicated connections: the requester sends
// "GET /get/<index>/<filename> HTTP/1.1" and the server replies with a
// Content-Length-framed body. Firewalled servers connect back after a PUSH
// and announce themselves with a "GIV <index>:<guid>/<filename>" line.
// Because the simulated transport is message-framed, one request or
// response is one transport message (headers and body together).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gnutella/guid.h"
#include "util/bytes.h"

namespace p2p::gnutella {

struct HttpRequest {
  std::string method = "GET";
  std::string path;
  std::vector<std::pair<std::string, std::string>> headers;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<HttpRequest> parse(util::ByteView wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<HttpResponse> parse(util::ByteView wire);
};

/// "/get/<index>/<filename>" -> (index, filename); nullopt if not that shape.
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::string>> parse_get_path(
    const std::string& path);

/// Build the /get request for a query-hit result.
[[nodiscard]] HttpRequest make_get_request(std::uint32_t index,
                                           const std::string& filename);

/// PUSH connect-back announcement line.
struct GivLine {
  std::uint32_t index = 0;
  Guid servent_guid;
  std::string filename;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<GivLine> parse(util::ByteView wire);
};

/// Quick dispatch on an incoming transfer-connection message.
[[nodiscard]] bool looks_like_http_request(util::ByteView wire);
[[nodiscard]] bool looks_like_giv(util::ByteView wire);
[[nodiscard]] bool looks_like_handshake(util::ByteView wire);

}  // namespace p2p::gnutella
