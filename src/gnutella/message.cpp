#include "gnutella/message.h"

#include <cstring>

namespace p2p::gnutella {

namespace {

constexpr std::uint8_t kQhdPushFlag = 0x01;

void write_ip(util::ByteWriter& w, util::Ipv4 ip) {
  // IPv4 on the Gnutella wire is big-endian (network order) bytes.
  w.u32be(ip.value());
}

util::Ipv4 read_ip(util::ByteReader& r) { return util::Ipv4{r.u32be()}; }

void write_payload(util::ByteWriter& w, const Payload& payload) {
  std::visit(
      [&w](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Ping>) {
          // empty payload
        } else if constexpr (std::is_same_v<T, Bye>) {
          w.u16le(p.code);
          w.cstr(p.reason);
        } else if constexpr (std::is_same_v<T, Pong>) {
          w.u16le(p.addr.port);
          write_ip(w, p.addr.ip);
          w.u32le(p.file_count);
          w.u32le(p.kb_shared);
        } else if constexpr (std::is_same_v<T, Query>) {
          w.u16le(p.min_speed);
          w.cstr(p.criteria);
        } else if constexpr (std::is_same_v<T, QueryHit>) {
          w.u8(static_cast<std::uint8_t>(p.results.size()));
          w.u16le(p.addr.port);
          write_ip(w, p.addr.ip);
          w.u32le(p.speed);
          for (const auto& r : p.results) {
            w.u32le(r.index);
            w.u32le(r.size);
            w.cstr(r.filename);
            w.cstr("urn:sha1:" + util::to_hex(r.sha1));
          }
          // Minimal EQHD-style trailer: vendor code, open-data length,
          // flags byte (push bit), then the 16-byte servent GUID.
          w.str("P2PM");
          w.u8(1);
          w.u8(p.needs_push ? kQhdPushFlag : 0);
          w.bytes(p.servent_guid.bytes);
        } else if constexpr (std::is_same_v<T, Push>) {
          w.bytes(p.servent_guid.bytes);
          w.u32le(p.file_index);
          write_ip(w, p.requester.ip);
          w.u16le(p.requester.port);
        } else if constexpr (std::is_same_v<T, Qrp>) {
          std::visit(
              [&w](const auto& op) {
                using O = std::decay_t<decltype(op)>;
                if constexpr (std::is_same_v<O, QrpReset>) {
                  w.u8(0x0);  // RESET variant
                  w.u32le(op.table_bits);
                } else {
                  w.u8(0x1);  // PATCH variant (uncompressed, 8-bit entries)
                  w.u32le(static_cast<std::uint32_t>(op.bits.size()));
                  w.bytes(op.bits);
                }
              },
              p.op);
        }
      },
      payload);
}

std::optional<Payload> read_payload(MsgType type, util::ByteReader& r) {
  switch (type) {
    case MsgType::kPing:
      return Payload{Ping{}};
    case MsgType::kBye: {
      Bye bye;
      bye.code = r.u16le();
      bye.reason = r.cstr();
      return Payload{std::move(bye)};
    }
    case MsgType::kPong: {
      Pong p;
      p.addr.port = r.u16le();
      p.addr.ip = read_ip(r);
      p.file_count = r.u32le();
      p.kb_shared = r.u32le();
      return Payload{p};
    }
    case MsgType::kQuery: {
      Query q;
      q.min_speed = r.u16le();
      q.criteria = r.cstr();
      return Payload{q};
    }
    case MsgType::kQueryHit: {
      QueryHit h;
      std::uint8_t n = r.u8();
      h.addr.port = r.u16le();
      h.addr.ip = read_ip(r);
      h.speed = r.u32le();
      h.results.reserve(n);
      for (std::uint8_t i = 0; i < n; ++i) {
        QueryHitResult res;
        res.index = r.u32le();
        res.size = r.u32le();
        res.filename = r.cstr();
        std::string ext = r.cstr();
        constexpr std::string_view kUrnPrefix = "urn:sha1:";
        if (ext.starts_with(kUrnPrefix)) {
          if (auto bytes = util::from_hex(
                  std::string_view{ext}.substr(kUrnPrefix.size()));
              bytes && bytes->size() == res.sha1.size()) {
            std::copy(bytes->begin(), bytes->end(), res.sha1.begin());
          }
        }
        h.results.push_back(std::move(res));
      }
      r.skip(4);  // vendor code
      std::uint8_t open_data_len = r.u8();
      if (open_data_len >= 1) {
        std::uint8_t flags = r.u8();
        h.needs_push = (flags & kQhdPushFlag) != 0;
        if (open_data_len > 1) r.skip(open_data_len - 1);
      }
      auto guid_bytes = r.bytes(16);
      std::copy(guid_bytes.begin(), guid_bytes.end(), h.servent_guid.bytes.begin());
      return Payload{std::move(h)};
    }
    case MsgType::kPush: {
      Push p;
      auto guid_bytes = r.bytes(16);
      std::copy(guid_bytes.begin(), guid_bytes.end(), p.servent_guid.bytes.begin());
      p.file_index = r.u32le();
      p.requester.ip = read_ip(r);
      p.requester.port = r.u16le();
      return Payload{p};
    }
    case MsgType::kQrp: {
      std::uint8_t variant = r.u8();
      if (variant == 0x0) {
        QrpReset reset;
        reset.table_bits = r.u32le();
        return Payload{Qrp{reset}};
      }
      if (variant == 0x1) {
        QrpPatch patch;
        std::uint32_t len = r.u32le();
        patch.bits = r.bytes(len);
        return Payload{Qrp{std::move(patch)}};
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

util::Bytes serialize(const Message& msg) {
  util::ByteWriter body;
  write_payload(body, msg.payload);

  util::ByteWriter w;
  w.bytes(msg.header.guid.bytes);
  w.u8(static_cast<std::uint8_t>(msg.header.type));
  w.u8(msg.header.ttl);
  w.u8(msg.header.hops);
  w.u32le(static_cast<std::uint32_t>(body.size()));
  w.bytes(body.data());
  return std::move(w).take();
}

std::optional<Message> parse(util::ByteView wire) {
  util::ByteReader r(wire);
  try {
    Message msg;
    auto guid_bytes = r.bytes(16);
    std::copy(guid_bytes.begin(), guid_bytes.end(), msg.header.guid.bytes.begin());
    std::uint8_t type = r.u8();
    switch (type) {
      case 0x00: case 0x01: case 0x02: case 0x30: case 0x40: case 0x80: case 0x81:
        msg.header.type = static_cast<MsgType>(type);
        break;
      default:
        return std::nullopt;
    }
    msg.header.ttl = r.u8();
    msg.header.hops = r.u8();
    std::uint32_t payload_len = r.u32le();
    if (payload_len != r.remaining()) return std::nullopt;
    auto payload = read_payload(msg.header.type, r);
    if (!payload) return std::nullopt;
    msg.payload = std::move(*payload);
    if (!r.empty() && msg.header.type != MsgType::kQueryHit) return std::nullopt;
    return msg;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

Message make_ping(Guid guid, std::uint8_t ttl) {
  return Message{Header{guid, MsgType::kPing, ttl, 0}, Ping{}};
}

Message make_pong(Guid guid, std::uint8_t ttl, const Pong& pong) {
  return Message{Header{guid, MsgType::kPong, ttl, 0}, pong};
}

Message make_query(Guid guid, std::uint8_t ttl, std::string criteria,
                   std::uint16_t min_speed) {
  return Message{Header{guid, MsgType::kQuery, ttl, 0},
                 Query{min_speed, std::move(criteria)}};
}

Message make_query_hit(Guid guid, std::uint8_t ttl, QueryHit hit) {
  return Message{Header{guid, MsgType::kQueryHit, ttl, 0}, std::move(hit)};
}

Message make_push(Guid guid, std::uint8_t ttl, const Push& push) {
  return Message{Header{guid, MsgType::kPush, ttl, 0}, push};
}

Message make_qrp_reset(Guid guid, std::uint32_t table_bits) {
  return Message{Header{guid, MsgType::kQrp, 1, 0}, Qrp{QrpReset{table_bits}}};
}

Message make_qrp_patch(Guid guid, util::Bytes bits) {
  return Message{Header{guid, MsgType::kQrp, 1, 0}, Qrp{QrpPatch{std::move(bits)}}};
}

Message make_bye(Guid guid, std::uint16_t code, std::string reason) {
  return Message{Header{guid, MsgType::kBye, 1, 0}, Bye{code, std::move(reason)}};
}

}  // namespace p2p::gnutella
