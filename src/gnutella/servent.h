// A Gnutella 0.6 servent: handshake, ultrapeer/leaf topology, descriptor
// routing (flood + GUID route-back), QRP last-hop filtering, query
// answering via a pluggable policy, and HTTP uploads/downloads with PUSH
// for firewalled sources.
//
// This is the instrumentable client the study runs: both the measured
// population (honest + infected peers, via different QueryAnswerer
// implementations) and the measurement apparatus itself (the crawler wraps
// a leaf Servent) are instances of this class.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "files/file.h"
#include "gnutella/host_cache.h"
#include "gnutella/http.h"
#include "gnutella/message.h"
#include "gnutella/qrp.h"
#include "gnutella/shared_index.h"
#include "sim/network.h"
#include "util/rng.h"

namespace p2p::gnutella {

/// How a servent answers queries and serves uploads. Honest peers wrap a
/// SharedFileIndex; infected peers synthesize query-echoing artifacts
/// (see agents::InfectedAnswerer).
class QueryAnswerer {
 public:
  virtual ~QueryAnswerer() = default;

  /// Result entries to advertise for this query (may be empty).
  virtual std::vector<QueryHitResult> answer(const std::string& criteria) = 0;

  /// Resolve a previously advertised index to content for upload; nullptr
  /// means 404.
  virtual std::shared_ptr<const files::FileContent> resolve(std::uint32_t index) = 0;

  /// Contribute keywords to the leaf's QRP table. Worm-style answerers
  /// fill the table completely so no query is filtered away from them.
  virtual void populate_qrt(QueryRouteTable& qrt) const = 0;

  virtual std::uint32_t shared_file_count() const { return 0; }
  virtual std::uint32_t shared_kb() const { return 0; }
};

/// Straightforward honest answerer over a shared-file index.
class IndexAnswerer final : public QueryAnswerer {
 public:
  explicit IndexAnswerer(SharedFileIndex index) : index_(std::move(index)) {}

  std::vector<QueryHitResult> answer(const std::string& criteria) override;
  std::shared_ptr<const files::FileContent> resolve(std::uint32_t index) override;
  void populate_qrt(QueryRouteTable& qrt) const override;
  std::uint32_t shared_file_count() const override {
    return static_cast<std::uint32_t>(index_.count());
  }
  std::uint32_t shared_kb() const override {
    return static_cast<std::uint32_t>(index_.total_bytes() / 1024);
  }

  [[nodiscard]] const SharedFileIndex& index() const { return index_; }

 private:
  SharedFileIndex index_;
};

struct ServentConfig {
  bool ultrapeer = false;
  /// TTL stamped on originated queries.
  std::uint8_t query_ttl = 4;
  /// Hop budget cap enforced when forwarding.
  std::uint8_t max_ttl = 7;
  /// Ultrapeer-to-ultrapeer target degree (outgoing); up to 2x accepted.
  std::size_t up_degree = 6;
  /// Leaf slots an ultrapeer offers.
  std::size_t leaf_slots = 30;
  /// Ultrapeer connections a leaf maintains.
  std::size_t leaf_up_count = 3;
  unsigned qrt_bits = 13;
  /// Ablation switch (A2): ultrapeers consult leaf QRP tables for last-hop
  /// forwarding when true, flood all leaves when false.
  bool use_qrp = true;
  /// Download give-up timeout.
  sim::SimDuration download_timeout = sim::SimDuration::seconds(90);
  /// Reconnect backoff after a failed/closed overlay link.
  sim::SimDuration reconnect_delay = sim::SimDuration::seconds(15);
  /// Pong caching: how many neighbour endpoints a ping reply advertises
  /// (host discovery beyond the bootstrap cache).
  std::size_t pong_fanout = 4;
  /// Cap on endpoints learned from pongs.
  std::size_t learned_host_max = 50;
  /// Upload slots: at most this many uploads may start within
  /// upload_window; excess GETs get "503 Busy" (requesters retry from
  /// alternate sources). 0 disables the limit.
  std::size_t upload_slots = 6;
  sim::SimDuration upload_window = sim::SimDuration::seconds(30);
};

/// A query hit delivered to the originator of the query.
struct HitEvent {
  Guid query_guid;
  QueryHit hit;
  std::uint8_t hops = 0;
  sim::SimTime at;
};

struct DownloadOutcome {
  std::uint64_t request_id = 0;
  bool success = false;
  std::string filename;
  util::Bytes content;
  util::Endpoint source;
  Guid servent_guid;
  std::string error;
};

struct ServentStats {
  std::uint64_t uploads_refused_busy = 0;
  std::uint64_t queries_originated = 0;
  std::uint64_t queries_received = 0;
  std::uint64_t queries_forwarded_up = 0;
  std::uint64_t queries_forwarded_leaf = 0;
  std::uint64_t qrp_suppressed = 0;
  std::uint64_t hits_sent = 0;
  std::uint64_t hits_routed = 0;
  std::uint64_t hits_received = 0;
  std::uint64_t pushes_sent = 0;
  std::uint64_t pushes_routed = 0;
  std::uint64_t uploads_served = 0;
  std::uint64_t downloads_ok = 0;
  std::uint64_t downloads_failed = 0;
  std::uint64_t dropped_duplicate = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_malformed = 0;
};

class Servent : public sim::Node {
 public:
  Servent(ServentConfig config, std::shared_ptr<QueryAnswerer> answerer,
          std::shared_ptr<HostCache> host_cache, std::uint64_t rng_seed);

  // -- sim::Node ------------------------------------------------------------
  void start() override;
  bool accept_connection(sim::NodeId from) override;
  void on_connection_open(sim::ConnId conn, sim::NodeId peer, bool initiated) override;
  void on_connection_failed(sim::ConnId conn, sim::NodeId target) override;
  void on_message(sim::ConnId conn, const util::Payload& payload) override;
  void on_connection_closed(sim::ConnId conn) override;

  // -- Client API -----------------------------------------------------------

  /// Originate a query; returns its GUID (matches later HitEvents).
  Guid send_query(const std::string& criteria);

  /// Originate a query with (leaf-side) dynamic querying, LimeWire's 2006
  /// bandwidth saver: probe one ultrapeer at a low TTL, widen to further
  /// ultrapeers at growing TTLs only while results are still needed.
  /// Previously-probed nodes drop the repeated GUID as a duplicate, so
  /// each round only reaches new overlay territory.
  Guid send_query_dynamic(const std::string& criteria, std::size_t target_results,
                          sim::SimDuration probe_interval);

  /// Graceful leave: send BYE on every overlay link and close all
  /// connections. Call before removing the node from the network (peers
  /// refill their slots immediately instead of waiting for a dead-link
  /// timeout).
  void shutdown(std::uint16_t code = 200, const std::string& reason = "leaving");

  /// Re-send the QRP table to every connected ultrapeer. Call after the
  /// answerer's keyword universe changes (e.g. a peer becoming infected
  /// starts advertising an all-ones table).
  void refresh_qrt();

  /// Fetch one result of a previously received hit. Returns a request id;
  /// completion arrives on the download callback. Handles direct HTTP and
  /// PUSH-mediated transfers transparently.
  std::uint64_t download(const QueryHit& source_hit, const QueryHitResult& result);

  void set_hit_callback(std::function<void(const HitEvent&)> cb) {
    hit_callback_ = std::move(cb);
  }
  void set_download_callback(std::function<void(const DownloadOutcome&)> cb) {
    download_callback_ = std::move(cb);
  }
  /// Observe every query this servent processes (first copy only; dups are
  /// suppressed before the callback). This is the passive-instrumentation
  /// hook: run an ultrapeer with this set and you see the traffic passing
  /// through it.
  void set_query_callback(std::function<void(const Query&, std::uint8_t hops)> cb) {
    query_callback_ = std::move(cb);
  }

  [[nodiscard]] const Guid& servent_guid() const { return servent_guid_; }
  [[nodiscard]] const ServentConfig& config() const { return config_; }
  [[nodiscard]] const ServentStats& stats() const { return stats_; }
  [[nodiscard]] QueryAnswerer& answerer() { return *answerer_; }

  /// Established overlay links (post-handshake).
  [[nodiscard]] std::size_t overlay_link_count() const;
  [[nodiscard]] std::size_t leaf_count() const;
  /// Endpoints learned from pong caching (beyond the bootstrap cache).
  [[nodiscard]] const std::vector<util::Endpoint>& learned_hosts() const {
    return learned_hosts_;
  }

 private:
  enum class ConnKind {
    kUnknown,      // inbound, nature not yet revealed by first message
    kOverlayOut,   // we initiated an overlay link
    kOverlayIn,    // peer initiated an overlay link
    kTransferOut,  // we initiated to fetch a file
    kTransferIn,   // peer fetches from us
    kPushOut,      // we connect back to a requester after a PUSH
  };
  enum class HsState { kNone, kSentConnect, kSentOk, kEstablished };

  struct ConnState {
    ConnKind kind = ConnKind::kUnknown;
    HsState hs = HsState::kNone;
    sim::NodeId peer = sim::kInvalidNode;
    bool peer_ultrapeer = false;
    /// Advertised listen endpoint from the handshake (for pong caching).
    util::Endpoint peer_listen;
    bool has_peer_listen = false;
    QueryRouteTable qrt{13};
    bool has_qrt = false;
    std::uint64_t download_id = 0;  // for kTransferOut/kPushOut
  };

  struct PendingDownload {
    std::uint64_t id = 0;
    QueryHitResult result;
    util::Endpoint source;
    Guid servent_guid;
    bool via_push = false;
    bool transfer_started = false;
  };
  struct DynamicQueryState {
    std::string criteria;
    std::size_t target_results = 0;
    std::size_t results_seen = 0;
    /// First probe stays within one ultrapeer's horizon (TTL 1), then
    /// widens.
    std::uint8_t next_ttl = 1;
    std::vector<sim::ConnId> remaining_conns;
    sim::SimDuration probe_interval;
  };

  // Handshake.
  void begin_overlay_connect();
  void send_handshake_connect(sim::ConnId conn);
  void handle_handshake(sim::ConnId conn, ConnState& state, util::ByteView wire);
  void established(sim::ConnId conn, ConnState& state);
  void send_qrt(sim::ConnId conn);

  // Descriptor handling.
  void handle_descriptor(sim::ConnId conn, ConnState& state, util::ByteView wire);
  void handle_query(sim::ConnId conn, ConnState& state, const Message& msg);
  void handle_query_hit(sim::ConnId conn, const Message& msg);
  void handle_ping(sim::ConnId conn, const Message& msg);
  void handle_pong(const Message& msg);
  void handle_push(sim::ConnId conn, const Message& msg);
  void handle_qrp(ConnState& state, const Message& msg);
  void answer_query(sim::ConnId conn, const Message& msg);

  // Transfers.
  void handle_http_request(sim::ConnId conn, util::ByteView wire);
  void handle_giv(sim::ConnId conn, ConnState& state, util::ByteView wire);
  void handle_http_response(sim::ConnId conn, ConnState& state, util::ByteView wire);
  void fail_download(std::uint64_t id, const std::string& error);
  void start_push(PendingDownload& pending);

  // Maintenance.
  void ensure_overlay_links();
  void note_seen(const Guid& guid);
  [[nodiscard]] bool already_seen(const Guid& guid) const;
  void send_msg(sim::ConnId conn, const Message& msg);
  [[nodiscard]] util::Endpoint self_endpoint() const;
  [[nodiscard]] bool self_firewalled() const;

  ServentConfig config_;
  std::shared_ptr<QueryAnswerer> answerer_;
  std::shared_ptr<HostCache> host_cache_;
  util::Rng rng_;
  Guid servent_guid_;

  std::unordered_map<sim::ConnId, ConnState> conns_;
  std::size_t pending_overlay_connects_ = 0;
  std::vector<util::Endpoint> learned_hosts_;
  std::vector<sim::SimTime> recent_upload_starts_;

  // Duplicate suppression + route-back state.
  std::unordered_set<Guid, GuidHash> seen_;
  std::vector<Guid> seen_order_;  // FIFO eviction
  std::unordered_map<Guid, sim::ConnId, GuidHash> query_routes_;
  std::unordered_map<Guid, sim::ConnId, GuidHash> push_routes_;
  std::unordered_set<Guid, GuidHash> our_queries_;

  // Downloads.
  std::unordered_map<std::uint64_t, PendingDownload> pending_downloads_;
  std::uint64_t next_download_id_ = 1;

  // Dynamic querying.
  void dynamic_query_probe(Guid guid);
  std::unordered_map<Guid, DynamicQueryState, GuidHash> dynamic_queries_;

  std::function<void(const HitEvent&)> hit_callback_;
  std::function<void(const DownloadOutcome&)> download_callback_;
  std::function<void(const Query&, std::uint8_t)> query_callback_;
  ServentStats stats_;

  static constexpr std::size_t kSeenCacheMax = 100'000;
};

}  // namespace p2p::gnutella
