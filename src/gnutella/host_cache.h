// Bootstrap host cache (the GWebCache stand-in): a shared registry of
// known ultrapeer endpoints that joining servents draw from. In the live
// network this is seeded by web caches and pong exchange; here it is a
// plain shared object the population builder maintains.
#pragma once

#include "util/endpoint_cache.h"

namespace p2p::gnutella {

using HostCache = util::EndpointCache;

}  // namespace p2p::gnutella
