// Windowed incremental analytics for long captures: rolling prevalence,
// strain churn, and per-host concentration per fixed sim-time window.
//
// Built for out-of-core replay — the accumulator holds per-window sufficient
// statistics only (counts, per-window strain sets, per-window source
// tallies), never the records, so a 10-week capture streams through in a
// bounded footprint. Mergeable like the stats.h accumulators: per-segment
// partials combine by window key, and churn/cumulative columns — the only
// cross-window statistics — are computed at finalize over the merged map, so
// parallel replay emits byte-identical rows to a serial pass.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "crawler/records.h"

namespace p2p::analysis {

/// One finalized window of the rolling series.
struct WindowRow {
  std::uint64_t window = 0;       // index: floor(at / window_ms)
  std::int64_t start_ms = 0;      // window * window_ms
  std::uint64_t responses = 0;    // full stream, honeypot included
  std::uint64_t study_responses = 0;
  std::uint64_t labeled = 0;
  std::uint64_t infected = 0;
  std::uint64_t honeypot_observations = 0;
  std::uint64_t distinct_strains = 0;   // strains seen in this window
  std::uint64_t new_strains = 0;        // ... of which never seen before
  std::uint64_t cumulative_strains = 0; // distinct strains up to here
  std::uint64_t distinct_sources = 0;   // hosts serving malware this window
  /// Share of the window's malicious responses served by its busiest host.
  double top_source_share = 0.0;

  [[nodiscard]] double malicious_fraction() const {
    return labeled == 0 ? 0.0
                        : static_cast<double>(infected) / static_cast<double>(labeled);
  }
};

class WindowedAccumulator {
 public:
  explicit WindowedAccumulator(std::int64_t window_ms = 24 * 3'600'000ll);

  [[nodiscard]] std::int64_t window_ms() const { return window_ms_; }

  void add(const crawler::ResponseRecord& record);

  /// Combine with an accumulator over another part of the stream. Both must
  /// use the same window width.
  void merge(const WindowedAccumulator& other);

  /// Render rows in window order, computing the cross-window columns
  /// (new/cumulative strains) over the merged state.
  [[nodiscard]] std::vector<WindowRow> finalize() const;

 private:
  struct Cell {
    std::uint64_t responses = 0;
    std::uint64_t study_responses = 0;
    std::uint64_t labeled = 0;
    std::uint64_t infected = 0;
    std::uint64_t honeypot_observations = 0;
    std::set<std::string> strains;
    std::map<std::string, std::uint64_t> malicious_by_source;
  };

  std::int64_t window_ms_;
  std::map<std::uint64_t, Cell> cells_;
};

/// Deterministic CSV (header + one row per window; doubles rendered
/// shortest-round-trip like the report JSON).
void write_window_csv(std::ostream& out, const std::vector<WindowRow>& rows);

}  // namespace p2p::analysis
