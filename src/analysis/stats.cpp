#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace p2p::analysis {

PrevalenceSummary prevalence(std::span<const ResponseRecord> records) {
  PrevalenceSummary out;
  for (const auto& r : records) {
    ++out.total_responses;
    if (!r.is_study_type()) continue;
    ++out.study_responses;
    if (!r.downloaded) continue;
    ++out.labeled;
    bool exe = r.type_by_name == files::FileType::kExecutable;
    if (exe) {
      ++out.exe_labeled;
    } else {
      ++out.archive_labeled;
    }
    if (r.infected) {
      ++out.infected;
      if (exe) {
        ++out.exe_infected;
      } else {
        ++out.archive_infected;
      }
    }
  }
  return out;
}

std::vector<StrainCount> strain_ranking(std::span<const ResponseRecord> records) {
  struct Acc {
    std::string name;
    std::uint64_t responses = 0;
    std::unordered_set<std::string> contents;
    std::unordered_set<std::string> sources;
  };
  std::unordered_map<malware::StrainId, Acc> acc;
  std::uint64_t total = 0;
  for (const auto& r : records) {
    if (!r.infected || !r.downloaded) continue;
    auto& a = acc[r.strain];
    a.name = r.strain_name;
    ++a.responses;
    a.contents.insert(r.content_key);
    a.sources.insert(r.source_key);
    ++total;
  }
  std::vector<StrainCount> out;
  out.reserve(acc.size());
  for (auto& [strain, a] : acc) {
    StrainCount c;
    c.strain = strain;
    c.name = a.name;
    c.responses = a.responses;
    c.share = total == 0 ? 0.0
                         : static_cast<double>(a.responses) / static_cast<double>(total);
    c.distinct_contents = a.contents.size();
    c.distinct_sources = a.sources.size();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const StrainCount& a, const StrainCount& b) {
    if (a.responses != b.responses) return a.responses > b.responses;
    return a.name < b.name;
  });
  return out;
}

double topk_share(const std::vector<StrainCount>& ranking, std::size_t k) {
  double share = 0.0;
  for (std::size_t i = 0; i < ranking.size() && i < k; ++i) share += ranking[i].share;
  return share;
}

SourceSummary sources(std::span<const ResponseRecord> records, std::size_t top_n) {
  SourceSummary out;
  std::unordered_map<std::string, std::uint64_t> per_source;
  for (const auto& r : records) {
    if (!r.infected || !r.downloaded) continue;
    ++out.malicious_responses;
    ++out.by_class[r.source_ip.classify()];
    ++per_source[r.source_key];
  }
  out.distinct_sources = per_source.size();
  auto priv = out.by_class.find(util::IpClass::kPrivate);
  out.private_fraction =
      out.malicious_responses == 0 || priv == out.by_class.end()
          ? 0.0
          : static_cast<double>(priv->second) /
                static_cast<double>(out.malicious_responses);

  out.top_sources.assign(per_source.begin(), per_source.end());
  std::sort(out.top_sources.begin(), out.top_sources.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (out.top_sources.size() > top_n) out.top_sources.resize(top_n);
  return out;
}

std::vector<StrainSourceConcentration> strain_source_concentration(
    std::span<const ResponseRecord> records) {
  struct Acc {
    std::uint64_t responses = 0;
    std::unordered_map<std::string, std::uint64_t> per_source;
  };
  std::unordered_map<std::string, Acc> acc;
  for (const auto& r : records) {
    if (!r.infected || !r.downloaded) continue;
    auto& a = acc[r.strain_name];
    ++a.responses;
    ++a.per_source[r.source_key];
  }
  std::vector<StrainSourceConcentration> out;
  for (auto& [name, a] : acc) {
    StrainSourceConcentration c;
    c.name = name;
    c.responses = a.responses;
    c.distinct_sources = a.per_source.size();
    std::uint64_t top = 0;
    for (const auto& [src, n] : a.per_source) top = std::max(top, n);
    c.top_source_share =
        a.responses == 0 ? 0.0 : static_cast<double>(top) / static_cast<double>(a.responses);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const StrainSourceConcentration& a, const StrainSourceConcentration& b) {
              if (a.responses != b.responses) return a.responses > b.responses;
              return a.name < b.name;
            });
  return out;
}

std::vector<SizeBucket> size_distribution(std::span<const ResponseRecord> records) {
  std::unordered_map<std::uint64_t, SizeBucket> acc;
  for (const auto& r : records) {
    if (!r.is_study_type() || !r.downloaded) continue;
    auto& b = acc[r.size];
    b.size = r.size;
    if (r.infected) {
      ++b.malicious;
    } else {
      ++b.clean;
    }
  }
  std::vector<SizeBucket> out;
  out.reserve(acc.size());
  for (auto& [size, b] : acc) out.push_back(b);
  std::sort(out.begin(), out.end(), [](const SizeBucket& a, const SizeBucket& b) {
    std::uint64_t ta = a.malicious + a.clean;
    std::uint64_t tb = b.malicious + b.clean;
    if (ta != tb) return ta > tb;
    return a.size < b.size;
  });
  return out;
}

std::map<std::string, std::set<std::uint64_t>> sizes_per_strain(
    std::span<const ResponseRecord> records) {
  std::map<std::string, std::set<std::uint64_t>> out;
  for (const auto& r : records) {
    if (!r.infected || !r.downloaded) continue;
    out[r.strain_name].insert(r.size);
  }
  return out;
}

std::vector<CategoryBin> category_breakdown(std::span<const ResponseRecord> records) {
  std::map<std::string, CategoryBin> bins;
  for (const auto& r : records) {
    auto& b = bins[r.query_category];
    b.category = r.query_category;
    ++b.responses;
    if (!r.is_study_type()) continue;
    ++b.study_responses;
    if (!r.downloaded) continue;
    ++b.labeled;
    if (r.infected) ++b.infected;
  }
  std::vector<CategoryBin> out;
  out.reserve(bins.size());
  for (auto& [name, b] : bins) out.push_back(std::move(b));
  std::sort(out.begin(), out.end(), [](const CategoryBin& a, const CategoryBin& b) {
    if (a.infected != b.infected) return a.infected > b.infected;
    return a.category < b.category;
  });
  return out;
}

std::vector<DayBin> daily_series(std::span<const ResponseRecord> records) {
  std::map<int, DayBin> bins;
  std::map<int, std::unordered_set<std::string>> strains_by_day;
  for (const auto& r : records) {
    int day = static_cast<int>(r.at.whole_days());
    auto& b = bins[day];
    b.day = day;
    ++b.responses;
    if (!r.is_study_type()) continue;
    ++b.study_responses;
    if (!r.downloaded) continue;
    ++b.labeled;
    if (r.infected) {
      ++b.infected;
      strains_by_day[day].insert(r.strain_name);
    }
  }
  std::vector<DayBin> out;
  std::unordered_set<std::string> seen;
  for (auto& [day, bin] : bins) {
    auto it = strains_by_day.find(day);
    if (it != strains_by_day.end()) {
      for (const auto& s : it->second) seen.insert(s);
    }
    bin.cumulative_strains = seen.size();
    out.push_back(bin);
  }
  return out;
}

BootstrapCi bootstrap_malicious_fraction(std::span<const ResponseRecord> records,
                                         std::size_t resamples, std::uint64_t seed) {
  // Per-day (labeled, infected) tallies — the bootstrap blocks.
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> days;
  std::uint64_t total_labeled = 0, total_infected = 0;
  for (const auto& r : records) {
    if (!r.is_study_type() || !r.downloaded) continue;
    auto& [labeled, infected] = days[static_cast<int>(r.at.whole_days())];
    ++labeled;
    ++total_labeled;
    if (r.infected) {
      ++infected;
      ++total_infected;
    }
  }
  BootstrapCi ci;
  ci.resamples = resamples;
  if (total_labeled == 0 || days.empty() || resamples == 0) return ci;
  ci.point = static_cast<double>(total_infected) / static_cast<double>(total_labeled);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
  blocks.reserve(days.size());
  for (const auto& [day, tally] : days) blocks.push_back(tally);

  util::Rng rng(seed);
  std::vector<double> fractions;
  fractions.reserve(resamples);
  for (std::size_t i = 0; i < resamples; ++i) {
    std::uint64_t labeled = 0, infected = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const auto& pick = blocks[rng.index(blocks.size())];
      labeled += pick.first;
      infected += pick.second;
    }
    if (labeled > 0) {
      fractions.push_back(static_cast<double>(infected) / static_cast<double>(labeled));
    }
  }
  if (fractions.empty()) return ci;
  std::sort(fractions.begin(), fractions.end());
  auto percentile = [&](double p) {
    auto idx = static_cast<std::size_t>(p * static_cast<double>(fractions.size() - 1));
    return fractions[idx];
  };
  ci.lo = percentile(0.025);
  ci.hi = percentile(0.975);
  return ci;
}

Moments moments(std::span<const double> xs) {
  Moments m;
  m.n = xs.size();
  if (xs.empty()) return m;
  double sum = 0.0;
  m.min = xs.front();
  m.max = xs.front();
  for (double x : xs) {
    sum += x;
    if (x < m.min) m.min = x;
    if (x > m.max) m.max = x;
  }
  m.mean = sum / static_cast<double>(m.n);
  if (m.n >= 2) {
    double ss = 0.0;
    for (double x : xs) ss += (x - m.mean) * (x - m.mean);
    m.stddev = std::sqrt(ss / static_cast<double>(m.n - 1));
  }
  return m;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, std::size_t resamples,
                              std::uint64_t seed) {
  BootstrapCi ci;
  ci.resamples = resamples;
  if (xs.empty()) return ci;
  ci.point = moments(xs).mean;
  if (resamples == 0 || xs.size() < 2) {
    ci.lo = ci.point;
    ci.hi = ci.point;
    return ci;
  }
  util::Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t i = 0; i < resamples; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < xs.size(); ++k) sum += xs[rng.index(xs.size())];
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  ci.lo = percentile(means, 0.025);
  ci.hi = percentile(means, 0.975);
  return ci;
}

}  // namespace p2p::analysis
