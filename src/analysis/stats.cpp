#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/incremental.h"
#include "util/rng.h"

namespace p2p::analysis {

// The span-based families are wrappers over the mergeable accumulators in
// incremental.h — feed every record, finalize. Parallel replay runs the
// same accumulators per segment and merges, so serial and parallel answers
// agree by construction.

PrevalenceSummary prevalence(std::span<const ResponseRecord> records) {
  PrevalenceAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

std::vector<StrainCount> strain_ranking(std::span<const ResponseRecord> records) {
  StrainRankingAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

double topk_share(const std::vector<StrainCount>& ranking, std::size_t k) {
  double share = 0.0;
  for (std::size_t i = 0; i < ranking.size() && i < k; ++i) share += ranking[i].share;
  return share;
}

SourceSummary sources(std::span<const ResponseRecord> records, std::size_t top_n) {
  SourcesAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize(top_n);
}

std::vector<StrainSourceConcentration> strain_source_concentration(
    std::span<const ResponseRecord> records) {
  StrainSourceAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

std::vector<SizeBucket> size_distribution(std::span<const ResponseRecord> records) {
  SizeDistAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

std::map<std::string, std::set<std::uint64_t>> sizes_per_strain(
    std::span<const ResponseRecord> records) {
  SizesPerStrainAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

std::vector<CategoryBin> category_breakdown(std::span<const ResponseRecord> records) {
  CategoryAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

std::vector<DayBin> daily_series(std::span<const ResponseRecord> records) {
  DailyAcc acc;
  for (const auto& r : records) acc.add(r);
  return acc.finalize();
}

BootstrapCi bootstrap_malicious_fraction(std::span<const ResponseRecord> records,
                                         std::size_t resamples, std::uint64_t seed) {
  // Per-day (labeled, infected) tallies — the bootstrap blocks.
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> days;
  std::uint64_t total_labeled = 0, total_infected = 0;
  for (const auto& r : records) {
    if (!r.is_study_type() || !r.downloaded) continue;
    auto& [labeled, infected] = days[static_cast<int>(r.at.whole_days())];
    ++labeled;
    ++total_labeled;
    if (r.infected) {
      ++infected;
      ++total_infected;
    }
  }
  BootstrapCi ci;
  ci.resamples = resamples;
  if (total_labeled == 0 || days.empty() || resamples == 0) return ci;
  ci.point = static_cast<double>(total_infected) / static_cast<double>(total_labeled);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
  blocks.reserve(days.size());
  for (const auto& [day, tally] : days) blocks.push_back(tally);

  util::Rng rng(seed);
  std::vector<double> fractions;
  fractions.reserve(resamples);
  for (std::size_t i = 0; i < resamples; ++i) {
    std::uint64_t labeled = 0, infected = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const auto& pick = blocks[rng.index(blocks.size())];
      labeled += pick.first;
      infected += pick.second;
    }
    if (labeled > 0) {
      fractions.push_back(static_cast<double>(infected) / static_cast<double>(labeled));
    }
  }
  if (fractions.empty()) return ci;
  std::sort(fractions.begin(), fractions.end());
  auto percentile = [&](double p) {
    auto idx = static_cast<std::size_t>(p * static_cast<double>(fractions.size() - 1));
    return fractions[idx];
  };
  ci.lo = percentile(0.025);
  ci.hi = percentile(0.975);
  return ci;
}

Moments moments(std::span<const double> xs) {
  Moments m;
  m.n = xs.size();
  if (xs.empty()) return m;
  double sum = 0.0;
  m.min = xs.front();
  m.max = xs.front();
  for (double x : xs) {
    sum += x;
    if (x < m.min) m.min = x;
    if (x > m.max) m.max = x;
  }
  m.mean = sum / static_cast<double>(m.n);
  if (m.n >= 2) {
    double ss = 0.0;
    for (double x : xs) ss += (x - m.mean) * (x - m.mean);
    m.stddev = std::sqrt(ss / static_cast<double>(m.n - 1));
  }
  return m;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, std::size_t resamples,
                              std::uint64_t seed) {
  BootstrapCi ci;
  ci.resamples = resamples;
  if (xs.empty()) return ci;
  ci.point = moments(xs).mean;
  if (resamples == 0 || xs.size() < 2) {
    ci.lo = ci.point;
    ci.hi = ci.point;
    return ci;
  }
  util::Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t i = 0; i < resamples; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < xs.size(); ++k) sum += xs[rng.index(xs.size())];
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  ci.lo = percentile(means, 0.025);
  ci.hi = percentile(means, 0.975);
  return ci;
}

}  // namespace p2p::analysis
