// CSV export/import of the response log, for offline analysis of a crawl
// (the paper's raw data equivalent). A log written by write_csv reloads
// losslessly with read_csv, so every analysis can be re-run without
// re-crawling.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "crawler/records.h"
#include "obs/metrics.h"

namespace p2p::analysis {

/// Write a header plus one row per record. Fields containing commas or
/// quotes are quoted per RFC 4180.
void write_csv(std::ostream& out, std::span<const crawler::ResponseRecord> records);

/// Streaming form of write_csv for out-of-core readers: emit the header
/// once, then one row per record as it is decoded.
void write_csv_header(std::ostream& out);
void write_csv_record(std::ostream& out, const crawler::ResponseRecord& record);

/// Flat CSV of a metrics snapshot, one row per metric
/// (kind,name,unit,value,max,count,sum,min,p50,p90,p99). Deterministic by
/// default: wall-clock histograms are skipped unless `include_wall_clock`.
void write_metrics_csv(std::ostream& out, const obs::MetricsSnapshot& snapshot,
                       bool include_wall_clock = false);

/// Parse a log written by write_csv. Returns nullopt on a malformed header
/// or any unparseable row (strict: offline analyses should fail loudly on
/// corrupt data rather than silently skip).
[[nodiscard]] std::optional<std::vector<crawler::ResponseRecord>> read_csv(
    std::istream& in);

}  // namespace p2p::analysis
