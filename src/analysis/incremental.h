// Mergeable accumulators behind the analysis families of stats.h.
//
// Each accumulator carries the family's sufficient statistics: add() folds
// in one record, merge() combines two accumulators built over disjoint
// sub-streams, finalize() renders the same value the span-based function in
// stats.h returns. The span functions are thin wrappers over these (add all,
// finalize), so the serial whole-trace path and the parallel per-segment
// map-reduce path share one arithmetic by construction — which is what makes
// "replayed report is byte-identical at any --jobs" a structural property
// instead of a test-enforced coincidence.
//
// Merge order: counts and set unions are order-independent; the one
// order-sensitive field is StrainRankingAcc's display name (the serial code
// takes the last record's spelling), so merge in stream (segment) order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/stats.h"

namespace p2p::analysis {

// ---------------------------------------------------------------------------
// E1/E3: prevalence
// ---------------------------------------------------------------------------

struct PrevalenceAcc {
  PrevalenceSummary sums;

  void add(const ResponseRecord& r);
  void merge(const PrevalenceAcc& other);
  [[nodiscard]] PrevalenceSummary finalize() const { return sums; }
};

// ---------------------------------------------------------------------------
// E2: strain concentration
// ---------------------------------------------------------------------------

struct StrainRankingAcc {
  struct Entry {
    std::string name;
    std::uint64_t responses = 0;
    std::unordered_set<std::string> contents;
    std::unordered_set<std::string> sources;
  };
  std::unordered_map<malware::StrainId, Entry> strains;
  std::uint64_t total = 0;

  void add(const ResponseRecord& r);
  void merge(const StrainRankingAcc& other);
  [[nodiscard]] std::vector<StrainCount> finalize() const;
};

// ---------------------------------------------------------------------------
// E4: sources
// ---------------------------------------------------------------------------

struct SourcesAcc {
  std::uint64_t malicious_responses = 0;
  std::map<util::IpClass, std::uint64_t> by_class;
  std::unordered_map<std::string, std::uint64_t> per_source;

  void add(const ResponseRecord& r);
  void merge(const SourcesAcc& other);
  [[nodiscard]] SourceSummary finalize(std::size_t top_n = 10) const;
};

struct StrainSourceAcc {
  struct Entry {
    std::uint64_t responses = 0;
    std::unordered_map<std::string, std::uint64_t> per_source;
  };
  std::unordered_map<std::string, Entry> strains;

  void add(const ResponseRecord& r);
  void merge(const StrainSourceAcc& other);
  [[nodiscard]] std::vector<StrainSourceConcentration> finalize() const;
};

// ---------------------------------------------------------------------------
// E7: sizes
// ---------------------------------------------------------------------------

struct SizeDistAcc {
  std::unordered_map<std::uint64_t, SizeBucket> buckets;

  void add(const ResponseRecord& r);
  void merge(const SizeDistAcc& other);
  [[nodiscard]] std::vector<SizeBucket> finalize() const;
};

struct SizesPerStrainAcc {
  std::map<std::string, std::set<std::uint64_t>> sizes;

  void add(const ResponseRecord& r);
  void merge(const SizesPerStrainAcc& other);
  [[nodiscard]] std::map<std::string, std::set<std::uint64_t>> finalize() const {
    return sizes;
  }
};

// ---------------------------------------------------------------------------
// E11: query categories
// ---------------------------------------------------------------------------

struct CategoryAcc {
  std::map<std::string, CategoryBin> bins;

  void add(const ResponseRecord& r);
  void merge(const CategoryAcc& other);
  [[nodiscard]] std::vector<CategoryBin> finalize() const;
};

// ---------------------------------------------------------------------------
// E6/E8: daily series
// ---------------------------------------------------------------------------

struct DailyAcc {
  std::map<int, DayBin> bins;
  std::map<int, std::set<std::string>> strains_by_day;

  void add(const ResponseRecord& r);
  void merge(const DailyAcc& other);
  /// Cumulative strain counts are computed here, over the merged per-day
  /// strain sets — the one statistic that cannot be summed per segment.
  [[nodiscard]] std::vector<DayBin> finalize() const;
};

// ---------------------------------------------------------------------------
// Composite: every family the Report carries, fed record by record
// ---------------------------------------------------------------------------

struct RecordAccumulator {
  PrevalenceAcc prevalence;
  StrainRankingAcc strain_ranking;
  SourcesAcc sources;
  StrainSourceAcc strain_sources;
  SizeDistAcc size_dist;
  SizesPerStrainAcc sizes_per_strain;
  CategoryAcc categories;
  DailyAcc days;

  void add(const ResponseRecord& r);
  void merge(const RecordAccumulator& other);
};

}  // namespace p2p::analysis
