// Analyses over the crawler's response log — one function per family of
// results the paper reports: prevalence (E1/E3), strain concentration (E2),
// source analysis (E4), size distributions (E7), and time series (E6/E8).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "crawler/records.h"
#include "util/ip.h"

namespace p2p::analysis {

using crawler::ResponseRecord;

// ---------------------------------------------------------------------------
// E1/E3: prevalence
// ---------------------------------------------------------------------------

struct PrevalenceSummary {
  std::uint64_t total_responses = 0;
  /// Responses advertising archives/executables (the study set).
  std::uint64_t study_responses = 0;
  /// Study responses whose content was fetched and scanned.
  std::uint64_t labeled = 0;
  std::uint64_t infected = 0;

  std::uint64_t exe_labeled = 0;
  std::uint64_t exe_infected = 0;
  std::uint64_t archive_labeled = 0;
  std::uint64_t archive_infected = 0;

  /// The paper's headline: fraction of labeled study responses that are
  /// malicious (LimeWire 68%, OpenFT 3%).
  [[nodiscard]] double malicious_fraction() const {
    return labeled == 0 ? 0.0 : static_cast<double>(infected) / static_cast<double>(labeled);
  }
  [[nodiscard]] double exe_fraction() const {
    return exe_labeled == 0 ? 0.0
                            : static_cast<double>(exe_infected) /
                                  static_cast<double>(exe_labeled);
  }
  [[nodiscard]] double archive_fraction() const {
    return archive_labeled == 0 ? 0.0
                                : static_cast<double>(archive_infected) /
                                      static_cast<double>(archive_labeled);
  }
};

[[nodiscard]] PrevalenceSummary prevalence(std::span<const ResponseRecord> records);

// ---------------------------------------------------------------------------
// E2: strain concentration
// ---------------------------------------------------------------------------

struct StrainCount {
  malware::StrainId strain = malware::kCleanStrain;
  std::string name;
  std::uint64_t responses = 0;
  /// Share of all malicious responses.
  double share = 0.0;
  std::uint64_t distinct_contents = 0;
  std::uint64_t distinct_sources = 0;
};

/// Strains ranked by number of malicious responses, descending.
[[nodiscard]] std::vector<StrainCount> strain_ranking(
    std::span<const ResponseRecord> records);

/// Combined share of the top-k strains (1.0 when fewer than k strains).
[[nodiscard]] double topk_share(const std::vector<StrainCount>& ranking, std::size_t k);

// ---------------------------------------------------------------------------
// E4: sources of malicious responses
// ---------------------------------------------------------------------------

struct SourceSummary {
  std::uint64_t malicious_responses = 0;
  std::map<util::IpClass, std::uint64_t> by_class;
  /// Fraction of malicious responses advertised from RFC1918 addresses
  /// (the abstract's 28% LimeWire observation).
  double private_fraction = 0.0;
  std::uint64_t distinct_sources = 0;
  /// (source_key, malicious responses), descending.
  std::vector<std::pair<std::string, std::uint64_t>> top_sources;
};

[[nodiscard]] SourceSummary sources(std::span<const ResponseRecord> records,
                                    std::size_t top_n = 10);

struct StrainSourceConcentration {
  std::string name;
  std::uint64_t responses = 0;
  std::uint64_t distinct_sources = 0;
  /// Fraction of this strain's responses served by its single busiest host
  /// (the abstract: OpenFT's top strain = 67% of malicious responses, all
  /// from one host).
  double top_source_share = 0.0;
};

[[nodiscard]] std::vector<StrainSourceConcentration> strain_source_concentration(
    std::span<const ResponseRecord> records);

// ---------------------------------------------------------------------------
// E7: sizes
// ---------------------------------------------------------------------------

struct SizeBucket {
  std::uint64_t size = 0;  // exact advertised size in bytes
  std::uint64_t malicious = 0;
  std::uint64_t clean = 0;
};

/// Exact-size histogram over labeled study responses, by response count
/// descending.
[[nodiscard]] std::vector<SizeBucket> size_distribution(
    std::span<const ResponseRecord> records);

/// Distinct advertised sizes seen per strain (the size-filter insight:
/// these sets are tiny).
[[nodiscard]] std::map<std::string, std::set<std::uint64_t>> sizes_per_strain(
    std::span<const ResponseRecord> records);

// ---------------------------------------------------------------------------
// E11: query categories (formerly E9; the honeypot family now holds E9/E10)
// ---------------------------------------------------------------------------

struct CategoryBin {
  std::string category;
  std::uint64_t responses = 0;
  std::uint64_t study_responses = 0;
  std::uint64_t labeled = 0;
  std::uint64_t infected = 0;

  [[nodiscard]] double malicious_fraction() const {
    return labeled == 0 ? 0.0 : static_cast<double>(infected) / static_cast<double>(labeled);
  }
};

/// Per-query-category exposure: which kinds of queries draw malware.
/// Ordered by malicious response count, descending.
[[nodiscard]] std::vector<CategoryBin> category_breakdown(
    std::span<const ResponseRecord> records);

// ---------------------------------------------------------------------------
// E6/E8: time series
// ---------------------------------------------------------------------------

struct DayBin {
  int day = 0;
  std::uint64_t responses = 0;
  std::uint64_t study_responses = 0;
  std::uint64_t labeled = 0;
  std::uint64_t infected = 0;
  /// Distinct strains seen up to and including this day.
  std::uint64_t cumulative_strains = 0;

  [[nodiscard]] double malicious_fraction() const {
    return labeled == 0 ? 0.0 : static_cast<double>(infected) / static_cast<double>(labeled);
  }
};

[[nodiscard]] std::vector<DayBin> daily_series(std::span<const ResponseRecord> records);

// ---------------------------------------------------------------------------
// Uncertainty: block bootstrap over days
// ---------------------------------------------------------------------------

struct BootstrapCi {
  double point = 0.0;
  double lo = 0.0;   // 2.5th percentile
  double hi = 0.0;   // 97.5th percentile
  std::size_t resamples = 0;
};

/// 95% confidence interval for the malicious fraction of labeled study
/// responses, by block bootstrap over crawl days (days are the natural
/// dependence unit: the same hosts answer all day). Deterministic for a
/// given seed.
[[nodiscard]] BootstrapCi bootstrap_malicious_fraction(
    std::span<const ResponseRecord> records, std::size_t resamples = 1000,
    std::uint64_t seed = 17);

// ---------------------------------------------------------------------------
// Scalar-sample aggregation (sweep summaries)
// ---------------------------------------------------------------------------
//
// These operate on small vectors of per-replication observations — one
// value per seed of a sweep — the way measurement studies report prevalence
// numbers: as distributions over repeated observations, not single draws.

struct Moments {
  std::size_t n = 0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Moments moments(std::span<const double> xs);

/// Quantile of the sample by linear interpolation between order statistics
/// (the "R-7" definition). q in [0, 1]; 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// 95% bootstrap CI for the mean of a scalar sample: resample the n
/// observations with replacement, take the 2.5th/97.5th percentiles of the
/// resampled means. Deterministic for a given seed.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                                            std::size_t resamples = 1000,
                                            std::uint64_t seed = 17);

}  // namespace p2p::analysis
