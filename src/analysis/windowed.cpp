#include "analysis/windowed.h"

#include <algorithm>

#include "obs/json.h"

namespace p2p::analysis {

WindowedAccumulator::WindowedAccumulator(std::int64_t window_ms)
    : window_ms_(window_ms <= 0 ? 1 : window_ms) {}

void WindowedAccumulator::add(const crawler::ResponseRecord& record) {
  std::int64_t at = record.at.millis();
  if (at < 0) at = 0;
  auto& cell = cells_[static_cast<std::uint64_t>(at / window_ms_)];
  ++cell.responses;
  if (record.query_category == "honeypot") {
    ++cell.honeypot_observations;
    return;
  }
  if (!record.is_study_type()) return;
  ++cell.study_responses;
  if (!record.downloaded) return;
  ++cell.labeled;
  if (record.infected) {
    ++cell.infected;
    cell.strains.insert(record.strain_name);
    ++cell.malicious_by_source[record.source_key];
  }
}

void WindowedAccumulator::merge(const WindowedAccumulator& other) {
  for (const auto& [window, ocell] : other.cells_) {
    auto& cell = cells_[window];
    cell.responses += ocell.responses;
    cell.study_responses += ocell.study_responses;
    cell.labeled += ocell.labeled;
    cell.infected += ocell.infected;
    cell.honeypot_observations += ocell.honeypot_observations;
    cell.strains.insert(ocell.strains.begin(), ocell.strains.end());
    for (const auto& [src, n] : ocell.malicious_by_source) {
      cell.malicious_by_source[src] += n;
    }
  }
}

std::vector<WindowRow> WindowedAccumulator::finalize() const {
  std::vector<WindowRow> out;
  out.reserve(cells_.size());
  std::set<std::string> seen;
  for (const auto& [window, cell] : cells_) {
    WindowRow row;
    row.window = window;
    row.start_ms = static_cast<std::int64_t>(window) * window_ms_;
    row.responses = cell.responses;
    row.study_responses = cell.study_responses;
    row.labeled = cell.labeled;
    row.infected = cell.infected;
    row.honeypot_observations = cell.honeypot_observations;
    row.distinct_strains = cell.strains.size();
    std::uint64_t fresh = 0;
    for (const auto& s : cell.strains) {
      if (seen.insert(s).second) ++fresh;
    }
    row.new_strains = fresh;
    row.cumulative_strains = seen.size();
    row.distinct_sources = cell.malicious_by_source.size();
    std::uint64_t malicious_total = 0;
    std::uint64_t top = 0;
    for (const auto& [src, n] : cell.malicious_by_source) {
      malicious_total += n;
      top = std::max(top, n);
    }
    row.top_source_share =
        malicious_total == 0
            ? 0.0
            : static_cast<double>(top) / static_cast<double>(malicious_total);
    out.push_back(row);
  }
  return out;
}

void write_window_csv(std::ostream& out, const std::vector<WindowRow>& rows) {
  out << "window,start_ms,responses,study,labeled,infected,malicious_fraction,"
         "honeypot_observations,distinct_strains,new_strains,cumulative_strains,"
         "distinct_sources,top_source_share\n";
  for (const auto& row : rows) {
    out << row.window << ',' << row.start_ms << ',' << row.responses << ','
        << row.study_responses << ',' << row.labeled << ',' << row.infected << ','
        << obs::json_number(row.malicious_fraction()) << ','
        << row.honeypot_observations << ',' << row.distinct_strains << ','
        << row.new_strains << ',' << row.cumulative_strains << ','
        << row.distinct_sources << ','
        << obs::json_number(row.top_source_share) << '\n';
  }
}

}  // namespace p2p::analysis
