#include "analysis/csv.h"

#include <charconv>
#include <cstdio>
#include <functional>
#include <string>

#include "util/strings.h"

namespace p2p::analysis {

namespace {

constexpr std::string_view kHeader =
    "id,network,time_ms,day,query,category,filename,size,type,magic,"
    "source_ip,source_port,source_class,source_key,firewalled,content_key,"
    "attempted,downloaded,infected,strain";

std::string escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Split one CSV line into fields, honoring RFC 4180 quoting. Returns
/// nullopt on unbalanced quotes.
std::optional<std::vector<std::string>> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) return std::nullopt;
  fields.push_back(std::move(current));
  return fields;
}

template <typename T>
bool parse_int(const std::string& s, T& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

files::FileType type_from_name(const std::string& s) {
  for (files::FileType t :
       {files::FileType::kExecutable, files::FileType::kArchive,
        files::FileType::kAudio, files::FileType::kVideo, files::FileType::kImage,
        files::FileType::kDocument, files::FileType::kOther}) {
    if (files::to_string(t) == s) return t;
  }
  return files::FileType::kOther;
}

}  // namespace

void write_csv_header(std::ostream& out) { out << kHeader << '\n'; }

void write_csv_record(std::ostream& out, const crawler::ResponseRecord& r) {
  out << r.id << ',' << r.network << ',' << r.at.millis() << ','
      << r.at.whole_days() << ',' << escape(r.query) << ',' << r.query_category
      << ',' << escape(r.filename) << ',' << r.size << ','
      << files::to_string(r.type_by_name) << ','
      << files::to_string(r.type_by_magic) << ',' << r.source_ip.str() << ','
      << r.source_port << ',' << util::to_string(r.source_ip.classify()) << ','
      << escape(r.source_key) << ',' << (r.source_firewalled ? 1 : 0) << ','
      << r.content_key << ',' << (r.download_attempted ? 1 : 0) << ','
      << (r.downloaded ? 1 : 0) << ',' << (r.infected ? 1 : 0) << ','
      << escape(r.strain_name) << '\n';
}

void write_csv(std::ostream& out, std::span<const crawler::ResponseRecord> records) {
  write_csv_header(out);
  for (const auto& r : records) write_csv_record(out, r);
}

std::optional<std::vector<crawler::ResponseRecord>> read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  std::vector<crawler::ResponseRecord> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (!fields || fields->size() != 20) return std::nullopt;
    const auto& f = *fields;

    crawler::ResponseRecord r;
    std::int64_t time_ms = 0;
    int flags[4] = {0, 0, 0, 0};
    auto ip = util::Ipv4::parse(f[10]);
    if (!parse_int(f[0], r.id) || !parse_int(f[2], time_ms) ||
        !parse_int(f[7], r.size) || !ip || !parse_int(f[11], r.source_port) ||
        !parse_int(f[14], flags[0]) || !parse_int(f[16], flags[1]) ||
        !parse_int(f[17], flags[2]) || !parse_int(f[18], flags[3])) {
      return std::nullopt;
    }
    r.network = f[1];
    r.at = util::SimTime::at_millis(time_ms);
    r.query = f[4];
    r.query_category = f[5];
    r.filename = f[6];
    r.type_by_name = type_from_name(f[8]);
    r.type_by_magic = type_from_name(f[9]);
    r.source_ip = *ip;
    r.source_key = f[13];
    r.source_firewalled = flags[0] != 0;
    r.content_key = f[15];
    r.download_attempted = flags[1] != 0;
    r.downloaded = flags[2] != 0;
    r.infected = flags[3] != 0;
    r.strain_name = f[19];
    // Strain ids are session-local; rebuild a stable surrogate from the
    // name so strain_ranking groups correctly after a reload.
    r.strain = r.infected ? static_cast<malware::StrainId>(
                                std::hash<std::string>{}(r.strain_name) & 0x7fffffff)
                          : malware::kCleanStrain;
    out.push_back(std::move(r));
  }
  return out;
}

void write_metrics_csv(std::ostream& out, const obs::MetricsSnapshot& snapshot,
                       bool include_wall_clock) {
  out << "kind,name,unit,value,max,count,sum,min,p50,p90,p99\n";
  for (const auto& c : snapshot.counters) {
    out << "counter," << escape(c.name) << ",," << c.value << ",,,,,,,\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge," << escape(g.name) << ",," << g.value << ',' << g.max
        << ",,,,,,\n";
  }
  char buf[128];
  for (const auto& h : snapshot.histograms) {
    if (h.wall_clock && !include_wall_clock) continue;
    std::snprintf(buf, sizeof(buf), "%.6g,%.6g,%.6g", h.p50, h.p90, h.p99);
    out << "histogram," << escape(h.name) << ',' << obs::unit_name(h.unit)
        << ",,," << h.count << ',' << h.sum << ',' << h.min << ',' << buf
        << '\n';
  }
}

}  // namespace p2p::analysis
