#include "analysis/incremental.h"

#include <algorithm>

namespace p2p::analysis {

// ---------------------------------------------------------------------------
// PrevalenceAcc
// ---------------------------------------------------------------------------

void PrevalenceAcc::add(const ResponseRecord& r) {
  ++sums.total_responses;
  if (!r.is_study_type()) return;
  ++sums.study_responses;
  if (!r.downloaded) return;
  ++sums.labeled;
  bool exe = r.type_by_name == files::FileType::kExecutable;
  if (exe) {
    ++sums.exe_labeled;
  } else {
    ++sums.archive_labeled;
  }
  if (r.infected) {
    ++sums.infected;
    if (exe) {
      ++sums.exe_infected;
    } else {
      ++sums.archive_infected;
    }
  }
}

void PrevalenceAcc::merge(const PrevalenceAcc& other) {
  sums.total_responses += other.sums.total_responses;
  sums.study_responses += other.sums.study_responses;
  sums.labeled += other.sums.labeled;
  sums.infected += other.sums.infected;
  sums.exe_labeled += other.sums.exe_labeled;
  sums.exe_infected += other.sums.exe_infected;
  sums.archive_labeled += other.sums.archive_labeled;
  sums.archive_infected += other.sums.archive_infected;
}

// ---------------------------------------------------------------------------
// StrainRankingAcc
// ---------------------------------------------------------------------------

void StrainRankingAcc::add(const ResponseRecord& r) {
  if (!r.infected || !r.downloaded) return;
  auto& e = strains[r.strain];
  e.name = r.strain_name;
  ++e.responses;
  e.contents.insert(r.content_key);
  e.sources.insert(r.source_key);
  ++total;
}

void StrainRankingAcc::merge(const StrainRankingAcc& other) {
  for (const auto& [strain, oe] : other.strains) {
    auto& e = strains[strain];
    // The serial path keeps the *last* record's spelling; merging in stream
    // order, the later accumulator's name wins.
    if (!oe.name.empty()) e.name = oe.name;
    e.responses += oe.responses;
    e.contents.insert(oe.contents.begin(), oe.contents.end());
    e.sources.insert(oe.sources.begin(), oe.sources.end());
  }
  total += other.total;
}

std::vector<StrainCount> StrainRankingAcc::finalize() const {
  std::vector<StrainCount> out;
  out.reserve(strains.size());
  for (const auto& [strain, e] : strains) {
    StrainCount c;
    c.strain = strain;
    c.name = e.name;
    c.responses = e.responses;
    c.share = total == 0 ? 0.0
                         : static_cast<double>(e.responses) / static_cast<double>(total);
    c.distinct_contents = e.contents.size();
    c.distinct_sources = e.sources.size();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const StrainCount& a, const StrainCount& b) {
    if (a.responses != b.responses) return a.responses > b.responses;
    return a.name < b.name;
  });
  return out;
}

// ---------------------------------------------------------------------------
// SourcesAcc
// ---------------------------------------------------------------------------

void SourcesAcc::add(const ResponseRecord& r) {
  if (!r.infected || !r.downloaded) return;
  ++malicious_responses;
  ++by_class[r.source_ip.classify()];
  ++per_source[r.source_key];
}

void SourcesAcc::merge(const SourcesAcc& other) {
  malicious_responses += other.malicious_responses;
  for (const auto& [klass, n] : other.by_class) by_class[klass] += n;
  for (const auto& [src, n] : other.per_source) per_source[src] += n;
}

SourceSummary SourcesAcc::finalize(std::size_t top_n) const {
  SourceSummary out;
  out.malicious_responses = malicious_responses;
  out.by_class = by_class;
  out.distinct_sources = per_source.size();
  auto priv = out.by_class.find(util::IpClass::kPrivate);
  out.private_fraction =
      out.malicious_responses == 0 || priv == out.by_class.end()
          ? 0.0
          : static_cast<double>(priv->second) /
                static_cast<double>(out.malicious_responses);

  out.top_sources.assign(per_source.begin(), per_source.end());
  std::sort(out.top_sources.begin(), out.top_sources.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (out.top_sources.size() > top_n) out.top_sources.resize(top_n);
  return out;
}

// ---------------------------------------------------------------------------
// StrainSourceAcc
// ---------------------------------------------------------------------------

void StrainSourceAcc::add(const ResponseRecord& r) {
  if (!r.infected || !r.downloaded) return;
  auto& e = strains[r.strain_name];
  ++e.responses;
  ++e.per_source[r.source_key];
}

void StrainSourceAcc::merge(const StrainSourceAcc& other) {
  for (const auto& [name, oe] : other.strains) {
    auto& e = strains[name];
    e.responses += oe.responses;
    for (const auto& [src, n] : oe.per_source) e.per_source[src] += n;
  }
}

std::vector<StrainSourceConcentration> StrainSourceAcc::finalize() const {
  std::vector<StrainSourceConcentration> out;
  for (const auto& [name, e] : strains) {
    StrainSourceConcentration c;
    c.name = name;
    c.responses = e.responses;
    c.distinct_sources = e.per_source.size();
    std::uint64_t top = 0;
    for (const auto& [src, n] : e.per_source) top = std::max(top, n);
    c.top_source_share =
        e.responses == 0 ? 0.0 : static_cast<double>(top) / static_cast<double>(e.responses);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const StrainSourceConcentration& a, const StrainSourceConcentration& b) {
              if (a.responses != b.responses) return a.responses > b.responses;
              return a.name < b.name;
            });
  return out;
}

// ---------------------------------------------------------------------------
// SizeDistAcc
// ---------------------------------------------------------------------------

void SizeDistAcc::add(const ResponseRecord& r) {
  if (!r.is_study_type() || !r.downloaded) return;
  auto& b = buckets[r.size];
  b.size = r.size;
  if (r.infected) {
    ++b.malicious;
  } else {
    ++b.clean;
  }
}

void SizeDistAcc::merge(const SizeDistAcc& other) {
  for (const auto& [size, ob] : other.buckets) {
    auto& b = buckets[size];
    b.size = size;
    b.malicious += ob.malicious;
    b.clean += ob.clean;
  }
}

std::vector<SizeBucket> SizeDistAcc::finalize() const {
  std::vector<SizeBucket> out;
  out.reserve(buckets.size());
  for (const auto& [size, b] : buckets) out.push_back(b);
  std::sort(out.begin(), out.end(), [](const SizeBucket& a, const SizeBucket& b) {
    std::uint64_t ta = a.malicious + a.clean;
    std::uint64_t tb = b.malicious + b.clean;
    if (ta != tb) return ta > tb;
    return a.size < b.size;
  });
  return out;
}

// ---------------------------------------------------------------------------
// SizesPerStrainAcc
// ---------------------------------------------------------------------------

void SizesPerStrainAcc::add(const ResponseRecord& r) {
  if (!r.infected || !r.downloaded) return;
  sizes[r.strain_name].insert(r.size);
}

void SizesPerStrainAcc::merge(const SizesPerStrainAcc& other) {
  for (const auto& [name, set] : other.sizes) {
    sizes[name].insert(set.begin(), set.end());
  }
}

// ---------------------------------------------------------------------------
// CategoryAcc
// ---------------------------------------------------------------------------

void CategoryAcc::add(const ResponseRecord& r) {
  auto& b = bins[r.query_category];
  b.category = r.query_category;
  ++b.responses;
  if (!r.is_study_type()) return;
  ++b.study_responses;
  if (!r.downloaded) return;
  ++b.labeled;
  if (r.infected) ++b.infected;
}

void CategoryAcc::merge(const CategoryAcc& other) {
  for (const auto& [name, ob] : other.bins) {
    auto& b = bins[name];
    b.category = name;
    b.responses += ob.responses;
    b.study_responses += ob.study_responses;
    b.labeled += ob.labeled;
    b.infected += ob.infected;
  }
}

std::vector<CategoryBin> CategoryAcc::finalize() const {
  std::vector<CategoryBin> out;
  out.reserve(bins.size());
  for (const auto& [name, b] : bins) out.push_back(b);
  std::sort(out.begin(), out.end(), [](const CategoryBin& a, const CategoryBin& b) {
    if (a.infected != b.infected) return a.infected > b.infected;
    return a.category < b.category;
  });
  return out;
}

// ---------------------------------------------------------------------------
// DailyAcc
// ---------------------------------------------------------------------------

void DailyAcc::add(const ResponseRecord& r) {
  int day = static_cast<int>(r.at.whole_days());
  auto& b = bins[day];
  b.day = day;
  ++b.responses;
  if (!r.is_study_type()) return;
  ++b.study_responses;
  if (!r.downloaded) return;
  ++b.labeled;
  if (r.infected) {
    ++b.infected;
    strains_by_day[day].insert(r.strain_name);
  }
}

void DailyAcc::merge(const DailyAcc& other) {
  for (const auto& [day, ob] : other.bins) {
    auto& b = bins[day];
    b.day = day;
    b.responses += ob.responses;
    b.study_responses += ob.study_responses;
    b.labeled += ob.labeled;
    b.infected += ob.infected;
  }
  for (const auto& [day, set] : other.strains_by_day) {
    strains_by_day[day].insert(set.begin(), set.end());
  }
}

std::vector<DayBin> DailyAcc::finalize() const {
  std::vector<DayBin> out;
  std::set<std::string> seen;
  for (const auto& [day, bin] : bins) {
    auto it = strains_by_day.find(day);
    if (it != strains_by_day.end()) {
      for (const auto& s : it->second) seen.insert(s);
    }
    DayBin b = bin;
    b.cumulative_strains = seen.size();
    out.push_back(b);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RecordAccumulator
// ---------------------------------------------------------------------------

void RecordAccumulator::add(const ResponseRecord& r) {
  prevalence.add(r);
  strain_ranking.add(r);
  sources.add(r);
  strain_sources.add(r);
  size_dist.add(r);
  sizes_per_strain.add(r);
  categories.add(r);
  days.add(r);
}

void RecordAccumulator::merge(const RecordAccumulator& other) {
  prevalence.merge(other.prevalence);
  strain_ranking.merge(other.strain_ranking);
  sources.merge(other.sources);
  strain_sources.merge(other.strain_sources);
  size_dist.merge(other.size_dist);
  sizes_per_strain.merge(other.sizes_per_strain);
  categories.merge(other.categories);
  days.merge(other.days);
}

}  // namespace p2p::analysis
