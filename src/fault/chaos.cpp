#include "fault/chaos.h"

#include <vector>

#include "obs/trace.h"

namespace p2p::fault {

CrashDriver::CrashDriver(sim::Network& net, agents::ChurnDriver& churn,
                         FaultInjector& injector)
    : net_(net), churn_(churn), injector_(injector) {}

void CrashDriver::start() {
  if (injector_.spec().crashes_per_hour <= 0.0) return;
  schedule_next();
}

void CrashDriver::schedule_next() {
  net_.events().schedule_in(injector_.plan().next_crash_delay(), [this] {
    crash_one();
    schedule_next();
  });
}

void CrashDriver::crash_one() {
  // Victims are drawn among currently-online churnable peers; the crawler
  // and any pinned hosts (e.g. the OpenFT super-spreader) are outside the
  // churn set and never crash.
  std::vector<std::size_t> online;
  online.reserve(churn_.specs().size());
  for (std::size_t i = 0; i < churn_.specs().size(); ++i) {
    if (churn_.node_of(i) != sim::kInvalidNode) online.push_back(i);
  }
  if (online.empty()) return;
  std::size_t idx = online[injector_.plan().pick_victim(online.size())];
  sim::SimDuration downtime = injector_.plan().next_restart_delay();
  P2P_TRACE(obs::Component::kNet, "peer_crash", net_.now(),
            obs::tf("spec", static_cast<std::uint64_t>(idx)),
            obs::tf("downtime_ms", static_cast<std::uint64_t>(downtime.count_ms())));
  churn_.crash(idx, downtime);
  ++crashes_;
  injector_.count_crash();
  injector_.count_restart();  // the restart is committed at crash time
}

}  // namespace p2p::fault
