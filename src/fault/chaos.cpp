#include "fault/chaos.h"

#include <vector>

#include "obs/trace.h"

namespace p2p::fault {

CrashDriver::CrashDriver(sim::Network& net, agents::ChurnDriver& churn,
                         FaultInjector& injector)
    : net_(net), churn_(churn), injector_(injector) {}

void CrashDriver::start(sim::SimTime horizon) {
  if (injector_.spec().crashes_per_hour <= 0.0) return;
  if (net_.sharded()) {
    // Precompute the whole schedule from the plan's crash stream (consumed
    // on this thread, before the run) and bootstrap-post each strike to its
    // victim's entity. The stream walk is identical at every shard count.
    std::size_t nspecs = churn_.specs().size();
    if (nspecs == 0) return;
    sim::SimTime t = net_.now();
    while (true) {
      t = t + injector_.plan().next_crash_delay();
      if (t >= horizon) break;
      std::size_t victim = injector_.plan().pick_victim(nspecs);
      sim::SimDuration downtime = injector_.plan().next_restart_delay();
      net_.engine().post(
          net_.entity_of(churn_.spec_slot(victim)), t,
          [this, victim, downtime] {
            // Victim offline → the strike fizzles (nothing to crash).
            if (churn_.node_of(victim) == sim::kInvalidNode) return;
            P2P_TRACE(obs::Component::kNet, "peer_crash", net_.now(),
                      obs::tf("spec", static_cast<std::uint64_t>(victim)),
                      obs::tf("downtime_ms",
                              static_cast<std::uint64_t>(downtime.count_ms())));
            churn_.crash(victim, downtime);
            crashes_.fetch_add(1, std::memory_order_relaxed);
            injector_.count_crash();
            injector_.count_restart();  // the restart is committed at crash time
          });
    }
    return;
  }
  schedule_next();
}

void CrashDriver::schedule_next() {
  net_.events().schedule_in(injector_.plan().next_crash_delay(), [this] {
    crash_one();
    schedule_next();
  });
}

void CrashDriver::crash_one() {
  // Victims are drawn among currently-online churnable peers; the crawler
  // and any pinned hosts (e.g. the OpenFT super-spreader) are outside the
  // churn set and never crash.
  std::vector<std::size_t> online;
  online.reserve(churn_.specs().size());
  for (std::size_t i = 0; i < churn_.specs().size(); ++i) {
    if (churn_.node_of(i) != sim::kInvalidNode) online.push_back(i);
  }
  if (online.empty()) return;
  std::size_t idx = online[injector_.plan().pick_victim(online.size())];
  sim::SimDuration downtime = injector_.plan().next_restart_delay();
  P2P_TRACE(obs::Component::kNet, "peer_crash", net_.now(),
            obs::tf("spec", static_cast<std::uint64_t>(idx)),
            obs::tf("downtime_ms", static_cast<std::uint64_t>(downtime.count_ms())));
  churn_.crash(idx, downtime);
  ++crashes_;
  injector_.count_crash();
  injector_.count_restart();  // the restart is committed at crash time
}

}  // namespace p2p::fault
