// Crash/restart churn: the fault plan's host-level failure mode. Picks a
// random online churnable peer on a seed-derived exponential schedule and
// crashes it abruptly (no graceful BYE — neighbours discover the dead link
// by timeout, exactly the failure long-running crawls must survive). The
// peer restarts after a plan-drawn downtime, keeping its identity.
#pragma once

#include "agents/churn.h"
#include "fault/fault.h"
#include "sim/network.h"

namespace p2p::fault {

class CrashDriver {
 public:
  /// `injector` and `churn` must outlive the driver; the driver schedules
  /// against `net`'s event queue and only crashes peers managed by `churn`.
  CrashDriver(sim::Network& net, agents::ChurnDriver& churn, FaultInjector& injector);

  /// Schedule the first crash (no-op when crashes_per_hour is zero).
  void start();

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

 private:
  void schedule_next();
  void crash_one();

  sim::Network& net_;
  agents::ChurnDriver& churn_;
  FaultInjector& injector_;
  std::uint64_t crashes_ = 0;
};

}  // namespace p2p::fault
