// Crash/restart churn: the fault plan's host-level failure mode. Picks a
// random online churnable peer on a seed-derived exponential schedule and
// crashes it abruptly (no graceful BYE — neighbours discover the dead link
// by timeout, exactly the failure long-running crawls must survive). The
// peer restarts after a plan-drawn downtime, keeping its identity.
#pragma once

#include <atomic>

#include "agents/churn.h"
#include "fault/fault.h"
#include "sim/network.h"

namespace p2p::fault {

class CrashDriver {
 public:
  /// `injector` and `churn` must outlive the driver; the driver schedules
  /// against `net`'s executor and only crashes peers managed by `churn`.
  CrashDriver(sim::Network& net, agents::ChurnDriver& churn, FaultInjector& injector);

  /// Schedule the first crash (no-op when crashes_per_hour is zero).
  ///
  /// Sharded mode needs `horizon` (the study end): the whole crash schedule
  /// is precomputed from the plan's crash stream before the run and each
  /// strike is bootstrap-posted to its victim's entity. Victims are drawn
  /// over ALL churnable specs — an offline victim makes the strike a no-op —
  /// rather than serial mode's online-only pick, because the online set at a
  /// future instant isn't knowable up front. A band-level model difference
  /// (see DESIGN.md); the realized crash rate scales with the online
  /// fraction.
  void start(sim::SimTime horizon = sim::SimTime::zero());

  [[nodiscard]] std::uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }

 private:
  void schedule_next();
  void crash_one();

  sim::Network& net_;
  agents::ChurnDriver& churn_;
  FaultInjector& injector_;
  std::atomic<std::uint64_t> crashes_{0};
};

}  // namespace p2p::fault
