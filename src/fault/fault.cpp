#include "fault/fault.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace p2p::fault {

namespace {

/// Per-category stream seeds: one splitmix64 walk over the fault seed, in a
/// fixed order. Adding a category appends to the walk so existing streams
/// keep their values.
struct StreamSeeds {
  std::uint64_t message, corrupt, crawler, crash;
  explicit StreamSeeds(std::uint64_t seed) {
    std::uint64_t state = seed ^ 0xfa17'5eed'c0deull;
    message = util::splitmix64(state);
    corrupt = util::splitmix64(state);
    crawler = util::splitmix64(state);
    crash = util::splitmix64(state);
  }
};

}  // namespace

FaultSpec preset_mild() {
  FaultSpec s;
  s.message_loss = 0.01;
  s.message_delay = 0.05;
  s.message_delay_max = sim::SimDuration::seconds(2);
  s.message_duplicate = 0.002;
  s.payload_corrupt = 0.001;
  s.crashes_per_hour = 2.0;
  s.download_stall = 0.01;
  s.scan_timeout = 0.005;
  return s;
}

FaultSpec preset_moderate() {
  FaultSpec s;
  s.message_loss = 0.05;
  s.message_delay = 0.10;
  s.message_delay_max = sim::SimDuration::seconds(3);
  s.message_duplicate = 0.005;
  s.payload_corrupt = 0.005;
  s.crashes_per_hour = 6.0;
  s.download_stall = 0.03;
  s.scan_timeout = 0.01;
  return s;
}

FaultSpec preset_severe() {
  FaultSpec s;
  s.message_loss = 0.15;
  s.message_delay = 0.20;
  s.message_delay_max = sim::SimDuration::seconds(5);
  s.message_duplicate = 0.01;
  s.payload_corrupt = 0.02;
  s.crashes_per_hour = 15.0;
  s.crash_downtime = sim::SimDuration::minutes(5);
  s.download_stall = 0.08;
  s.scan_timeout = 0.03;
  return s;
}

std::optional<FaultSpec> parse_spec(const std::string& text) {
  if (text == "none") return FaultSpec{};
  if (text == "mild") return preset_mild();
  if (text == "moderate") return preset_moderate();
  if (text == "severe") return preset_severe();

  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string key = item.substr(0, eq);
    std::string val = item.substr(eq + 1);
    char* end = nullptr;
    double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || num < 0.0) return std::nullopt;
    if (key == "loss") {
      spec.message_loss = num;
    } else if (key == "delay") {
      spec.message_delay = num;
    } else if (key == "delay_max_ms") {
      spec.message_delay_max = sim::SimDuration::millis(static_cast<std::int64_t>(num));
    } else if (key == "dup") {
      spec.message_duplicate = num;
    } else if (key == "corrupt") {
      spec.payload_corrupt = num;
    } else if (key == "crash") {
      spec.crashes_per_hour = num;
    } else if (key == "downtime_ms") {
      spec.crash_downtime = sim::SimDuration::millis(static_cast<std::int64_t>(num));
    } else if (key == "stall") {
      spec.download_stall = num;
    } else if (key == "scan_timeout") {
      spec.scan_timeout = num;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

std::string describe(const FaultSpec& spec) {
  if (!spec.enabled()) return "none";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "loss=%g delay=%g dup=%g corrupt=%g crash/h=%g stall=%g "
                "scan_timeout=%g",
                spec.message_loss, spec.message_delay, spec.message_duplicate,
                spec.payload_corrupt, spec.crashes_per_hour, spec.download_stall,
                spec.scan_timeout);
  return buf;
}

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed)
    : spec_(spec),
      seed_(seed),
      message_rng_(StreamSeeds(seed).message),
      corrupt_rng_(StreamSeeds(seed).corrupt),
      crawler_rng_(StreamSeeds(seed).crawler),
      crash_rng_(StreamSeeds(seed).crash) {}

bool FaultPlan::drop_message() {
  return spec_.message_loss > 0.0 && message_rng_.chance(spec_.message_loss);
}

std::optional<sim::SimDuration> FaultPlan::extra_delay() {
  if (spec_.message_delay <= 0.0 || !message_rng_.chance(spec_.message_delay)) {
    return std::nullopt;
  }
  std::int64_t max_ms = std::max<std::int64_t>(1, spec_.message_delay_max.count_ms());
  return sim::SimDuration::millis(
      static_cast<std::int64_t>(message_rng_.bounded(static_cast<std::uint64_t>(max_ms))) + 1);
}

bool FaultPlan::duplicate_message() {
  return spec_.message_duplicate > 0.0 && message_rng_.chance(spec_.message_duplicate);
}

bool FaultPlan::corrupt_payload(util::Bytes& payload) {
  if (spec_.payload_corrupt <= 0.0 || payload.empty() ||
      !corrupt_rng_.chance(spec_.payload_corrupt)) {
    return false;
  }
  apply_corruption(corrupt_rng_, {payload.data(), payload.size()});
  return true;
}

bool FaultPlan::corrupt_payload(util::Payload& payload) {
  // Identical decision stream to the Bytes overload: the cheap roll gates
  // first; only a payload that will actually be corrupted pays the
  // copy-on-write clone inside mutate().
  if (spec_.payload_corrupt <= 0.0 || payload.empty() ||
      !corrupt_rng_.chance(spec_.payload_corrupt)) {
    return false;
  }
  apply_corruption(corrupt_rng_, payload.mutate());
  return true;
}

void FaultPlan::apply_corruption(util::Rng& rng, std::span<std::uint8_t> payload) {
  std::size_t flips = 1 + static_cast<std::size_t>(rng.bounded(4));
  std::array<std::size_t, 4> at{};
  std::array<std::uint8_t, 4> before{};
  for (std::size_t i = 0; i < flips; ++i) {
    at[i] = rng.index(payload.size());
    before[i] = payload[at[i]];
  }
  for (std::size_t i = 0; i < flips; ++i) {
    payload[at[i]] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
  }
  // Two flips on the same byte can cancel; a "corrupted" frame that is
  // byte-identical to the original would make the injected/observed
  // counters lie, so force a net change when that happens.
  bool changed = false;
  for (std::size_t i = 0; i < flips; ++i) {
    if (payload[at[i]] != before[i]) {
      changed = true;
      break;
    }
  }
  if (!changed) {
    payload[at[0]] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
  }
}

bool FaultPlan::download_stalls() {
  return spec_.download_stall > 0.0 && crawler_rng_.chance(spec_.download_stall);
}

bool FaultPlan::scan_times_out() {
  return spec_.scan_timeout > 0.0 && crawler_rng_.chance(spec_.scan_timeout);
}

sim::SimDuration FaultPlan::next_crash_delay() {
  double mean_s = 3600.0 / std::max(1e-9, spec_.crashes_per_hour);
  return sim::SimDuration::millis(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(1000.0 * crash_rng_.exponential(mean_s))));
}

sim::SimDuration FaultPlan::next_restart_delay() {
  double mean_s = std::max(1.0, spec_.crash_downtime.as_seconds());
  return sim::SimDuration::millis(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(1000.0 * crash_rng_.exponential(mean_s))));
}

std::size_t FaultPlan::pick_victim(std::size_t bound) {
  return crash_rng_.index(bound);
}

sim::SendFaults FaultInjector::on_send(util::Payload& payload) {
  sim::SendFaults f;
  if (plan_.drop_message()) {
    f.drop = true;
    counters_.messages_dropped.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().messages_dropped.add(1);
  }
  // The delay/duplicate draws still run for dropped messages so the message
  // stream advances exactly once per send, whatever this message's fate.
  if (auto extra = plan_.extra_delay()) {
    f.extra_delay = *extra;
    if (!f.drop) {
      counters_.messages_delayed.fetch_add(1, std::memory_order_relaxed);
      FaultMetrics::get().messages_delayed.add(1);
    }
  }
  if (plan_.duplicate_message()) {
    f.duplicate = true;
    if (!f.drop) {
      counters_.messages_duplicated.fetch_add(1, std::memory_order_relaxed);
      FaultMetrics::get().messages_duplicated.add(1);
    }
  }
  if (!f.drop && plan_.corrupt_payload(payload)) {
    counters_.payloads_corrupted.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().payloads_corrupted.add(1);
  }
  return f;
}

sim::SendFaults FaultInjector::on_send_keyed(util::Payload& payload,
                                             std::uint64_t key) {
  // One private stream per message, derived from (plan seed, message key):
  // touching no shared plan state makes the decision independent of which
  // worker executes the send, and the key is intrinsic to the simulation,
  // so the whole fault schedule is byte-stable across shard counts.
  std::uint64_t state = plan_.seed() ^ 0xfa17'5eed'c0deull;
  std::uint64_t derived = util::splitmix64(state) ^ key;
  util::Rng rng(derived);
  const FaultSpec& spec = plan_.spec();

  sim::SendFaults f;
  if (spec.message_loss > 0.0 && rng.chance(spec.message_loss)) {
    f.drop = true;
    counters_.messages_dropped.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().messages_dropped.add(1);
  }
  if (spec.message_delay > 0.0 && rng.chance(spec.message_delay)) {
    std::int64_t max_ms =
        std::max<std::int64_t>(1, spec.message_delay_max.count_ms());
    f.extra_delay = sim::SimDuration::millis(
        static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(max_ms))) + 1);
    if (!f.drop) {
      counters_.messages_delayed.fetch_add(1, std::memory_order_relaxed);
      FaultMetrics::get().messages_delayed.add(1);
    }
  }
  if (spec.message_duplicate > 0.0 && rng.chance(spec.message_duplicate)) {
    f.duplicate = true;
    if (!f.drop) {
      counters_.messages_duplicated.fetch_add(1, std::memory_order_relaxed);
      FaultMetrics::get().messages_duplicated.add(1);
    }
  }
  if (!f.drop && spec.payload_corrupt > 0.0 && !payload.empty() &&
      rng.chance(spec.payload_corrupt)) {
    FaultPlan::apply_corruption(rng, payload.mutate());
    counters_.payloads_corrupted.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().payloads_corrupted.add(1);
  }
  return f;
}

bool FaultInjector::download_stalls() {
  if (!plan_.download_stalls()) return false;
  counters_.downloads_stalled.fetch_add(1, std::memory_order_relaxed);
  FaultMetrics::get().downloads_stalled.add(1);
  return true;
}

bool FaultInjector::scan_times_out() {
  if (!plan_.scan_times_out()) return false;
  counters_.scan_timeouts.fetch_add(1, std::memory_order_relaxed);
  FaultMetrics::get().scan_timeouts.add(1);
  return true;
}

}  // namespace p2p::fault
