// Deterministic fault injection (see DESIGN.md "Fault injection &
// resilience").
//
// The paper's numbers come from a month of crawling two *live* networks,
// where unreachable hosts, stalled transfers and malformed traffic are the
// norm. This subsystem lets a study opt into exactly those failure modes —
// message loss/delay/duplication, payload corruption at the framing layer,
// abrupt peer crashes, stalled downloads and scanner timeouts — while
// keeping the simulation reproducible: every fault decision is drawn from a
// FaultPlan whose per-category splitmix64-derived streams are a pure
// function of (spec, fault seed). Same seed, same plan ⇒ the same fault
// schedule, byte for byte.
//
// A default-constructed FaultSpec is all-zero and means "no faults": no
// hook is installed, no fault metrics are registered, and study output is
// byte-identical to a build without this subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "sim/network.h"
#include "util/bytes.h"
#include "util/payload.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace p2p::fault {

/// Fault intensities. All probabilities are per-event in [0, 1]; rates are
/// per simulated hour. Zero disables the corresponding fault class.
struct FaultSpec {
  /// Probability a sent overlay/transfer message is silently lost.
  double message_loss = 0.0;
  /// Probability a delivered message is held up by an extra queueing delay,
  /// drawn uniformly from (0, message_delay_max].
  double message_delay = 0.0;
  sim::SimDuration message_delay_max = sim::SimDuration::seconds(3);
  /// Probability a message is delivered twice (retransmit glitch).
  double message_duplicate = 0.0;
  /// Probability a message's payload has 1-4 bytes flipped in transit —
  /// exercised against the Gnutella/OpenFT framing parsers.
  double payload_corrupt = 0.0;
  /// Abrupt peer crashes per simulated hour across the churnable
  /// population (no graceful BYE; the peer vanishes mid-session).
  double crashes_per_hour = 0.0;
  /// Mean downtime before a crashed peer restarts.
  sim::SimDuration crash_downtime = sim::SimDuration::minutes(10);
  /// Probability a started download stalls: the transfer hangs and its
  /// outcome never arrives (only a crawler fetch timeout reclaims it).
  double download_stall = 0.0;
  /// Probability scanning a fetched payload times out, leaving the content
  /// unlabeled until a retry re-fetches it.
  double scan_timeout = 0.0;

  [[nodiscard]] bool enabled() const {
    return message_loss > 0.0 || message_delay > 0.0 || message_duplicate > 0.0 ||
           payload_corrupt > 0.0 || crashes_per_hour > 0.0 ||
           download_stall > 0.0 || scan_timeout > 0.0;
  }
};

/// Parse a `--faults` argument: a preset name (`none`, `mild`, `moderate`,
/// `severe`) or a comma-separated key=value spec, e.g.
/// `loss=0.05,delay=0.1,delay_max_ms=3000,dup=0.005,corrupt=0.002,`
/// `crash=6,downtime_ms=600000,stall=0.03,scan_timeout=0.01`.
/// Returns nullopt on an unknown preset, unknown key, or malformed value.
[[nodiscard]] std::optional<FaultSpec> parse_spec(const std::string& text);

/// Named presets (the same table parse_spec accepts).
[[nodiscard]] FaultSpec preset_mild();
[[nodiscard]] FaultSpec preset_moderate();
[[nodiscard]] FaultSpec preset_severe();

/// One-line echo of a spec (stable order, for logs and CLI banners).
[[nodiscard]] std::string describe(const FaultSpec& spec);

/// The deterministic fault schedule. Each fault category consumes its own
/// xoshiro stream seeded from a splitmix64 expansion of the fault seed, so
/// decisions in one category never shift another category's schedule, and
/// two plans with equal (spec, seed) make identical decisions call by call.
class FaultPlan {
 public:
  FaultPlan(FaultSpec spec, std::uint64_t seed);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Message-layer decisions, one call per sent message.
  bool drop_message();
  /// Extra queueing delay, or nullopt for an on-time delivery.
  std::optional<sim::SimDuration> extra_delay();
  bool duplicate_message();
  /// Maybe flip 1-4 bytes of `payload` in place. Returns true if corrupted;
  /// a corrupted payload is guaranteed to differ from the original.
  bool corrupt_payload(util::Bytes& payload);
  /// Same decision stream over a shared payload: the copy-on-write clone
  /// happens only after the (rarely taken) corruption roll passes, so the
  /// fault-free common case never touches the buffer.
  bool corrupt_payload(util::Payload& payload);

  // Crawler-layer decisions.
  bool download_stalls();
  bool scan_times_out();

  // Crash schedule (valid only when spec().crashes_per_hour > 0).
  [[nodiscard]] sim::SimDuration next_crash_delay();
  [[nodiscard]] sim::SimDuration next_restart_delay();
  /// Pick a crash victim index in [0, bound).
  [[nodiscard]] std::size_t pick_victim(std::size_t bound);

  /// Flip 1-4 bytes, guaranteeing a net change, consuming draws from `rng`
  /// (the member streams for the serial path; a per-message stream for the
  /// sharded keyed path).
  static void apply_corruption(util::Rng& rng, std::span<std::uint8_t> payload);

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
  util::Rng message_rng_;
  util::Rng corrupt_rng_;
  util::Rng crawler_rng_;
  util::Rng crash_rng_;
};

/// Everything the injector did to a run — persisted in the study summary so
/// a replayed trace reports the identical fault section.
struct FaultCounters {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t payloads_corrupted = 0;
  std::uint64_t peer_crashes = 0;
  std::uint64_t peer_restarts = 0;
  std::uint64_t downloads_stalled = 0;
  std::uint64_t scan_timeouts = 0;
};

/// Obs mirror of FaultCounters (`fault.*`). Registered lazily, only when a
/// run actually injects faults — fault-free runs keep a pre-fault metrics
/// snapshot.
struct FaultMetrics {
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Counter& messages_dropped = r.counter("fault.messages_dropped");
  obs::Counter& messages_delayed = r.counter("fault.messages_delayed");
  obs::Counter& messages_duplicated = r.counter("fault.messages_duplicated");
  obs::Counter& payloads_corrupted = r.counter("fault.payloads_corrupted");
  obs::Counter& peer_crashes = r.counter("fault.peer_crashes");
  obs::Counter& peer_restarts = r.counter("fault.peer_restarts");
  obs::Counter& downloads_stalled = r.counter("fault.downloads_stalled");
  obs::Counter& scan_timeouts = r.counter("fault.scan_timeouts");

  static FaultMetrics& get() { return obs::bound_metrics<FaultMetrics>(); }
};

/// Plan + counting, wired into sim::Network as its message-fault hook and
/// handed to the crawlers for transfer/scan faults. One injector per study
/// run. The plan's serial streams (on_send, the crawler hooks, the crash
/// schedule) are single-consumer; the counters are atomic, so the keyed
/// send path — which derives a private per-message stream and touches no
/// plan state — may run concurrently from sharded-engine workers.
class FaultInjector final : public sim::MessageFaultHook {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed) : plan_(spec, seed) {}

  // sim::MessageFaultHook: one call per sim::Network::send of a live
  // connection; may corrupt the payload via its copy-on-write path.
  sim::SendFaults on_send(util::Payload& payload) override;
  /// Sharded-network variant: all decisions come from a stream derived from
  /// (plan seed, key) — the same decision for the same message whatever
  /// thread or order the sends execute in. Draw order within a message
  /// mirrors on_send (drop, delay, duplicate, corrupt).
  sim::SendFaults on_send_keyed(util::Payload& payload,
                                std::uint64_t key) override;

  /// Crawler hook: decide whether this fetch will hang. Counted here.
  bool download_stalls();
  /// Crawler hook: decide whether scanning this content times out.
  bool scan_times_out();

  void count_crash() {
    counters_.peer_crashes.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().peer_crashes.add(1);
  }
  void count_restart() {
    counters_.peer_restarts.fetch_add(1, std::memory_order_relaxed);
    FaultMetrics::get().peer_restarts.add(1);
  }

  [[nodiscard]] FaultPlan& plan() { return plan_; }
  [[nodiscard]] const FaultSpec& spec() const { return plan_.spec(); }
  [[nodiscard]] FaultCounters counters() const {
    auto ld = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    FaultCounters c;
    c.messages_dropped = ld(counters_.messages_dropped);
    c.messages_delayed = ld(counters_.messages_delayed);
    c.messages_duplicated = ld(counters_.messages_duplicated);
    c.payloads_corrupted = ld(counters_.payloads_corrupted);
    c.peer_crashes = ld(counters_.peer_crashes);
    c.peer_restarts = ld(counters_.peer_restarts);
    c.downloads_stalled = ld(counters_.downloads_stalled);
    c.scan_timeouts = ld(counters_.scan_timeouts);
    return c;
  }

 private:
  struct AtomicCounters {
    std::atomic<std::uint64_t> messages_dropped{0};
    std::atomic<std::uint64_t> messages_delayed{0};
    std::atomic<std::uint64_t> messages_duplicated{0};
    std::atomic<std::uint64_t> payloads_corrupted{0};
    std::atomic<std::uint64_t> peer_crashes{0};
    std::atomic<std::uint64_t> peer_restarts{0};
    std::atomic<std::uint64_t> downloads_stalled{0};
    std::atomic<std::uint64_t> scan_timeouts{0};
  };

  FaultPlan plan_;
  AtomicCounters counters_;
};

}  // namespace p2p::fault
