// A KAD node: Kademlia DHT participant in the eDonkey/Overnet mold.
//
// Every node maintains a 128-bucket XOR-metric routing table, publishes
// its shares under keyword hashes (STORE at the k closest nodes to each
// keyword, refreshed on a republish timer), answers FIND_NODE/FIND_VALUE,
// and serves direct GET-by-hash transfers. Iterative lookups run as
// per-query state machines: alpha RPCs in flight, candidates merged from
// replies in XOR order, terminating when the k closest candidates have
// all answered (or a deadline passes). When a DHT search comes up short
// the node falls back to an eDonkey-style index server (ServerQuery).
//
// Each RPC uses its own short-lived connection: connect, send request on
// open, peer replies, initiator closes. Connection failure or a
// malformed reply counts a liveness failure against the target's
// routing-table entry; enough failures make the contact evictable.
//
// Infected peers need no special node type — the population hands them
// poison shares (malware artifacts named after popular titles), and the
// ordinary publish path index-poisons the popular keywords. Honeypot
// vantage points are likewise plain KadNodes: passive peers with bait
// shares whose observe callback logs every STORE and FIND_VALUE they
// attract (see crawler::KadCrawler).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "files/file.h"
#include "kad/message.h"
#include "kad/routing.h"
#include "sim/network.h"
#include "util/endpoint_cache.h"
#include "util/rng.h"

namespace p2p::kad {

using KadHostCache = util::EndpointCache;

/// One shared file: content plus the filename it is published under.
/// Infected peers carry artifacts under bait paths (index poisoning).
struct KadShare {
  std::shared_ptr<const files::FileContent> content;
  std::string path;
};

struct KadConfig {
  std::string alias = "kadnode";
  /// Bucket size, lookup result width, and STORE replication factor.
  std::size_t k = 8;
  /// Parallel RPCs per iterative lookup.
  std::size_t alpha = 3;
  /// Unanswered RPCs before a full bucket's oldest entry is evictable.
  std::uint32_t stale_after_failures = 2;
  /// Host-cache endpoints seeded into the bootstrap self-lookup.
  std::size_t bootstrap_contacts = 6;
  /// Keywords each share is published under (first tokens of the name).
  std::size_t publish_keywords = 3;
  /// Sources kept per keyword at each indexing node.
  std::size_t store_capacity = 64;
  /// Sources returned per FIND_VALUE reply.
  std::size_t reply_entries = 32;
  sim::SimDuration republish_interval = sim::SimDuration::hours(4);
  /// Deadline for a whole iterative lookup (and per-RPC watchdog).
  sim::SimDuration lookup_timeout = sim::SimDuration::seconds(12);
  /// Client-side search completion window (results keep streaming in
  /// from the DHT walk and the server fallback until this closes).
  sim::SimDuration search_window = sim::SimDuration::seconds(20);
  sim::SimDuration download_timeout = sim::SimDuration::seconds(90);
  /// DHT results below this trigger the index-server fallback query.
  std::size_t server_min_results = 4;
};

struct KadSearchEvent {
  std::uint64_t search_id = 0;
  SourceEntry entry;
  sim::SimTime at;
};

struct KadDownloadOutcome {
  std::uint64_t request_id = 0;
  bool success = false;
  std::string path;
  util::Bytes content;
  util::Endpoint source;
  std::string error;
};

/// What a passive vantage point sees: a publish (STORE) or a keyword
/// query (FIND_VALUE) arriving from a remote peer.
struct KadObservation {
  enum class Kind { kStore, kQuery };
  Kind kind = Kind::kStore;
  sim::SimTime at;
  KadId keyword;
  /// kStore only; empty for queries.
  std::string filename;
  std::uint64_t size = 0;
  files::Digest16 md5{};
  /// The observed peer's advertised endpoint.
  util::Endpoint peer;
  bool peer_firewalled = false;
};

struct KadStats {
  std::uint64_t lookups_started = 0;
  std::uint64_t lookups_completed = 0;
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_failed = 0;
  std::uint64_t stores_sent = 0;
  std::uint64_t stores_received = 0;
  std::uint64_t entries_stored = 0;
  std::uint64_t finds_handled = 0;
  std::uint64_t searches_sent = 0;
  std::uint64_t results_received = 0;
  std::uint64_t server_queries_sent = 0;
  std::uint64_t uploads_served = 0;
  std::uint64_t downloads_ok = 0;
  std::uint64_t downloads_failed = 0;
  std::uint64_t dropped_malformed = 0;
};

class KadNode : public sim::Node {
 public:
  /// `server_cache` (optional) lists eDonkey-style index servers for
  /// registration and fallback search.
  KadNode(KadConfig config, std::vector<KadShare> shares,
          std::shared_ptr<KadHostCache> host_cache, std::uint64_t rng_seed,
          std::shared_ptr<KadHostCache> server_cache = nullptr);

  // -- sim::Node ------------------------------------------------------------
  void start() override;
  void on_connection_open(sim::ConnId conn, sim::NodeId peer, bool initiated) override;
  void on_connection_failed(sim::ConnId conn, sim::NodeId target) override;
  void on_message(sim::ConnId conn, const util::Payload& payload) override;
  void on_connection_closed(sim::ConnId conn) override;

  // -- Client API -----------------------------------------------------------

  /// Keyword search: iterative FIND_VALUE on the primary keyword, source
  /// entries filtered against the full query, index-server fallback when
  /// the DHT yields too little. Completion via the end callback after
  /// config.search_window.
  std::uint64_t search(const std::string& query);

  /// Fetch a source directly from its owner (GET by md5). Firewalled or
  /// vanished owners fail the download.
  std::uint64_t download(const SourceEntry& entry);

  void set_result_callback(std::function<void(const KadSearchEvent&)> cb) {
    result_callback_ = std::move(cb);
  }
  void set_search_end_callback(std::function<void(std::uint64_t)> cb) {
    search_end_callback_ = std::move(cb);
  }
  void set_download_callback(std::function<void(const KadDownloadOutcome&)> cb) {
    download_callback_ = std::move(cb);
  }
  /// Honeypot hook: fires for every STORE entry and FIND_VALUE received.
  void set_observe_callback(std::function<void(const KadObservation&)> cb) {
    observe_callback_ = std::move(cb);
  }

  [[nodiscard]] const KadStats& stats() const { return stats_; }
  [[nodiscard]] const KadConfig& config() const { return config_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }
  [[nodiscard]] const Contact& self() const { return self_; }
  /// Sources currently indexed at this node (keyword -> entries).
  [[nodiscard]] std::size_t indexed_sources() const;

 private:
  enum class ConnKind { kRpcOut, kIn, kTransferOut };
  enum class LookupPurpose { kBootstrap, kPublish, kSearch };

  struct ConnState {
    ConnKind kind = ConnKind::kIn;
    /// kRpcOut: request to send on open, plus owners.
    KadPacket request;
    Contact target;
    std::uint64_t lookup_id = 0;  // 0 = standalone RPC
    std::uint64_t search_id = 0;  // owning search for server queries
    std::uint64_t download_id = 0;  // kTransferOut
    bool replied = false;
  };

  struct Candidate {
    enum class State { kFresh, kInflight, kDone, kFailed };
    Contact contact;
    State state = State::kFresh;
  };

  struct Lookup {
    std::uint64_t id = 0;
    KadId target;
    LookupPurpose purpose = LookupPurpose::kBootstrap;
    bool find_value = false;
    std::uint64_t search_id = 0;
    std::vector<SourceEntry> publish_entries;
    /// Sorted by (XOR distance to target, id); states advance in place.
    std::vector<Candidate> candidates;
    std::size_t inflight = 0;
  };

  struct Search {
    std::uint64_t id = 0;
    std::string query;
    std::size_t results = 0;
    bool server_tried = false;
    /// (owner endpoint, md5 hex) pairs already reported.
    std::set<std::pair<std::string, std::string>> seen;
  };

  struct PendingDownload {
    std::uint64_t id = 0;
    SourceEntry entry;
    bool transfer_started = false;
  };

  // Lookup state machine.
  std::uint64_t start_lookup(const KadId& target, LookupPurpose purpose,
                             bool find_value);
  void seed_candidates(Lookup& lookup);
  void merge_candidate(Lookup& lookup, const Contact& contact);
  void step_lookup(Lookup& lookup);
  void finish_lookup(std::uint64_t lookup_id);
  void rpc_failed(sim::ConnId conn, ConnState& state);

  // RPC plumbing.
  void issue_rpc(const Contact& target, KadPacket request,
                 std::uint64_t lookup_id, std::uint64_t search_id);
  void send_pkt(sim::ConnId conn, const KadPacket& pkt);
  void handle_request(sim::ConnId conn, const KadPacket& pkt);
  void handle_reply(sim::ConnId conn, ConnState& state, const KadPacket& pkt);
  void deliver_entries(std::uint64_t search_id,
                       const std::vector<SourceEntry>& entries);

  // Publishing.
  void publish_pass();
  void register_at_server();

  // Transfers.
  void handle_transfer_request(sim::ConnId conn, util::ByteView wire);
  void fail_download(std::uint64_t id, const std::string& error);

  KadConfig config_;
  std::vector<KadShare> shares_;
  std::shared_ptr<KadHostCache> host_cache_;
  std::shared_ptr<KadHostCache> server_cache_;
  util::Rng rng_;
  Contact self_;
  RoutingTable routing_;

  std::unordered_map<sim::ConnId, ConnState> conns_;
  std::unordered_map<std::uint64_t, Lookup> lookups_;
  std::unordered_map<std::uint64_t, Search> searches_;
  std::unordered_map<std::uint64_t, PendingDownload> pending_downloads_;
  std::uint64_t next_lookup_id_ = 1;
  std::uint64_t next_search_id_ = 1;
  std::uint64_t next_download_id_ = 1;

  /// Keyword index: sources this node stores for the keywords it is
  /// close to. std::map for deterministic iteration.
  std::map<KadId, std::vector<SourceEntry>> store_;
  /// md5 hex -> shares_ index, for serving GETs.
  std::unordered_map<std::string, std::size_t> md5_to_share_;

  std::function<void(const KadSearchEvent&)> result_callback_;
  std::function<void(std::uint64_t)> search_end_callback_;
  std::function<void(const KadDownloadOutcome&)> download_callback_;
  std::function<void(const KadObservation&)> observe_callback_;
  KadStats stats_;
};

/// An eDonkey-style index server: clients register their sources
/// (ServerRegister replaces the owner's whole list) and query it as a
/// fallback when the DHT comes up short. Pure request/reply; keeps no
/// routing table.
class KadIndexServer : public sim::Node {
 public:
  explicit KadIndexServer(std::string alias = "kad-server",
                          std::size_t reply_entries = 64);

  void on_message(sim::ConnId conn, const util::Payload& payload) override;

  [[nodiscard]] std::size_t owners() const { return index_.size(); }
  [[nodiscard]] std::size_t sources() const;

 private:
  struct OwnerSources {
    bool firewalled = false;
    std::vector<SourceEntry> entries;
  };

  std::string alias_;
  std::size_t reply_entries_;
  /// Keyed by owner endpoint string; std::map for deterministic order.
  std::map<std::string, OwnerSources> index_;
};

}  // namespace p2p::kad
