// KAD wire protocol (eDonkey/Overnet-flavored Kademlia RPCs).
//
// Framing matches the repo's OpenFT stack: length(u16 BE) | command(u16
// BE) | payload, one packet per simulated message. Each RPC runs on its
// own short-lived connection (connect, request, reply, close), so there
// is no transaction id in the wire format — the connection is the
// correlation handle, as in the real UDP protocol's (ip, port, opcode)
// matching.
//
// Beyond the core Kademlia verbs (PING, FIND_NODE, FIND_VALUE, STORE)
// the protocol carries the eDonkey ecosystem pieces the honeypot papers
// measure: server-assisted fallback search (an index server clients
// register sources with and query when the DHT comes up short).
// Content transfers do NOT use this framing — the u16 length prefix caps
// a packet at 64 KiB, so downloads run over a dedicated transfer
// connection with the same HTTP-flavored text exchange the OpenFT stack
// uses (see KadNode).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "files/hash.h"
#include "kad/id.h"
#include "util/bytes.h"
#include "util/ip.h"

namespace p2p::kad {

enum class KadCommand : std::uint16_t {
  kPing = 0,
  kPong = 1,
  kFindNode = 2,
  kFindNodeReply = 3,
  kFindValue = 4,
  kFindValueReply = 5,
  kStore = 6,
  kStoreReply = 7,
  kServerRegister = 8,
  kServerQuery = 9,
  kServerQueryReply = 10,
};

/// Routing-table entry as carried on the wire.
struct Contact {
  KadId id;
  util::Endpoint addr;
  bool firewalled = false;

  auto operator<=>(const Contact&) const = default;
};

/// One published source: "this owner shares this file under this
/// keyword". The md5 identifies the content for download and
/// verification; poisoned entries advertise malware under bait names.
struct SourceEntry {
  KadId keyword;
  std::string filename;
  std::uint64_t size = 0;
  files::Digest16 md5{};
  util::Endpoint owner;
  bool firewalled = false;
};

struct Ping {
  Contact sender;
};
struct Pong {
  Contact sender;
};

struct FindNode {
  Contact sender;
  KadId target;
};
struct FindNodeReply {
  std::vector<Contact> contacts;
};

struct FindValue {
  Contact sender;
  KadId key;
};
struct FindValueReply {
  std::vector<SourceEntry> entries;
  std::vector<Contact> contacts;
};

struct Store {
  Contact sender;
  std::vector<SourceEntry> entries;
};
struct StoreReply {
  std::uint32_t stored = 0;
};

/// Register/refresh all of an owner's sources at an index server.
struct ServerRegister {
  util::Endpoint owner;
  bool firewalled = false;
  std::vector<SourceEntry> entries;
};

struct ServerQuery {
  std::uint64_t query_id = 0;
  std::string query;
};
struct ServerQueryReply {
  std::uint64_t query_id = 0;
  std::vector<SourceEntry> entries;
};

using KadPayload =
    std::variant<Ping, Pong, FindNode, FindNodeReply, FindValue,
                 FindValueReply, Store, StoreReply, ServerRegister,
                 ServerQuery, ServerQueryReply>;

struct KadPacket {
  KadCommand command = KadCommand::kPing;
  KadPayload payload;
};

/// Hard caps on wire-carried vector lengths; parse rejects anything
/// larger (bounds allocations on malformed/fuzzed input).
inline constexpr std::size_t kMaxContacts = 64;
inline constexpr std::size_t kMaxEntries = 128;

/// Serialize to length-prefixed wire bytes.
[[nodiscard]] util::Bytes serialize(const KadPacket& pkt);

/// Parse one packet; nullopt on malformed input.
[[nodiscard]] std::optional<KadPacket> parse(util::ByteView wire);

/// Convenience constructor (keeps command tag and payload type in sync).
[[nodiscard]] KadPacket make_packet(KadPayload payload);

}  // namespace p2p::kad
