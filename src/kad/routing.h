// Kademlia routing table: 128 k-buckets over XOR distance.
//
// Bucket i holds contacts whose distance to self has its highest set bit
// at position i (so bucket 127 covers the far half of the id space,
// bucket 0 the nearest neighbor). Each bucket is LRU-ordered —
// front = least recently seen — and full buckets prefer long-lived
// contacts: a newcomer only displaces the front entry once that entry
// has accumulated enough liveness failures (Kademlia's "old contacts
// stay" rule, which resists routing-table takeover).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kad/message.h"

namespace p2p::kad {

struct RoutingConfig {
  /// Bucket capacity (Kademlia's k).
  std::size_t k = 8;
  /// A full bucket's oldest contact is evicted for a newcomer only after
  /// this many unanswered RPCs.
  std::uint32_t stale_after_failures = 2;
};

class RoutingTable {
 public:
  struct Entry {
    Contact contact;
    std::uint32_t failures = 0;
  };

  RoutingTable(const KadId& self, RoutingConfig config)
      : self_(self), config_(config) {}

  /// Record traffic from (or a successful RPC to) a contact. Existing
  /// entries move to the bucket tail with failures reset; new contacts
  /// fill free space or displace a stale-enough oldest entry.
  void observe(const Contact& contact);

  /// Record an unanswered RPC to an id.
  void fail(const KadId& id);

  /// The n contacts closest to `target` by XOR distance (ties broken by
  /// id), across all buckets. Deterministic for a given table state.
  [[nodiscard]] std::vector<Contact> closest(const KadId& target,
                                             std::size_t n) const;

  [[nodiscard]] bool contains(const KadId& id) const;
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const KadId& self() const { return self_; }
  [[nodiscard]] const RoutingConfig& config() const { return config_; }
  /// LRU order, front = oldest. Exposed for the model-based tests.
  [[nodiscard]] const std::vector<Entry>& bucket(int index) const {
    return buckets_[static_cast<std::size_t>(index)];
  }

 private:
  std::vector<Entry>* bucket_for(const KadId& id);

  KadId self_;
  RoutingConfig config_;
  std::array<std::vector<Entry>, 128> buckets_;
  std::size_t size_ = 0;
};

}  // namespace p2p::kad
