#include "kad/routing.h"

#include <algorithm>

namespace p2p::kad {

std::vector<RoutingTable::Entry>* RoutingTable::bucket_for(const KadId& id) {
  int idx = bucket_index(id ^ self_);
  if (idx < 0) return nullptr;  // never bucket self
  return &buckets_[static_cast<std::size_t>(idx)];
}

void RoutingTable::observe(const Contact& contact) {
  auto* bucket = bucket_for(contact.id);
  if (bucket == nullptr) return;
  auto it = std::find_if(bucket->begin(), bucket->end(), [&](const Entry& e) {
    return e.contact.id == contact.id;
  });
  if (it != bucket->end()) {
    // Known contact: refresh address/flags and move to the tail (most
    // recently seen).
    Entry entry{contact, 0};
    bucket->erase(it);
    bucket->push_back(entry);
    return;
  }
  if (bucket->size() < config_.k) {
    bucket->push_back(Entry{contact, 0});
    ++size_;
    return;
  }
  // Full bucket: displace the oldest entry only if it has proven stale;
  // otherwise the newcomer is dropped.
  if (bucket->front().failures >= config_.stale_after_failures) {
    bucket->erase(bucket->begin());
    bucket->push_back(Entry{contact, 0});
  }
}

void RoutingTable::fail(const KadId& id) {
  auto* bucket = bucket_for(id);
  if (bucket == nullptr) return;
  for (auto& e : *bucket) {
    if (e.contact.id == id) {
      ++e.failures;
      return;
    }
  }
}

std::vector<Contact> RoutingTable::closest(const KadId& target,
                                           std::size_t n) const {
  std::vector<Contact> all;
  all.reserve(size_);
  for (const auto& bucket : buckets_) {
    for (const auto& e : bucket) all.push_back(e.contact);
  }
  std::sort(all.begin(), all.end(), [&](const Contact& a, const Contact& b) {
    KadId da = a.id ^ target, db = b.id ^ target;
    if (da != db) return da < db;
    return a.id < b.id;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

bool RoutingTable::contains(const KadId& id) const {
  int idx = bucket_index(id ^ self_);
  if (idx < 0) return false;
  const auto& bucket = buckets_[static_cast<std::size_t>(idx)];
  return std::any_of(bucket.begin(), bucket.end(), [&](const Entry& e) {
    return e.contact.id == id;
  });
}

}  // namespace p2p::kad
