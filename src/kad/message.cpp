#include "kad/message.h"

#include <algorithm>

namespace p2p::kad {

namespace {

KadCommand command_of(const KadPayload& payload) {
  struct Visitor {
    KadCommand operator()(const Ping&) { return KadCommand::kPing; }
    KadCommand operator()(const Pong&) { return KadCommand::kPong; }
    KadCommand operator()(const FindNode&) { return KadCommand::kFindNode; }
    KadCommand operator()(const FindNodeReply&) { return KadCommand::kFindNodeReply; }
    KadCommand operator()(const FindValue&) { return KadCommand::kFindValue; }
    KadCommand operator()(const FindValueReply&) { return KadCommand::kFindValueReply; }
    KadCommand operator()(const Store&) { return KadCommand::kStore; }
    KadCommand operator()(const StoreReply&) { return KadCommand::kStoreReply; }
    KadCommand operator()(const ServerRegister&) { return KadCommand::kServerRegister; }
    KadCommand operator()(const ServerQuery&) { return KadCommand::kServerQuery; }
    KadCommand operator()(const ServerQueryReply&) { return KadCommand::kServerQueryReply; }
  };
  return std::visit(Visitor{}, payload);
}

void write_id(util::ByteWriter& w, const KadId& id) {
  w.u64le(id.hi);
  w.u64le(id.lo);
}

KadId read_id(util::ByteReader& r) {
  KadId id;
  id.hi = r.u64le();
  id.lo = r.u64le();
  return id;
}

void write_md5(util::ByteWriter& w, const files::Digest16& d) { w.bytes(d); }

files::Digest16 read_md5(util::ByteReader& r) {
  files::Digest16 d{};
  auto bytes = r.bytes(d.size());
  std::copy(bytes.begin(), bytes.end(), d.begin());
  return d;
}

void write_endpoint(util::ByteWriter& w, const util::Endpoint& ep) {
  w.u32be(ep.ip.value());
  w.u16be(ep.port);
}

util::Endpoint read_endpoint(util::ByteReader& r) {
  util::Endpoint ep;
  ep.ip = util::Ipv4{r.u32be()};
  ep.port = r.u16be();
  return ep;
}

void write_contact(util::ByteWriter& w, const Contact& c) {
  write_id(w, c.id);
  write_endpoint(w, c.addr);
  w.u8(c.firewalled ? 1 : 0);
}

Contact read_contact(util::ByteReader& r) {
  Contact c;
  c.id = read_id(r);
  c.addr = read_endpoint(r);
  c.firewalled = r.u8() != 0;
  return c;
}

void write_entry(util::ByteWriter& w, const SourceEntry& e) {
  write_id(w, e.keyword);
  w.lp_str(e.filename);
  w.u64le(e.size);
  write_md5(w, e.md5);
  write_endpoint(w, e.owner);
  w.u8(e.firewalled ? 1 : 0);
}

SourceEntry read_entry(util::ByteReader& r) {
  SourceEntry e;
  e.keyword = read_id(r);
  e.filename = r.lp_str();
  e.size = r.u64le();
  e.md5 = read_md5(r);
  e.owner = read_endpoint(r);
  e.firewalled = r.u8() != 0;
  return e;
}

/// Count-prefixed vectors. Writers cap at the wire limit; the parse side
/// rejects oversized counts outright (returns false) so malformed input
/// can't force large allocations.
template <typename T, typename WriteFn>
void write_vec(util::ByteWriter& w, const std::vector<T>& v, std::size_t cap,
               WriteFn&& write_one) {
  std::size_t n = std::min(v.size(), cap);
  w.u16be(static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) write_one(w, v[i]);
}

template <typename T, typename ReadFn>
bool read_vec(util::ByteReader& r, std::vector<T>& out, std::size_t cap,
              ReadFn&& read_one) {
  std::size_t n = r.u16be();
  if (n > cap) return false;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(read_one(r));
  return true;
}

void write_payload(util::ByteWriter& w, const KadPayload& payload) {
  std::visit(
      [&w](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Ping> || std::is_same_v<T, Pong>) {
          write_contact(w, p.sender);
        } else if constexpr (std::is_same_v<T, FindNode>) {
          write_contact(w, p.sender);
          write_id(w, p.target);
        } else if constexpr (std::is_same_v<T, FindNodeReply>) {
          write_vec(w, p.contacts, kMaxContacts, write_contact);
        } else if constexpr (std::is_same_v<T, FindValue>) {
          write_contact(w, p.sender);
          write_id(w, p.key);
        } else if constexpr (std::is_same_v<T, FindValueReply>) {
          write_vec(w, p.entries, kMaxEntries, write_entry);
          write_vec(w, p.contacts, kMaxContacts, write_contact);
        } else if constexpr (std::is_same_v<T, Store>) {
          write_contact(w, p.sender);
          write_vec(w, p.entries, kMaxEntries, write_entry);
        } else if constexpr (std::is_same_v<T, StoreReply>) {
          w.u32be(p.stored);
        } else if constexpr (std::is_same_v<T, ServerRegister>) {
          write_endpoint(w, p.owner);
          w.u8(p.firewalled ? 1 : 0);
          write_vec(w, p.entries, kMaxEntries, write_entry);
        } else if constexpr (std::is_same_v<T, ServerQuery>) {
          w.u64le(p.query_id);
          w.lp_str(p.query);
        } else if constexpr (std::is_same_v<T, ServerQueryReply>) {
          w.u64le(p.query_id);
          write_vec(w, p.entries, kMaxEntries, write_entry);
        }
      },
      payload);
}

std::optional<KadPayload> read_payload(KadCommand command, util::ByteReader& r) {
  switch (command) {
    case KadCommand::kPing: {
      Ping p;
      p.sender = read_contact(r);
      return KadPayload{p};
    }
    case KadCommand::kPong: {
      Pong p;
      p.sender = read_contact(r);
      return KadPayload{p};
    }
    case KadCommand::kFindNode: {
      FindNode f;
      f.sender = read_contact(r);
      f.target = read_id(r);
      return KadPayload{f};
    }
    case KadCommand::kFindNodeReply: {
      FindNodeReply f;
      if (!read_vec(r, f.contacts, kMaxContacts, read_contact)) return std::nullopt;
      return KadPayload{std::move(f)};
    }
    case KadCommand::kFindValue: {
      FindValue f;
      f.sender = read_contact(r);
      f.key = read_id(r);
      return KadPayload{f};
    }
    case KadCommand::kFindValueReply: {
      FindValueReply f;
      if (!read_vec(r, f.entries, kMaxEntries, read_entry)) return std::nullopt;
      if (!read_vec(r, f.contacts, kMaxContacts, read_contact)) return std::nullopt;
      return KadPayload{std::move(f)};
    }
    case KadCommand::kStore: {
      Store s;
      s.sender = read_contact(r);
      if (!read_vec(r, s.entries, kMaxEntries, read_entry)) return std::nullopt;
      return KadPayload{std::move(s)};
    }
    case KadCommand::kStoreReply: {
      StoreReply s;
      s.stored = r.u32be();
      return KadPayload{s};
    }
    case KadCommand::kServerRegister: {
      ServerRegister s;
      s.owner = read_endpoint(r);
      s.firewalled = r.u8() != 0;
      if (!read_vec(r, s.entries, kMaxEntries, read_entry)) return std::nullopt;
      return KadPayload{std::move(s)};
    }
    case KadCommand::kServerQuery: {
      ServerQuery s;
      s.query_id = r.u64le();
      s.query = r.lp_str();
      return KadPayload{std::move(s)};
    }
    case KadCommand::kServerQueryReply: {
      ServerQueryReply s;
      s.query_id = r.u64le();
      if (!read_vec(r, s.entries, kMaxEntries, read_entry)) return std::nullopt;
      return KadPayload{std::move(s)};
    }
  }
  return std::nullopt;
}

}  // namespace

util::Bytes serialize(const KadPacket& pkt) {
  util::ByteWriter body;
  write_payload(body, pkt.payload);
  return util::tagged_frame_be16(static_cast<std::uint16_t>(pkt.command),
                                 body.data());
}

std::optional<KadPacket> parse(util::ByteView wire) {
  auto frame = util::parse_tagged_frame_be16(wire);
  if (!frame) return std::nullopt;
  if (frame->tag > static_cast<std::uint16_t>(KadCommand::kServerQueryReply)) {
    return std::nullopt;
  }
  util::ByteReader r(frame->payload);
  try {
    KadPacket pkt;
    pkt.command = static_cast<KadCommand>(frame->tag);
    auto payload = read_payload(pkt.command, r);
    if (!payload) return std::nullopt;
    pkt.payload = std::move(*payload);
    if (!r.empty()) return std::nullopt;
    return pkt;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

KadPacket make_packet(KadPayload payload) {
  KadPacket pkt;
  pkt.command = command_of(payload);
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace p2p::kad
