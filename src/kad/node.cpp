#include "kad/node.h"

#include <algorithm>
#include <charconv>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/strings.h"

namespace p2p::kad {

namespace {

// Network-wide counters shared by every KAD node (per-instance numbers
// stay in KadStats); see DESIGN.md "Observability".
struct KadMetrics {
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Counter& lookups = r.counter("kad.lookups");
  obs::Counter& rpcs_sent = r.counter("kad.rpcs_sent");
  obs::Counter& rpcs_failed = r.counter("kad.rpcs_failed");
  obs::Counter& stores_received = r.counter("kad.stores_received");
  obs::Counter& entries_stored = r.counter("kad.entries_stored");
  obs::Counter& finds_handled = r.counter("kad.finds_handled");
  obs::Counter& searches_sent = r.counter("kad.searches_sent");
  obs::Counter& results_received = r.counter("kad.results_received");
  obs::Counter& server_queries = r.counter("kad.server_queries");
  obs::Counter& uploads_served = r.counter("kad.uploads_served");
  obs::Counter& dropped_malformed = r.counter("kad.dropped_malformed");

  static KadMetrics& get() { return obs::bound_metrics<KadMetrics>(); }
};

std::string_view as_view(util::ByteView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

util::Bytes text_bytes(std::string_view s) { return util::Bytes(s.begin(), s.end()); }

// -- Transfer framing (same HTTP-flavored exchange as the OpenFT stack;
// KadPacket's u16 length prefix caps packets at 64 KiB, so file bytes
// travel on a dedicated connection outside that framing) ------------------

util::Bytes make_get(const files::Digest16& md5) {
  return text_bytes("GET /" + files::hex(md5) + " HTTP/1.1\r\n\r\n");
}

std::optional<files::Digest16> parse_get(util::ByteView wire) {
  std::string_view text = as_view(wire);
  if (!text.starts_with("GET /")) return std::nullopt;
  std::size_t space = text.find(' ', 5);
  if (space == std::string_view::npos) return std::nullopt;
  auto bytes = util::from_hex(text.substr(5, space - 5));
  files::Digest16 md5;
  if (!bytes || bytes->size() != md5.size()) return std::nullopt;
  std::copy(bytes->begin(), bytes->end(), md5.begin());
  return md5;
}

util::Bytes make_response(int status, const util::Bytes* body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) +
                     (status == 200 ? " OK" : " Not Found") +
                     "\r\nContent-Length: " +
                     std::to_string(body ? body->size() : 0) + "\r\n\r\n";
  util::Bytes out = text_bytes(head);
  if (body) out.insert(out.end(), body->begin(), body->end());
  return out;
}

struct ParsedResponse {
  int status = 0;
  util::Bytes body;
};

std::optional<ParsedResponse> parse_response(util::ByteView wire) {
  std::string_view text = as_view(wire);
  if (!text.starts_with("HTTP/1.1 ")) return std::nullopt;
  std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;
  ParsedResponse out;
  auto status_str = text.substr(9, 3);
  auto [p, ec] = std::from_chars(status_str.data(), status_str.data() + 3, out.status);
  if (ec != std::errc{}) return std::nullopt;
  out.body.assign(wire.begin() + static_cast<std::ptrdiff_t>(head_end + 4), wire.end());
  return out;
}

std::string basename_of(const std::string& path) {
  auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Keywords a share is published under: the first `limit` distinct
/// tokens of length >= 3 from the filename (falling back to the first
/// token so every share is publishable).
std::vector<std::string> publish_tokens(const std::string& filename,
                                        std::size_t limit) {
  auto tokens = util::keywords(filename);
  std::vector<std::string> out;
  for (const auto& t : tokens) {
    if (t.size() < 3) continue;
    if (std::find(out.begin(), out.end(), t) != out.end()) continue;
    out.push_back(t);
    if (out.size() >= limit) break;
  }
  if (out.empty() && !tokens.empty()) out.push_back(tokens.front());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

KadNode::KadNode(KadConfig config, std::vector<KadShare> shares,
                 std::shared_ptr<KadHostCache> host_cache, std::uint64_t rng_seed,
                 std::shared_ptr<KadHostCache> server_cache)
    : config_(std::move(config)),
      shares_(std::move(shares)),
      host_cache_(std::move(host_cache)),
      server_cache_(std::move(server_cache)),
      rng_(rng_seed),
      routing_(KadId{}, RoutingConfig{config_.k, config_.stale_after_failures}) {
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    md5_to_share_[files::hex(shares_[i].content->md5())] = i;
  }
}

void KadNode::start() {
  const auto& profile = network().profile(id());
  util::Endpoint ep{profile.ip, profile.port};
  self_ = Contact{node_id_for(ep), ep, profile.behind_nat};
  routing_ = RoutingTable(self_.id, RoutingConfig{config_.k, config_.stale_after_failures});

  // Bootstrap: seed the table from the host cache and walk toward our
  // own id to fill the near buckets.
  if (host_cache_ != nullptr) {
    for (const auto& host : host_cache_->sample(rng_, config_.bootstrap_contacts)) {
      if (host == self_.addr) continue;
      routing_.observe(Contact{node_id_for(host), host, false});
    }
  }
  if (routing_.size() > 0) {
    start_lookup(self_.id, LookupPurpose::kBootstrap, false);
  }
  // First publish pass shortly after joining, then on the republish timer.
  if (!shares_.empty()) {
    network().schedule_node(
        id(), sim::SimDuration::seconds(2 + static_cast<std::int64_t>(rng_.range(0, 8))),
        [this] { publish_pass(); });
  }
}

// ---------------------------------------------------------------------------
// Iterative lookups
// ---------------------------------------------------------------------------

std::uint64_t KadNode::start_lookup(const KadId& target, LookupPurpose purpose,
                                    bool find_value) {
  std::uint64_t lid = next_lookup_id_++;
  Lookup lookup;
  lookup.id = lid;
  lookup.target = target;
  lookup.purpose = purpose;
  lookup.find_value = find_value;
  seed_candidates(lookup);
  ++stats_.lookups_started;
  KadMetrics::get().lookups.add(1);
  auto [it, _] = lookups_.emplace(lid, std::move(lookup));
  step_lookup(it->second);
  // Deadline: whatever state the walk is in, declare it finished.
  network().schedule_node(id(), config_.lookup_timeout, [this, lid] {
    if (lookups_.count(lid) != 0) finish_lookup(lid);
  });
  return lid;
}

void KadNode::seed_candidates(Lookup& lookup) {
  for (const auto& c : routing_.closest(lookup.target, config_.k)) {
    merge_candidate(lookup, c);
  }
  if (lookup.candidates.size() < config_.k && host_cache_ != nullptr) {
    for (const auto& host : host_cache_->sample(rng_, config_.bootstrap_contacts)) {
      if (host == self_.addr) continue;
      merge_candidate(lookup, Contact{node_id_for(host), host, false});
    }
  }
}

void KadNode::merge_candidate(Lookup& lookup, const Contact& contact) {
  if (contact.id == self_.id || contact.firewalled) return;
  auto pos = std::lower_bound(
      lookup.candidates.begin(), lookup.candidates.end(), contact,
      [&](const Candidate& a, const Contact& b) {
        KadId da = a.contact.id ^ lookup.target, db = b.id ^ lookup.target;
        if (da != db) return da < db;
        return a.contact.id < b.id;
      });
  if (pos != lookup.candidates.end() && pos->contact.id == contact.id) return;
  lookup.candidates.insert(pos, Candidate{contact, Candidate::State::kFresh});
}

void KadNode::step_lookup(Lookup& lookup) {
  // Issue up to alpha parallel RPCs against the k best candidates.
  std::size_t window = std::min(config_.k, lookup.candidates.size());
  for (std::size_t i = 0; i < window && lookup.inflight < config_.alpha; ++i) {
    Candidate& cand = lookup.candidates[i];
    if (cand.state != Candidate::State::kFresh) continue;
    cand.state = Candidate::State::kInflight;
    ++lookup.inflight;
    KadPacket req = lookup.find_value
                        ? make_packet(FindValue{self_, lookup.target})
                        : make_packet(FindNode{self_, lookup.target});
    issue_rpc(cand.contact, std::move(req), lookup.id, 0);
  }
  if (lookup.inflight > 0) return;
  // Converged: every candidate in the k-window has answered or failed.
  for (std::size_t i = 0; i < window; ++i) {
    if (lookup.candidates[i].state == Candidate::State::kFresh) return;
  }
  finish_lookup(lookup.id);
}

void KadNode::finish_lookup(std::uint64_t lookup_id) {
  auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  Lookup lookup = std::move(it->second);
  lookups_.erase(it);
  ++stats_.lookups_completed;

  if (lookup.purpose == LookupPurpose::kPublish) {
    // STORE at the k closest nodes that answered.
    std::size_t sent = 0;
    for (const auto& cand : lookup.candidates) {
      if (sent >= config_.k) break;
      if (cand.state != Candidate::State::kDone) continue;
      issue_rpc(cand.contact, make_packet(Store{self_, lookup.publish_entries}),
                0, 0);
      ++stats_.stores_sent;
      ++sent;
    }
  } else if (lookup.purpose == LookupPurpose::kSearch) {
    auto sit = searches_.find(lookup.search_id);
    if (sit != searches_.end() && !sit->second.server_tried &&
        sit->second.results < config_.server_min_results &&
        server_cache_ != nullptr && server_cache_->size() > 0) {
      // DHT came up short: fall back to an index server.
      sit->second.server_tried = true;
      auto servers = server_cache_->sample(rng_, 1);
      if (!servers.empty()) {
        Contact server{node_id_for(servers[0]), servers[0], false};
        ++stats_.server_queries_sent;
        KadMetrics::get().server_queries.add(1);
        issue_rpc(server,
                  make_packet(ServerQuery{sit->second.id, sit->second.query}),
                  0, sit->second.id);
      }
    }
  }
}

void KadNode::rpc_failed(sim::ConnId conn, ConnState& state) {
  ++stats_.rpcs_failed;
  KadMetrics::get().rpcs_failed.add(1);
  routing_.fail(state.target.id);
  std::uint64_t lookup_id = state.lookup_id;
  KadId target_id = state.target.id;
  conns_.erase(conn);
  auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  Lookup& lookup = it->second;
  for (auto& cand : lookup.candidates) {
    if (cand.contact.id == target_id &&
        cand.state == Candidate::State::kInflight) {
      cand.state = Candidate::State::kFailed;
      if (lookup.inflight > 0) --lookup.inflight;
      break;
    }
  }
  step_lookup(lookup);
}

// ---------------------------------------------------------------------------
// RPC plumbing
// ---------------------------------------------------------------------------

void KadNode::issue_rpc(const Contact& target, KadPacket request,
                        std::uint64_t lookup_id, std::uint64_t search_id) {
  ++stats_.rpcs_sent;
  KadMetrics::get().rpcs_sent.add(1);
  auto target_node = network().lookup(target.addr);
  if (!target_node) {
    // Dead endpoint: count the liveness failure asynchronously so the
    // lookup state machine never re-enters from inside issue_rpc.
    KadId target_id = target.id;
    network().schedule_node(
        id(), sim::SimDuration::millis(1), [this, target_id, lookup_id] {
          ++stats_.rpcs_failed;
          KadMetrics::get().rpcs_failed.add(1);
          routing_.fail(target_id);
          auto it = lookups_.find(lookup_id);
          if (it == lookups_.end()) return;
          for (auto& cand : it->second.candidates) {
            if (cand.contact.id == target_id &&
                cand.state == Candidate::State::kInflight) {
              cand.state = Candidate::State::kFailed;
              if (it->second.inflight > 0) --it->second.inflight;
              break;
            }
          }
          step_lookup(it->second);
        });
    return;
  }
  sim::ConnId conn = network().connect(id(), *target_node);
  ConnState state;
  state.kind = ConnKind::kRpcOut;
  state.request = std::move(request);
  state.target = target;
  state.lookup_id = lookup_id;
  state.search_id = search_id;
  conns_.emplace(conn, std::move(state));
  // Watchdog: a fault-dropped request or reply would otherwise pin this
  // connection (and a lookup slot) open forever.
  network().schedule_node(id(), config_.lookup_timeout, [this, conn] {
    auto it = conns_.find(conn);
    if (it == conns_.end() || it->second.replied) return;
    network().close(conn, id());
    rpc_failed(conn, it->second);
  });
}

void KadNode::send_pkt(sim::ConnId conn, const KadPacket& pkt) {
  network().send(conn, id(), serialize(pkt));
}

void KadNode::on_connection_open(sim::ConnId conn, sim::NodeId peer,
                                 bool initiated) {
  (void)peer;
  if (!initiated) {
    conns_.emplace(conn, ConnState{});  // kIn by default
    return;
  }
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  if (state.kind == ConnKind::kRpcOut) {
    send_pkt(conn, state.request);
  } else if (state.kind == ConnKind::kTransferOut) {
    auto dit = pending_downloads_.find(state.download_id);
    if (dit == pending_downloads_.end()) {
      network().close(conn, id());
      conns_.erase(it);
      return;
    }
    dit->second.transfer_started = true;
    network().send(conn, id(), make_get(dit->second.entry.md5));
  }
}

void KadNode::on_connection_failed(sim::ConnId conn, sim::NodeId target) {
  (void)target;
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  if (it->second.kind == ConnKind::kTransferOut) {
    std::uint64_t did = it->second.download_id;
    conns_.erase(it);
    fail_download(did, "connect failed");
    return;
  }
  rpc_failed(conn, it->second);
}

void KadNode::on_connection_closed(sim::ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  if (it->second.kind == ConnKind::kTransferOut) {
    std::uint64_t did = it->second.download_id;
    conns_.erase(it);
    fail_download(did, "connection closed");
    return;
  }
  if (it->second.kind == ConnKind::kRpcOut && !it->second.replied) {
    rpc_failed(conn, it->second);
    return;
  }
  conns_.erase(it);
}

void KadNode::on_message(sim::ConnId conn, const util::Payload& payload) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  util::ByteView wire{payload.data(), payload.size()};

  if (state.kind == ConnKind::kTransferOut) {
    auto response = parse_response(wire);
    std::uint64_t did = state.download_id;
    network().close(conn, id());
    conns_.erase(it);
    auto dit = pending_downloads_.find(did);
    if (dit == pending_downloads_.end()) return;
    if (!response || response->status != 200) {
      fail_download(did, response ? "not found" : "malformed response");
      return;
    }
    PendingDownload download = std::move(dit->second);
    pending_downloads_.erase(dit);
    ++stats_.downloads_ok;
    if (download_callback_) {
      KadDownloadOutcome outcome;
      outcome.request_id = did;
      outcome.success = true;
      outcome.path = download.entry.filename;
      outcome.content = std::move(response->body);
      outcome.source = download.entry.owner;
      download_callback_(outcome);
    }
    return;
  }

  auto pkt = parse(wire);
  if (!pkt) {
    if (state.kind == ConnKind::kIn) {
      // First message on an accepted connection may be a transfer GET.
      if (auto md5 = parse_get(wire)) {
        handle_transfer_request(conn, wire);
        return;
      }
    }
    ++stats_.dropped_malformed;
    KadMetrics::get().dropped_malformed.add(1);
    bool awaiting_reply = state.kind == ConnKind::kRpcOut && !state.replied;
    if (awaiting_reply) {
      network().close(conn, id());
      rpc_failed(conn, state);
    } else {
      network().close(conn, id());
      conns_.erase(it);
    }
    return;
  }

  if (state.kind == ConnKind::kRpcOut) {
    handle_reply(conn, state, *pkt);
  } else {
    handle_request(conn, *pkt);
  }
}

void KadNode::handle_request(sim::ConnId conn, const KadPacket& pkt) {
  OBS_SPAN("kad.handle_request");
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Ping>) {
          if (!p.sender.firewalled) routing_.observe(p.sender);
          send_pkt(conn, make_packet(Pong{self_}));
        } else if constexpr (std::is_same_v<T, FindNode>) {
          if (!p.sender.firewalled) routing_.observe(p.sender);
          ++stats_.finds_handled;
          KadMetrics::get().finds_handled.add(1);
          send_pkt(conn,
                   make_packet(FindNodeReply{routing_.closest(p.target, config_.k)}));
        } else if constexpr (std::is_same_v<T, FindValue>) {
          if (!p.sender.firewalled) routing_.observe(p.sender);
          ++stats_.finds_handled;
          KadMetrics::get().finds_handled.add(1);
          FindValueReply reply;
          auto sit = store_.find(p.key);
          if (sit != store_.end()) {
            std::size_t n = std::min(sit->second.size(), config_.reply_entries);
            reply.entries.assign(sit->second.begin(),
                                 sit->second.begin() + static_cast<std::ptrdiff_t>(n));
          }
          reply.contacts = routing_.closest(p.key, config_.k);
          send_pkt(conn, make_packet(std::move(reply)));
          if (observe_callback_) {
            KadObservation obs;
            obs.kind = KadObservation::Kind::kQuery;
            obs.at = network().now();
            obs.keyword = p.key;
            obs.peer = p.sender.addr;
            obs.peer_firewalled = p.sender.firewalled;
            observe_callback_(obs);
          }
        } else if constexpr (std::is_same_v<T, Store>) {
          if (!p.sender.firewalled) routing_.observe(p.sender);
          ++stats_.stores_received;
          KadMetrics::get().stores_received.add(1);
          std::uint32_t stored = 0;
          for (const auto& entry : p.entries) {
            auto& slot = store_[entry.keyword];
            auto existing = std::find_if(
                slot.begin(), slot.end(), [&](const SourceEntry& e) {
                  return e.owner == entry.owner && e.md5 == entry.md5;
                });
            if (existing != slot.end()) {
              *existing = entry;
              ++stored;
            } else if (slot.size() < config_.store_capacity) {
              slot.push_back(entry);
              ++stored;
              ++stats_.entries_stored;
              KadMetrics::get().entries_stored.add(1);
            }
            if (observe_callback_) {
              KadObservation obs;
              obs.kind = KadObservation::Kind::kStore;
              obs.at = network().now();
              obs.keyword = entry.keyword;
              obs.filename = entry.filename;
              obs.size = entry.size;
              obs.md5 = entry.md5;
              obs.peer = p.sender.addr;
              obs.peer_firewalled = p.sender.firewalled;
              observe_callback_(obs);
            }
          }
          send_pkt(conn, make_packet(StoreReply{stored}));
        } else {
          // Replies and server verbs are not valid requests here.
          ++stats_.dropped_malformed;
          KadMetrics::get().dropped_malformed.add(1);
          network().close(conn, id());
          conns_.erase(conn);
        }
      },
      pkt.payload);
}

void KadNode::handle_reply(sim::ConnId conn, ConnState& state,
                           const KadPacket& pkt) {
  state.replied = true;
  std::uint64_t lookup_id = state.lookup_id;
  std::uint64_t search_id = state.search_id;
  Contact target = state.target;
  network().close(conn, id());
  conns_.erase(conn);

  bool ok = false;
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Pong>) {
          ok = true;
        } else if constexpr (std::is_same_v<T, FindNodeReply>) {
          ok = true;
          auto it = lookups_.find(lookup_id);
          if (it != lookups_.end()) {
            for (const auto& c : p.contacts) merge_candidate(it->second, c);
          }
        } else if constexpr (std::is_same_v<T, FindValueReply>) {
          ok = true;
          auto it = lookups_.find(lookup_id);
          if (it != lookups_.end()) {
            for (const auto& c : p.contacts) merge_candidate(it->second, c);
            if (it->second.purpose == LookupPurpose::kSearch) {
              deliver_entries(it->second.search_id, p.entries);
            }
          }
        } else if constexpr (std::is_same_v<T, StoreReply>) {
          ok = true;
        } else if constexpr (std::is_same_v<T, ServerQueryReply>) {
          ok = true;
          deliver_entries(search_id, p.entries);
        }
      },
      pkt.payload);

  if (!ok) {
    // Wrong packet type for a reply: liveness failure.
    ++stats_.rpcs_failed;
    KadMetrics::get().rpcs_failed.add(1);
    routing_.fail(target.id);
  } else {
    routing_.observe(target);
  }

  auto it = lookups_.find(lookup_id);
  if (it == lookups_.end()) return;
  Lookup& lookup = it->second;
  for (auto& cand : lookup.candidates) {
    if (cand.contact.id == target.id &&
        cand.state == Candidate::State::kInflight) {
      cand.state = ok ? Candidate::State::kDone : Candidate::State::kFailed;
      if (lookup.inflight > 0) --lookup.inflight;
      break;
    }
  }
  step_lookup(lookup);
}

// ---------------------------------------------------------------------------
// Searching
// ---------------------------------------------------------------------------

std::uint64_t KadNode::search(const std::string& query) {
  std::uint64_t sid = next_search_id_++;
  ++stats_.searches_sent;
  KadMetrics::get().searches_sent.add(1);
  Search s;
  s.id = sid;
  s.query = query;
  searches_.emplace(sid, std::move(s));

  auto tokens = util::keywords(query);
  std::string primary;
  for (const auto& t : tokens) {
    if (t.size() >= 3) {
      primary = t;
      break;
    }
  }
  if (primary.empty() && !tokens.empty()) primary = tokens.front();
  if (!primary.empty()) {
    std::uint64_t lid = start_lookup(keyword_id(primary), LookupPurpose::kSearch, true);
    auto lit = lookups_.find(lid);
    if (lit != lookups_.end()) lit->second.search_id = sid;
  }
  network().schedule_node(id(), config_.search_window, [this, sid] {
    searches_.erase(sid);
    if (search_end_callback_) search_end_callback_(sid);
  });
  return sid;
}

void KadNode::deliver_entries(std::uint64_t search_id,
                              const std::vector<SourceEntry>& entries) {
  auto it = searches_.find(search_id);
  if (it == searches_.end()) return;
  Search& s = it->second;
  for (const auto& entry : entries) {
    if (!util::keyword_match(s.query, entry.filename)) continue;
    auto key = std::make_pair(entry.owner.str(), files::hex(entry.md5));
    if (!s.seen.insert(key).second) continue;
    ++s.results;
    ++stats_.results_received;
    KadMetrics::get().results_received.add(1);
    if (result_callback_) {
      result_callback_(KadSearchEvent{s.id, entry, network().now()});
    }
  }
}

// ---------------------------------------------------------------------------
// Publishing
// ---------------------------------------------------------------------------

void KadNode::publish_pass() {
  // Group this node's sources by keyword, then walk each keyword's
  // neighborhood and STORE (staggered to smooth the connection burst).
  std::map<KadId, std::vector<SourceEntry>> by_keyword;
  for (const auto& share : shares_) {
    std::string filename = basename_of(share.path);
    SourceEntry entry;
    entry.filename = filename;
    entry.size = share.content->size();
    entry.md5 = share.content->md5();
    entry.owner = self_.addr;
    entry.firewalled = self_.firewalled;
    for (const auto& token : publish_tokens(filename, config_.publish_keywords)) {
      entry.keyword = keyword_id(token);
      by_keyword[entry.keyword].push_back(entry);
    }
  }
  std::int64_t stagger_ms = 0;
  for (auto& [keyword, entries] : by_keyword) {
    network().schedule_node(
        id(), sim::SimDuration::millis(stagger_ms),
        [this, keyword = keyword, entries = std::move(entries)]() mutable {
          std::uint64_t lid =
              start_lookup(keyword, LookupPurpose::kPublish, false);
          auto it = lookups_.find(lid);
          if (it != lookups_.end()) {
            it->second.publish_entries = std::move(entries);
          }
        });
    stagger_ms += 500;
  }
  network().schedule_node(id(), sim::SimDuration::millis(stagger_ms + 1000),
                          [this] { register_at_server(); });
  network().schedule_node(
      id(),
      config_.republish_interval +
          sim::SimDuration::seconds(static_cast<std::int64_t>(rng_.range(0, 60))),
      [this] { publish_pass(); });
}

void KadNode::register_at_server() {
  if (server_cache_ == nullptr || server_cache_->size() == 0 || shares_.empty()) {
    return;
  }
  auto servers = server_cache_->sample(rng_, 1);
  if (servers.empty()) return;
  ServerRegister reg;
  reg.owner = self_.addr;
  reg.firewalled = self_.firewalled;
  for (const auto& share : shares_) {
    std::string filename = basename_of(share.path);
    SourceEntry entry;
    auto tokens = publish_tokens(filename, 1);
    entry.keyword = tokens.empty() ? KadId{} : keyword_id(tokens.front());
    entry.filename = filename;
    entry.size = share.content->size();
    entry.md5 = share.content->md5();
    entry.owner = self_.addr;
    entry.firewalled = self_.firewalled;
    reg.entries.push_back(std::move(entry));
  }
  Contact server{node_id_for(servers[0]), servers[0], false};
  issue_rpc(server, make_packet(std::move(reg)), 0, 0);
}

// ---------------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------------

std::uint64_t KadNode::download(const SourceEntry& entry) {
  std::uint64_t did = next_download_id_++;
  pending_downloads_.emplace(did, PendingDownload{did, entry, false});
  if (entry.firewalled) {
    network().schedule_node(id(), sim::SimDuration::millis(1),
                            [this, did] { fail_download(did, "firewalled"); });
    return did;
  }
  auto target = network().lookup(entry.owner);
  if (!target) {
    network().schedule_node(id(), sim::SimDuration::millis(1),
                            [this, did] { fail_download(did, "unreachable"); });
    return did;
  }
  sim::ConnId conn = network().connect(id(), *target);
  ConnState state;
  state.kind = ConnKind::kTransferOut;
  state.download_id = did;
  conns_.emplace(conn, std::move(state));
  network().schedule_node(id(), config_.download_timeout, [this, did, conn] {
    if (pending_downloads_.count(did) == 0) return;
    if (conns_.count(conn) != 0) {
      network().close(conn, id());
      conns_.erase(conn);
    }
    fail_download(did, "timeout");
  });
  return did;
}

void KadNode::handle_transfer_request(sim::ConnId conn, util::ByteView wire) {
  auto md5 = parse_get(wire);
  if (!md5) return;
  auto it = md5_to_share_.find(files::hex(*md5));
  if (it == md5_to_share_.end()) {
    network().send(conn, id(), make_response(404, nullptr));
    return;
  }
  ++stats_.uploads_served;
  KadMetrics::get().uploads_served.add(1);
  network().send(conn, id(),
                 make_response(200, &shares_[it->second].content->bytes()));
}

void KadNode::fail_download(std::uint64_t id_, const std::string& error) {
  auto it = pending_downloads_.find(id_);
  if (it == pending_downloads_.end()) return;
  PendingDownload download = std::move(it->second);
  pending_downloads_.erase(it);
  ++stats_.downloads_failed;
  if (download_callback_) {
    KadDownloadOutcome outcome;
    outcome.request_id = id_;
    outcome.success = false;
    outcome.path = download.entry.filename;
    outcome.source = download.entry.owner;
    outcome.error = error;
    download_callback_(outcome);
  }
}

std::size_t KadNode::indexed_sources() const {
  std::size_t n = 0;
  for (const auto& [keyword, entries] : store_) n += entries.size();
  return n;
}

// ---------------------------------------------------------------------------
// Index server
// ---------------------------------------------------------------------------

KadIndexServer::KadIndexServer(std::string alias, std::size_t reply_entries)
    : alias_(std::move(alias)), reply_entries_(reply_entries) {}

void KadIndexServer::on_message(sim::ConnId conn, const util::Payload& payload) {
  auto pkt = parse({payload.data(), payload.size()});
  if (!pkt) {
    network().close(conn, id());
    return;
  }
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, ServerRegister>) {
          OwnerSources sources;
          sources.firewalled = p.firewalled;
          sources.entries = p.entries;
          index_[p.owner.str()] = std::move(sources);
          network().send(conn, id(),
                         serialize(make_packet(StoreReply{
                             static_cast<std::uint32_t>(p.entries.size())})));
        } else if constexpr (std::is_same_v<T, ServerQuery>) {
          ServerQueryReply reply;
          reply.query_id = p.query_id;
          for (const auto& [owner, sources] : index_) {
            if (reply.entries.size() >= reply_entries_) break;
            for (const auto& entry : sources.entries) {
              if (reply.entries.size() >= reply_entries_) break;
              if (util::keyword_match(p.query, entry.filename)) {
                reply.entries.push_back(entry);
              }
            }
          }
          network().send(conn, id(), serialize(make_packet(std::move(reply))));
        } else if constexpr (std::is_same_v<T, Ping>) {
          network().send(conn, id(),
                         serialize(make_packet(Pong{Contact{}})));
        } else {
          network().close(conn, id());
        }
      },
      pkt->payload);
}

std::size_t KadIndexServer::sources() const {
  std::size_t n = 0;
  for (const auto& [owner, sources] : index_) n += sources.entries.size();
  return n;
}

}  // namespace p2p::kad
