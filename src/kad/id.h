// 128-bit KAD identifier space.
//
// eDonkey's Kademlia overlay (Overnet/KAD) addresses both nodes and
// keywords in one 128-bit space: a node's id is the MD5 of its identity,
// a keyword's id is the MD5 of the lowercased keyword, and "closeness" is
// the XOR metric — d(a,b) = a XOR b interpreted as a 128-bit integer.
// XOR is a genuine metric (identity, symmetry, triangle inequality) and
// unidirectional: for any a and distance d there is exactly one b with
// d(a,b) = d, which is what makes iterative lookups converge.
#pragma once

#include <bit>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "files/hash.h"
#include "util/bytes.h"
#include "util/ip.h"
#include "util/strings.h"

namespace p2p::kad {

/// A 128-bit identifier, big-endian (hi holds the most significant bits).
struct KadId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool is_zero() const { return hi == 0 && lo == 0; }

  friend KadId operator^(const KadId& a, const KadId& b) {
    return KadId{a.hi ^ b.hi, a.lo ^ b.lo};
  }
  /// Numeric order of the 128-bit value; XOR distances compare with this.
  auto operator<=>(const KadId&) const = default;
};

/// Pack the first 16 digest bytes big-endian into a KadId.
inline KadId id_from_digest(const files::Digest16& d) {
  KadId id;
  for (int i = 0; i < 8; ++i) id.hi = id.hi << 8 | d[static_cast<std::size_t>(i)];
  for (int i = 8; i < 16; ++i) id.lo = id.lo << 8 | d[static_cast<std::size_t>(i)];
  return id;
}

inline files::Digest16 digest_of(const KadId& id) {
  files::Digest16 d{};
  for (int i = 0; i < 8; ++i) d[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(id.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) d[static_cast<std::size_t>(8 + i)] =
      static_cast<std::uint8_t>(id.lo >> (56 - 8 * i));
  return d;
}

/// Keyword id: MD5 of the lowercased keyword (eDonkey hashes the search
/// term to decide which nodes index it).
inline KadId keyword_id(std::string_view keyword) {
  std::string lower = util::to_lower(keyword);
  return id_from_digest(files::md5(
      {reinterpret_cast<const std::uint8_t*>(lower.data()), lower.size()}));
}

/// Node id: MD5 of the advertised endpoint. Stable across churn
/// incarnations of the same host, which keeps routing-table entries
/// meaningful after a peer restarts.
inline KadId node_id_for(const util::Endpoint& ep) {
  std::string s = ep.str();
  return id_from_digest(
      files::md5({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}));
}

/// Index of the k-bucket a distance falls into: 127 for the far half of
/// the space down to 0 for the nearest non-zero distance. -1 for
/// distance zero (a node never buckets itself).
inline int bucket_index(const KadId& distance) {
  if (distance.hi != 0) {
    return 127 - std::countl_zero(distance.hi);
  }
  if (distance.lo != 0) {
    return 63 - std::countl_zero(distance.lo);
  }
  return -1;
}

inline std::string to_hex(const KadId& id) {
  auto d = digest_of(id);
  return util::to_hex(d);
}

}  // namespace p2p::kad
