#include "trace/codec.h"

#include <algorithm>
#include <bit>

namespace p2p::trace {

namespace {

void encode_i64(util::ByteWriter& w, std::int64_t v) {
  w.u64le(static_cast<std::uint64_t>(v));
}

std::int64_t decode_i64(util::ByteReader& r) {
  return static_cast<std::int64_t>(r.u64le());
}

void encode_double(util::ByteWriter& w, double v) {
  w.u64le(std::bit_cast<std::uint64_t>(v));
}

double decode_double(util::ByteReader& r) {
  return std::bit_cast<double>(r.u64le());
}

// Record flags, bit-packed.
constexpr std::uint8_t kFirewalled = 1u << 0;
constexpr std::uint8_t kDownloadAttempted = 1u << 1;
constexpr std::uint8_t kDownloaded = 1u << 2;
constexpr std::uint8_t kInfected = 1u << 3;

}  // namespace

std::string_view to_string(TraceError e) {
  switch (e) {
    case TraceError::kNone: return "ok";
    case TraceError::kIoError: return "cannot read file";
    case TraceError::kEmpty: return "empty file";
    case TraceError::kBadMagic: return "not a trace file (bad magic)";
    case TraceError::kBadVersion: return "unsupported trace version";
    case TraceError::kCorruptHeader: return "corrupt trace header";
    case TraceError::kCorruptManifest: return "corrupt segment manifest";
  }
  return "unknown error";
}

void encode_header_body(util::ByteWriter& w, const TraceHeader& header) {
  w.lp_str(header.network);
  w.u64le(header.config_hash);
  w.u64le(header.seed);
  encode_i64(w, header.crawl_duration_ms);
  w.varint(header.meta.size());
  for (const auto& [key, value] : header.meta) {
    w.lp_str(key);
    w.lp_str(value);
  }
}

TraceHeader decode_header_body(util::ByteReader& r) {
  TraceHeader h;
  h.network = r.lp_str();
  h.config_hash = r.u64le();
  h.seed = r.u64le();
  h.crawl_duration_ms = decode_i64(r);
  std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.lp_str();
    std::string value = r.lp_str();
    h.meta.emplace_back(std::move(key), std::move(value));
  }
  if (!r.empty()) throw util::BufferUnderflow{};  // trailing header garbage
  return h;
}

void encode_record(util::ByteWriter& w, const crawler::ResponseRecord& rec) {
  w.varint(rec.id);
  w.lp_str(rec.network);
  w.varint(static_cast<std::uint64_t>(rec.at.millis()));
  w.lp_str(rec.query);
  w.lp_str(rec.query_category);
  w.lp_str(rec.filename);
  w.varint(rec.size);
  w.u32le(rec.source_ip.value());
  w.u16le(rec.source_port);
  w.lp_str(rec.source_key);
  std::uint8_t flags = 0;
  if (rec.source_firewalled) flags |= kFirewalled;
  if (rec.download_attempted) flags |= kDownloadAttempted;
  if (rec.downloaded) flags |= kDownloaded;
  if (rec.infected) flags |= kInfected;
  w.u8(flags);
  w.lp_str(rec.content_key);
  w.u32le(rec.strain);
  w.lp_str(rec.strain_name);
  w.u8(static_cast<std::uint8_t>(rec.type_by_magic));
}

crawler::ResponseRecord decode_record(util::ByteReader& r) {
  crawler::ResponseRecord rec;
  rec.id = r.varint();
  rec.network = r.lp_str();
  rec.at = util::SimTime::at_millis(static_cast<std::int64_t>(r.varint()));
  rec.query = r.lp_str();
  rec.query_category = r.lp_str();
  rec.filename = r.lp_str();
  rec.type_by_name = files::classify_extension(rec.filename);
  rec.size = r.varint();
  rec.source_ip = util::Ipv4{r.u32le()};
  rec.source_port = r.u16le();
  rec.source_key = r.lp_str();
  std::uint8_t flags = r.u8();
  rec.source_firewalled = (flags & kFirewalled) != 0;
  rec.download_attempted = (flags & kDownloadAttempted) != 0;
  rec.downloaded = (flags & kDownloaded) != 0;
  rec.infected = (flags & kInfected) != 0;
  rec.content_key = r.lp_str();
  rec.strain = r.u32le();
  rec.strain_name = r.lp_str();
  rec.type_by_magic = static_cast<files::FileType>(r.u8());
  return rec;
}

void encode_summary(util::ByteWriter& w, const StudySummary& summary) {
  w.u64le(summary.events_executed);
  w.u64le(summary.messages_delivered);
  w.u64le(summary.bytes_delivered);
  w.u64le(summary.churn_joins);
  w.u64le(summary.churn_leaves);
  const auto& s = summary.crawl_stats;
  w.u64le(s.queries_sent);
  w.u64le(s.hits);
  w.u64le(s.responses);
  w.u64le(s.study_responses);
  w.u64le(s.downloads_started);
  w.u64le(s.downloads_ok);
  w.u64le(s.downloads_failed);
  w.u64le(s.bytes_downloaded);
  w.u64le(s.distinct_contents);
  w.u64le(s.downloads_abandoned);
  w.u64le(s.retries_spent);
  w.u64le(s.hosts_quarantined);
  w.u64le(s.scan_timeouts);

  w.u8(summary.faults_enabled ? 1 : 0);
  const auto& f = summary.fault_counters;
  w.u64le(f.messages_dropped);
  w.u64le(f.messages_delayed);
  w.u64le(f.messages_duplicated);
  w.u64le(f.payloads_corrupted);
  w.u64le(f.peer_crashes);
  w.u64le(f.peer_restarts);
  w.u64le(f.downloads_stalled);
  w.u64le(f.scan_timeouts);

  const auto& m = summary.metrics;
  w.varint(m.counters.size());
  for (const auto& c : m.counters) {
    w.lp_str(c.name);
    w.u64le(c.value);
  }
  w.varint(m.gauges.size());
  for (const auto& g : m.gauges) {
    w.lp_str(g.name);
    encode_i64(w, g.value);
    encode_i64(w, g.max);
  }
  w.varint(m.histograms.size());
  for (const auto& h : m.histograms) {
    w.lp_str(h.name);
    w.u8(static_cast<std::uint8_t>(h.unit));
    w.u8(h.wall_clock ? 1 : 0);
    w.u64le(h.count);
    encode_i64(w, h.sum);
    encode_i64(w, h.min);
    encode_i64(w, h.max);
    encode_double(w, h.p50);
    encode_double(w, h.p90);
    encode_double(w, h.p99);
    w.varint(h.buckets.size());
    for (const auto& [lower, count] : h.buckets) {
      encode_i64(w, lower);
      w.u64le(count);
    }
  }

  // Optional timeseries tail. Absent on runs that recorded none, so those
  // summaries stay byte-identical to pre-timeseries traces; decode detects
  // it by the buffer not being exhausted after the histograms.
  const auto& ts = summary.timeseries;
  if (ts.window_ms <= 0) return;
  encode_i64(w, ts.window_ms);
  w.u64le(ts.windows_dropped);
  w.varint(ts.windows.size());
  for (const auto& win : ts.windows) {
    encode_i64(w, win.end_ms);
    w.varint(win.counters.size());
    for (const auto& [name, delta] : win.counters) {
      w.lp_str(name);
      w.u64le(delta);
    }
    w.varint(win.gauges.size());
    for (const auto& [name, value] : win.gauges) {
      w.lp_str(name);
      encode_i64(w, value);
    }
  }
}

StudySummary decode_summary(util::ByteReader& r) {
  StudySummary summary;
  summary.events_executed = r.u64le();
  summary.messages_delivered = r.u64le();
  summary.bytes_delivered = r.u64le();
  summary.churn_joins = r.u64le();
  summary.churn_leaves = r.u64le();
  auto& s = summary.crawl_stats;
  s.queries_sent = r.u64le();
  s.hits = r.u64le();
  s.responses = r.u64le();
  s.study_responses = r.u64le();
  s.downloads_started = r.u64le();
  s.downloads_ok = r.u64le();
  s.downloads_failed = r.u64le();
  s.bytes_downloaded = r.u64le();
  s.distinct_contents = r.u64le();
  s.downloads_abandoned = r.u64le();
  s.retries_spent = r.u64le();
  s.hosts_quarantined = r.u64le();
  s.scan_timeouts = r.u64le();

  summary.faults_enabled = r.u8() != 0;
  auto& f = summary.fault_counters;
  f.messages_dropped = r.u64le();
  f.messages_delayed = r.u64le();
  f.messages_duplicated = r.u64le();
  f.payloads_corrupted = r.u64le();
  f.peer_crashes = r.u64le();
  f.peer_restarts = r.u64le();
  f.downloads_stalled = r.u64le();
  f.scan_timeouts = r.u64le();

  auto& m = summary.metrics;
  // Reservations are clamped: a count field large enough to matter would
  // only survive the block CRC by collision, and must not drive an
  // allocation before the per-element reads run out of buffer.
  constexpr std::uint64_t kReserveCap = 4096;
  std::uint64_t nc = r.varint();
  m.counters.reserve(std::min(nc, kReserveCap));
  for (std::uint64_t i = 0; i < nc; ++i) {
    obs::MetricsSnapshot::CounterSample c;
    c.name = r.lp_str();
    c.value = r.u64le();
    m.counters.push_back(std::move(c));
  }
  std::uint64_t ng = r.varint();
  m.gauges.reserve(std::min(ng, kReserveCap));
  for (std::uint64_t i = 0; i < ng; ++i) {
    obs::MetricsSnapshot::GaugeSample g;
    g.name = r.lp_str();
    g.value = decode_i64(r);
    g.max = decode_i64(r);
    m.gauges.push_back(std::move(g));
  }
  std::uint64_t nh = r.varint();
  m.histograms.reserve(std::min(nh, kReserveCap));
  for (std::uint64_t i = 0; i < nh; ++i) {
    obs::MetricsSnapshot::HistogramSample h;
    h.name = r.lp_str();
    h.unit = static_cast<obs::Unit>(r.u8());
    h.wall_clock = r.u8() != 0;
    h.count = r.u64le();
    h.sum = decode_i64(r);
    h.min = decode_i64(r);
    h.max = decode_i64(r);
    h.p50 = decode_double(r);
    h.p90 = decode_double(r);
    h.p99 = decode_double(r);
    std::uint64_t nb = r.varint();
    h.buckets.reserve(std::min(nb, kReserveCap));
    for (std::uint64_t j = 0; j < nb; ++j) {
      std::int64_t lower = decode_i64(r);
      std::uint64_t count = r.u64le();
      h.buckets.emplace_back(lower, count);
    }
    m.histograms.push_back(std::move(h));
  }

  if (!r.empty()) {
    auto& ts = summary.timeseries;
    ts.window_ms = decode_i64(r);
    ts.windows_dropped = r.u64le();
    std::uint64_t nw = r.varint();
    ts.windows.reserve(std::min(nw, kReserveCap));
    for (std::uint64_t i = 0; i < nw; ++i) {
      obs::TimeSeries::Window win;
      win.end_ms = decode_i64(r);
      std::uint64_t ncnt = r.varint();
      win.counters.reserve(std::min(ncnt, kReserveCap));
      for (std::uint64_t j = 0; j < ncnt; ++j) {
        std::string name = r.lp_str();
        std::uint64_t delta = r.u64le();
        win.counters.emplace_back(std::move(name), delta);
      }
      std::uint64_t ngg = r.varint();
      win.gauges.reserve(std::min(ngg, kReserveCap));
      for (std::uint64_t j = 0; j < ngg; ++j) {
        std::string name = r.lp_str();
        std::int64_t value = decode_i64(r);
        win.gauges.emplace_back(std::move(name), value);
      }
      ts.windows.push_back(std::move(win));
    }
  }
  return summary;
}

void encode_segment_index(util::ByteWriter& w, const SegmentIndex& index) {
  w.varint(index.window_index);
  encode_i64(w, index.window_ms);
  w.varint(index.records);
  w.varint(index.honeypot_records);
  encode_i64(w, index.min_at_ms);
  encode_i64(w, index.max_at_ms);
  w.varint(index.kind_counts.size());
  for (const auto& [kind, count] : index.kind_counts) {
    w.u8(kind);
    w.varint(count);
  }
  w.varint(index.block_offsets.size());
  for (std::uint64_t offset : index.block_offsets) w.varint(offset);
}

SegmentIndex decode_segment_index(util::ByteReader& r) {
  SegmentIndex index;
  index.window_index = r.varint();
  index.window_ms = decode_i64(r);
  index.records = r.varint();
  index.honeypot_records = r.varint();
  index.min_at_ms = decode_i64(r);
  index.max_at_ms = decode_i64(r);
  std::uint64_t kinds = r.varint();
  index.kind_counts.reserve(std::min<std::uint64_t>(kinds, 256));
  for (std::uint64_t i = 0; i < kinds; ++i) {
    std::uint8_t kind = r.u8();
    std::uint64_t count = r.varint();
    index.kind_counts.emplace_back(kind, count);
  }
  std::uint64_t offsets = r.varint();
  index.block_offsets.reserve(std::min<std::uint64_t>(offsets, 4096));
  for (std::uint64_t i = 0; i < offsets; ++i) {
    index.block_offsets.push_back(r.varint());
  }
  return index;
}

}  // namespace p2p::trace
