// On-disk format of the crawl trace store (see DESIGN.md "Trace store").
//
// A trace file decouples the paper's two phases: record a month-scale crawl
// once, then re-run every offline analysis against the file in milliseconds.
// The format is append-only and framed in CRC32-checked blocks, so a
// truncated or bit-flipped file loses at most the damaged blocks — never
// the whole capture.
//
// Layout (all fixed-width integers little-endian, `varint` = unsigned
// LEB128, `lp_str` = varint length + bytes):
//
//   prologue   u32 magic "P2PT" | u16 version | u16 reserved(0)
//              u32 header_len (bytes of header body; capped)
//   header     lp_str network | u64 config_hash | u64 seed
//   body       u64 crawl_duration_ms
//              varint meta_count, then meta_count x (lp_str key, lp_str val)
//   header crc u32 crc32(header body)
//   blocks     until EOF: u8 kind | varint payload_len
//              | u32 crc32(kind byte + payload) | payload
//
// Block kinds:
//   1 records  payload = varint count, then `count` encoded ResponseRecords
//   2 summary  payload = study counters + crawl stats + metrics snapshot
//              (what bench/study_cache persists beside the records)
//   other      skipped (forward compatibility)
//
// Versioning rules: `version` names the record schema. Any change to the
// record, header, or summary encoding bumps it; readers reject files whose
// version they don't implement (no silent partial decode). Truncation and
// corruption are detected per block via the payload CRC.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2p::trace {

inline constexpr std::uint32_t kTraceMagic = 0x54503250;  // "P2PT" on disk
/// v2: summary block gained the crawler degradation counters and the
/// fault-injection record (crawler::CrawlStats tail + fault::FaultCounters),
/// and the block CRC now covers the kind byte — a bit-flipped kind reads as
/// a corrupt block instead of a silently skipped "unknown kind".
inline constexpr std::uint16_t kTraceVersion = 2;

/// Largest accepted header body / block payload. A corrupted length field
/// must never drive an allocation; anything larger is treated as corruption.
inline constexpr std::uint64_t kMaxHeaderBytes = 1u << 16;
inline constexpr std::uint64_t kMaxBlockBytes = 1u << 26;

enum class BlockKind : std::uint8_t {
  kRecords = 1,
  kSummary = 2,
  /// Segment-backend index footer (see DESIGN.md "Segmented trace storage"):
  /// record/kind counts, sim-time bounds, and per-records-block offsets for
  /// the segment file it closes. An ordinary CRC-framed block, so pre-3
  /// readers skip it as an unknown kind — no version bump, and a segment
  /// file stays a valid single-file trace.
  kSegmentIndex = 3,
  /// Segment-directory manifest body (MANIFEST files only): the segment
  /// window plus one entry per segment file.
  kManifest = 4,
};

/// Prologue magic of a segment-directory MANIFEST ("P2PS" on disk). The
/// manifest reuses the single-file header/block framing under its own magic
/// and version: a manifest is never mistaken for a trace, or vice versa.
inline constexpr std::uint32_t kManifestMagic = 0x53503250;
inline constexpr std::uint16_t kManifestVersion = 1;

/// Canonical extension of a segment directory ("capture.p2ps/"). The
/// storage factory routes any existing directory, or any path with this
/// suffix, to the segment backend.
inline constexpr std::string_view kSegmentDirSuffix = ".p2ps";

/// Study metadata stamped at the front of every trace file. Everything a
/// replay needs to know where the records came from — and for cache layers,
/// the config hash that detects staleness.
struct TraceHeader {
  std::uint16_t version = kTraceVersion;
  /// "limewire" or "openft" ("" when a file merges networks).
  std::string network;
  /// core::config_hash of the study that produced the capture (0 = unset).
  std::uint64_t config_hash = 0;
  std::uint64_t seed = 0;
  /// Configured crawl duration (the recorded sim-time span is derivable
  /// from the records themselves).
  std::int64_t crawl_duration_ms = 0;
  /// Free-form extension metadata, preserved in order.
  std::vector<std::pair<std::string, std::string>> meta;
};

/// Why a trace failed to open. Block-level damage is not an open error —
/// readers skip damaged blocks and report them via ReadStats.
enum class TraceError {
  kNone,
  kIoError,       // cannot open / read the file
  kEmpty,         // zero-length file
  kBadMagic,      // not a trace file
  kBadVersion,    // schema version this reader does not implement
  kCorruptHeader, // header truncated or CRC mismatch
  /// Segment backend only: the directory's MANIFEST is missing, truncated,
  /// or fails its CRCs. Unlike per-segment damage (contained, counted in
  /// ReadStats), a bad manifest is a hard open error — without it there is
  /// no trusted header, window, or segment order.
  kCorruptManifest,
};

[[nodiscard]] std::string_view to_string(TraceError e);

}  // namespace p2p::trace
