// Streaming trace reader with skip-corrupt-block recovery.
//
// Open errors (missing file, bad magic, wrong version, corrupt header) are
// terminal: error() is set and next() yields nothing. Block-level damage is
// not: a block whose CRC or decode fails is skipped (counted in stats), and
// a truncated tail ends the stream cleanly with stats().truncated_tail set.
// The reader never throws.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crawler/records.h"
#include "trace/codec.h"
#include "trace/storage.h"

namespace p2p::trace {

class TraceReader final : public StorageReader {
 public:
  /// Read from an open stream (not owned). The header is validated eagerly.
  explicit TraceReader(std::istream& in);
  /// Open `path`. error() is kIoError when the file cannot be opened.
  explicit TraceReader(const std::string& path);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] bool ok() const override { return error_ == TraceError::kNone; }
  [[nodiscard]] TraceError error() const override { return error_; }
  /// Human-readable open diagnosis ("" when ok).
  [[nodiscard]] const std::string& error_message() const override {
    return error_message_;
  }

  /// Valid when ok().
  [[nodiscard]] const TraceHeader& header() const override { return header_; }

  /// Pull the next record, advancing through blocks as needed. Returns
  /// false at end of stream (also on open error). Summary blocks
  /// encountered along the way are captured (see summary()).
  [[nodiscard]] bool next(crawler::ResponseRecord& out) override;

  /// The last summary block seen so far. Definitive once next() has
  /// returned false.
  [[nodiscard]] const std::optional<StudySummary>& summary() const override {
    return summary_;
  }

  [[nodiscard]] const ReadStats& stats() const override { return stats_; }

  /// The segment-index footer, when this file is a segment written by the
  /// segment backend (absent in plain single-file traces). Definitive once
  /// next() has returned false.
  [[nodiscard]] const std::optional<SegmentIndex>& segment_index() const {
    return segment_index_;
  }

 private:
  void open(std::istream& in);
  /// Load the next decodable records block into the cursor. Returns false
  /// at end of stream.
  bool advance_block();

  std::unique_ptr<std::ifstream> owned_in_;
  std::istream* in_ = nullptr;
  TraceError error_ = TraceError::kNone;
  std::string error_message_;
  TraceHeader header_;
  std::optional<StudySummary> summary_;
  std::optional<SegmentIndex> segment_index_;
  ReadStats stats_;
  bool done_ = false;

  // Decoded-records cursor over the current block.
  std::vector<crawler::ResponseRecord> block_records_;
  std::size_t block_pos_ = 0;
};

/// Everything in one call: header + all records + summary + stats. `error`
/// is the open error (block damage shows up in `stats`).
struct TraceData {
  TraceError error = TraceError::kNone;
  std::string error_message;
  TraceHeader header;
  std::optional<StudySummary> summary;
  std::vector<crawler::ResponseRecord> records;
  ReadStats stats;

  [[nodiscard]] bool ok() const { return error == TraceError::kNone; }
};

[[nodiscard]] TraceData read_trace_file(const std::string& path);

}  // namespace p2p::trace
