// The storage interface behind the trace store: every capture sink and
// every replay source is a StorageWriter / StorageReader, with two backends
// behind the vtable (see DESIGN.md "Segmented trace storage"):
//
//   single file   TraceWriter / TraceReader — the original `.p2pt` format,
//                 byte-for-byte unchanged (zero drift vs pre-interface
//                 builds). Right for captures that fit comfortably in one
//                 file and one pass.
//   segment dir   SegmentWriter / SegmentReader (`capture.p2ps/`) — fixed
//                 sim-time-window segment files, each a valid `.p2pt` with
//                 an index footer, under a MANIFEST. Corruption is
//                 contained per segment, and replay can fan segments out
//                 across a thread pool (core/replay.h).
//
// The factories below pick the backend from the path shape: an existing
// directory, or any path ending in ".p2ps", is a segment directory;
// everything else is a single file.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "crawler/records.h"
#include "trace/codec.h"

namespace p2p::trace {

/// Aggregate read health across a storage source. Single-file reads leave
/// the segment counters at zero.
struct ReadStats {
  std::uint64_t blocks_read = 0;
  /// Blocks dropped to a CRC mismatch or a decode failure inside a
  /// CRC-valid payload.
  std::uint64_t blocks_corrupt = 0;
  /// Blocks of a kind this reader does not know (skipped, preserved).
  std::uint64_t blocks_skipped = 0;
  std::uint64_t records_read = 0;
  std::uint64_t bytes_read = 0;
  /// The file (or a segment) ends mid-block (torn write / truncation).
  bool truncated_tail = false;
  /// Segment backend: segments streamed / dropped whole (missing file,
  /// unreadable header, or a header that contradicts the manifest).
  std::uint64_t segments_read = 0;
  std::uint64_t segments_corrupt = 0;

  [[nodiscard]] bool clean() const {
    return blocks_corrupt == 0 && segments_corrupt == 0 && !truncated_tail;
  }
};

/// Capture sink: a crawler::RecordSink that also persists the study summary
/// and reports its write counters. Close (or destroy) before relying on the
/// bytes; ok() goes false on any I/O failure.
class StorageWriter : public crawler::RecordSink {
 public:
  ~StorageWriter() override = default;

  /// Persist the summary so replay can reproduce the run's counters,
  /// metrics, and timeseries without re-running the study.
  virtual void write_summary(const StudySummary& summary) = 0;
  /// Flush everything. Idempotent; called by the destructor.
  virtual void close() = 0;

  [[nodiscard]] virtual bool ok() const = 0;
  [[nodiscard]] virtual std::uint64_t records_written() const = 0;
  [[nodiscard]] virtual std::uint64_t blocks_written() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;
  /// Segment files written (1 for the single-file backend).
  [[nodiscard]] virtual std::uint64_t segments_written() const = 0;
};

/// Streaming replay source. Open errors are terminal (ok() false, next()
/// yields nothing); block- and segment-level damage is contained and
/// reported via stats().
class StorageReader {
 public:
  virtual ~StorageReader() = default;

  [[nodiscard]] virtual bool ok() const = 0;
  [[nodiscard]] virtual TraceError error() const = 0;
  [[nodiscard]] virtual const std::string& error_message() const = 0;
  /// Valid when ok().
  [[nodiscard]] virtual const TraceHeader& header() const = 0;
  /// Pull the next record in stream order; false at end of stream.
  [[nodiscard]] virtual bool next(crawler::ResponseRecord& out) = 0;
  /// The capture's summary. For the single-file backend this is definitive
  /// only once next() has returned false; the segment backend knows it from
  /// the manifest up front.
  [[nodiscard]] virtual const std::optional<StudySummary>& summary() const = 0;
  [[nodiscard]] virtual const ReadStats& stats() const = 0;
};

/// True when `path` names (or will name) a segment directory: it exists as
/// a directory, or its final component ends in ".p2ps".
[[nodiscard]] bool is_segment_path(const std::string& path);

/// Writer/reader options spanning both backends. The segment window is
/// ignored by the single-file backend.
struct StorageOptions {
  /// Records per block (both backends frame records identically).
  std::size_t records_per_block = 256;
  /// Sim-time span of one segment file (segment backend only).
  std::int64_t segment_window_ms = 24 * 3'600'000ll;
};

/// Open a capture sink at `path`, routed by is_segment_path. Returns a
/// writer whose ok() is false when the file/directory cannot be created.
[[nodiscard]] std::unique_ptr<StorageWriter> open_storage_writer(
    const std::string& path, const TraceHeader& header,
    const StorageOptions& options = {});

/// Open a replay source at `path`, routed by is_segment_path. Never
/// returns null; check ok() for open errors.
[[nodiscard]] std::unique_ptr<StorageReader> open_storage_reader(
    const std::string& path);

}  // namespace p2p::trace
