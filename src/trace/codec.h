// Encoders/decoders for everything that lives inside a trace file: the
// header body, ResponseRecords, and the study summary block. One encoding,
// one fuzz surface — bench/study_cache and the sweep record/replay path all
// go through these functions.
#pragma once

#include "crawler/limewire_crawler.h"  // CrawlStats
#include "crawler/records.h"
#include "fault/fault.h"  // FaultCounters
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "trace/format.h"
#include "util/bytes.h"

namespace p2p::trace {

/// The non-record payload of a persisted study: the run counters and the
/// metrics snapshot that core::StudyResult carries beside its record log.
/// Stored in a summary block so a cached study replays byte-identically,
/// obs counters included.
struct StudySummary {
  std::uint64_t events_executed = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t churn_joins = 0;
  std::uint64_t churn_leaves = 0;
  crawler::CrawlStats crawl_stats;
  obs::MetricsSnapshot metrics;
  /// Fault-injection record (version 2): replaying a faulted trace reports
  /// the identical fault section without re-running the study.
  bool faults_enabled = false;
  fault::FaultCounters fault_counters;
  /// Windowed counter/gauge series (optional tail, written only when the
  /// run recorded one): replaying a trace reproduces the exact timeseries
  /// block without re-running the study.
  obs::TimeSeries timeseries;
};

// Header body (the bytes covered by the header CRC; the prologue fields are
// written by TraceWriter / checked by TraceReader).
void encode_header_body(util::ByteWriter& w, const TraceHeader& header);
/// Throws util::BufferUnderflow on malformed input (callers map that to
/// TraceError::kCorruptHeader).
[[nodiscard]] TraceHeader decode_header_body(util::ByteReader& r);

// One response record. decode re-derives type_by_name from the filename,
// exactly as the crawler did at capture time.
void encode_record(util::ByteWriter& w, const crawler::ResponseRecord& rec);
[[nodiscard]] crawler::ResponseRecord decode_record(util::ByteReader& r);

// Summary block payload.
void encode_summary(util::ByteWriter& w, const StudySummary& summary);
[[nodiscard]] StudySummary decode_summary(util::ByteReader& r);

/// Index footer of one segment file (BlockKind::kSegmentIndex): what the
/// segment holds without decoding its record blocks. Purely descriptive —
/// replay correctness never depends on it (actual decoded counts drive the
/// merge), so a damaged index degrades inspection, not analysis.
struct SegmentIndex {
  /// floor(record.at / window) of every record in this segment.
  std::uint64_t window_index = 0;
  std::int64_t window_ms = 0;
  std::uint64_t records = 0;
  /// Honeypot observations among `records` (query_category == "honeypot").
  std::uint64_t honeypot_records = 0;
  /// Sim-time bounds over the segment's records (0/0 when empty).
  std::int64_t min_at_ms = 0;
  std::int64_t max_at_ms = 0;
  /// Per-block-kind counts, ascending by kind (the index block excluded).
  std::vector<std::pair<std::uint8_t, std::uint64_t>> kind_counts;
  /// Byte offset of each records block in the segment file, ascending.
  std::vector<std::uint64_t> block_offsets;
};

// Segment-index block payload.
void encode_segment_index(util::ByteWriter& w, const SegmentIndex& index);
[[nodiscard]] SegmentIndex decode_segment_index(util::ByteReader& r);

}  // namespace p2p::trace
