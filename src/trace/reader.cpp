#include "trace/reader.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace p2p::trace {

namespace {

struct ReaderMetrics {
  obs::Counter& records =
      obs::MetricsRegistry::global().counter("trace.records_read");
  obs::Counter& blocks =
      obs::MetricsRegistry::global().counter("trace.blocks_read");
  obs::Counter& corrupt =
      obs::MetricsRegistry::global().counter("trace.blocks_corrupt");
};

/// Read exactly n bytes; false on short read (stream left failed/eof).
bool read_exact(std::istream& in, std::uint8_t* out, std::size_t n) {
  in.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

bool read_u8(std::istream& in, std::uint8_t& out) {
  return read_exact(in, &out, 1);
}

bool read_u16le(std::istream& in, std::uint16_t& out) {
  std::uint8_t b[2];
  if (!read_exact(in, b, 2)) return false;
  out = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool read_u32le(std::istream& in, std::uint32_t& out) {
  std::uint8_t b[4];
  if (!read_exact(in, b, 4)) return false;
  out = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

/// Stream-side varint (same encoding as ByteReader::varint).
bool read_varint(std::istream& in, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    std::uint8_t b = 0;
    if (!read_u8(in, b)) return false;
    if (shift == 63 && (b & 0xfe) != 0) return false;  // overlong
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

std::uint64_t varint_size(std::uint64_t v) {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

TraceReader::TraceReader(std::istream& in) { open(in); }

TraceReader::TraceReader(const std::string& path)
    : owned_in_(std::make_unique<std::ifstream>(path, std::ios::binary)) {
  if (!*owned_in_) {
    error_ = TraceError::kIoError;
    error_message_ = "cannot open " + path;
    done_ = true;
    return;
  }
  open(*owned_in_);
}

void TraceReader::open(std::istream& in) {
  in_ = &in;
  std::uint32_t magic = 0;
  if (!read_u32le(in, magic)) {
    error_ = TraceError::kEmpty;
    error_message_ = "empty or truncated prologue";
    done_ = true;
    return;
  }
  if (magic != kTraceMagic) {
    error_ = TraceError::kBadMagic;
    error_message_ = "not a trace file (bad magic)";
    done_ = true;
    return;
  }
  std::uint16_t version = 0;
  std::uint16_t reserved = 0;
  std::uint32_t header_len = 0;
  if (!read_u16le(in, version) || !read_u16le(in, reserved) ||
      !read_u32le(in, header_len)) {
    error_ = TraceError::kCorruptHeader;
    error_message_ = "truncated prologue";
    done_ = true;
    return;
  }
  if (version != kTraceVersion) {
    error_ = TraceError::kBadVersion;
    error_message_ =
        "unsupported trace version " + std::to_string(version) +
        " (this reader understands version " + std::to_string(kTraceVersion) + ")";
    done_ = true;
    return;
  }
  if (header_len > kMaxHeaderBytes) {
    error_ = TraceError::kCorruptHeader;
    error_message_ = "header length out of range";
    done_ = true;
    return;
  }
  util::Bytes body(header_len);
  std::uint32_t stored_crc = 0;
  if (!read_exact(in, body.data(), body.size()) || !read_u32le(in, stored_crc)) {
    error_ = TraceError::kCorruptHeader;
    error_message_ = "truncated header";
    done_ = true;
    return;
  }
  if (util::crc32(body) != stored_crc) {
    error_ = TraceError::kCorruptHeader;
    error_message_ = "header checksum mismatch";
    done_ = true;
    return;
  }
  try {
    util::ByteReader r(body);
    header_ = decode_header_body(r);
  } catch (const util::BufferUnderflow&) {
    error_ = TraceError::kCorruptHeader;
    error_message_ = "malformed header body";
    done_ = true;
    return;
  }
  stats_.bytes_read = 12 + static_cast<std::uint64_t>(header_len) + 4;
}

bool TraceReader::next(crawler::ResponseRecord& out) {
  if (block_pos_ < block_records_.size()) {
    out = block_records_[block_pos_++];
    return true;
  }
  if (done_) return false;
  if (!advance_block()) {
    done_ = true;
    return false;
  }
  out = block_records_[block_pos_++];
  return true;
}

bool TraceReader::advance_block() {
  auto& metrics = obs::bound_metrics<ReaderMetrics>();
  // Loop until a decodable records block is in hand (summary and unknown
  // blocks are consumed along the way) or the stream ends.
  for (;;) {
    std::uint8_t kind = 0;
    if (!read_u8(*in_, kind)) return false;  // clean end of stream
    std::uint64_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    if (!read_varint(*in_, payload_len) || payload_len > kMaxBlockBytes ||
        !read_u32le(*in_, stored_crc)) {
      stats_.truncated_tail = true;
      return false;
    }
    util::Bytes payload(payload_len);
    if (!read_exact(*in_, payload.data(), payload.size())) {
      stats_.truncated_tail = true;
      return false;
    }
    stats_.bytes_read += 1 + varint_size(payload_len) + 4 + payload_len;
    if (util::crc32(payload, util::crc32({&kind, 1})) != stored_crc) {
      // Damaged block: its length prefix got us past it, keep going.
      ++stats_.blocks_corrupt;
      metrics.corrupt.add();
      continue;
    }
    ++stats_.blocks_read;
    metrics.blocks.add();
    try {
      util::ByteReader r(payload);
      switch (static_cast<BlockKind>(kind)) {
        case BlockKind::kRecords: {
          std::uint64_t count = r.varint();
          block_records_.clear();
          block_records_.reserve(std::min<std::uint64_t>(count, 4096));
          for (std::uint64_t i = 0; i < count; ++i) {
            block_records_.push_back(decode_record(r));
          }
          if (!r.empty()) throw util::BufferUnderflow{};
          if (block_records_.empty()) continue;
          block_pos_ = 0;
          stats_.records_read += block_records_.size();
          metrics.records.add(block_records_.size());
          return true;
        }
        case BlockKind::kSummary: {
          summary_ = decode_summary(r);
          if (!r.empty()) throw util::BufferUnderflow{};
          continue;
        }
        case BlockKind::kSegmentIndex: {
          segment_index_ = decode_segment_index(r);
          if (!r.empty()) throw util::BufferUnderflow{};
          continue;
        }
        default:
          // Forward compatibility: unknown kinds pass the CRC but carry
          // nothing this reader understands.
          ++stats_.blocks_skipped;
          continue;
      }
    } catch (const util::BufferUnderflow&) {
      // CRC-valid but undecodable payload (e.g. written by a buggy or
      // newer encoder): treat like a damaged block.
      --stats_.blocks_read;
      ++stats_.blocks_corrupt;
      metrics.corrupt.add();
      continue;
    }
  }
}

TraceData read_trace_file(const std::string& path) {
  OBS_SPAN("trace.read_file");
  TraceData data;
  TraceReader reader(path);
  if (!reader.ok()) {
    data.error = reader.error();
    data.error_message = reader.error_message();
    return data;
  }
  data.header = reader.header();
  crawler::ResponseRecord rec;
  while (reader.next(rec)) data.records.push_back(std::move(rec));
  data.summary = reader.summary();
  data.stats = reader.stats();
  return data;
}

}  // namespace p2p::trace
