#include "trace/writer.h"

#include "obs/metrics.h"
#include "obs/profile.h"

namespace p2p::trace {

namespace {

// Trace I/O counters (per-registry; sweep tasks record into their scoped
// registry). References rebind via bound_metrics when the registry changes.
struct WriterMetrics {
  obs::Counter& records =
      obs::MetricsRegistry::global().counter("trace.records_written");
  obs::Counter& blocks =
      obs::MetricsRegistry::global().counter("trace.blocks_written");
  obs::Counter& bytes =
      obs::MetricsRegistry::global().counter("trace.bytes_written");
};

void write_prologue_and_header(std::ostream& out, const TraceHeader& header,
                               std::uint64_t& bytes_written) {
  util::ByteWriter body;
  encode_header_body(body, header);

  util::ByteWriter w;
  w.u32le(kTraceMagic);
  w.u16le(header.version);
  w.u16le(0);  // reserved
  w.u32le(static_cast<std::uint32_t>(body.size()));
  w.bytes(body.data());
  w.u32le(util::crc32(body.data()));
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
  bytes_written += w.size();
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, const TraceHeader& header,
                         TraceWriterOptions options)
    : out_(&out), options_(options) {
  if (options_.records_per_block == 0) options_.records_per_block = 1;
  write_prologue_and_header(*out_, header, bytes_written_);
}

TraceWriter::TraceWriter(const std::string& path, const TraceHeader& header,
                         TraceWriterOptions options)
    : owned_out_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      out_(owned_out_.get()),
      options_(options) {
  if (options_.records_per_block == 0) options_.records_per_block = 1;
  if (!*owned_out_) {
    ok_ = false;
    return;
  }
  write_prologue_and_header(*out_, header, bytes_written_);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::on_record(const crawler::ResponseRecord& record) {
  if (!ok_) return;
  encode_record(pending_, record);
  ++pending_count_;
  ++records_written_;
  obs::bound_metrics<WriterMetrics>().records.add();
  if (pending_count_ >= options_.records_per_block) flush_records();
}

void TraceWriter::write_summary(const StudySummary& summary) {
  if (!ok_) return;
  flush_records();
  util::ByteWriter payload;
  encode_summary(payload, summary);
  write_block(BlockKind::kSummary, payload.data());
}

void TraceWriter::write_segment_index(const SegmentIndex& index) {
  if (!ok_) return;
  flush_records();
  util::ByteWriter payload;
  encode_segment_index(payload, index);
  write_block(BlockKind::kSegmentIndex, payload.data());
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (ok_) flush_records();
  if (out_ != nullptr) {
    out_->flush();
    if (!*out_) ok_ = false;
  }
}

void TraceWriter::flush_records() {
  if (pending_count_ == 0) return;
  OBS_SPAN("trace.flush_records");
  util::ByteWriter payload;
  payload.varint(pending_count_);
  payload.bytes(pending_.data());
  write_block(BlockKind::kRecords, payload.data());
  pending_ = util::ByteWriter{};
  pending_count_ = 0;
}

void TraceWriter::write_block(BlockKind kind, util::ByteView payload) {
  const std::uint64_t frame_offset = bytes_written_;
  util::ByteWriter head;
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(kind);
  head.u8(kind_byte);
  head.varint(payload.size());
  // The CRC covers the kind byte too: a flipped kind must read as a corrupt
  // block, not as a silently skippable unknown kind.
  head.u32le(util::crc32(payload, util::crc32({&kind_byte, 1})));
  // The payload goes straight from the caller's buffer to the stream —
  // framing never copies the block body.
  out_->write(reinterpret_cast<const char*>(head.data().data()),
              static_cast<std::streamsize>(head.size()));
  out_->write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  if (!*out_) {
    ok_ = false;
    return;
  }
  bytes_written_ += head.size() + payload.size();
  ++blocks_written_;
  if (block_observer_) {
    block_observer_(kind, frame_offset, head.size() + payload.size());
  }
  auto& metrics = obs::bound_metrics<WriterMetrics>();
  metrics.blocks.add();
  metrics.bytes.add(head.size() + payload.size());
}

}  // namespace p2p::trace
