// Time-sharded segment-directory backend (`capture.p2ps/`).
//
// Layout on disk:
//
//   capture.p2ps/
//     MANIFEST            "P2PS" prologue + the capture's TraceHeader (same
//                         encoding and CRC as a `.p2pt` header), then CRC-
//                         framed blocks: one kManifest block (segment
//                         window + one entry per segment, in stream order)
//                         and, when the run wrote one, a kSummary block.
//     seg-000000.p2pt     One segment per occupied sim-time window, named
//     seg-000001.p2pt     by window index. Each segment is a complete,
//     ...                 self-describing single-file trace (same header)
//                         whose last block is a kSegmentIndex footer.
//
// Records are routed to window floor(at / window); the assignment is
// monotone (a record never opens an *earlier* window than the one already
// open), so concatenating segments in manifest order reproduces the stream
// order exactly — the invariant parallel replay's merge relies on.
//
// Failure containment: damage inside a segment costs at most the damaged
// blocks; a missing or unreadable segment costs that segment (counted in
// ReadStats::segments_corrupt, stream continues). A damaged MANIFEST is a
// hard open error — without it there is no trusted header or order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/reader.h"
#include "trace/storage.h"
#include "trace/writer.h"

namespace p2p::trace {

/// One segment file as listed in the MANIFEST.
struct SegmentEntry {
  std::string file;  // name relative to the directory ("seg-000012.p2pt")
  std::uint64_t window_index = 0;
  std::uint64_t records = 0;
  std::uint64_t honeypot_records = 0;
  std::uint64_t bytes = 0;
  std::int64_t min_at_ms = 0;
  std::int64_t max_at_ms = 0;
};

struct SegmentManifest {
  TraceHeader header;
  std::int64_t window_ms = 0;
  std::vector<SegmentEntry> segments;  // stream order
  std::optional<StudySummary> summary;
};

/// Write `<dir>/MANIFEST`. Returns false on I/O failure.
[[nodiscard]] bool write_manifest(const std::string& dir,
                                  const SegmentManifest& manifest);

/// Read and validate a MANIFEST file. Any damage (bad magic/version,
/// truncation, CRC mismatch, undecodable block) is a hard error.
struct ManifestData {
  TraceError error = TraceError::kNone;
  std::string error_message;
  SegmentManifest manifest;
  [[nodiscard]] bool ok() const { return error == TraceError::kNone; }
};
[[nodiscard]] ManifestData read_manifest(const std::string& dir);

/// Path of `dir`'s MANIFEST / of segment `entry` inside `dir`.
[[nodiscard]] std::string manifest_path(const std::string& dir);
[[nodiscard]] std::string segment_path(const std::string& dir,
                                       const SegmentEntry& entry);

struct SegmentWriterOptions {
  /// Sim-time span of one segment file.
  std::int64_t window_ms = 24 * 3'600'000ll;
  /// Records per block inside each segment.
  std::size_t records_per_block = 256;
};

/// Capture sink writing a segment directory. Creates `dir` (and parents);
/// opens one TraceWriter per occupied window; writes each segment's index
/// footer at roll-over and the MANIFEST at close().
class SegmentWriter final : public StorageWriter {
 public:
  SegmentWriter(std::string dir, const TraceHeader& header,
                SegmentWriterOptions options = {});
  ~SegmentWriter() override;

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  void on_record(const crawler::ResponseRecord& record) override;
  void write_summary(const StudySummary& summary) override;
  void close() override;

  [[nodiscard]] bool ok() const override { return ok_; }
  [[nodiscard]] std::uint64_t records_written() const override {
    return records_written_;
  }
  [[nodiscard]] std::uint64_t blocks_written() const override {
    return blocks_written_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t segments_written() const override {
    return segments_written_;
  }

 private:
  void open_segment(std::uint64_t window_index);
  void seal_segment();

  std::string dir_;
  TraceHeader header_;
  SegmentWriterOptions options_;
  bool ok_ = true;
  bool closed_ = false;

  std::unique_ptr<TraceWriter> segment_;  // open segment (null before first record)
  SegmentIndex index_;                    // accumulating footer of the open segment
  SegmentEntry entry_;                    // accumulating manifest entry
  bool window_open_ = false;

  SegmentManifest manifest_;
  std::uint64_t records_written_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t segments_written_ = 0;
};

/// Replay source over a segment directory: streams segments in manifest
/// order through per-segment TraceReaders, aggregating their stats.
/// Containment: a segment that cannot be opened, or whose header does not
/// match the manifest, is dropped whole (segments_corrupt) and the stream
/// continues with the next one.
class SegmentReader final : public StorageReader {
 public:
  explicit SegmentReader(std::string dir);

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  [[nodiscard]] bool ok() const override { return error_ == TraceError::kNone; }
  [[nodiscard]] TraceError error() const override { return error_; }
  [[nodiscard]] const std::string& error_message() const override {
    return error_message_;
  }
  [[nodiscard]] const TraceHeader& header() const override {
    return manifest_.header;
  }
  [[nodiscard]] bool next(crawler::ResponseRecord& out) override;
  [[nodiscard]] const std::optional<StudySummary>& summary() const override {
    return manifest_.summary;
  }
  [[nodiscard]] const ReadStats& stats() const override { return stats_; }

  [[nodiscard]] const SegmentManifest& manifest() const { return manifest_; }

 private:
  /// Open the next listed segment; false when the manifest is exhausted.
  bool advance_segment();

  std::string dir_;
  TraceError error_ = TraceError::kNone;
  std::string error_message_;
  SegmentManifest manifest_;
  ReadStats stats_;
  std::size_t next_segment_ = 0;
  std::unique_ptr<TraceReader> segment_;
};

}  // namespace p2p::trace
