// Buffered append-only trace writer. Implements crawler::RecordSink so it
// plugs straight into a crawler (or core::Study) and captures every
// response as it is joined with its download+scan outcome.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>

#include "crawler/records.h"
#include "trace/codec.h"
#include "trace/storage.h"

namespace p2p::trace {

struct TraceWriterOptions {
  /// Records per block. Larger blocks amortize frame+CRC overhead; smaller
  /// blocks lose less data to a corrupt block.
  std::size_t records_per_block = 256;
};

class TraceWriter final : public StorageWriter {
 public:
  /// Write to an open stream (not owned; must outlive the writer).
  TraceWriter(std::ostream& out, const TraceHeader& header,
              TraceWriterOptions options = {});
  /// Create/truncate `path`. ok() is false when the file cannot be opened.
  TraceWriter(const std::string& path, const TraceHeader& header,
              TraceWriterOptions options = {});
  ~TraceWriter() override;

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Buffer one record; flushes a block every records_per_block.
  void on_record(const crawler::ResponseRecord& record) override;

  /// Write a summary block immediately (flushing buffered records first so
  /// block order matches write order).
  void write_summary(const StudySummary& summary) override;

  /// Write a segment-index footer block (segment backend only; a plain
  /// single-file capture never calls this, keeping its bytes unchanged).
  void write_segment_index(const SegmentIndex& index);

  /// Flush the partial block and the stream. Called by the destructor;
  /// call explicitly to check ok() before relying on the file.
  void close() override;

  [[nodiscard]] bool ok() const override {
    return ok_ && out_ != nullptr && *out_;
  }
  [[nodiscard]] std::uint64_t records_written() const override {
    return records_written_;
  }
  [[nodiscard]] std::uint64_t blocks_written() const override {
    return blocks_written_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t segments_written() const override { return 1; }

  /// Observe every framed block as it is written: (kind, byte offset of the
  /// frame in the file, frame size). The segment backend uses this to build
  /// its index footer; pass nullptr to detach.
  using BlockObserver =
      std::function<void(BlockKind, std::uint64_t offset, std::uint64_t size)>;
  void set_block_observer(BlockObserver observer) {
    block_observer_ = std::move(observer);
  }

 private:
  void write_block(BlockKind kind, util::ByteView payload);
  void flush_records();

  std::unique_ptr<std::ofstream> owned_out_;
  std::ostream* out_ = nullptr;
  TraceWriterOptions options_;
  bool ok_ = true;
  bool closed_ = false;

  util::ByteWriter pending_;        // encoded records of the open block
  std::size_t pending_count_ = 0;
  BlockObserver block_observer_;
  std::uint64_t records_written_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace p2p::trace
