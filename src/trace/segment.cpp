#include "trace/segment.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace p2p::trace {

namespace {

struct SegmentMetrics {
  obs::Counter& written =
      obs::MetricsRegistry::global().counter("trace.segments_written");
  obs::Counter& read =
      obs::MetricsRegistry::global().counter("trace.segments_read");
  obs::Counter& corrupt =
      obs::MetricsRegistry::global().counter("trace.segments_corrupt");
};

std::string segment_file_name(std::uint64_t window_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.p2pt",
                static_cast<unsigned long long>(window_index));
  return buf;
}

// MANIFEST block framing — the same frame TraceWriter/TraceReader use, but
// over an in-memory buffer: the manifest is small and validated whole.
void append_block(util::ByteWriter& out, BlockKind kind, util::ByteView payload) {
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(kind);
  out.u8(kind_byte);
  out.varint(payload.size());
  out.u32le(util::crc32(payload, util::crc32({&kind_byte, 1})));
  out.bytes(payload);
}

void encode_manifest_body(util::ByteWriter& w, const SegmentManifest& m) {
  w.varint(static_cast<std::uint64_t>(m.window_ms));
  w.varint(m.segments.size());
  for (const auto& s : m.segments) {
    w.lp_str(s.file);
    w.varint(s.window_index);
    w.varint(s.records);
    w.varint(s.honeypot_records);
    w.varint(s.bytes);
    w.varint(static_cast<std::uint64_t>(s.min_at_ms));
    w.varint(static_cast<std::uint64_t>(s.max_at_ms));
  }
}

void decode_manifest_body(util::ByteReader& r, SegmentManifest& m) {
  m.window_ms = static_cast<std::int64_t>(r.varint());
  std::uint64_t n = r.varint();
  m.segments.clear();
  m.segments.reserve(std::min<std::uint64_t>(n, 4096));
  for (std::uint64_t i = 0; i < n; ++i) {
    SegmentEntry s;
    s.file = r.lp_str();
    s.window_index = r.varint();
    s.records = r.varint();
    s.honeypot_records = r.varint();
    s.bytes = r.varint();
    s.min_at_ms = static_cast<std::int64_t>(r.varint());
    s.max_at_ms = static_cast<std::int64_t>(r.varint());
    m.segments.push_back(std::move(s));
  }
  if (!r.empty()) throw util::BufferUnderflow{};
}

}  // namespace

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

std::string segment_path(const std::string& dir, const SegmentEntry& entry) {
  return dir + "/" + entry.file;
}

bool write_manifest(const std::string& dir, const SegmentManifest& manifest) {
  util::ByteWriter body;
  encode_header_body(body, manifest.header);

  util::ByteWriter out;
  out.u32le(kManifestMagic);
  out.u16le(kManifestVersion);
  out.u16le(0);  // reserved
  out.u32le(static_cast<std::uint32_t>(body.size()));
  out.bytes(body.data());
  out.u32le(util::crc32(body.data()));

  util::ByteWriter entries;
  encode_manifest_body(entries, manifest);
  append_block(out, BlockKind::kManifest, entries.data());
  if (manifest.summary) {
    util::ByteWriter summary;
    encode_summary(summary, *manifest.summary);
    append_block(out, BlockKind::kSummary, summary.data());
  }

  std::ofstream f(manifest_path(dir), std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(out.data().data()),
          static_cast<std::streamsize>(out.size()));
  f.flush();
  return static_cast<bool>(f);
}

ManifestData read_manifest(const std::string& dir) {
  ManifestData data;
  auto fail = [&](TraceError e, std::string message) {
    data.error = e;
    data.error_message = std::move(message);
    return data;
  };
  std::ifstream f(manifest_path(dir), std::ios::binary);
  if (!f) return fail(TraceError::kIoError, "cannot open " + manifest_path(dir));
  util::Bytes raw((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  if (raw.empty()) return fail(TraceError::kEmpty, "empty manifest");
  try {
    util::ByteReader r(raw);
    if (r.u32le() != kManifestMagic) {
      return fail(TraceError::kBadMagic, "not a segment manifest (bad magic)");
    }
    std::uint16_t version = r.u16le();
    (void)r.u16le();  // reserved
    if (version != kManifestVersion) {
      return fail(TraceError::kBadVersion,
                  "unsupported manifest version " + std::to_string(version));
    }
    std::uint32_t header_len = r.u32le();
    if (header_len > kMaxHeaderBytes) {
      return fail(TraceError::kCorruptManifest, "header length out of range");
    }
    util::Bytes body = r.bytes(header_len);
    if (r.u32le() != util::crc32(body)) {
      return fail(TraceError::kCorruptManifest, "header checksum mismatch");
    }
    util::ByteReader header_reader(body);
    data.manifest.header = decode_header_body(header_reader);

    // Blocks: every one must frame and decode cleanly — a manifest is the
    // trusted root of the directory, so damage here is not containable.
    bool saw_entries = false;
    while (!r.empty()) {
      std::uint8_t kind = r.u8();
      std::uint64_t payload_len = r.varint();
      if (payload_len > kMaxBlockBytes) {
        return fail(TraceError::kCorruptManifest, "block length out of range");
      }
      std::uint32_t stored_crc = r.u32le();
      util::Bytes payload = r.bytes(payload_len);
      if (util::crc32(payload, util::crc32({&kind, 1})) != stored_crc) {
        return fail(TraceError::kCorruptManifest, "block checksum mismatch");
      }
      util::ByteReader block(payload);
      switch (static_cast<BlockKind>(kind)) {
        case BlockKind::kManifest:
          decode_manifest_body(block, data.manifest);
          saw_entries = true;
          break;
        case BlockKind::kSummary:
          data.manifest.summary = decode_summary(block);
          if (!block.empty()) throw util::BufferUnderflow{};
          break;
        default:
          // Unknown kinds are forward-compatible here too: CRC-valid
          // payloads this reader does not understand are ignored.
          break;
      }
    }
    if (!saw_entries) {
      return fail(TraceError::kCorruptManifest, "manifest has no segment list");
    }
  } catch (const util::BufferUnderflow&) {
    return fail(TraceError::kCorruptManifest, "truncated or malformed manifest");
  }
  return data;
}

// ---------------------------------------------------------------------------
// SegmentWriter
// ---------------------------------------------------------------------------

SegmentWriter::SegmentWriter(std::string dir, const TraceHeader& header,
                             SegmentWriterOptions options)
    : dir_(std::move(dir)), header_(header), options_(options) {
  if (options_.window_ms <= 0) options_.window_ms = 24 * 3'600'000ll;
  if (options_.records_per_block == 0) options_.records_per_block = 1;
  manifest_.header = header_;
  manifest_.window_ms = options_.window_ms;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) ok_ = false;
}

SegmentWriter::~SegmentWriter() { close(); }

void SegmentWriter::on_record(const crawler::ResponseRecord& record) {
  if (!ok_) return;
  std::int64_t at_ms = record.at.millis();
  if (at_ms < 0) at_ms = 0;
  std::uint64_t window =
      static_cast<std::uint64_t>(at_ms / options_.window_ms);
  // Monotone assignment: a late-arriving record never reopens an earlier
  // window, so segment order in the manifest == record order in the stream.
  if (window_open_ && window < index_.window_index) {
    window = index_.window_index;
  }
  if (!window_open_ || window != index_.window_index) {
    seal_segment();
    open_segment(window);
    if (!ok_) return;
  }
  segment_->on_record(record);
  ++records_written_;
  ++index_.records;
  ++entry_.records;
  if (record.query_category == "honeypot") {
    ++index_.honeypot_records;
    ++entry_.honeypot_records;
  }
  if (entry_.records == 1) {
    index_.min_at_ms = index_.max_at_ms = at_ms;
  } else {
    index_.min_at_ms = std::min(index_.min_at_ms, at_ms);
    index_.max_at_ms = std::max(index_.max_at_ms, at_ms);
  }
  entry_.min_at_ms = index_.min_at_ms;
  entry_.max_at_ms = index_.max_at_ms;
}

void SegmentWriter::write_summary(const StudySummary& summary) {
  if (!ok_) return;
  manifest_.summary = summary;
}

void SegmentWriter::open_segment(std::uint64_t window_index) {
  entry_ = SegmentEntry{};
  entry_.file = segment_file_name(window_index);
  entry_.window_index = window_index;
  index_ = SegmentIndex{};
  index_.window_index = window_index;
  index_.window_ms = options_.window_ms;

  TraceWriterOptions opt;
  opt.records_per_block = options_.records_per_block;
  segment_ = std::make_unique<TraceWriter>(dir_ + "/" + entry_.file, header_, opt);
  if (!segment_->ok()) {
    ok_ = false;
    segment_.reset();
    return;
  }
  segment_->set_block_observer(
      [this](BlockKind kind, std::uint64_t offset, std::uint64_t) {
        auto raw = static_cast<std::uint8_t>(kind);
        auto it = std::find_if(index_.kind_counts.begin(),
                               index_.kind_counts.end(),
                               [raw](const auto& kc) { return kc.first == raw; });
        if (it == index_.kind_counts.end()) {
          index_.kind_counts.emplace_back(raw, 1);
          std::sort(index_.kind_counts.begin(), index_.kind_counts.end());
        } else {
          ++it->second;
        }
        if (kind == BlockKind::kRecords) index_.block_offsets.push_back(offset);
      });
  window_open_ = true;
}

void SegmentWriter::seal_segment() {
  if (!window_open_) return;
  window_open_ = false;
  if (segment_ == nullptr) return;
  // The index footer counts every block before itself; detach the observer
  // so the footer's own frame is not folded into the counts it reports.
  SegmentIndex footer = index_;
  segment_->set_block_observer(nullptr);
  segment_->write_segment_index(footer);
  segment_->close();
  if (!segment_->ok()) ok_ = false;
  blocks_written_ += segment_->blocks_written();
  bytes_written_ += segment_->bytes_written();
  entry_.bytes = segment_->bytes_written();
  segment_.reset();
  manifest_.segments.push_back(entry_);
  ++segments_written_;
  obs::bound_metrics<SegmentMetrics>().written.add();
}

void SegmentWriter::close() {
  if (closed_) return;
  closed_ = true;
  seal_segment();
  if (!write_manifest(dir_, manifest_)) ok_ = false;
}

// ---------------------------------------------------------------------------
// SegmentReader
// ---------------------------------------------------------------------------

SegmentReader::SegmentReader(std::string dir) : dir_(std::move(dir)) {
  ManifestData data = read_manifest(dir_);
  if (!data.ok()) {
    error_ = data.error;
    error_message_ = data.error_message;
    return;
  }
  manifest_ = std::move(data.manifest);
}

bool SegmentReader::advance_segment() {
  auto& metrics = obs::bound_metrics<SegmentMetrics>();
  while (next_segment_ < manifest_.segments.size()) {
    const SegmentEntry& entry = manifest_.segments[next_segment_++];
    auto reader = std::make_unique<TraceReader>(segment_path(dir_, entry));
    // Containment: an unopenable segment, or one whose header belongs to a
    // different capture, is dropped whole and the stream continues.
    bool mismatch =
        reader->ok() &&
        (reader->header().config_hash != manifest_.header.config_hash ||
         reader->header().network != manifest_.header.network);
    if (!reader->ok() || mismatch) {
      ++stats_.segments_corrupt;
      metrics.corrupt.add();
      continue;
    }
    segment_ = std::move(reader);
    return true;
  }
  return false;
}

bool SegmentReader::next(crawler::ResponseRecord& out) {
  if (error_ != TraceError::kNone) return false;
  for (;;) {
    if (segment_ != nullptr) {
      if (segment_->next(out)) return true;
      // Segment exhausted: fold its stats into the directory aggregate.
      const ReadStats& s = segment_->stats();
      stats_.blocks_read += s.blocks_read;
      stats_.blocks_corrupt += s.blocks_corrupt;
      stats_.blocks_skipped += s.blocks_skipped;
      stats_.records_read += s.records_read;
      stats_.bytes_read += s.bytes_read;
      stats_.truncated_tail = stats_.truncated_tail || s.truncated_tail;
      ++stats_.segments_read;
      obs::bound_metrics<SegmentMetrics>().read.add();
      segment_.reset();
    }
    if (!advance_segment()) return false;
  }
}

}  // namespace p2p::trace
