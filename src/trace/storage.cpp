#include "trace/storage.h"

#include <filesystem>

#include "trace/reader.h"
#include "trace/segment.h"
#include "trace/writer.h"

namespace p2p::trace {

bool is_segment_path(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return true;
  std::string name = std::filesystem::path(path).filename().string();
  return name.size() >= kSegmentDirSuffix.size() &&
         name.compare(name.size() - kSegmentDirSuffix.size(),
                      kSegmentDirSuffix.size(), kSegmentDirSuffix) == 0;
}

std::unique_ptr<StorageWriter> open_storage_writer(const std::string& path,
                                                   const TraceHeader& header,
                                                   const StorageOptions& options) {
  if (is_segment_path(path)) {
    SegmentWriterOptions opt;
    opt.window_ms = options.segment_window_ms;
    opt.records_per_block = options.records_per_block;
    return std::make_unique<SegmentWriter>(path, header, opt);
  }
  TraceWriterOptions opt;
  opt.records_per_block = options.records_per_block;
  return std::make_unique<TraceWriter>(path, header, opt);
}

std::unique_ptr<StorageReader> open_storage_reader(const std::string& path) {
  if (is_segment_path(path)) return std::make_unique<SegmentReader>(path);
  return std::make_unique<TraceReader>(path);
}

}  // namespace p2p::trace
